"""The batched-injection RNG-stream contract.

``BernoulliTraffic.inject_batch`` must consume the traffic RNG stream
draw-for-draw identically to the scalar ``inject`` loop — for **every**
registered pattern — and ``BurstTraffic``'s bulk-destination path must
leave the injection sequence untouched.  These tests pin the contract
directly, below the engine layer; the golden matrix pins it end to end.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro.traffic.extra  # noqa: F401 - populate PATTERN_REGISTRY
from repro.network.config import SimConfig
from repro.registry import PATTERN_REGISTRY
from repro.topology import Dragonfly
from repro.traffic.mtstream import StreamRandom
from repro.traffic.processes import BernoulliTraffic, BurstTraffic

TOPO = Dragonfly(2)
SEED = 1234
CYCLES = 30
#: constructor kwargs for registered patterns that need them
PATTERN_KWARGS = {"mixed": dict(p_global=0.4, global_offset=2)}


class _CaptureSim:
    """The minimal simulator surface an injection process touches."""

    def __init__(self, seed: int) -> None:
        self.topo = TOPO
        self.config = SimConfig(h=2, seed=seed)
        self.rng_traffic = random.Random(seed)
        self.pairs: list[tuple[int, int]] = []

    def inject_packet(self, src: int, dst: int, now: int) -> None:
        self.pairs.append((src, dst))


def _build(name):
    return PATTERN_REGISTRY.get(name)(**PATTERN_KWARGS.get(name, {}))


@pytest.mark.parametrize("name", sorted(PATTERN_REGISTRY.available()))
def test_inject_batch_matches_scalar_draw_for_draw(name):
    """Per cycle: identical (src, dst) pairs, identical stream position."""
    pattern_a, pattern_b = _build(name), _build(name)
    scalar_sim, batch_sim = _CaptureSim(SEED), _CaptureSim(SEED)
    scalar = BernoulliTraffic(pattern_a, load=0.9)
    batched = BernoulliTraffic(pattern_b, load=0.9)
    for cycle in range(CYCLES):
        scalar_sim.pairs.clear()
        scalar.inject(scalar_sim, cycle)
        out = batched.inject_batch(batch_sim, cycle)
        assert out is not None, "batch declined on a plain Random"
        srcs, dsts = out
        batch_pairs = list(zip(srcs.tolist(), dsts.tolist()))
        assert batch_pairs == scalar_sim.pairs, f"cycle {cycle}"
    # the wrapper must sit exactly where the scalar stream sits: any
    # further draws, made directly on the traffic RNG, must agree
    assert isinstance(batch_sim.rng_traffic, StreamRandom)
    for _ in range(200):
        assert (scalar_sim.rng_traffic.random()
                == batch_sim.rng_traffic.random())
        assert (scalar_sim.rng_traffic.randrange(997)
                == batch_sim.rng_traffic.randrange(997))


@pytest.mark.parametrize("name", sorted(PATTERN_REGISTRY.available()))
def test_inject_batch_interleaves_with_scalar_fallback(name):
    """Alternating batch and scalar cycles stays on one stream."""
    pattern_a, pattern_b = _build(name), _build(name)
    scalar_sim, mixed_sim = _CaptureSim(SEED + 1), _CaptureSim(SEED + 1)
    scalar = BernoulliTraffic(pattern_a, load=0.7)
    mixed = BernoulliTraffic(pattern_b, load=0.7)
    for cycle in range(CYCLES):
        scalar_sim.pairs.clear()
        scalar.inject(scalar_sim, cycle)
        if cycle % 3 == 2:  # scalar fallback through the installed wrapper
            mixed_sim.pairs.clear()
            mixed.inject(mixed_sim, cycle)
            assert mixed_sim.pairs == scalar_sim.pairs, f"cycle {cycle}"
        else:
            srcs, dsts = mixed.inject_batch(mixed_sim, cycle)
            assert (list(zip(srcs.tolist(), dsts.tolist()))
                    == scalar_sim.pairs), f"cycle {cycle}"


def test_inject_batch_declines_on_foreign_rng():
    class NotQuiteRandom(random.Random):
        pass

    sim = _CaptureSim(SEED)
    sim.rng_traffic = NotQuiteRandom(SEED)
    traffic = BernoulliTraffic(_build("uniform"), load=0.5)
    assert traffic.inject_batch(sim, 0) is None
    assert isinstance(sim.rng_traffic, NotQuiteRandom)  # left untouched


def test_inject_batch_zero_load_is_empty_and_streamless():
    sim = _CaptureSim(SEED)
    before = sim.rng_traffic.getstate()
    traffic = BernoulliTraffic(_build("uniform"), load=0.0)
    srcs, dsts = traffic.inject_batch(sim, 0)
    assert srcs.size == 0 and dsts.size == 0
    assert sim.rng_traffic.getstate() == before  # no wrapper, no draws


def test_deterministic_patterns_use_vector_path_and_draw_nothing():
    sim = _CaptureSim(SEED)
    traffic = BernoulliTraffic(_build("shift"), load=0.9)
    ref = random.Random(SEED)
    for cycle in range(10):
        srcs, dsts = traffic.inject_batch(sim, cycle)
        n = TOPO.num_nodes
        hits = [node for node in range(n) if ref.random() < 0.9 / 8]
        assert srcs.tolist() == hits  # only the gates consumed the stream
        assert dsts.tolist() == [(s + 1) % n for s in srcs.tolist()]
    assert traffic._dest_map is not None  # vector table was built


@pytest.mark.parametrize("name", sorted(PATTERN_REGISTRY.available()))
def test_burst_bulk_destinations_match_per_packet_loop(name):
    """BurstTraffic's deterministic fast path preserves the sequence."""
    pattern = _build(name)
    fast_sim = _CaptureSim(SEED)
    BurstTraffic(_build(name), packets_per_node=3).inject(fast_sim, 0)
    # reference: the original per-packet destination loop
    ref_sim = _CaptureSim(SEED)
    rng = ref_sim.rng_traffic
    expected = []
    for node in range(TOPO.num_nodes):
        for _ in range(3):
            d = pattern.dest(node, TOPO, rng)
            if d != node:
                expected.append((node, d))
    assert fast_sim.pairs == expected
    if pattern.deterministic:
        # and the stream must be untouched by the fast path
        assert (fast_sim.rng_traffic.getstate()
                == random.Random(SEED).getstate())


def test_dest_map_rebuilds_on_topology_change():
    traffic = BernoulliTraffic(_build("bitcomp"), load=0.9)
    sim_small = _CaptureSim(SEED)
    traffic.inject_batch(sim_small, 0)
    first = traffic._dest_map
    big = Dragonfly(3)
    sim_big = _CaptureSim(SEED)
    sim_big.topo = big
    traffic.inject_batch(sim_big, 0)
    assert traffic._dest_map is not first
    assert traffic._dest_map.size == big.num_nodes


def test_uniform_block_and_walk_gates_share_one_stream():
    """Mixing the two vector primitives keeps stream order."""
    ref = random.Random(77)
    sr = StreamRandom(random.Random(77))
    vals = sr.uniform_block(100)
    assert vals.tolist() == [ref.random() for _ in range(100)]
    hits_ref = []
    for i in range(200):
        if ref.random() < 0.25:
            hits_ref.append((i, ref.randrange(53)))
    hits = []
    sr.walk_gates(200, 0.25, lambda i: hits.append((i, sr.randrange(53))))
    assert hits == hits_ref
    assert np.asarray(sr.uniform_block(5)).tolist() == \
        [ref.random() for _ in range(5)]
