"""Traffic patterns and injection processes."""

import random

import pytest

from repro.topology import Dragonfly
from repro.traffic.patterns import (
    AdversarialGlobal,
    AdversarialLocal,
    MixedGlobalLocal,
    UniformRandom,
    pattern_by_name,
)
from repro.traffic.processes import BernoulliTraffic, BurstTraffic

from tests.helpers import build_sim

TOPO = Dragonfly(2)
RNG = random.Random(0)


def draws(pattern, src, n=300):
    return [pattern.dest(src, TOPO, RNG) for _ in range(n)]


def test_uniform_excludes_self_and_covers():
    ds = draws(UniformRandom(), 10, 2000)
    assert 10 not in ds
    assert all(0 <= d < TOPO.num_nodes for d in ds)
    assert len(set(ds)) > TOPO.num_nodes // 2  # covers a broad range


def test_advg_targets_offset_group():
    for src in (0, 17, 55):
        g = TOPO.group_of(TOPO.router_of_node(src))
        for d in draws(AdversarialGlobal(1), src, 50):
            assert TOPO.group_of(TOPO.router_of_node(d)) == (g + 1) % TOPO.num_groups


def test_advg_wraps_modulo():
    src = TOPO.node_id(TOPO.router_id(TOPO.num_groups - 1, 0), 0)
    for d in draws(AdversarialGlobal(2), src, 20):
        assert TOPO.group_of(TOPO.router_of_node(d)) == 1


def test_advl_targets_offset_router_same_group():
    for src in (0, 9, 33):
        r = TOPO.router_of_node(src)
        expect = TOPO.router_id(TOPO.group_of(r), (TOPO.index_in_group(r) + 1) % TOPO.a)
        for d in draws(AdversarialLocal(1), src, 30):
            assert TOPO.router_of_node(d) == expect


def test_adversarial_offset_validation():
    with pytest.raises(ValueError):
        AdversarialGlobal(0)
    with pytest.raises(ValueError):
        AdversarialLocal(0)
    bad = AdversarialLocal(TOPO.a)  # offset wraps to self router
    with pytest.raises(ValueError):
        bad.dest(0, TOPO, RNG)


def test_mixed_proportions():
    m = MixedGlobalLocal(0.7, global_offset=2)
    src = 0
    local_g = TOPO.group_of(TOPO.router_of_node(src))
    n = 3000
    globals_ = sum(
        TOPO.group_of(TOPO.router_of_node(m.dest(src, TOPO, RNG))) != local_g
        for _ in range(n)
    )
    assert 0.64 < globals_ / n < 0.76  # ~Binomial(3000, .7)
    with pytest.raises(ValueError):
        MixedGlobalLocal(1.5, 2)


def test_pattern_by_name_parsing():
    assert isinstance(pattern_by_name("uniform", TOPO), UniformRandom)
    assert pattern_by_name("advg+3", TOPO).offset == 3
    assert pattern_by_name("advg+h", TOPO).offset == TOPO.h
    assert pattern_by_name("advg", TOPO).offset == 1
    assert pattern_by_name("advl+1", TOPO).offset == 1
    mixed = pattern_by_name("mixed:25", TOPO)
    assert mixed.p_global == pytest.approx(0.25)
    assert mixed.advg.offset == TOPO.h
    # registered extras resolve through PATTERN_REGISTRY fallback
    from repro.traffic.extra import GroupTornado

    assert isinstance(pattern_by_name("tornado", TOPO), GroupTornado)
    with pytest.raises(ValueError, match="unknown traffic pattern"):
        pattern_by_name("whirlwind", TOPO)


def test_bernoulli_load_statistics():
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = BernoulliTraffic(UniformRandom(), 0.5)
    sim.run(2000)
    expected = 0.5 / sim.config.packet_phits * sim.topo.num_nodes * 2000
    assert abs(sim.stats.generated - expected) < 0.15 * expected


def test_bernoulli_zero_load_generates_nothing():
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = BernoulliTraffic(UniformRandom(), 0.0)
    sim.run(300)
    assert sim.stats.generated == 0
    with pytest.raises(ValueError):
        BernoulliTraffic(UniformRandom(), -0.1)


def test_burst_injects_once():
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = BurstTraffic(UniformRandom(), 5)
    sim.run(3)
    assert sim.stats.generated == 5 * sim.topo.num_nodes
    sim.run(50)
    assert sim.stats.generated == 5 * sim.topo.num_nodes  # no re-injection
    with pytest.raises(ValueError):
        BurstTraffic(UniformRandom(), 0)


def test_burst_drains_completely():
    sim = build_sim("olm", record_hops=False)
    sim.traffic = BurstTraffic(AdversarialLocal(1), 4)
    cycles = sim.run_until_drained(200000)
    assert sim.stats.delivered == 4 * sim.topo.num_nodes
    assert cycles > 0
