"""StatsCollector arithmetic and the misrouting trigger."""

import math

import pytest

from repro.core.trigger import MisroutingTrigger
from repro.metrics.collector import StatsCollector
from repro.network.packet import Packet


def pkt(size=8, birth=0):
    p = Packet(0, 0, 9, size, birth, 0, 0, 4, 1)
    return p


def test_collector_empty_readouts():
    c = StatsCollector()
    assert math.isnan(c.mean_latency())
    assert math.isnan(c.mean_hops())
    assert c.throughput(10, 100) == 0.0
    assert c.throughput(10, 0) == 0.0


def test_collector_accumulates():
    c = StatsCollector()
    c.reset(100)
    p1, p2 = pkt(birth=100), pkt(birth=120)
    p1.local_hops_total, p1.g_hops = 2, 1
    p2.global_misrouted = True
    p2.local_misroutes = 2
    c.on_generated(p1)
    c.on_generated(p2)
    c.on_delivered(p1, 150)  # latency 50
    c.on_delivered(p2, 200)  # latency 80
    assert c.generated == 2 and c.delivered == 2
    assert c.mean_latency() == pytest.approx(65.0)
    assert c.latency_max == 80
    assert c.delivered_phits == 16
    # throughput over window [100, 200) with 4 nodes
    assert c.throughput(4, 200) == pytest.approx(16 / (4 * 100))
    assert c.local_misroute_rate() == pytest.approx(1.0)
    assert c.global_misroute_fraction() == pytest.approx(0.5)
    assert c.mean_hops() == pytest.approx(1.5)


def test_collector_reset_zeroes():
    c = StatsCollector()
    c.on_generated(pkt())
    c.on_delivered(pkt(), 10)
    c.reset(500)
    assert c.generated == 0 and c.delivered == 0
    assert c.window_start == 500


def test_collector_as_dict_keys():
    c = StatsCollector()
    d = c.as_dict(4, 100)
    for key in ("generated", "delivered", "mean_latency", "throughput",
                "local_misroute_rate", "global_misroute_fraction", "mean_hops"):
        assert key in d


def test_trigger_semantics():
    t = MisroutingTrigger(0.45)
    assert not t.allows(0, 0)       # empty minimal queue: never misroute
    assert t.allows(100, 44)        # candidate clearly emptier
    assert not t.allows(100, 45)    # at the threshold: no
    assert not t.allows(100, 90)
    assert MisroutingTrigger(1.0).allows(10, 9)
    with pytest.raises(ValueError):
        MisroutingTrigger(-0.2)


def test_trigger_threshold_monotonicity():
    lo, hi = MisroutingTrigger(0.3), MisroutingTrigger(0.6)
    for occ in range(0, 100, 7):
        if lo.allows(100, occ):
            assert hi.allows(100, occ)  # higher threshold always allows more
