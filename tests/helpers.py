"""Shared test utilities: simulator builders and hop-log replay validators."""

from __future__ import annotations

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.topology.dragonfly import PortKind
from repro.traffic.processes import BernoulliTraffic

EJECT, LOCAL, GLOBAL = int(PortKind.EJECT), int(PortKind.LOCAL), int(PortKind.GLOBAL)


def build_sim(routing="minimal", traffic=None, **over) -> Simulator:
    """A small h=2 simulator with hop recording on, overridable via kwargs."""
    defaults = dict(h=2, routing=routing, record_hops=True, seed=5)
    defaults.update(over)
    return Simulator(SimConfig(**defaults), traffic)


def bernoulli_sim(routing, pattern, load, **over) -> Simulator:
    sim = build_sim(routing, **over)
    sim.traffic = BernoulliTraffic(pattern, load)
    return sim


def replay_path(sim: Simulator, packet) -> list[tuple[int, int, int, int]]:
    """Reconstruct (kind, vc, from_router, to_router) hops from a hop log."""
    topo = sim.topo
    cur = packet.src_router
    out = []
    assert packet.hops_log is not None, "enable record_hops"
    for kind, port, vc in packet.hops_log:
        if kind == LOCAL:
            nxt = topo.local_neighbor(cur, port)
        elif kind == GLOBAL:
            nxt, _ = topo.global_neighbor(cur, port)
        else:  # EJECT
            assert cur == packet.dst_router, "ejected at the wrong router"
            assert port == topo.node_index(packet.dst), "ejected at wrong node port"
            nxt = cur
        out.append((kind, vc, cur, nxt))
        cur = nxt
    assert out and out[-1][0] == EJECT, "path must end with ejection"
    return out


def group_segments(sim: Simulator, path):
    """Split a replayed path into per-group local-hop segments."""
    topo = sim.topo
    segments = [[]]
    for kind, vc, frm, to in path:
        if kind == GLOBAL:
            segments.append([])
        elif kind == LOCAL:
            segments[-1].append((vc, topo.index_in_group(frm), topo.index_in_group(to)))
    return segments


def collect_delivered(sim: Simulator, min_packets: int, max_cycles: int = 60000):
    """Run until at least ``min_packets`` packets were delivered; return them.

    Delivered packets are harvested via a wrapped stats callback.
    """
    delivered = []
    sim.on_packet_delivered = lambda pkt, now: delivered.append(pkt)
    while len(delivered) < min_packets:
        assert sim.now < max_cycles, "simulation too slow to deliver packets"
        sim.step()
    return delivered


# ----------------------------------------------------------- VC validators
def assert_ascending_vcs(sim, packet, local_vcs):
    """MIN/VAL/PB/PAR-6/2 discipline: Günther ascending VC chains."""
    path = replay_path(sim, packet)
    locals_seen = 0
    globals_seen = 0
    for kind, vc, _, _ in path:
        if kind == LOCAL:
            if local_vcs >= 6:  # PAR-6/2: one VC per local hop
                assert vc == locals_seen, path
            else:  # 3/2 mechanisms: local VC index == global hops so far
                assert vc == globals_seen, path
            locals_seen += 1
        elif kind == GLOBAL:
            assert vc == globals_seen, path
            globals_seen += 1
    assert globals_seen <= 2
    assert locals_seen <= (6 if local_vcs >= 6 else 2 * 3)


def assert_rlm_discipline(sim, packet):
    """RLM: per-group constant local VC + Table I pair restriction."""
    from repro.core.paritysign import hop_pair_allowed

    path = replay_path(sim, packet)
    globals_seen = 0
    for kind, vc, _, _ in path:
        if kind == GLOBAL:
            assert vc == globals_seen
            globals_seen += 1
        elif kind == LOCAL:
            assert vc == globals_seen  # lVC_{g+1} for every local hop of the group
    for seg in group_segments(sim, path):
        assert len(seg) <= 2, "at most two local hops per supernode"
        if len(seg) == 2:
            (_, i, k), (_, k2, j) = seg
            assert k == k2
            assert hop_pair_allowed(i, k, j), f"forbidden pair {i}->{k}->{j}"


def assert_olm_discipline(sim, packet):
    """OLM: globals ascend; local VCs never exceed the safe escape level."""
    path = replay_path(sim, packet)
    globals_seen = 0
    local_vcs_used = []
    for kind, vc, _, _ in path:
        if kind == GLOBAL:
            assert vc == globals_seen
            globals_seen += 1
        elif kind == LOCAL:
            local_vcs_used.append((vc, globals_seen))
    if globals_seen == 0:
        # intra-group: (0,) minimal or (0, 1) misroute-then-ascend
        vcs = [vc for vc, _ in local_vcs_used]
        assert vcs in ([], [0], [0, 1]), vcs  # eject-only / minimal / misroute
    else:
        for vc, g_before in local_vcs_used:
            assert vc <= g_before, (vc, g_before, path)
    for seg in group_segments(sim, path):
        assert len(seg) <= 2
