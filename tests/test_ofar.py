"""OFAR baseline: ring embedding, bubble escape, qualitative weaknesses."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.topology import Dragonfly
from repro.topology.dragonfly import PortKind
from repro.topology.ring import hamiltonian_ring, validate_ring
from repro.traffic.patterns import AdversarialGlobal, AdversarialLocal, UniformRandom
from repro.traffic.processes import BernoulliTraffic

from tests.helpers import collect_delivered


@pytest.mark.parametrize("h", [1, 2, 3])
def test_hamiltonian_ring_valid(h):
    topo = Dragonfly(h)
    succ = hamiltonian_ring(topo)
    validate_ring(topo, succ)


def test_ring_uses_one_global_hop_per_group():
    topo = Dragonfly(2)
    succ = hamiltonian_ring(topo)
    global_hops = [r for r, (_, kind, _) in succ.items() if kind == PortKind.GLOBAL]
    assert len(global_hops) == topo.num_groups
    assert len({topo.group_of(r) for r in global_hops}) == topo.num_groups


def ofar_sim(pattern, load, **over):
    defaults = dict(h=2, routing="ofar", record_hops=True, seed=3)
    defaults.update(over)
    sim = Simulator(SimConfig(**defaults))
    sim.traffic = BernoulliTraffic(pattern, load)
    return sim


def test_ofar_vc_budget():
    sim = ofar_sim(UniformRandom(), 0.1)
    assert sim.local_vcs == 4 and sim.global_vcs == 3


def test_ofar_rejected_under_wormhole():
    with pytest.raises(ValueError, match="requires VCT"):
        Simulator(SimConfig(h=2, routing="ofar", flow_control="wh",
                            packet_phits=80, flit_phits=10))


@pytest.mark.parametrize("pattern", [UniformRandom(), AdversarialGlobal(2),
                                     AdversarialLocal(1)])
def test_ofar_delivers_and_drains(pattern):
    sim = ofar_sim(pattern, 0.6)
    sim.run(1500)
    sim.traffic = None
    sim.run_until_drained(300000)
    assert sim.stats.delivered == sim.stats.generated


def test_ofar_uses_escape_under_congestion():
    sim = ofar_sim(AdversarialGlobal(2), 0.9)
    pkts = collect_delivered(sim, 400)
    escape_hops = sum(
        1
        for p in pkts
        for kind, _, vc in p.hops_log
        if (kind == int(PortKind.LOCAL) and vc == 3)
        or (kind == int(PortKind.GLOBAL) and vc == 2)
    )
    assert escape_hops > 0, "congested OFAR must exercise the escape ring"


def test_ofar_escape_rare_at_low_load():
    sim = ofar_sim(UniformRandom(), 0.05)
    pkts = collect_delivered(sim, 150)
    total_hops = sum(len(p.hops_log) for p in pkts)
    escape_hops = sum(
        1
        for p in pkts
        for kind, _, vc in p.hops_log
        if (kind == int(PortKind.LOCAL) and vc == 3)
        or (kind == int(PortKind.GLOBAL) and vc == 2)
    )
    assert escape_hops <= 0.01 * total_hops


def test_ofar_no_deadlock_tight_buffers():
    cfg = SimConfig(h=2, routing="ofar", packet_phits=8,
                    local_buffer_phits=16, global_buffer_phits=64,
                    seed=11, deadlock_window=4000)
    sim = Simulator(cfg, BernoulliTraffic(AdversarialGlobal(2), 1.0))
    sim.run(2000)
    sim.traffic = None
    sim.run_until_drained(600000)
    assert sim.stats.delivered == sim.stats.generated


def test_paper_claim_olm_beats_ofar_when_congested():
    """§II: the escape ring's poor capacity hurts in congested scenarios."""

    def saturation(routing):
        cfg = SimConfig(h=2, routing=routing, seed=7)
        sim = Simulator(cfg, BernoulliTraffic(AdversarialGlobal(2), 0.8))
        sim.run(2500)
        sim.stats.reset(sim.now)
        sim.run(2500)
        return sim.stats.throughput(sim.topo.num_nodes, sim.now)

    assert saturation("olm") >= 0.95 * saturation("ofar")
