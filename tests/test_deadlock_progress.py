"""Deadlock-detector progress accounting (PR-3 false-positive fix).

The seed engine only advanced ``_last_progress`` when a flit was
*granted*, so a packet whose flits were all in flight on a link longer
than ``deadlock_window`` (e.g. ``global_latency > deadlock_window``)
tripped a spurious ``DeadlockError`` even though its arrival was
already scheduled.  Scheduled arrivals/credits now count as progress:
the detector only fires when nothing is granted *and* nothing is in
flight on any link.
"""

import pytest

from repro.network.config import SimConfig
from repro.network.reference import ReferenceSimulator
from repro.network.simulator import DeadlockError, Simulator


def high_latency_config(**over) -> SimConfig:
    """Global links far longer than the deadlock window."""
    defaults = dict(h=2, routing="minimal", seed=1,
                    global_latency=2000, deadlock_window=300)
    defaults.update(over)
    return SimConfig(**defaults)


def far_pair(sim):
    """A (src, dst) node pair whose minimal path crosses a global link."""
    topo = sim.topo
    tg = topo.target_group_of(0, 0)
    return topo.node_id(0, 0), topo.node_id(topo.router_id(tg, 0), 0)


def test_long_link_flight_is_not_a_deadlock():
    sim = Simulator(high_latency_config())
    src, dst = far_pair(sim)
    pkt = sim.inject_packet(src, dst)
    drained = sim.run_until_drained(50_000)  # seed engine: spurious DeadlockError
    assert pkt.delivered_cycle is not None
    assert drained > sim.config.global_latency


def test_run_survives_long_link_flight():
    sim = Simulator(high_latency_config())
    src, dst = far_pair(sim)
    sim.inject_packet(src, dst)
    sim.run(10_000)  # window elapses several times while the flit is on the wire
    assert sim.stats.delivered == 1


def test_seed_engine_had_the_false_positive():
    """Pin the bug this PR fixes: the frozen seed hot path still raises."""
    sim = ReferenceSimulator(high_latency_config())
    src, dst = far_pair(sim)
    sim.inject_packet(src, dst)
    with pytest.raises(DeadlockError, match="no flit moved"):
        sim.run_until_drained(50_000)


def test_true_stall_still_raises():
    """A packet that exists but can never move must still be detected."""
    sim = Simulator(high_latency_config(deadlock_window=50))
    src, dst = far_pair(sim)
    sim.inject_packet(src, dst)
    # strand the packet: no algorithm will ever grant it a hop
    sim.algo.decide = lambda router, packet, now, flit: None
    with pytest.raises(DeadlockError, match="no flit moved"):
        sim.run(5_000)
