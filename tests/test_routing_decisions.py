"""Decision-level unit tests: crafted packets against a quiet network.

These pin down the exact outputs and VCs each mechanism picks in
unambiguous situations, complementing the statistical discipline tests.
"""


from repro.core.base import Decision
from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.topology.dragonfly import PortKind


def quiet_sim(routing="minimal", **over):
    defaults = dict(h=2, routing=routing, seed=1)
    defaults.update(over)
    return Simulator(SimConfig(**defaults))


def head_flit(sim, src, dst):
    pkt = sim.inject_packet(src, dst)
    router = sim.routers[pkt.src_router]
    vcb = router.inputs[sim.topo.node_index(src)].vcs[0]
    return pkt, vcb.head(), router


def test_minimal_eject_decision():
    sim = quiet_sim()
    pkt, flit, router = head_flit(sim, 0, 1)  # same router
    dec = sim.algo.decide(router, pkt, 0, flit)
    assert isinstance(dec, Decision)
    out = router.outputs[dec.out]
    assert out.kind == PortKind.EJECT
    assert out.index == 1  # node port of destination


def test_minimal_local_then_global_vcs():
    sim = quiet_sim()
    topo = sim.topo
    # destination in another group whose exit is not router 0
    for tg in range(1, topo.num_groups):
        exit_idx, gport = topo.exit_port(0, tg)
        if exit_idx != 0:
            break
    dst = topo.node_id(topo.router_id(tg, exit_idx), 0)
    pkt, flit, router = head_flit(sim, 0, dst)
    dec = sim.algo.decide(router, pkt, 0, flit)
    out = router.outputs[dec.out]
    assert out.kind == PortKind.LOCAL and dec.vc == 0  # lVC1
    # pretend the hop was granted; now at the exit router
    sim.algo.on_hop(router, pkt, dec)
    assert pkt.local_hops_group == 1 and pkt.g_hops == 0
    exit_router = sim.routers[topo.router_id(0, exit_idx)]
    dec2 = sim.algo.decide(exit_router, pkt, 0, flit)
    out2 = exit_router.outputs[dec2.out]
    assert out2.kind == PortKind.GLOBAL and dec2.vc == 0  # gVC1


def test_minimal_blocked_returns_none():
    sim = quiet_sim()
    pkt, flit, router = head_flit(sim, 0, 1)
    router.outputs[router.out_eject(1)].busy_until = 10**9  # freeze eject port 1
    assert sim.algo.decide(router, pkt, 0, flit) is None


def test_valiant_decision_sets_group():
    sim = quiet_sim("valiant")
    dst = sim.topo.node_id(sim.topo.router_id(3, 0), 0)
    pkt, flit, router = head_flit(sim, 0, dst)
    dec = sim.algo.decide(router, pkt, 0, flit)
    assert dec.valiant_group is not None
    assert dec.valiant_group not in (pkt.src_group, pkt.dst_group)
    sim.algo.on_hop(router, pkt, dec)
    assert pkt.committed and pkt.global_misrouted


def test_adaptive_minimal_first_on_quiet_network():
    """With empty queues every adaptive mechanism routes minimally."""
    for routing in ("par62", "rlm", "olm", "ofar"):
        sim = quiet_sim(routing)
        dst = sim.topo.node_id(sim.topo.router_id(4, 1), 0)
        pkt, flit, router = head_flit(sim, 0, dst)
        dec = sim.algo.decide(router, pkt, 0, flit)
        mout, mkind, _ = sim.algo.minimal_next(router, pkt)
        assert dec.out == mout, routing
        assert not dec.is_local_misroute
        assert dec.valiant_group is None


def test_adaptive_misroutes_when_minimal_congested():
    """Freeze the minimal output with nonzero occupancy: the trigger fires."""
    sim = quiet_sim("olm", threshold=0.9)
    topo = sim.topo
    dst = topo.node_id(topo.router_id(0, 1), 0)  # intra-group, router 0 -> 1
    pkt, flit, router = head_flit(sim, 0, dst)
    mout, _, _ = sim.algo.minimal_next(router, pkt)
    out = router.outputs[mout]
    out.credits[0] = 0  # minimal local VC full: occupancy = capacity
    dec = None
    for _ in range(50):  # candidate sampling is randomized
        dec = sim.algo.decide(router, pkt, 0, flit)
        if dec is not None:
            break
    assert dec is not None
    assert dec.is_local_misroute or dec.valiant_group is not None


def test_trigger_denies_when_candidates_as_full():
    sim = quiet_sim("olm", threshold=0.45)
    topo = sim.topo
    dst = topo.node_id(topo.router_id(0, 1), 0)
    pkt, flit, router = head_flit(sim, 0, dst)
    # every output as full as the minimal one: nothing passes the trigger
    for out in router.outputs:
        if out.kind != PortKind.EJECT:
            for v in range(len(out.credits)):
                out.credits[v] = 0
    assert sim.algo.decide(router, pkt, 0, flit) is None


def test_rlm_divert_respects_pair_restriction():
    from repro.core.paritysign import link_type, pair_allowed

    sim = quiet_sim("rlm")
    algo = sim.algo
    dst = sim.topo.node_id(sim.topo.router_id(5, 0), 0)
    pkt, flit, router = head_flit(sim, 0, dst)
    pkt.prev_local_type = link_type(2, 0)  # pretend we arrived 2 -> 0
    for via in range(1, sim.topo.a):
        expected = pair_allowed(link_type(2, 0), link_type(0, via))
        assert algo.divert_valid(router, pkt, via) == expected


def test_olm_misroute_vc_levels():
    sim = quiet_sim("olm")
    pkt, flit, router = head_flit(sim, 0, sim.topo.node_id(40, 0))
    assert sim.algo.vc_local_misroute(pkt) == 0   # source group
    pkt.g_hops = 1
    assert sim.algo.vc_local_misroute(pkt) == 0   # intermediate group
    pkt.g_hops = 2
    assert sim.algo.vc_local_misroute(pkt) == 1   # destination group (lVC2)
    assert sim.algo.vc_local_minimal(pkt) == 2    # escape lVC3


def test_par62_vc_progression():
    sim = quiet_sim("par62")
    pkt, flit, router = head_flit(sim, 0, sim.topo.node_id(40, 0))
    assert sim.algo.vc_local_minimal(pkt) == 0
    pkt.local_hops_total = 3
    assert sim.algo.vc_local_minimal(pkt) == 3
    pkt.g_hops = 1
    assert sim.algo.vc_global(pkt) == 1
