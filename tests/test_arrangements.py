"""Global-link arrangement unit tests."""

import pytest

from repro.topology.arrangements import (
    ConsecutiveArrangement,
    PalmTreeArrangement,
    arrangement_by_name,
)


@pytest.mark.parametrize("cls", [PalmTreeArrangement, ConsecutiveArrangement])
@pytest.mark.parametrize("h", [1, 2, 3, 4])
def test_peer_is_involution(cls, h):
    links = 2 * h * h
    arr = cls(links + 1, links)
    for g in range(arr.num_groups):
        for j in range(links):
            pg, pj = arr.peer(g, j)
            assert arr.peer(pg, pj) == (g, j)


@pytest.mark.parametrize("cls", [PalmTreeArrangement, ConsecutiveArrangement])
def test_every_pair_joined_once(cls):
    h = 3
    links = 2 * h * h
    arr = cls(links + 1, links)
    seen = set()
    for g in range(arr.num_groups):
        targets = set()
        for j in range(links):
            tg = arr.target_group(g, j)
            assert tg != g
            targets.add(tg)
            seen.add((min(g, tg), max(g, tg)))
        assert len(targets) == links  # one link per other group
    assert len(seen) == arr.num_groups * (arr.num_groups - 1) // 2


@pytest.mark.parametrize("cls", [PalmTreeArrangement, ConsecutiveArrangement])
def test_link_to_group_inverts_target(cls):
    h = 2
    links = 2 * h * h
    arr = cls(links + 1, links)
    for g in range(arr.num_groups):
        for t in range(arr.num_groups):
            if t == g:
                continue
            j = arr.link_to_group(g, t)
            assert arr.target_group(g, j) == t


def test_link_to_self_rejected():
    arr = PalmTreeArrangement(9, 8)
    with pytest.raises(ValueError):
        arr.link_to_group(3, 3)


def test_bad_subscription_rejected():
    with pytest.raises(ValueError):
        PalmTreeArrangement(10, 8)  # g must equal a*h + 1


def test_link_index_out_of_range():
    arr = PalmTreeArrangement(9, 8)
    with pytest.raises(ValueError):
        arr.peer(0, 8)
    with pytest.raises(ValueError):
        arr.peer(0, -1)


def test_arrangement_by_name():
    assert isinstance(arrangement_by_name("palmtree", 9, 8), PalmTreeArrangement)
    assert isinstance(arrangement_by_name("consecutive", 9, 8), ConsecutiveArrangement)
    with pytest.raises(ValueError, match="unknown arrangement"):
        arrangement_by_name("nope", 9, 8)


def test_palmtree_formula():
    arr = PalmTreeArrangement(9, 8)
    assert arr.peer(0, 0) == (1, 7)
    assert arr.peer(0, 7) == (8, 0)
    assert arr.peer(4, 3) == (8, 4)
