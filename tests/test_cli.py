"""CLI behaviour."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_rejects_no_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4a" in out and "tab1" in out and "fig9b" in out


def test_run_tab1(capsys):
    assert main(["run", "tab1"]) == 0
    out = capsys.readouterr().out
    assert "parity-sign" in out
    assert "odd-" in out


def test_run_with_json_output(tmp_path, capsys):
    path = tmp_path / "tab1.json"
    assert main(["run", "tab1", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["id"] == "tab1"
    capsys.readouterr()


def test_run_json_dir(tmp_path, capsys):
    assert main(["run", "tab1", "--json-dir", str(tmp_path)]) == 0
    assert (tmp_path / "tab1.json").exists()
    capsys.readouterr()


def test_run_unknown_experiment():
    with pytest.raises(ValueError):
        main(["run", "figZZ"])
