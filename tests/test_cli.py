"""CLI behaviour."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_rejects_no_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4a" in out and "tab1" in out and "fig9b" in out


def test_run_tab1(capsys):
    assert main(["run", "tab1"]) == 0
    out = capsys.readouterr().out
    assert "parity-sign" in out
    assert "odd-" in out


def test_run_with_json_output(tmp_path, capsys):
    path = tmp_path / "tab1.json"
    assert main(["run", "tab1", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["id"] == "tab1"
    capsys.readouterr()


def test_run_json_dir(tmp_path, capsys):
    assert main(["run", "tab1", "--json-dir", str(tmp_path)]) == 0
    assert (tmp_path / "tab1.json").exists()
    capsys.readouterr()


def test_run_unknown_experiment():
    with pytest.raises(ValueError):
        main(["run", "figZZ"])


def test_list_components(capsys):
    assert main(["list-components"]) == 0
    out = capsys.readouterr().out
    for kind in ("topology:", "routing:", "flow-control:", "arbitration:",
                 "traffic-pattern:", "traffic-process:"):
        assert kind in out
    for name in ("dragonfly", "olm", "vct", "rr", "uniform", "bernoulli"):
        assert name in out
    # all three shipped fabrics are registered (the CI smoke relies on this)
    for fabric in ("dragonfly", "flattened_butterfly", "torus"):
        assert fabric in out


def test_point_command_round_trips_config(tmp_path, capsys):
    from repro.network.config import SimConfig

    cfg_path = tmp_path / "cfg.json"
    cfg_path.write_text(json.dumps(SimConfig(h=2, routing="minimal").to_dict()))
    out_path = tmp_path / "point.json"
    assert main(["point", "--config", str(cfg_path), "--pattern", "uniform",
                 "--load", "0.2", "--warmup", "200", "--measure", "200",
                 "--json", str(out_path)]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["config"]["routing"] == "minimal"
    assert payload["result"]["delivered"] > 0
    assert "latency_p99" in payload["result"]


def test_point_emits_strict_json_for_empty_window(tmp_path, capsys):
    out_path = tmp_path / "empty.json"
    assert main(["point", "--load", "0.0", "--warmup", "0", "--measure", "5",
                 "--json", str(out_path)]) == 0
    text = out_path.read_text()
    assert "NaN" not in text  # strict-JSON consumers must be able to parse it
    payload = json.loads(text)
    assert payload["result"]["delivered"] == 0
    assert payload["result"]["mean_latency"] is None
    capsys.readouterr()


def test_point_command_rejects_bad_config(tmp_path, capsys):
    cfg_path = tmp_path / "bad.json"
    cfg_path.write_text(json.dumps({"rooting": "olm"}))
    assert main(["point", "--config", str(cfg_path), "--measure", "10"]) == 2
    assert "unknown SimConfig field" in capsys.readouterr().err


def test_point_engine_flag_selects_backend(tmp_path, capsys):
    out_path = tmp_path / "point.json"
    assert main(["point", "--engine", "array", "--pattern", "uniform",
                 "--load", "0.2", "--warmup", "100", "--measure", "100",
                 "--json", str(out_path)]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["config"]["engine"] == "array"
    assert payload["result"]["delivered"] > 0


def test_point_engine_flag_did_you_mean(capsys):
    assert main(["point", "--engine", "aray", "--measure", "10"]) == 2
    err = capsys.readouterr().err
    assert "unknown engine 'aray'" in err
    assert "did you mean 'array'?" in err


def _sweep_args(tmp_path, name, *extra):
    out = tmp_path / f"{name}.json"
    return out, ["sweep", "--routing", "minimal", "--pattern", "uniform",
                 "--loads", "0.1,0.2", "--warmup", "200", "--measure", "200",
                 "--json", str(out), *extra]


def test_sweep_command_writes_records(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "s1")
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["routing"] == "minimal"
    assert [r["load"] for r in payload["records"]] == [0.1, 0.2]
    assert all(r["throughput"] > 0 for r in payload["records"])


def test_sweep_jobs_and_cache_reproduce_serial(tmp_path, capsys):
    cache = tmp_path / "runcache"
    out1, args1 = _sweep_args(tmp_path, "serial")
    out2, args2 = _sweep_args(tmp_path, "jobs2", "--jobs", "2")
    out3, args3 = _sweep_args(tmp_path, "replay", "--cache", str(cache))
    for args in (args1, args2, args3, args3):
        assert main(args) == 0
    capsys.readouterr()
    records = [json.loads(p.read_text())["records"] for p in (out1, out2, out3)]
    assert records[0] == records[1] == records[2]


def test_sweep_multi_seed_aggregates(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "ci", "--seeds", "2")
    assert main(args) == 0
    capsys.readouterr()
    records = json.loads(out.read_text())["records"]
    assert [r["load"] for r in records] == [0.1, 0.2]
    assert all(r["replicas"] == 2 and "throughput_ci" in r for r in records)


def test_sweep_rejects_bad_loads():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--loads", "0.1,abc"])


def test_sweep_defaults_to_auto_engine(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "auto")
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["engine"] == "auto"
    # engine choice never leaks into the records: an explicit wheel run
    # lands byte-identical points
    out2, args2 = _sweep_args(tmp_path, "wheel", "--engine", "wheel")
    assert main(args2) == 0
    capsys.readouterr()
    wheel = json.loads(out2.read_text())
    assert wheel["config"]["engine"] == "wheel"
    assert wheel["records"] == payload["records"]


def test_sweep_engine_flag_did_you_mean(capsys):
    assert main(["sweep", "--engine", "whel", "--loads", "0.1"]) == 2
    assert "did you mean 'wheel'?" in capsys.readouterr().err


def test_sweep_config_file_seed_respected(tmp_path, capsys):
    from repro.network.config import SimConfig

    cfg_path = tmp_path / "cfg.json"
    cfg_path.write_text(json.dumps(
        SimConfig(h=2, routing="minimal", seed=42).to_dict()))
    out, args = _sweep_args(tmp_path, "seeded", "--config", str(cfg_path))
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["seed"] == 42  # no --seed flag: file wins
    assert payload["seeds"] == [42]
    out2, args2 = _sweep_args(tmp_path, "override", "--config", str(cfg_path),
                              "--seed", "7")
    assert main(args2) == 0
    capsys.readouterr()
    assert json.loads(out2.read_text())["config"]["seed"] == 7


def test_sweep_topology_flag_selects_fabric(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "fb", "--topology", "flattened_butterfly",
                            "--scale", "smoke")
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["topology"] == "flattened_butterfly"
    # sized to the smoke scale's canonical node count (36 routers x p=2)
    assert payload["config"]["fb_routers"] == 36
    assert all(r["throughput"] > 0 for r in payload["records"])


def test_sweep_topology_conflicts_with_config(tmp_path, capsys):
    cfg = tmp_path / "cfg.json"
    cfg.write_text(json.dumps({"routing": "minimal"}))
    _, args = _sweep_args(tmp_path, "conflict", "--config", str(cfg),
                          "--topology", "torus")
    assert main(args) == 2
    assert "not both" in capsys.readouterr().err


def test_sweep_topology_flag_rejects_unknown(tmp_path):
    _, args = _sweep_args(tmp_path, "bad", "--topology", "klein-bottle")
    assert main(args) == 2


# ----------------------------------------------- sharding / progress / cache
def test_shard_argument_rejects_bad_grammar(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--shard", "2"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig4a", "--shard", "3/2"])
    capsys.readouterr()


def test_sweep_shard_union_matches_serial(tmp_path, capsys):
    cache = tmp_path / "shardcache"
    full, args_full = _sweep_args(tmp_path, "full", "--loads", "0.1,0.2,0.3")
    out0, args0 = _sweep_args(tmp_path, "s0", "--loads", "0.1,0.2,0.3",
                              "--shard", "0/2", "--cache", str(cache))
    out1, args1 = _sweep_args(tmp_path, "s1", "--loads", "0.1,0.2,0.3",
                              "--shard", "1/2", "--cache", str(cache))
    for args in (args_full, args0, args1):
        assert main(args) == 0
    capsys.readouterr()
    serial = json.loads(full.read_text())["records"]
    p0 = json.loads(out0.read_text())
    p1 = json.loads(out1.read_text())
    assert p0["shard"] == "0/2" and p1["shard"] == "1/2"
    union = p0["records"] + p1["records"]
    canon = lambda rs: sorted(json.dumps(r, sort_keys=True) for r in rs)
    assert canon(union) == canon(serial)
    # the shared shard cache replays a full serial pass entirely
    replay, args_replay = _sweep_args(tmp_path, "replay3",
                                      "--loads", "0.1,0.2,0.3",
                                      "--cache", str(cache))
    assert main(args_replay) == 0
    capsys.readouterr()
    stats = json.loads((cache / "last_run.json").read_text())
    assert stats["hits"] == 3 and stats["misses"] == 0
    assert canon(json.loads(replay.read_text())["records"]) == canon(serial)


def test_sweep_progress_lines_on_stderr(tmp_path, capsys):
    _, args = _sweep_args(tmp_path, "prog", "--progress")
    assert main(args) == 0
    err = capsys.readouterr().err
    lines = [ln for ln in err.splitlines() if ln.startswith("[")]
    assert len(lines) == 2  # one per point
    assert lines[0].startswith("[1/2]") and "computed" in lines[0]
    assert "seed=" in lines[0] and "load=0.1" in lines[0]


def test_run_progress_reports_cached_replays(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["run", "fig4a", "--scale", "smoke", "--cache", str(cache),
                 "--progress"]) == 0
    first = capsys.readouterr().err
    assert " computed " in first and " cached " not in first
    from repro.experiments.registry import clear_cache

    clear_cache()  # drop the in-process memo so the disk cache is consulted
    assert main(["run", "fig4a", "--scale", "smoke", "--cache", str(cache),
                 "--progress"]) == 0
    second = capsys.readouterr().err
    assert " cached " in second and " computed " not in second


def test_cache_stats_reports_entries_and_last_run(tmp_path, capsys):
    cache = tmp_path / "cache"
    _, args = _sweep_args(tmp_path, "warm", "--cache", str(cache))
    assert main(args) == 0
    capsys.readouterr()
    assert main(["cache", "stats", str(cache)]) == 0
    body = json.loads(capsys.readouterr().out)
    assert body["entries"] == 2
    assert body["total_bytes"] > 0
    assert body["last_run"]["misses"] == 2 and body["last_run"]["hits"] == 0


def test_cache_prune_cli_age_and_dry_run(tmp_path, capsys):
    cache = tmp_path / "cache"
    _, args = _sweep_args(tmp_path, "warm", "--cache", str(cache))
    assert main(args) == 0
    capsys.readouterr()
    assert main(["cache", "prune", str(cache), "--older-than", "0s",
                 "--dry-run"]) == 0
    body = json.loads(capsys.readouterr().out)
    assert body["removed"] == 2 and body["dry_run"] is True
    assert main(["cache", "stats", str(cache)]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 2  # intact
    assert main(["cache", "prune", str(cache), "--older-than", "1d"]) == 0
    assert json.loads(capsys.readouterr().out)["removed"] == 0
    assert main(["cache", "prune", str(cache), "--older-than", "0"]) == 0
    assert json.loads(capsys.readouterr().out)["removed"] == 2


def test_cache_prune_keep_keys_protects_plan(tmp_path, capsys):
    cache = tmp_path / "cache"
    _, args = _sweep_args(tmp_path, "warm", "--cache", str(cache))
    assert main(args) == 0
    capsys.readouterr()
    # rebuild the very plan the sweep ran, in the serve submission shape
    from repro.experiments.presets import cross_topology_config, get_scale

    scale = get_scale("tiny")
    config = cross_topology_config("dragonfly", scale=scale,
                                   routing="minimal", seed=1,
                                   flow_control="vct")
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({"spec": {
        "config": config.to_dict(), "pattern": "uniform",
        "loads": [0.1, 0.2], "warmup": 200, "measure": 200}}))
    assert main(["cache", "prune", str(cache), "--older-than", "0s",
                 "--keep-keys", str(plan)]) == 0
    body = json.loads(capsys.readouterr().out)
    assert body["protected"] == 2 and body["removed"] == 0


def test_cache_prune_requires_criterion(tmp_path, capsys):
    assert main(["cache", "prune", str(tmp_path)]) == 2
    assert "refusing to prune" in capsys.readouterr().err


def test_cache_prune_rejects_bad_age(tmp_path, capsys):
    assert main(["cache", "prune", str(tmp_path), "--older-than", "soon"]) == 2
    assert "--older-than" in capsys.readouterr().err
