"""CLI behaviour."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_rejects_no_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4a" in out and "tab1" in out and "fig9b" in out


def test_run_tab1(capsys):
    assert main(["run", "tab1"]) == 0
    out = capsys.readouterr().out
    assert "parity-sign" in out
    assert "odd-" in out


def test_run_with_json_output(tmp_path, capsys):
    path = tmp_path / "tab1.json"
    assert main(["run", "tab1", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["id"] == "tab1"
    capsys.readouterr()


def test_run_json_dir(tmp_path, capsys):
    assert main(["run", "tab1", "--json-dir", str(tmp_path)]) == 0
    assert (tmp_path / "tab1.json").exists()
    capsys.readouterr()


def test_run_unknown_experiment():
    with pytest.raises(ValueError):
        main(["run", "figZZ"])


def test_list_components(capsys):
    assert main(["list-components"]) == 0
    out = capsys.readouterr().out
    for kind in ("topology:", "routing:", "flow-control:", "arbitration:",
                 "traffic-pattern:", "traffic-process:"):
        assert kind in out
    for name in ("dragonfly", "olm", "vct", "rr", "uniform", "bernoulli"):
        assert name in out
    # all three shipped fabrics are registered (the CI smoke relies on this)
    for fabric in ("dragonfly", "flattened_butterfly", "torus"):
        assert fabric in out


def test_point_command_round_trips_config(tmp_path, capsys):
    from repro.network.config import SimConfig

    cfg_path = tmp_path / "cfg.json"
    cfg_path.write_text(json.dumps(SimConfig(h=2, routing="minimal").to_dict()))
    out_path = tmp_path / "point.json"
    assert main(["point", "--config", str(cfg_path), "--pattern", "uniform",
                 "--load", "0.2", "--warmup", "200", "--measure", "200",
                 "--json", str(out_path)]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["config"]["routing"] == "minimal"
    assert payload["result"]["delivered"] > 0
    assert "latency_p99" in payload["result"]


def test_point_emits_strict_json_for_empty_window(tmp_path, capsys):
    out_path = tmp_path / "empty.json"
    assert main(["point", "--load", "0.0", "--warmup", "0", "--measure", "5",
                 "--json", str(out_path)]) == 0
    text = out_path.read_text()
    assert "NaN" not in text  # strict-JSON consumers must be able to parse it
    payload = json.loads(text)
    assert payload["result"]["delivered"] == 0
    assert payload["result"]["mean_latency"] is None
    capsys.readouterr()


def test_point_command_rejects_bad_config(tmp_path, capsys):
    cfg_path = tmp_path / "bad.json"
    cfg_path.write_text(json.dumps({"rooting": "olm"}))
    with pytest.raises(ValueError, match="unknown SimConfig field"):
        main(["point", "--config", str(cfg_path), "--measure", "10"])


def _sweep_args(tmp_path, name, *extra):
    out = tmp_path / f"{name}.json"
    return out, ["sweep", "--routing", "minimal", "--pattern", "uniform",
                 "--loads", "0.1,0.2", "--warmup", "200", "--measure", "200",
                 "--json", str(out), *extra]


def test_sweep_command_writes_records(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "s1")
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["routing"] == "minimal"
    assert [r["load"] for r in payload["records"]] == [0.1, 0.2]
    assert all(r["throughput"] > 0 for r in payload["records"])


def test_sweep_jobs_and_cache_reproduce_serial(tmp_path, capsys):
    cache = tmp_path / "runcache"
    out1, args1 = _sweep_args(tmp_path, "serial")
    out2, args2 = _sweep_args(tmp_path, "jobs2", "--jobs", "2")
    out3, args3 = _sweep_args(tmp_path, "replay", "--cache", str(cache))
    for args in (args1, args2, args3, args3):
        assert main(args) == 0
    capsys.readouterr()
    records = [json.loads(p.read_text())["records"] for p in (out1, out2, out3)]
    assert records[0] == records[1] == records[2]


def test_sweep_multi_seed_aggregates(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "ci", "--seeds", "2")
    assert main(args) == 0
    capsys.readouterr()
    records = json.loads(out.read_text())["records"]
    assert [r["load"] for r in records] == [0.1, 0.2]
    assert all(r["replicas"] == 2 and "throughput_ci" in r for r in records)


def test_sweep_rejects_bad_loads():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--loads", "0.1,abc"])


def test_sweep_config_file_seed_respected(tmp_path, capsys):
    from repro.network.config import SimConfig

    cfg_path = tmp_path / "cfg.json"
    cfg_path.write_text(json.dumps(
        SimConfig(h=2, routing="minimal", seed=42).to_dict()))
    out, args = _sweep_args(tmp_path, "seeded", "--config", str(cfg_path))
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["seed"] == 42  # no --seed flag: file wins
    assert payload["seeds"] == [42]
    out2, args2 = _sweep_args(tmp_path, "override", "--config", str(cfg_path),
                              "--seed", "7")
    assert main(args2) == 0
    capsys.readouterr()
    assert json.loads(out2.read_text())["config"]["seed"] == 7


def test_sweep_topology_flag_selects_fabric(tmp_path, capsys):
    out, args = _sweep_args(tmp_path, "fb", "--topology", "flattened_butterfly",
                            "--scale", "smoke")
    assert main(args) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["config"]["topology"] == "flattened_butterfly"
    # sized to the smoke scale's canonical node count (36 routers x p=2)
    assert payload["config"]["fb_routers"] == 36
    assert all(r["throughput"] > 0 for r in payload["records"])


def test_sweep_topology_conflicts_with_config(tmp_path):
    cfg = tmp_path / "cfg.json"
    cfg.write_text(json.dumps({"routing": "minimal"}))
    _, args = _sweep_args(tmp_path, "conflict", "--config", str(cfg),
                          "--topology", "torus")
    with pytest.raises(ValueError, match="not both"):
        main(args)


def test_sweep_topology_flag_rejects_unknown(tmp_path):
    _, args = _sweep_args(tmp_path, "bad", "--topology", "klein-bottle")
    with pytest.raises(ValueError, match="klein-bottle"):
        main(args)
