"""Property-based engine tests: random configurations, fixed invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import AdversarialGlobal, AdversarialLocal, UniformRandom
from repro.traffic.processes import BernoulliTraffic

PATTERNS = [UniformRandom(), AdversarialGlobal(1), AdversarialLocal(1)]


@given(
    routing=st.sampled_from(["minimal", "valiant", "pb", "par62", "rlm", "olm", "ofar"]),
    pattern=st.sampled_from(PATTERNS),
    load=st.floats(0.05, 0.9),
    seed=st.integers(0, 2**16),
    threshold=st.sampled_from([0.3, 0.45, 0.6]),
)
@settings(max_examples=12, deadline=None)
def test_random_vct_runs_conserve_packets(routing, pattern, load, seed, threshold):
    cfg = SimConfig(h=2, routing=routing, seed=seed, threshold=threshold)
    sim = Simulator(cfg, BernoulliTraffic(pattern, load))
    sim.run(400)
    sim.traffic = None
    sim.run_until_drained(300000)
    assert sim.stats.delivered == sim.stats.generated
    assert sim.packets_in_flight == 0
    assert sim.total_buffered_flits() == 0
    for router in sim.routers:
        for out in router.outputs:
            for c in out.credits:
                assert 0 <= c <= max(out.capacity, 1)


@given(
    routing=st.sampled_from(["minimal", "valiant", "pb", "par62", "rlm"]),
    flit=st.sampled_from([4, 8, 10]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=8, deadline=None)
def test_random_wh_runs_conserve_packets(routing, flit, seed):
    cfg = SimConfig(h=2, routing=routing, flow_control="wh",
                    packet_phits=4 * flit, flit_phits=flit, seed=seed)
    sim = Simulator(cfg, BernoulliTraffic(UniformRandom(), 0.3))
    sim.run(400)
    sim.traffic = None
    sim.run_until_drained(300000)
    assert sim.stats.delivered == sim.stats.generated
    assert sim.total_buffered_flits() == 0


@given(seed=st.integers(0, 2**16))
@settings(max_examples=6, deadline=None)
def test_hop_logs_always_terminate_with_ejection(seed):
    cfg = SimConfig(h=2, routing="olm", seed=seed, record_hops=True)
    sim = Simulator(cfg)
    delivered = []
    sim.on_packet_delivered = lambda p, t: delivered.append(p)
    rng_dsts = [(i, (i * 7 + 3) % sim.topo.num_nodes) for i in range(0, 60, 3)]
    for s, d in rng_dsts:
        if s != d:
            sim.inject_packet(s, d)
    sim.run_until_drained(100000)
    from repro.topology.dragonfly import PortKind

    for p in delivered:
        assert p.hops_log[-1][0] == int(PortKind.EJECT)
        assert all(entry[0] != int(PortKind.EJECT) for entry in p.hops_log[:-1])


def test_output_arbitration_roughly_fair():
    """Two saturated injectors sharing one local link get similar service."""
    cfg = SimConfig(h=2, routing="minimal", seed=2)
    sim = Simulator(cfg)
    topo = sim.topo
    dst_router = topo.router_id(0, 1)
    counts = {0: 0, 1: 0}
    sim.on_packet_delivered = lambda p, t: counts.__setitem__(
        topo.node_index(p.src), counts[topo.node_index(p.src)] + 1
    )
    # both nodes of router 0 flood node 0 of router 1 through one local link
    for _ in range(120):
        sim.inject_packet(topo.node_id(0, 0), topo.node_id(dst_router, 0))
        sim.inject_packet(topo.node_id(0, 1), topo.node_id(dst_router, 1))
    sim.run_until_drained(500000)
    total = counts[0] + counts[1]
    assert total == 240
    assert abs(counts[0] - counts[1]) <= 0.1 * total
