"""Golden-record determinism: the timing-wheel engine vs. the seed engine.

``tests/data/engine_goldens.json`` holds canonical record JSON strings
captured from the seed (pre-timing-wheel) engine over a pinned matrix
of routing x pattern x load x VCT/WH steady-state points plus
burst-drain points (``tools/make_engine_goldens.py``).  The suite
asserts, byte for byte:

* the live engine reproduces every golden record (the tentpole
  contract of the PR-3 hot-path rewrite);
* the frozen :class:`ReferenceSimulator` reproduces a spot-check subset
  (so the benchmark baseline demonstrably still *is* the seed engine);
* the idle fast-forward machinery actually engaged on a drain scenario
  (the speedup is real, not a disabled code path).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.facade import Session, point_record
from repro.network.arraysim import ArraySimulator
from repro.network.config import SimConfig
from repro.network.reference import ReferenceSimulator
from repro.network.simulator import Simulator
from repro.runplan import canonical_record_json
from repro.traffic.patterns import pattern_by_name
from repro.traffic.processes import BurstTraffic

GOLDENS = Path(__file__).parent / "data" / "engine_goldens.json"
ENTRIES = json.loads(GOLDENS.read_text())["entries"]


def _entry_id(entry: dict) -> str:
    cfg = entry["config"]
    topo = cfg.get("topology", "dragonfly")
    tail = (f"load{entry['load']}" if entry["kind"] == "point"
            else f"burst{entry['packets_per_node']}")
    parts = [topo, cfg["flow_control"], cfg["routing"], entry["pattern"], tail]
    if cfg.get("arbitration", "rr") != "rr":
        parts.append(cfg["arbitration"])
    if cfg.get("record_hops"):
        parts.append("hops")
    return "-".join(parts)


def replay(entry: dict, sim_cls) -> dict:
    """One golden scenario through the Session workflow on ``sim_cls``."""
    cfg = SimConfig.from_dict(entry["config"])
    s = Session(sim=sim_cls(cfg))
    if entry["kind"] == "point":
        result = (s.bernoulli(entry["pattern"], entry["load"])
                  .warmup(entry["warmup"]).measure(entry["measure"]))
        return point_record(result, cfg, pattern=entry["pattern"],
                            load=entry["load"])
    pattern = pattern_by_name(entry["pattern"], s.sim.topo)
    s.with_traffic(BurstTraffic(pattern, entry["packets_per_node"]))
    result = s.drain(entry["max_cycles"])
    return point_record(result, cfg, pattern=entry["pattern"],
                        packets_per_node=entry["packets_per_node"])


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
def test_timing_wheel_engine_matches_seed_goldens(entry):
    assert canonical_record_json(replay(entry, Simulator)) == entry["record"]


# Spot-check the frozen baseline on a cheap cross-section (first/last
# steady-state points of each flow control plus every drain golden):
# if this drifts, BENCH_engine.json compares against nothing.
_SUBSET = [e for e in ENTRIES if e["kind"] == "drain"]
_SUBSET += [next(e for e in ENTRIES if e["config"]["flow_control"] == fc)
            for fc in ("vct", "wh")]


@pytest.mark.parametrize("entry", _SUBSET, ids=_entry_id)
def test_reference_simulator_is_still_the_seed_engine(entry):
    assert canonical_record_json(replay(entry, ReferenceSimulator)) == entry["record"]


# The array engine must be byte-identical on the FULL golden matrix —
# including scenarios it cannot vectorise (adaptive routings, per-cycle
# hooks), which exercise its transparent fall-through to wheel mode.
@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
def test_array_engine_matches_seed_goldens(entry):
    assert canonical_record_json(replay(entry, ArraySimulator)) == entry["record"]


def test_array_engine_vectorises_the_saturated_goldens():
    """The saturated minimal-routing goldens must run on the array core.

    Guards against the eligibility gate silently regressing to wheel
    mode: the matrix would still pass (fallback is byte-identical), but
    the engine under test would no longer be the array core at all.
    """
    entry = next(e for e in ENTRIES if e["config"]["routing"] == "minimal"
                 and e["config"].get("topology", "dragonfly") == "torus")
    sim = ArraySimulator(SimConfig.from_dict(entry["config"]))
    sim.inject_packet(0, sim.topo.num_nodes - 1)
    assert sim._mode == "array"
    sim_olm = ArraySimulator(SimConfig(h=2, routing="olm", seed=1))
    sim_olm.inject_packet(0, 5)
    assert sim_olm._mode == "wheel"


def test_unknown_engine_fails_with_suggestion():
    with pytest.raises(ValueError, match="unknown engine.*did you mean 'array'"):
        SimConfig(engine="aray")


def test_engine_choice_does_not_change_point_identity():
    """Cache keys and canonical config JSON are engine-invariant.

    A point computed on the array core must hit the cache entry the
    wheel engine wrote (and vice versa); the engine is an execution
    choice, not a physics knob.
    """
    from repro.runplan.spec import RunPoint

    cfgs = [SimConfig(h=2, routing="minimal", engine=e)
            for e in ("wheel", "array", "reference")]
    assert len({cfg.canonical_json() for cfg in cfgs}) == 1
    points = [RunPoint(config=cfg, pattern="uniform", load=0.4,
                       warmup=100, measure=100) for cfg in cfgs]
    assert len({p.key() for p in points}) == 1
    assert "engine" not in points[0].describe()["config"]
    # ...but the full to_dict round-trip keeps the field
    assert SimConfig.from_dict(cfgs[1].to_dict()).engine == "array"


def test_fast_forward_engages_on_drain():
    """The drain goldens must exercise real idle-gap jumps, not 1-cycle steps."""
    entry = next(e for e in ENTRIES
                 if e["kind"] == "drain" and e["config"]["routing"] == "olm")
    cfg = SimConfig.from_dict(entry["config"])
    sim = Simulator(cfg)
    sim.traffic = BurstTraffic(pattern_by_name(entry["pattern"], sim.topo),
                               entry["packets_per_node"])
    steps = 0
    orig_step = sim.step

    def counting_step():
        nonlocal steps
        steps += 1
        orig_step()

    sim.step = counting_step  # type: ignore[method-assign]
    drained = sim.run_until_drained(entry["max_cycles"])
    assert steps < drained, (steps, drained)  # some cycles were skipped


def test_fast_forward_gated_off_for_per_cycle_routing():
    """Piggybacking broadcasts every cycle: the engine must not skip any."""
    sim = Simulator(SimConfig(h=2, routing="pb", seed=3))
    assert sim._per_cycle is not None
    assert sim._fast_forward_target(sim.now + 100) is None
    sim_min = Simulator(SimConfig(h=2, routing="minimal", seed=3))
    assert sim_min._per_cycle is None
    assert sim_min._fast_forward_target(sim_min.now + 100) == sim_min.now + 100


def test_fast_forward_follows_trace_injections():
    """A sparse trace must be replayed identically, gaps skipped or not."""
    from repro.traffic.extra import TraceReplay

    def run(sim_cls):
        cfg = SimConfig(h=2, routing="olm", seed=13, record_hops=True)
        sim = sim_cls(cfg)
        n = sim.topo.num_nodes
        records = [(i * 97, (i * 5) % n, (i * 11 + 3) % n) for i in range(40)]
        sim.traffic = TraceReplay([r for r in records if r[1] != r[2]])
        delivered = []
        sim.add_delivery_observer(lambda pkt, now: delivered.append(
            (pkt.pid, pkt.src, pkt.dst, pkt.birth, now, tuple(pkt.hops_log))))
        drained = sim.run_until_drained(100_000)
        return drained, delivered, sim.stats.as_dict(sim.topo.num_nodes, sim.now)

    assert run(Simulator) == run(ReferenceSimulator)
