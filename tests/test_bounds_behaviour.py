"""Analytical bounds and the simulated behaviour that must respect them."""

import pytest

from repro.analysis import (
    advg_minimal_bound,
    advg_valiant_local_bound,
    advl_minimal_bound,
    uniform_capacity,
)
from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import AdversarialGlobal, AdversarialLocal
from repro.traffic.processes import BernoulliTraffic


def throughput(routing, pattern, load, h=2, warmup=2500, measure=2500, **over):
    cfg = SimConfig(h=h, routing=routing, seed=3, **over)
    sim = Simulator(cfg, BernoulliTraffic(pattern, load))
    sim.run(warmup)
    sim.stats.reset(sim.now)
    sim.run(measure)
    return sim.stats.throughput(sim.topo.num_nodes, sim.now)


def test_bound_formulas():
    assert advg_minimal_bound(8) == pytest.approx(1 / 129)
    assert advl_minimal_bound(8) == pytest.approx(0.125)
    assert advg_valiant_local_bound(8) == pytest.approx(0.125)
    assert 0.9 < uniform_capacity(8) < 1.0


def test_minimal_advg_capped_by_single_global_link():
    """Minimal under ADVG+1 cannot exceed the 1/(2h^2) per-node share."""
    thr = throughput("minimal", AdversarialGlobal(1), 0.6)
    cap = 1.0 / (2 * 2 * 2)  # h=2: one link shared by 2h^2 = 8 nodes
    assert thr <= cap * 1.15  # small tolerance for measurement noise


def test_minimal_advl_capped_by_single_local_link():
    thr = throughput("minimal", AdversarialLocal(1), 0.9)
    assert thr <= advl_minimal_bound(2) * 1.1


def test_adaptive_beats_minimal_bound_advl():
    """Local misrouting must push past the 1/h wall (the paper's core claim)."""
    for routing in ("rlm", "olm", "par62"):
        thr = throughput(routing, AdversarialLocal(1), 0.9)
        assert thr > advl_minimal_bound(2) * 1.2, routing


def test_valiant_beats_minimal_under_advg():
    tv = throughput("valiant", AdversarialGlobal(1), 0.5)
    tm = throughput("minimal", AdversarialGlobal(1), 0.5)
    assert tv > tm * 2


def test_throughput_never_exceeds_offered_load():
    for routing in ("minimal", "olm", "rlm"):
        thr = throughput(routing, AdversarialGlobal(1), 0.2)
        assert thr <= 0.2 * 1.1


def test_accepted_tracks_offered_below_saturation():
    thr = throughput("olm", AdversarialGlobal(1), 0.15)
    assert thr == pytest.approx(0.15, rel=0.15)
