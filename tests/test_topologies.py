"""Cross-topology suite: the new fabrics against the Topology protocol.

Covers the flattened butterfly and the 2-D torus end to end —
structural validation, escape-ring embeddings, the ``min_hop`` routing
oracle, capability gating of the Dragonfly-only mechanisms, actionable
construction errors, engine smoke runs and the run-plan determinism
contract (serial == process == cache replay, byte-wise) on both
fabrics.
"""

import random

import pytest

import repro
from repro.experiments.presets import cross_topology_config
from repro.network.config import SimConfig
from repro.network.packet import Packet
from repro.network.simulator import Simulator
from repro.runplan import (
    ProcessExecutor,
    ResultCache,
    RunSpec,
    canonical_record_json,
    execute,
)
from repro.topology import (
    Dragonfly,
    FlattenedButterfly,
    PortKind,
    Torus2D,
    UnsupportedTopologyError,
    validate_topology,
)
from repro.topology.ring import dragonfly_escape_ring, hamiltonian_ring, validate_ring

FB_CONFIG = SimConfig(topology="flattened_butterfly", fb_routers=12, p=2,
                      routing="minimal")
TORUS_CONFIG = SimConfig(topology="torus", torus_rows=4, torus_cols=5, p=2,
                         routing="minimal")


# ------------------------------------------------------------- validation
@pytest.mark.parametrize("topo", [
    FlattenedButterfly(3, p=1),
    FlattenedButterfly(36, p=2),
    Torus2D(3, 3, p=1),
    Torus2D(4, 6, p=2),
    Torus2D(5, 3, p=3),
])
def test_validate_new_fabrics(topo):
    validate_topology(topo)


def test_from_config_builds_the_selected_fabric():
    fb = Simulator(FB_CONFIG).topo
    assert isinstance(fb, FlattenedButterfly)
    assert (fb.num_routers, fb.p, fb.num_nodes) == (12, 2, 24)
    torus = Simulator(TORUS_CONFIG).topo
    assert isinstance(torus, Torus2D)
    assert (torus.rows, torus.cols, torus.num_nodes) == (4, 5, 40)


def test_registry_has_three_topologies():
    available = repro.TOPOLOGY_REGISTRY.available()
    assert {"dragonfly", "flattened_butterfly", "torus"} <= set(available)


# ------------------------------------------------- construction error messages
def test_torus_rejects_tiny_rings_with_actionable_message():
    with pytest.raises(ValueError, match="rows must be >= 3"):
        Torus2D(0, 4)
    with pytest.raises(ValueError, match="cols must be >= 3.*folds both"):
        Torus2D(4, 2)
    with pytest.raises(ValueError, match="torus_rows/torus_cols must be >= 3"):
        SimConfig(topology="torus", torus_rows=0, torus_cols=4)


def test_flattened_butterfly_rejects_degenerate_sizes():
    with pytest.raises(ValueError, match="at least 2 routers"):
        FlattenedButterfly(1)
    with pytest.raises(ValueError, match="fb_routers must be >= 2"):
        SimConfig(topology="flattened_butterfly", fb_routers=1)
    with pytest.raises(ValueError, match="p >= 1"):
        FlattenedButterfly(4, p=0)


def test_valiant_needs_an_intermediate_router():
    fb = FlattenedButterfly(2)
    pkt = Packet(0, 0, 3, 8, 0, 0, 0, 1, 0)
    with pytest.raises(UnsupportedTopologyError, match="at least 3 routers"):
        fb.pick_via(random.Random(1), pkt)
    # and the config layer refuses the combination up front
    with pytest.raises(ValueError, match="fb_routers >= 3"):
        SimConfig(topology="flattened_butterfly", fb_routers=2,
                  routing="valiant")


def test_torus_local_ports_are_ring_only():
    torus = Torus2D(4, 5)
    with pytest.raises(UnsupportedTopologyError, match="not X-ring neighbours"):
        torus.local_port_to(0, 2)
    with pytest.raises(UnsupportedTopologyError, match="exit link"):
        torus.exit_port(0, 2)


# -------------------------------------------------------------- escape rings
@pytest.mark.parametrize("topo", [
    Dragonfly(2),
    Dragonfly(3),
    FlattenedButterfly(2),
    FlattenedButterfly(17),
    Torus2D(3, 3),   # odd rows, odd cols
    Torus2D(3, 4),   # odd rows, even cols
    Torus2D(4, 3),   # even rows
    Torus2D(6, 6),
    Torus2D(5, 3),
])
def test_escape_ring_is_hamiltonian(topo):
    validate_ring(topo, hamiltonian_ring(topo))


def test_dragonfly_snake_needs_two_routers_per_group():
    class GroupsOfOne:
        a = 1

    with pytest.raises(ValueError, match="a=1.*distinct entry and exit"):
        dragonfly_escape_ring(GroupsOfOne())


def test_dragonfly_snake_rejects_coinciding_entry_and_exit():
    class Collision:
        """Two groups of two routers whose single exits collide on router 0."""

        a = 2
        num_groups = 2

        def exit_port(self, group, target):
            return 0, 0

        def global_neighbor(self, router, gport):
            return (router + 2) % 4, 0

        def router_id(self, group, index):
            return group * 2 + index

        def index_in_group(self, router):
            return router % 2

    with pytest.raises(ValueError, match="into and out of the same router"):
        dragonfly_escape_ring(Collision())


# ------------------------------------------------------------ routing oracle
def _walk(topo, src_r, dst_r, via=None):
    """Follow min_hop to the destination; return (hops, max local/global vc)."""
    pkt = Packet(0, topo.node_id(src_r, 0), topo.node_id(dst_r, topo.p - 1),
                 8, 0, src_r, topo.group_of(src_r), dst_r, topo.group_of(dst_r))
    pkt.valiant_group = via
    cur, hops, vmax = src_r, 0, {PortKind.LOCAL: -1, PortKind.GLOBAL: -1}
    bound = 4 + 2 * (topo.num_groups + topo.a)
    while True:
        kind, port, target, vc = topo.min_hop(cur, pkt)
        if kind == PortKind.EJECT:
            assert cur == dst_r and port == topo.node_index(pkt.dst)
            return hops, vmax
        vmax[kind] = max(vmax[kind], vc)
        if kind == PortKind.LOCAL:
            cur = topo.router_id(
                topo.group_of(cur),
                topo.local_neighbor_index(topo.index_in_group(cur), port))
            assert topo.index_in_group(cur) == target
        else:
            cur, _ = topo.global_neighbor(cur, port)
        hops += 1
        assert hops <= bound, f"oracle loops: {src_r}->{dst_r} via {via}"


@pytest.mark.parametrize("topo", [FlattenedButterfly(9, p=2), Torus2D(4, 5, p=2),
                                  Torus2D(3, 3, p=1)])
def test_oracle_reaches_every_destination_within_vc_budget(topo):
    rng = random.Random(7)
    for src in range(topo.num_routers):
        for _ in range(6):
            dst = rng.randrange(topo.num_routers)
            if dst == src:
                continue
            hops, _ = _walk(topo, src, dst)
            assert hops == topo.minimal_hops(src, dst)
            pkt = Packet(0, topo.node_id(src, 0), topo.node_id(dst, 0), 8, 0,
                         src, topo.group_of(src), dst, topo.group_of(dst))
            _, vmax = _walk(topo, src, dst, via=topo.pick_via(rng, pkt))
            assert vmax[PortKind.LOCAL] < topo.route_local_vcs
            assert vmax[PortKind.GLOBAL] < topo.route_global_vcs


def test_torus_hops_are_dimension_ordered_ring_distances():
    torus = Torus2D(5, 4)
    # (0,0) -> (2,3): 1 X hop the short way (-1) + 2 Y hops
    assert torus.minimal_hops(0, torus.router_id(2, 3)) == 3
    # wrap-around is used when shorter: (0,0) -> (4,0) is one Y hop
    assert torus.minimal_hops(0, torus.router_id(4, 0)) == 1


# -------------------------------------------------------- capability gating
@pytest.mark.parametrize("config,routing", [
    (TORUS_CONFIG, "olm"),
    (TORUS_CONFIG, "rlm"),
    (TORUS_CONFIG, "par62"),
    (TORUS_CONFIG, "pb"),
    (FB_CONFIG, "rlm"),
    (FB_CONFIG, "pb"),
])
def test_dragonfly_only_mechanisms_raise_unsupported(config, routing):
    with pytest.raises(UnsupportedTopologyError, match="capability"):
        Simulator(config.with_(routing=routing))


@pytest.mark.parametrize("config", [FB_CONFIG, TORUS_CONFIG])
@pytest.mark.parametrize("routing", ["minimal", "valiant", "ofar"])
def test_fabric_agnostic_mechanisms_run(config, routing):
    cfg = config.with_(routing=routing)
    result = repro.session(cfg, pattern="uniform", load=0.3).warmup(600).measure(600)
    assert result.delivered > 0
    assert result.throughput > 0.0


def test_torus_saturation_run_is_deadlock_free():
    # full offered load on the riskiest discipline (Valiant date-lines);
    # the engine's deadlock detector would raise if a cycle ever locked
    cfg = TORUS_CONFIG.with_(routing="valiant", seed=5)
    result = repro.session(cfg, pattern="uniform", load=1.0).warmup(2000).measure(2000)
    assert result.delivered > 0


@pytest.mark.parametrize("config", [FB_CONFIG, TORUS_CONFIG], ids=["fb", "torus"])
def test_new_fabrics_run_deadlock_free_under_wormhole(config):
    # wormhole holds a VC across all flits of a packet, a stricter
    # channel-dependency regime than the VCT runs above exercise
    cfg = config.with_(routing="valiant", flow_control="wh",
                       packet_phits=80, flit_phits=10, seed=2)
    result = repro.session(cfg, pattern="uniform", load=1.0).warmup(1200).measure(1200)
    assert result.delivered > 0


def test_torus_valiant_allocates_the_dateline_vcs():
    sim = Simulator(TORUS_CONFIG.with_(routing="valiant"))
    assert sim.local_vcs == 3
    assert sim.global_vcs == 3  # date-line scheme: phase + crossed


# ------------------------------------------------------ run-plan determinism
@pytest.mark.parametrize("config", [FB_CONFIG, TORUS_CONFIG], ids=["fb", "torus"])
def test_runplan_determinism_on_new_fabrics(config, tmp_path):
    """serial == process == cache replay, byte-wise, on each new fabric."""
    spec = RunSpec(config=config.with_(routing="valiant", seed=9),
                   pattern="uniform", loads=(0.15, 0.3), warmup=250,
                   measure=250, series="valiant")
    serial = execute(spec, aggregate=False)
    process = execute(spec, executor=ProcessExecutor(), jobs=2, aggregate=False)
    cache = ResultCache(tmp_path / "cache")
    execute(spec, cache=cache, aggregate=False)
    replayed = execute(spec, cache=cache, aggregate=False)
    assert cache.hits == len(serial)
    a = [canonical_record_json(r) for r in serial]
    assert a == [canonical_record_json(r) for r in process]
    assert a == [canonical_record_json(r) for r in replayed]


# -------------------------------------------------- cross-topology presets
def test_cross_topology_configs_match_node_counts():
    for scale in ("tiny", "small"):
        sims = {
            name: Simulator(cross_topology_config(name, scale=scale,
                                                  routing="minimal"))
            for name in ("dragonfly", "flattened_butterfly", "torus")
        }
        nodes = {name: sim.topo.num_nodes for name, sim in sims.items()}
        assert len(set(nodes.values())) == 1, nodes


def test_cross_topology_config_passes_through_registered_fabrics():
    cfg = cross_topology_config("dragonfly", scale="tiny", routing="minimal")
    assert cfg.topology == "dragonfly"
    with pytest.raises(ValueError, match="unknown"):
        cross_topology_config("hypercube", scale="tiny", routing="minimal")
