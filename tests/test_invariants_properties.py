"""Property and corruption tests for the physical-invariant verifier.

Two directions, both required for trust in ``repro verify-results``:

* **no false positives** — randomized (but seeded) simulation points
  across the wheel/array/auto engines pass the full invariant set, and
  verification never changes the record bytes;
* **no false negatives** — every checker in the registry demonstrably
  *fires*: a deliberately corrupted record or hub (a dropped packet, a
  doubled latency integral, a negative occupancy) fails exactly the
  invariant that guards against it.
"""

import pickle
import random

import pytest

from repro.analysis.invariants import (
    DEFAULT_TOLERANCE,
    InvariantViolation,
    LIVE_CHECKS,
    RECORD_CHECKS,
    VerifyReport,
    check_record,
    dragonfly_nodes,
    enforce,
    iter_records,
    verify_result,
)
from repro.experiments.presets import cross_topology_config, get_scale
from repro.facade import run_drain, run_point, run_transient, session
from repro.metrics.hub import MetricsHub
from repro.network.config import SimConfig
from repro.runplan.cache import canonical_record_json

ENGINES = ("wheel", "array", "auto")


def _checks_by_name(rec, tolerance=DEFAULT_TOLERANCE):
    return {c.check: c for c in check_record(rec, tolerance=tolerance)}


# ------------------------------------------------- verified runs (property)

def _random_points(n, seed=20130807):
    """Seeded random draw over the steady-point configuration space."""
    rng = random.Random(seed)
    points = []
    for _ in range(n):
        points.append({
            "engine": rng.choice(ENGINES),
            "routing": rng.choice(("minimal", "valiant", "olm")),
            "load": round(rng.uniform(0.15, 0.4), 2),
            "seed": rng.randrange(1, 1000),
        })
    return points


@pytest.mark.parametrize("point", _random_points(5))
def test_verified_steady_point_passes_and_preserves_bytes(point):
    config = SimConfig(h=2, routing=point["routing"], seed=point["seed"],
                       engine=point["engine"])
    plain = run_point(config, "uniform", point["load"], 500, 1000)
    checked = run_point(config, "uniform", point["load"], 500, 1000,
                        verify=True)
    assert canonical_record_json(plain) == canonical_record_json(checked)


@pytest.mark.parametrize("engine", ENGINES)
def test_verified_run_matches_across_fabrics(engine):
    scale = get_scale("smoke")
    config = cross_topology_config("torus", scale=scale,
                                   routing="minimal").with_(engine=engine)
    plain = run_point(config, "uniform", 0.25, scale.warmup, 1000)
    checked = run_point(config, "uniform", 0.25, scale.warmup, 1000,
                        verify=True)
    assert canonical_record_json(plain) == canonical_record_json(checked)


@pytest.mark.parametrize("engine", ENGINES)
def test_verified_drain_and_transient_run(engine):
    config = SimConfig(h=2, routing="minimal", seed=5, engine=engine)
    plain = run_drain(config, "uniform", 10, 100_000)
    checked = run_drain(config, "uniform", 10, 100_000, verify=True)
    assert canonical_record_json(plain) == canonical_record_json(checked)
    rec = run_transient(config, "uniform", 0.2, 5, 4000, 1000,
                        bucket=100, verify=True)
    assert rec["kind"] == "transient"


def test_verified_records_pass_record_checks():
    config = SimConfig(h=2, routing="valiant", seed=11)
    rec = run_point(config, "uniform", 0.3, 500, 1000)
    rec.update(pattern="uniform", routing="valiant", h=2, load=0.3)
    checks = check_record(rec)
    assert checks, "a full steady record must apply some invariants"
    assert all(c.ok for c in checks), [c for c in checks if not c.ok]


# ---------------------------------------------- live corruption (hub state)

def _instrumented_window(load=0.35, cycles=800, bucket=100):
    s = session(SimConfig(h=2, routing="minimal", seed=3),
                pattern="uniform", load=load)
    s.warmup(300)
    hub = MetricsHub(s.sim, bucket=bucket, latencies=True)
    s.run(cycles)
    return s, hub


def test_live_checks_pass_on_honest_window():
    s, hub = _instrumented_window()
    try:
        report = hub.verify(full=True)
        assert report["ok"], report.failures
        assert {c["check"] for c in report.checks} >= set(LIVE_CHECKS)
    finally:
        hub.detach()


def test_dropped_packet_fails_flow_conservation():
    s, hub = _instrumented_window()
    try:
        hub.injected += 1  # one injection the engine never saw
        report = hub.verify(full=True)
        assert not report["ok"]
        assert not report.check("flow_conservation")["ok"]
        with pytest.raises(InvariantViolation):
            enforce(report)
    finally:
        hub.detach()


def test_scaled_latency_fails_little_law():
    s, hub = _instrumented_window()
    try:
        for b in hub._buckets:
            b.latency_sum *= 2  # latency integral no longer matches L
        report = hub.verify(full=True)
        little = report.check("little_law")
        assert little is not None and not little["ok"]
        assert not report["ok"]
    finally:
        hub.detach()


def test_negative_occupancy_fails_occupancy_check():
    s, hub = _instrumented_window()
    try:
        key = next(iter(hub._occ), (0, 0))
        hub._occ[key] = -5
        report = hub.verify(full=True)
        assert not report.check("occupancy_nonnegative")["ok"]
    finally:
        hub.detach()


def test_impossible_latency_fails_live_floor():
    s, hub = _instrumented_window()
    try:
        hub.latency_min = 1  # beats its own serialization
        report = hub.verify(full=True)
        assert not report.check("latency_floor")["ok"]
    finally:
        hub.detach()


def test_invariant_violation_pickles_with_report():
    report = VerifyReport(ok=False, checks=[
        {"check": "little_law", "ok": False, "detail": "x"}])
    err = InvariantViolation(report)
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, InvariantViolation)
    assert clone.report == report
    assert "little_law" in str(clone)


# ------------------------------------------- record corruption (per checker)

def _steady_record():
    nodes = dragonfly_nodes(2)
    return {
        "pattern": "uniform", "routing": "minimal", "h": 2,
        "throughput": 0.3, "delivered": 2700,
        "delivered_phits": 0.3 * nodes * 1000,
        "generated": 2700, "start_cycle": 1000, "end_cycle": 2000,
        "mean_latency": 60.0, "latency_p50": 55, "latency_p95": 90,
        "latency_p99": 110, "max_latency": 150, "mean_hops": 2.5,
    }


def _drain_record():
    return {
        "kind": "drain", "pattern": "uniform", "h": 2,
        "packets_per_node": 10, "generated": 720, "delivered": 720,
        "delivered_phits": 5760, "drain_cycles": 500,
        "start_cycle": 0, "end_cycle": 500,
        "mean_latency": 120.0, "max_latency": 400,
    }


def _transient_record():
    return {
        "kind": "transient", "bucket": 100, "start_cycle": 0,
        "end_cycle": 400, "throughput_series": [0.5, 0.4, 0.35, 0.3],
        "recovered": True, "recovery_cycles": 200,
        "baseline_throughput": 0.3,
    }


def test_honest_synthetic_records_pass_every_applied_check():
    for rec in (_steady_record(), _drain_record(), _transient_record()):
        for check in check_record(rec):
            assert check.ok, check


@pytest.mark.parametrize("corrupt,check_name", [
    (lambda r: r.update(delivered=-1), "counters"),
    (lambda r: r.update(delivered_phits=100), "counters"),  # phits<packets
    (lambda r: r.update(throughput=1.2), "throughput_bounds"),
    (lambda r: r.update(global_misroute_fraction=1.4), "throughput_bounds"),
    (lambda r: r.update(throughput=0.95), "capacity_bounds"),  # > (g-1)/g
    (lambda r: r.update(latency_p50=200), "latency_ordering"),
    (lambda r: r.update(mean_latency=500), "latency_ordering"),  # > max
    (lambda r: r.update(mean_latency=2.0), "latency_floor"),
    (lambda r: r.update(latency_p50=1), "latency_floor"),
    (lambda r: r.update(delivered_phits=21601), "throughput_consistency"),
], ids=["negative-counter", "phits-lt-packets", "throughput-gt-1",
        "misroute-fraction", "over-capacity", "p50-gt-p95", "mean-gt-max",
        "latency-under-floor", "p50-under-serialization", "non-integer-nodes"])
def test_steady_corruption_fires_checker(corrupt, check_name):
    rec = _steady_record()
    corrupt(rec)
    named = _checks_by_name(rec)
    assert check_name in named, f"{check_name} did not apply"
    assert not named[check_name].ok


def test_adversarial_capacity_bound_fires():
    rec = _steady_record()
    rec.update(pattern="advg+1", routing="minimal",
               throughput=0.2, delivered_phits=0.2 * 72 * 1000)
    named = _checks_by_name(rec)
    assert not named["capacity_bounds"].ok  # 0.2 > 1/(2h^2) = 0.125


@pytest.mark.parametrize("corrupt,check_name", [
    (lambda r: r.update(delivered=719), "drain_conservation"),
    (lambda r: r.update(generated=721), "drain_conservation"),
    (lambda r: r.update(drain_cycles=400), "drain_conservation"),
    (lambda r: r.update(max_latency=600), "drain_latency"),
], ids=["lost-packet", "generated-mismatch", "window-mismatch",
        "latency-gt-drain"])
def test_drain_corruption_fires_checker(corrupt, check_name):
    rec = _drain_record()
    corrupt(rec)
    named = _checks_by_name(rec)
    assert not named[check_name].ok


@pytest.mark.parametrize("corrupt", [
    lambda r: r.update(throughput_series=[0.5, 0.4]),  # span != window
    lambda r: r.update(recovery_cycles=900),  # outside the window
    lambda r: r.update(recovered=False),  # but recovery != window
    lambda r: r.update(baseline_throughput=1.5),
], ids=["short-series", "recovery-outside", "recovered-flag", "baseline"])
def test_transient_corruption_fires_checker(corrupt):
    rec = _transient_record()
    corrupt(rec)
    assert not _checks_by_name(rec)["transient_window"].ok


def test_ci_sanity_fires_on_bad_replica_groups():
    good = {"replicas": 2, "seeds": [1, 2], "throughput": 0.3,
            "throughput_ci": 0.01}
    assert _checks_by_name(good)["ci_sanity"].ok
    for corrupt in ({"throughput_ci": -0.1}, {"seeds": [1, 1]},
                    {"replicas": 1}):
        rec = dict(good, **corrupt)
        assert not _checks_by_name(rec)["ci_sanity"].ok, corrupt


def test_registry_covers_every_corruption_target():
    names = [name for name, _ in RECORD_CHECKS]
    assert names == ["counters", "throughput_bounds", "capacity_bounds",
                     "latency_ordering", "latency_floor",
                     "throughput_consistency", "drain_conservation",
                     "drain_latency", "transient_window", "ci_sanity"]


# ------------------------------------------------------- figure-level checks

def test_verify_result_cross_record_node_consistency():
    a, b = _steady_record(), _steady_record()
    b["delivered_phits"] = b["throughput"] * 36 * 1000  # half the fabric
    b["h"] = None
    result = {"id": "fig4a", "description": "d",
              "series": {"minimal": [a, b]}}
    report = verify_result(result)
    assert not report.ok
    assert any(f["record"] == "<cross-record>" for f in report.failures)


def test_iter_records_rejects_malformed_series():
    with pytest.raises(ValueError):
        list(iter_records({"series": "nope"}))
    with pytest.raises(ValueError):
        list(iter_records({"series": {"a": [1, 2]}}))
