"""Extended traffic patterns and trace replay."""

import random

import pytest

from repro.topology import Dragonfly
from repro.traffic.extra import (
    BitComplement,
    GroupTornado,
    Hotspot,
    NodeShift,
    RandomPermutation,
    TraceReplay,
)

from tests.helpers import build_sim

TOPO = Dragonfly(2)
RNG = random.Random(1)


def test_shift_wraps():
    p = NodeShift(5)
    assert p.dest(0, TOPO, RNG) == 5
    assert p.dest(TOPO.num_nodes - 1, TOPO, RNG) == 4
    with pytest.raises(ValueError):
        NodeShift(0)


def test_bitcomplement_involution():
    p = BitComplement()
    for src in range(0, TOPO.num_nodes, 7):
        d = p.dest(src, TOPO, RNG)
        assert d != src
        if d == TOPO.num_nodes - 1 - src:  # regular case
            assert p.dest(d, TOPO, RNG) == src


def test_tornado_targets_far_group():
    p = GroupTornado()
    for src in (0, 33):
        d = p.dest(src, TOPO, RNG)
        sg = TOPO.group_of(TOPO.router_of_node(src))
        dg = TOPO.group_of(TOPO.router_of_node(d))
        assert dg == (sg + TOPO.num_groups // 2) % TOPO.num_groups


def test_hotspot_mixes():
    p = Hotspot(hot_node=3, fraction=0.5)
    hits = sum(p.dest(10, TOPO, RNG) == 3 for _ in range(2000))
    assert 800 < hits < 1300
    assert all(p.dest(3, TOPO, RNG) != 3 for _ in range(50))
    with pytest.raises(ValueError):
        Hotspot(0, 1.5)


def test_permutation_fixed_and_derangement():
    p = RandomPermutation(seed=4)
    dests = [p.dest(i, TOPO, RNG) for i in range(TOPO.num_nodes)]
    assert sorted(dests) == list(range(TOPO.num_nodes))  # a bijection
    assert all(d != i for i, d in enumerate(dests))       # no self-traffic
    assert dests == [p.dest(i, TOPO, RNG) for i in range(TOPO.num_nodes)]
    other = RandomPermutation(seed=5)
    assert [other.dest(i, TOPO, RNG) for i in range(TOPO.num_nodes)] != dests


def test_trace_replay_injection_order():
    sim = build_sim("minimal", record_hops=False)
    trace = TraceReplay([(0, 0, 9), (0, 1, 12), (5, 2, 30), (100, 3, 40)])
    sim.traffic = trace
    sim.run(1)
    assert sim.stats.generated == 2
    sim.run(5)
    assert sim.stats.generated == 3
    sim.run(100)
    assert sim.stats.generated == 4
    assert trace.exhausted
    sim.traffic = None
    sim.run_until_drained(50000)
    assert sim.stats.delivered == 4


def test_trace_replay_skips_self_traffic_and_comments(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# demo trace\n0 0 9\n\n2 5 5\n3 7 20\n")
    trace = TraceReplay.from_file(path)
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = trace
    sim.run(10)
    assert sim.stats.generated == 2  # the 5->5 record is dropped


def test_trace_drain_waits_for_future_phases():
    """run_until_drained must not exit between trace phases."""
    sim = build_sim("minimal", record_hops=False)
    trace = TraceReplay([(0, 0, 9), (500, 1, 12)])
    sim.traffic = trace
    cycles = sim.run_until_drained(50000)
    assert cycles > 500  # waited for the second phase
    assert sim.stats.delivered == 2
    assert trace.exhausted


def test_process_exhausted_flags():
    from repro.traffic.processes import BernoulliTraffic, BurstTraffic
    from repro.traffic.patterns import UniformRandom

    assert BernoulliTraffic(UniformRandom(), 0.0).exhausted
    assert not BernoulliTraffic(UniformRandom(), 0.5).exhausted
    burst = BurstTraffic(UniformRandom(), 2)
    assert not burst.exhausted
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = burst
    sim.run(1)
    assert burst.exhausted


def test_extra_patterns_drive_simulation():
    from repro.traffic.processes import BernoulliTraffic

    for pattern in (NodeShift(7), BitComplement(), GroupTornado(),
                    Hotspot(0, 0.3), RandomPermutation(1)):
        sim = build_sim("olm", record_hops=False)
        sim.traffic = BernoulliTraffic(pattern, 0.3)
        sim.run(600)
        sim.traffic = None
        sim.run_until_drained(100000)
        assert sim.stats.delivered == sim.stats.generated > 0
