"""Piggybacking behaviour: flags, staleness, injection-time decisions."""

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import AdversarialGlobal, AdversarialLocal, UniformRandom
from repro.traffic.processes import BernoulliTraffic

from tests.helpers import collect_delivered


def pb_sim(**over):
    defaults = dict(h=2, routing="pb", record_hops=True, seed=3)
    defaults.update(over)
    return Simulator(SimConfig(**defaults))


def test_low_load_stays_minimal():
    sim = pb_sim()
    sim.traffic = BernoulliTraffic(UniformRandom(), 0.05)
    pkts = collect_delivered(sim, 100)
    val = sum(p.mode == "val" for p in pkts)
    assert val <= len(pkts) * 0.05  # essentially everything minimal
    assert all(p.mode in ("min", "val") for p in pkts)


def test_advg_flags_divert_to_valiant():
    sim = pb_sim()
    sim.traffic = BernoulliTraffic(AdversarialGlobal(1), 0.6)
    sim.run(3000)
    sim.stats.reset(sim.now)
    sim.run(1500)
    assert sim.stats.global_misroute_fraction() > 0.3


def test_flags_update_periodically():
    sim = pb_sim()
    algo = sim.algo
    # force an occupied global link of router 0 and verify the flag appears
    out = sim.routers[0].outputs[sim.routers[0].out_global(0)]
    for v in range(len(out.credits)):
        out.credits[v] = 0  # fully occupied
    assert not algo._flags[0][0]
    sim.step()  # per_cycle runs at t=0 (0 % period == 0)
    link = sim.topo.global_link_index(0, 0)
    assert algo._flags[0][link]


def test_own_link_read_live_even_between_broadcasts():
    sim = pb_sim()
    sim.run(1)  # past the t=0 broadcast
    router = sim.routers[0]
    out = router.outputs[router.out_global(0)]
    for v in range(len(out.credits)):
        out.credits[v] = 0
    link = sim.topo.global_link_index(0, 0)
    # broadcast table still stale ...
    assert not sim.algo._flags[0][link]
    # ... but the owner router sees its own congestion immediately
    assert sim.algo._link_flag(router, 0, link)
    other = sim.routers[1]
    assert not sim.algo._link_flag(other, 0, link)


def test_local_traffic_uses_valiant_under_backlog():
    sim = pb_sim(h=3)
    sim.traffic = BernoulliTraffic(AdversarialLocal(1), 0.8)
    sim.run(2500)
    sim.stats.reset(sim.now)
    sim.run(2000)
    # minimal-only bound is 1/h = 1/3; PB must beat it via Valiant detours
    assert sim.stats.global_misroute_fraction() > 0.5
    assert sim.stats.throughput(sim.topo.num_nodes, sim.now) > 0.34


def test_mode_decided_once_and_committed():
    sim = pb_sim()
    sim.traffic = BernoulliTraffic(AdversarialGlobal(1), 0.5)
    pkts = collect_delivered(sim, 200)
    for p in pkts:
        if p.mode == "val" and p.dst_group != p.src_group:
            assert p.g_hops == 2  # full Valiant path, never re-decided
        elif p.mode == "min":
            assert p.g_hops <= 1
        assert p.local_misroutes == 0  # PB never misroutes locally
