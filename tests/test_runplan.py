"""Run-plan subsystem: specs, executors, caching, replica aggregation.

The determinism contract is the headline: the same plan produces
byte-identical records (canonical JSON) under the serial executor, the
process executor and a cache replay.
"""

import json
import math

import pytest

from repro.metrics.statistics import mean_ci, t_quantile_975
from repro.network.config import SimConfig, paper_vct_config
from repro.runplan import (
    EXECUTOR_REGISTRY,
    ProcessExecutor,
    ResultCache,
    RunPoint,
    RunSpec,
    aggregate_replicas,
    canonical_record_json,
    execute,
    execute_points,
    expand_specs,
    replica_seeds,
    series_map,
)

WARMUP = MEASURE = 250


def tiny_spec(routing="minimal", seed=3, loads=(0.1, 0.2), seeds=1, **kw):
    return RunSpec(config=paper_vct_config(h=2, routing=routing, seed=seed),
                   pattern="uniform", loads=loads, warmup=WARMUP,
                   measure=MEASURE, seeds=replica_seeds(seed, seeds), **kw)


# ---------------------------------------------------------------- spec layer
def test_runspec_expands_loads_times_seeds():
    spec = tiny_spec(loads=(0.1, 0.2, 0.3), seeds=2, series="minimal")
    points = spec.expand()
    assert len(points) == 6
    assert sorted({p.config.seed for p in points}) == [3, 4]
    assert {p.load for p in points} == {0.1, 0.2, 0.3}
    assert all(p.series == "minimal" and p.kind == "steady" for p in points)


def test_drain_spec_expands_per_seed():
    spec = RunSpec(config=SimConfig(h=2, routing="olm"), pattern="mixed:50",
                   kind="drain", packets_per_node=4, max_cycles=10_000,
                   seeds=(1, 2, 3))
    points = spec.expand()
    assert len(points) == 3
    assert all(p.kind == "drain" and p.packets_per_node == 4 for p in points)


def test_runpoint_validation():
    cfg = SimConfig(h=2)
    with pytest.raises(ValueError, match="offered load"):
        RunPoint(config=cfg, pattern="uniform")
    with pytest.raises(ValueError, match="packets_per_node"):
        RunPoint(config=cfg, pattern="uniform", kind="drain")
    with pytest.raises(ValueError, match="kind"):
        RunPoint(config=cfg, pattern="uniform", kind="warp", load=0.1)


def test_point_key_content_addressed():
    a = tiny_spec().expand()[0]
    b = tiny_spec().expand()[0]
    assert a.key() == b.key()  # equal content, equal address
    c = tiny_spec(seed=4).expand()[0]
    d = tiny_spec(loads=(0.15, 0.2)).expand()[0]
    assert len({a.key(), c.key(), d.key()}) == 3
    # display labels are not content: relabelled plans share cache keys
    e = tiny_spec(series="fig4a", coords=(("threshold", 0.3),)).expand()[0]
    assert e.key() == a.key()


def test_cache_shared_across_labels(tmp_path):
    cache = ResultCache(tmp_path / "c")
    labelled = execute(tiny_spec(loads=(0.1,), series="olm-curve",
                                 coords=(("threshold", 0.45),)),
                       cache=cache, aggregate=False)
    assert labelled[0]["series"] == "olm-curve"
    assert labelled[0]["threshold"] == 0.45
    bare = execute(tiny_spec(loads=(0.1,)), cache=cache, aggregate=False)
    assert cache.hits == 1  # same measurement, different labels: replayed
    assert "series" not in bare[0] and "threshold" not in bare[0]
    assert bare[0]["throughput"] == labelled[0]["throughput"]


def test_config_canonical_hash_stable_and_sensitive():
    cfg = SimConfig(h=2, routing="olm")
    assert cfg.content_hash() == SimConfig(h=2, routing="olm").content_hash()
    assert cfg.content_hash() != cfg.with_(seed=9).content_hash()
    # canonical encoding is key-sorted, so dict order can't leak in
    rt = SimConfig.from_dict(json.loads(cfg.canonical_json()))
    assert rt.content_hash() == cfg.content_hash()


def test_replica_seeds():
    assert replica_seeds(5, 3) == (5, 6, 7)
    with pytest.raises(ValueError):
        replica_seeds(5, 0)


def test_transient_spec_expands_loads_times_seeds():
    spec = RunSpec(config=SimConfig(h=2, routing="olm"), pattern="uniform",
                   kind="transient", loads=(0.3,), warmup=5000, measure=2000,
                   packets_per_node=8, bucket=250, seeds=(1, 2),
                   coords=(("burst", 8),))
    points = spec.expand()
    assert len(points) == 2
    assert all(p.kind == "transient" and p.bucket == 250 and p.load == 0.3
               for p in points)
    with pytest.raises(ValueError, match="offered load"):
        RunPoint(config=SimConfig(h=2), pattern="uniform", kind="transient",
                 packets_per_node=8)
    with pytest.raises(ValueError, match="packets_per_node"):
        RunPoint(config=SimConfig(h=2), pattern="uniform", kind="transient",
                 load=0.3)


def test_steady_flag_is_part_of_the_cache_key():
    base = tiny_spec(loads=(0.1,)).expand()[0]
    auto = tiny_spec(loads=(0.1,), steady=True).expand()[0]
    assert base.key() != auto.key()  # different warm-up rule, different record


# ------------------------------------------------------------- determinism
def test_serial_process_and_cache_replay_identical(tmp_path):
    """The satellite contract: serial == process == cache replay, byte-wise."""
    spec = tiny_spec(seeds=2)
    serial = execute(spec, executor="serial", aggregate=False)
    parallel = execute(spec, executor="process", jobs=2, aggregate=False)
    cache_dir = tmp_path / "runcache"
    first = execute(spec, cache=cache_dir, aggregate=False)
    replay = execute(spec, cache=cache_dir, aggregate=False)
    blobs = [[canonical_record_json(r) for r in records]
             for records in (serial, parallel, first, replay)]
    assert blobs[0] == blobs[1] == blobs[2] == blobs[3]


def test_transient_series_identical_across_executors_and_cache(tmp_path):
    """Observability determinism (satellite): the transient records —
    including their embedded time series — are byte-identical under the
    serial executor, the process pool and a cache replay."""
    spec = RunSpec(config=paper_vct_config(h=2, routing="olm", seed=5),
                   pattern="uniform", kind="transient", loads=(0.3,),
                   warmup=8000, measure=2000, packets_per_node=6, bucket=250,
                   seeds=(5, 6), series="olm")
    serial = execute(spec, executor="serial", aggregate=False)
    parallel = execute(spec, executor="process", jobs=2, aggregate=False)
    cache_dir = tmp_path / "c"
    first = execute(spec, cache=cache_dir, aggregate=False)
    replay = execute(spec, cache=cache_dir, aggregate=False)
    blobs = [[canonical_record_json(r) for r in records]
             for records in (serial, parallel, first, replay)]
    assert blobs[0] == blobs[1] == blobs[2] == blobs[3]
    assert len(serial[0]["throughput_series"]) == 2000 // 250
    # multi-seed aggregation: recovery_cycles gets mean ± CI, the
    # per-seed series (seed-specific lists) are dropped from the merge
    agg = execute(spec, cache=cache_dir)
    assert len(agg) == 1
    assert agg[0]["replicas"] == 2 and "recovery_cycles_ci" in agg[0]
    assert "throughput_series" not in agg[0]


def test_steady_points_identical_across_executors():
    spec = tiny_spec(loads=(0.2, 0.4), steady=True)
    serial = execute(spec, executor="serial", aggregate=False)
    parallel = execute(spec, executor="process", jobs=2, aggregate=False)
    assert ([canonical_record_json(r) for r in serial]
            == [canonical_record_json(r) for r in parallel])
    assert all("warmup_cycles" in r and "warmup_steady" in r for r in serial)


def test_cache_replay_skips_execution(tmp_path):
    class Exploding:
        def map(self, fn, items):
            raise AssertionError("cache should have satisfied every point")

    spec = tiny_spec()
    cache = ResultCache(tmp_path / "c")
    execute(spec, cache=cache, aggregate=False)
    assert len(cache) == len(spec.expand())
    replay = execute(spec, executor=Exploding(), cache=cache, aggregate=False)
    assert [r["load"] for r in replay] == [0.1, 0.2]
    assert cache.stats()["hits"] == len(spec.expand())


def test_cache_partial_hit_mixes_replay_and_fresh(tmp_path):
    cache = ResultCache(tmp_path / "c")
    execute(tiny_spec(loads=(0.1,)), cache=cache, aggregate=False)
    records = execute(tiny_spec(loads=(0.1, 0.2)), cache=cache, aggregate=False)
    assert [r["load"] for r in records] == [0.1, 0.2]
    assert cache.hits == 1 and len(cache) == 2


def test_executor_registry_names():
    assert {"serial", "process"} <= set(EXECUTOR_REGISTRY.available())
    pool = ProcessExecutor(jobs=3)
    assert pool.jobs == 3


def test_process_executor_rejects_zero_jobs():
    """Satellite: jobs=0 is an actionable error, not a silent clamp to 1."""
    with pytest.raises(ValueError, match="jobs >= 1"):
        ProcessExecutor(jobs=0)
    with pytest.raises(ValueError, match="jobs >= 1"):
        execute_points(tiny_spec(loads=(0.1,)).expand(),
                       executor="process", jobs=0)


def test_serial_executor_warns_on_jobs():
    """Satellite: SerialExecutor no longer swallows jobs>1 silently."""
    from repro.runplan import SerialExecutor

    with pytest.warns(RuntimeWarning, match="jobs=4 has no effect"):
        SerialExecutor(jobs=4)
    # jobs=None and jobs=1 stay silent
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        SerialExecutor()
        SerialExecutor(jobs=1)


# -------------------------------------------------------------- aggregation
def test_mean_ci_values():
    mean, half = mean_ci([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert half == pytest.approx(t_quantile_975(2) * 1.0 / math.sqrt(3))
    assert mean_ci([4.2]) == (4.2, 0.0)
    assert all(math.isnan(v) for v in mean_ci([1.0, math.nan]))
    with pytest.raises(ValueError):
        mean_ci([])


def test_aggregate_replicas_mean_and_ci():
    records = [
        {"routing": "olm", "pattern": "uniform", "load": 0.1,
         "throughput": t, "seed": s}
        for s, t in ((1, 0.10), (2, 0.12), (3, 0.14))
    ] + [
        {"routing": "olm", "pattern": "uniform", "load": 0.2,
         "throughput": 0.2, "seed": 1},
    ]
    agg = aggregate_replicas(records)
    assert len(agg) == 2
    first = agg[0]
    assert first["load"] == 0.1
    assert first["throughput"] == pytest.approx(0.12)
    assert first["throughput_ci"] > 0
    assert first["replicas"] == 3 and first["seeds"] == [1, 2, 3]
    assert agg[1]["throughput_ci"] == 0.0 and agg[1]["replicas"] == 1
    assert "seed" not in first


def test_multi_seed_execute_aggregates_by_default():
    spec = tiny_spec(loads=(0.1,), seeds=3)
    agg = execute(spec)
    assert len(agg) == 1
    rec = agg[0]
    assert rec["replicas"] == 3 and rec["seeds"] == [3, 4, 5]
    assert rec["throughput"] > 0 and rec["throughput_ci"] >= 0
    raws = execute(spec, aggregate=False)
    assert rec["throughput"] == pytest.approx(
        sum(r["throughput"] for r in raws) / 3)


# ------------------------------------------------------------ plumbing bits
def test_expand_specs_and_series_map():
    specs = [tiny_spec(routing=r, series=r, loads=(0.1,)) for r in ("minimal", "olm")]
    points = expand_specs(specs)
    assert [p.series for p in points] == ["minimal", "olm"]
    records = execute_points(points)
    grouped = series_map(records, ("minimal", "olm"))
    assert list(grouped) == ["minimal", "olm"]
    assert all(len(v) == 1 for v in grouped.values())


def test_drain_point_record_shape():
    point = RunPoint(config=paper_vct_config(h=2, routing="olm", seed=1),
                     pattern="mixed:50", kind="drain", packets_per_node=3,
                     max_cycles=500_000, coords=(("global_pct", 50),))
    rec = execute_points([point])[0]
    assert rec["kind"] == "drain"
    assert rec["drain_cycles"] > 0
    assert rec["delivered"] == 3 * 72  # h=2: 72 nodes
    assert rec["global_pct"] == 50 and rec["seed"] == 1


def test_figure_runner_multi_seed_reports_ci():
    from repro.experiments.figures import sweep_vct_uniform

    res = sweep_vct_uniform(scale="smoke", loads=(0.2,), seed=7, seeds=2)
    assert res["seeds"] == 2
    for pts in res["series"].values():
        assert len(pts) == 1
        assert pts[0]["replicas"] == 2 and pts[0]["seeds"] == [7, 8]
        assert "throughput_ci" in pts[0]
