"""The Session/RunResult facade and the multi-observer delivery hook."""

import dataclasses
import json
import math

import pytest

import repro
from repro import RunResult, Session, SimConfig, session
from repro.traffic import BernoulliTraffic, BurstTraffic, MixedGlobalLocal, UniformRandom


def test_session_measure_returns_frozen_run_result():
    cfg = SimConfig(h=2, routing="olm", seed=3)
    result = session(cfg, pattern="uniform", load=0.4).warmup(800).measure(800)
    assert isinstance(result, RunResult)
    assert result.kind == "measure"
    assert result.delivered > 0
    assert result.window_cycles == 800
    assert result.start_cycle == 800 and result.end_cycle == 1600
    assert 0 < result.throughput <= 1.0
    assert result.mean_latency > 0
    assert result.latency_p50 <= result.latency_p95 <= result.latency_p99
    assert result.latency_p99 <= result.max_latency
    assert result.drain_cycles is None
    with pytest.raises(dataclasses.FrozenInstanceError):
        result.delivered = 0
    json.dumps(result.to_dict())  # JSON-safe


def test_session_matches_manual_simulator_loop():
    cfg = SimConfig(h=2, routing="rlm", seed=11)
    facade = session(cfg, pattern="advg+1", load=0.2).warmup(600).measure(600)

    sim = repro.build_simulator(cfg)
    from repro.traffic.patterns import pattern_by_name

    sim.traffic = BernoulliTraffic(pattern_by_name("advg+1", sim.topo), 0.2)
    sim.run(600)
    sim.stats.reset(sim.now)
    sim.run(600)
    assert facade.delivered == sim.stats.delivered
    assert facade.mean_latency == pytest.approx(sim.stats.mean_latency())
    assert facade.throughput == pytest.approx(
        sim.stats.throughput(sim.topo.num_nodes, sim.now))


def test_session_drain_reports_drain_cycles():
    cfg = SimConfig(h=2, routing="olm", seed=5)
    s = session(cfg, traffic=BurstTraffic(MixedGlobalLocal(0.5, 2), 5))
    result = s.drain(500_000)
    assert result.kind == "drain"
    assert result.drain_cycles and result.drain_cycles > 0
    assert result.delivered == result.generated > 0
    assert s.sim.packets_in_flight == 0


def test_session_chaining_and_accessors():
    cfg = SimConfig(h=2, routing="minimal", seed=1)
    s = session(cfg)
    assert s.config is cfg
    assert isinstance(s, Session)
    assert s.bernoulli("uniform", 0.1) is s
    assert s.run(50) is s and s.now == 50
    assert s.warmup(50) is s and s.now == 100
    assert s.sim.stats.window_start == 100


def test_session_argument_validation():
    with pytest.raises(ValueError, match="needs a SimConfig"):
        session()
    with pytest.raises(ValueError, match="requires an offered load"):
        session(SimConfig(), pattern="uniform")
    with pytest.raises(ValueError, match="requires a pattern"):
        session(SimConfig(), load=0.5)
    with pytest.raises(ValueError, match="not both"):
        session(SimConfig(), traffic=BurstTraffic(MixedGlobalLocal(0.5, 2), 1),
                pattern="uniform", load=0.5)
    # a prebuilt sim with a *different* config is a loud error, not silence
    sim = repro.build_simulator(SimConfig(routing="minimal"))
    with pytest.raises(ValueError, match="prebuilt sim"):
        session(SimConfig(routing="olm"), sim=sim)
    assert session(sim.config, sim=sim).config is sim.config
    # an equal-but-distinct config is accepted (value equality, not identity)
    clone = SimConfig.from_dict(sim.config.to_dict())
    assert session(clone, sim=sim).sim is sim


def test_empty_window_yields_nan_percentiles():
    result = session(SimConfig(routing="minimal")).measure(10)
    assert result.delivered == 0
    assert math.isnan(result.latency_p50)
    assert math.isnan(result.mean_latency)


# ---------------------------------------------------------------- observers
def test_multiple_delivery_observers_all_fire():
    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=2),
                                BernoulliTraffic(UniformRandom(), 0.3))
    seen_a, seen_b = [], []
    sim.add_delivery_observer(lambda pkt, now: seen_a.append(pkt.pid))

    @sim.add_delivery_observer
    def _record(pkt, now):
        seen_b.append((pkt.pid, now))

    sim.run(600)
    assert seen_a and len(seen_a) == len(seen_b) == sim.stats.delivered
    sim.remove_delivery_observer(_record)
    before = len(seen_b)
    sim.run(200)
    assert len(seen_b) == before  # detached
    assert len(seen_a) == sim.stats.delivered  # still attached


def test_legacy_on_packet_delivered_shim():
    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=2),
                                BernoulliTraffic(UniformRandom(), 0.3))
    first, second, extra = [], [], []
    sim.add_delivery_observer(lambda pkt, now: extra.append(pkt.pid))
    sim.on_packet_delivered = lambda pkt, now: first.append(pkt.pid)
    assert sim.on_packet_delivered is not None
    # reassigning replaces the legacy hook but leaves other observers alone
    sim.on_packet_delivered = lambda pkt, now: second.append(pkt.pid)
    sim.run(400)
    assert not first
    assert second and len(second) == len(extra) == sim.stats.delivered
    sim.on_packet_delivered = None
    sim.run(100)
    assert len(second) < sim.stats.delivered  # detached via the shim
    assert len(extra) == sim.stats.delivered


def test_legacy_hook_always_fires_last():
    """Pinned firing order: observers in registration order, legacy hook last.

    The seed engine only kept the legacy hook last when it was assigned
    *after* the observers; an observer added later slipped behind it.
    """
    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=8),
                                BernoulliTraffic(UniformRandom(), 0.4))
    order = []
    sim.on_packet_delivered = lambda pkt, now: order.append("legacy")
    sim.add_delivery_observer(lambda pkt, now: order.append("a"))
    sim.add_delivery_observer(lambda pkt, now: order.append("b"))
    while not order:
        sim.step()
    assert order == ["a", "b", "legacy"]
    # re-assigning the legacy hook keeps it last
    order.clear()
    sim.on_packet_delivered = lambda pkt, now: order.append("legacy2")
    while not order:
        sim.step()
    assert order == ["a", "b", "legacy2"]


def test_legacy_shim_tolerates_manual_removal():
    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=3))
    hook = lambda pkt, now: None
    sim.on_packet_delivered = hook
    sim.remove_delivery_observer(hook)  # mixing both APIs must not corrupt state
    sim.on_packet_delivered = None  # must not raise
    replacement = lambda pkt, now: None
    sim.on_packet_delivered = replacement
    assert sim._delivery_observers.count(replacement) == 1


def test_observer_may_detach_itself_without_skipping_others():
    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=6),
                                BernoulliTraffic(UniformRandom(), 0.3))
    events = []

    def one_shot(pkt, now):
        events.append("one_shot")
        sim.remove_delivery_observer(one_shot)

    after = []
    sim.add_delivery_observer(one_shot)
    sim.add_delivery_observer(lambda pkt, now: after.append(pkt.pid))
    sim.run(400)
    assert events == ["one_shot"]
    # the observer registered after the self-removing one still saw every delivery
    assert len(after) == sim.stats.delivered > 1


def test_session_close_detaches_from_prebuilt_sim():
    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=7),
                                BernoulliTraffic(UniformRandom(), 0.3))
    baseline = len(sim._delivery_observers)
    sessions = [Session(sim=sim) for _ in range(3)]
    assert len(sim._delivery_observers) == baseline + 3
    for s in sessions:
        s.close()
        s.close()  # idempotent
    assert len(sim._delivery_observers) == baseline


def test_latency_probe_observer():
    from repro.metrics.probes import LatencyProbe

    sim = repro.build_simulator(SimConfig(h=2, routing="minimal", seed=4),
                                BernoulliTraffic(UniformRandom(), 0.2))
    with pytest.warns(DeprecationWarning):
        probe = LatencyProbe(sim)
    sim.run(500)
    assert len(probe.latencies) == sim.stats.delivered > 0
    assert max(probe.latencies) == sim.stats.latency_max
    probe.detach()
    probe.detach()  # idempotent
    count = len(probe.latencies)
    sim.run(200)
    assert len(probe.latencies) == count
