"""Routing registry and mechanism class properties."""

import pytest

from repro.core import (
    ROUTING_REGISTRY,
    MinimalRouting,
    OfarRouting,
    OlmRouting,
    Par62Routing,
    PiggybackingRouting,
    RlmRouting,
    ValiantRouting,
    routing_by_name,
)


def test_registry_contents():
    assert ROUTING_REGISTRY == {
        "minimal": MinimalRouting,
        "valiant": ValiantRouting,
        "pb": PiggybackingRouting,
        "par62": Par62Routing,
        "rlm": RlmRouting,
        "olm": OlmRouting,
        "ofar": OfarRouting,
    }


def test_lookup():
    assert routing_by_name("olm") is OlmRouting
    with pytest.raises(ValueError, match="unknown routing"):
        routing_by_name("ugal")


def test_vc_budgets_match_paper():
    """3/2 VCs for the paper's mechanisms; PAR-6/2 needs 6/2; the OFAR
    baseline embeds its escape ring as one extra VC per port (4/3)."""
    budgets = {name: (cls.local_vcs, cls.global_vcs)
               for name, cls in ROUTING_REGISTRY.items()}
    assert budgets == {
        "minimal": (3, 2), "valiant": (3, 2), "pb": (3, 2),
        "rlm": (3, 2), "olm": (3, 2),
        "par62": (6, 2),
        "ofar": (4, 3),
    }


def test_vct_requirements():
    """OLM and OFAR need whole-packet reservation; everything else is WH-safe."""
    for name, cls in ROUTING_REGISTRY.items():
        assert cls.requires_vct == (name in ("olm", "ofar")), name
