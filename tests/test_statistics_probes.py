"""Batch means, saturation/recovery detection and state snapshots."""

import math
import random

import pytest

from repro.metrics.statistics import (
    batch_means,
    compare_series,
    saturation_point,
    steady_state_reached,
    t_quantile_975,
)
from repro.metrics.probes import ThroughputProbe, injection_backlog, occupancy_snapshot
from repro.traffic.patterns import AdversarialGlobal, UniformRandom
from repro.traffic.processes import BernoulliTraffic

from tests.helpers import build_sim


def test_t_quantiles():
    assert t_quantile_975(1) == pytest.approx(12.706)
    assert t_quantile_975(30) == pytest.approx(2.042)
    assert t_quantile_975(1000) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t_quantile_975(0)


def test_batch_means_constant_stream():
    r = batch_means([5.0] * 100, num_batches=10)
    assert r.mean == pytest.approx(5.0)
    assert r.half_width == pytest.approx(0.0)
    assert r.ci == (5.0, 5.0)


def test_batch_means_covers_true_mean():
    rng = random.Random(0)
    hits = 0
    for trial in range(30):
        samples = [rng.gauss(10.0, 2.0) for _ in range(400)]
        r = batch_means(samples, num_batches=10)
        if r.ci[0] <= 10.0 <= r.ci[1]:
            hits += 1
    assert hits >= 25  # ~95% coverage, generous slack


def test_batch_means_validation():
    with pytest.raises(ValueError):
        batch_means([1.0, 2.0], num_batches=1)
    with pytest.raises(ValueError):
        batch_means([1.0], num_batches=2)


def test_relative_error():
    r = batch_means([10.0, 10.0, 12.0, 12.0, 10.0, 12.0, 11.0, 11.0], 4)
    assert 0 <= r.relative_error() < 1


def test_saturation_point():
    pts = [
        {"load": 0.1, "throughput": 0.1},
        {"load": 0.3, "throughput": 0.295},
        {"load": 0.5, "throughput": 0.42},
        {"load": 0.7, "throughput": 0.44},
    ]
    s = saturation_point(pts)
    assert s["onset_load"] == 0.3
    assert s["max_throughput"] == 0.44
    assert s["max_throughput_load"] == 0.7
    with pytest.raises(ValueError):
        saturation_point([])


def test_compare_series():
    a = [{"throughput": 0.62}]
    b = [{"throughput": 0.50}]
    c = compare_series(a, b)
    assert c["improvement_pct"] == pytest.approx(24.0)
    assert compare_series(a, [{"throughput": 0.0}])["ratio"] == math.inf


def test_steady_state_reached():
    assert steady_state_reached([0.5, 0.49, 0.51, 0.5, 0.5], window=5)
    assert not steady_state_reached([0.1, 0.2, 0.3, 0.4, 0.5], window=5)
    assert not steady_state_reached([0.5, 0.5], window=5)
    assert steady_state_reached([0.0] * 6, window=5)


def test_throughput_probe_converges():
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = BernoulliTraffic(UniformRandom(), 0.4)
    with pytest.warns(DeprecationWarning):
        probe = ThroughputProbe(sim, interval=400)
    series = probe.run(4800)
    assert len(series) == 12
    # after warm-up the interval throughput approaches the offered load
    assert series[-1] == pytest.approx(0.4, rel=0.3)
    assert steady_state_reached(series, window=4, rel_tolerance=0.3)
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
        ThroughputProbe(sim, interval=0)


def test_occupancy_snapshot_finds_advg_hotspot():
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = BernoulliTraffic(AdversarialGlobal(1), 0.6)
    sim.run(2500)
    snap = occupancy_snapshot(sim)
    assert snap["hottest_fraction"] > snap["global_mean"]
    assert snap["hottest_link"] is not None
    # ADVG saturates global links: the hotspot must be a global port
    from repro.topology.dragonfly import PortKind

    assert snap["hottest_link"][1] == int(PortKind.GLOBAL)


def test_injection_backlog_grows_past_saturation():
    sim = build_sim("minimal", record_hops=False)
    sim.traffic = BernoulliTraffic(AdversarialGlobal(1), 0.9)
    sim.run(800)
    early = injection_backlog(sim)["total_phits"]
    sim.run(2000)
    late = injection_backlog(sim)["total_phits"]
    assert late > early > 0
