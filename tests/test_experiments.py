"""Experiment harness: sweeps, registry, reporting, persistence."""

import json

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.presets import SCALES, get_scale
from repro.experiments.registry import ExperimentSpec
from repro.experiments.reporting import (
    format_result,
    load_result,
    save_result,
    summarize_saturation,
)
from repro.experiments.sweeps import (
    burst_drain,
    load_sweep,
    mixed_sweep,
    run_point,
    saturation_throughput,
    threshold_sweep,
)
from repro.network.config import paper_vct_config


def test_registry_covers_every_figure_and_table():
    expected = {
        "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c",
        "fig6a", "fig6b", "fig7a", "fig7b", "fig7c",
        "fig8a", "fig8b", "fig8c", "fig9a", "fig9b",
        "fig10", "fig11", "tab1", "trans1", "xtopo1",
    }
    assert set(EXPERIMENTS) == expected
    for spec in EXPERIMENTS.values():
        assert isinstance(spec, ExperimentSpec)
        assert spec.description


def test_scales_defined():
    for name in ("tiny", "smoke", "small", "paper"):
        assert name in SCALES
    assert get_scale("tiny").h == 2
    assert get_scale(SCALES["tiny"]) is SCALES["tiny"]
    with pytest.raises(ValueError):
        get_scale("galactic")


def test_run_point_record_shape():
    cfg = paper_vct_config(h=2, routing="minimal", seed=1)
    rec = run_point(cfg, "uniform", 0.2, warmup=400, measure=400)
    assert rec["routing"] == "minimal"
    assert rec["pattern"] == "uniform"
    assert rec["load"] == 0.2
    assert 0 < rec["throughput"] <= 0.25
    assert rec["mean_latency"] > 100


def test_load_sweep_monotone_low_loads():
    cfg = paper_vct_config(h=2, routing="minimal", seed=1)
    pts = load_sweep(cfg, "uniform", (0.1, 0.3), warmup=400, measure=400)
    assert pts[1]["throughput"] > pts[0]["throughput"]
    assert saturation_throughput(pts) == max(p["throughput"] for p in pts)
    assert saturation_throughput([]) == 0.0


def test_mixed_sweep_records():
    cfg = paper_vct_config(h=2, routing="rlm", seed=1)
    pts = mixed_sweep(cfg, (0, 100), 1.0, warmup=400, measure=400)
    assert [p["global_pct"] for p in pts] == [0, 100]
    assert all(p["throughput"] > 0 for p in pts)


def test_burst_drain_records():
    cfg = paper_vct_config(h=2, routing="olm", seed=1)
    pts = burst_drain(cfg, (50,), packets_per_node=5, max_cycles=500000)
    assert pts[0]["drain_cycles"] > 0
    assert pts[0]["delivered"] == 5 * 72  # h=2: 72 nodes


def test_threshold_sweep_keys():
    cfg = paper_vct_config(h=2, routing="rlm", seed=1)
    res = threshold_sweep(cfg, (0.3, 0.6), "uniform", (0.2,), warmup=300, measure=300)
    assert set(res) == {0.3, 0.6}


def test_run_experiment_tab1():
    res = run_experiment("tab1")
    rows = res["series"]["parity-sign"]
    assert len(rows) == 16
    assert sum(r["allowed"] for r in rows) == 10
    assert res["id"] == "tab1"


def test_run_experiment_unknown():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_run_experiment_smoke_figure():
    res = run_experiment("fig5a", scale="smoke", seed=2)
    assert res["metric"] == "throughput"
    assert set(res["series"]) == {"par62", "olm", "rlm", "minimal", "pb"}
    sat = summarize_saturation(res)
    assert all(v > 0 for v in sat.values())


def test_reporting_roundtrip(tmp_path):
    res = run_experiment("tab1")
    path = tmp_path / "sub" / "tab1.json"
    save_result(res, path)
    again = load_result(path)
    assert again["id"] == "tab1"
    assert json.loads(path.read_text())["metric"] == "allowed"
    text = format_result(res)
    assert "tab1" in text and "odd-" in text and "NO" in text


def test_format_result_numeric_table():
    res = {
        "id": "fig5a", "description": "demo", "scale": "tiny",
        "metric": "throughput",
        "series": {"olm": [{"load": 0.1, "throughput": 0.099}]},
    }
    text = format_result(res)
    assert "olm" in text and "0.099" in text


def test_figure_interrupt_carries_partial_series():
    from repro.experiments.figures import FigureInterrupted, sweep_vct_uniform
    from repro.experiments.registry import clear_cache

    clear_cache()

    def die_after_two(outcome):
        if outcome.completed >= 2:
            raise KeyboardInterrupt

    with pytest.raises(FigureInterrupted) as ei:
        sweep_vct_uniform(scale="tiny", loads=(0.1,), on_result=die_after_two)
    partial = ei.value.partial
    assert partial["partial"] is True
    assert sum(len(v) for v in partial["series"].values()) == 2
    assert isinstance(ei.value, KeyboardInterrupt)  # plain ^C handling works


def test_figure_runner_shard_restricts_and_labels():
    from repro.experiments.figures import sweep_vct_uniform
    from repro.experiments.registry import clear_cache

    clear_cache()
    full = sweep_vct_uniform(scale="tiny", loads=(0.1,))
    part0 = sweep_vct_uniform(scale="tiny", loads=(0.1,), shard="0/2")
    part1 = sweep_vct_uniform(scale="tiny", loads=(0.1,), shard=(1, 2))
    assert "shard" not in full
    assert part0["shard"] == "0/2" and part1["shard"] == "1/2"
    n = sum(len(v) for v in full["series"].values())
    n0 = sum(len(v) for v in part0["series"].values())
    n1 = sum(len(v) for v in part1["series"].values())
    assert n0 + n1 == n


def test_run_experiment_memo_ignores_on_result_callback():
    from repro.experiments.registry import _RUNNER_CACHE, clear_cache

    clear_cache()
    seen = []
    first = run_experiment("fig4a", scale="tiny", loads=(0.1,),
                           on_result=seen.append)
    assert seen  # the callback really streamed outcomes
    assert len(_RUNNER_CACHE) == 1
    again = run_experiment("fig4a", scale="tiny", loads=(0.1,))
    assert len(_RUNNER_CACHE) == 1  # same memo slot despite the callback
    assert again["series"] == first["series"]


def test_progress_printer_formats_outcomes():
    import io

    from repro.experiments.reporting import ProgressPrinter
    from repro.runplan import PointOutcome, RunPoint

    point = RunPoint(config=paper_vct_config(h=2, routing="minimal", seed=7),
                     pattern="uniform", load=0.25, warmup=10, measure=10,
                     coords=(("threshold", 0.4),))
    buf = io.StringIO()
    ticks = iter([0.0, 10.0])
    printer = ProgressPrinter(stream=buf, clock=lambda: next(ticks))
    printer(PointOutcome(index=0, point=point, record={}, error=None,
                         status="computed", attempts=1, completed=1, total=3))
    line = buf.getvalue().strip()
    assert line.startswith("[1/3]")
    assert "computed" in line and "seed=7" in line and "load=0.25" in line
    assert "threshold=0.4" in line
    assert "eta=20s" in line  # 10 s for 1 of 3 points -> 20 s left
