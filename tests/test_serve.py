"""Serve layer: protocol parsing, queue semantics, HTTP surface.

Everything here runs against a *fake* runner (monkeypatched
``repro.serve.runner.run_submission``) so queue behaviour — dedupe,
backpressure, cancellation, timeout, streaming, eviction — is tested in
milliseconds and in isolation from the simulator.  The determinism and
byte-identity contracts against real simulations live in
``tests/test_serve_contract.py``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.experiments.cli import main as cli_main
from repro.metrics.hub import jsonl_line
from repro.serve import (
    FlowConservationError,
    JobCancelled,
    ServeSettings,
    SubmissionError,
    create_app,
    parse_submission,
)
from repro.serve import runner as serve_runner
from repro.serve.testclient import Client

POINT = {"config": {"h": 1, "seed": 3}, "pattern": "uniform", "load": 0.2,
         "warmup": 100, "measure": 200}

SPEC = {"spec": {"config": {"h": 1, "seed": 3}, "pattern": "uniform",
                 "loads": [0.1, 0.2], "warmup": 100, "measure": 200,
                 "replicas": 3}}


# ------------------------------------------------------------------ protocol
def test_parse_single_point():
    sub = parse_submission(POINT)
    assert len(sub.points) == 1
    assert sub.kind == "steady"
    assert not sub.aggregate
    point = sub.points[0]
    assert point.load == 0.2 and point.config.h == 1


def test_parse_spec_expands_grid_and_autoaggregates():
    sub = parse_submission(SPEC)
    assert len(sub.points) == 6  # 2 loads x 3 seed replicas
    assert sub.aggregate  # replicas > 1 aggregates by default
    assert parse_submission({**SPEC, "aggregate": False}).aggregate is False


def test_submission_key_is_content_addressed():
    assert parse_submission(POINT).key() == parse_submission(dict(POINT)).key()
    other = parse_submission({**POINT, "config": {"h": 1, "seed": 4}})
    assert other.key() != parse_submission(POINT).key()
    # aggregation shapes the result payload, so it is part of the key
    assert (parse_submission(SPEC).key()
            != parse_submission({**SPEC, "aggregate": False}).key())


@pytest.mark.parametrize("payload,needle", [
    ([1, 2], "JSON object"),
    ({**POINT, "laod": 0.2}, "laod"),
    ({**POINT, "load": "high"}, "load must be a number"),
    ({**POINT, "warmup": -5}, "warmup"),
    ({**POINT, "config": {"h": 1, "bogus": 2}}, "bad config"),
    ({"spec": {"loads": [0.1], "seeds": [1], "replicas": 2}}, "not both"),
    ({"spec": {"loads": "0.1"}}, "list of numbers"),
    ({"spec": {"loads": [0.1], "replicas": 0}}, "replicas"),
    ({"spec": {"loads": []}}, "zero run points"),
])
def test_parse_rejects_bad_payloads(payload, needle):
    with pytest.raises(SubmissionError, match=needle):
        parse_submission(payload)


def test_parse_enforces_max_points():
    with pytest.raises(SubmissionError, match="max_points"):
        parse_submission(SPEC, max_points=5)


# ------------------------------------------------------------------ settings
@pytest.mark.parametrize("bad,needle", [
    (dict(workers=0), "workers"),
    (dict(workers=65), "workers"),
    (dict(queue_limit=0), "queue_limit"),
    (dict(job_timeout=0), "job_timeout"),
    (dict(retry_after=0), "retry_after"),
    (dict(bucket=0), "bucket"),
    (dict(max_points=0), "max_points"),
    (dict(keep_jobs=0), "keep_jobs"),
    (dict(point_retries=-1), "point_retries"),
    (dict(point_retries=11), "point_retries"),
])
def test_settings_bounds(bad, needle):
    with pytest.raises(ValueError, match=needle):
        ServeSettings(**bad)


def test_cli_serve_rejects_bad_knobs(capsys):
    assert cli_main(["serve", "--workers", "0"]) == 2
    assert "workers must be between" in capsys.readouterr().err
    assert cli_main(["serve", "--port", "99999"]) == 2
    assert "--port" in capsys.readouterr().err
    assert cli_main(["serve", "--job-timeout", "0"]) == 2
    assert "job_timeout" in capsys.readouterr().err


# ---------------------------------------------------------------- fake runner
class FakeRunner:
    """Stand-in for ``runner.run_submission`` with scripted behaviour."""

    def __init__(self, rows=(), error=None, blocking=False):
        self.rows = list(rows)
        self.error = error
        self.blocking = blocking
        self.release = threading.Event()
        self.calls = 0
        self.started = threading.Event()

    def __call__(self, submission, *, cache=None, default_bucket=250,
                 cancelled=None, emit=None, max_retries=0, verify="flow"):
        self.calls += 1
        self.started.set()
        if cancelled is not None and cancelled.is_set():
            raise JobCancelled("cancelled before start")
        for row in self.rows:
            emit(row)
        if self.error is not None:
            raise self.error
        while self.blocking and not self.release.is_set():
            if cancelled is not None and cancelled.is_set():
                raise JobCancelled("cancelled while running")
            time.sleep(0.002)
        return {"records": [{"ran": submission.key()[:8]}],
                "aggregated": submission.aggregate,
                "executed_points": len(submission.points),
                "cached_points": 0}


def serve_test(settings=None):
    """Decorator-ish helper: run an async test body under a live app."""
    def run(body):
        async def main():
            app = create_app(settings or ServeSettings(workers=1,
                                                       job_timeout=30))
            async with Client(app) as client:
                await body(client, app)
        asyncio.run(main())
    return run


async def wait_state(client, job_id, *states, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        body = (await client.get(f"/v1/jobs/{job_id}")).json()
        if body["state"] in states:
            return body
        await asyncio.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {states}: {body}")


# ------------------------------------------------------------------ HTTP API
def test_healthz_stats_and_errors(monkeypatch):
    monkeypatch.setattr(serve_runner, "run_submission", FakeRunner())

    @serve_test()
    async def _(client, app):
        assert (await client.get("/v1/healthz")).json()["ok"] is True
        stats = (await client.get("/v1/stats")).json()
        assert stats["jobs_total"] == 0
        assert stats["settings"]["workers"] == 1
        assert (await client.get("/v1/nope")).status == 404
        assert (await client.get("/v1/jobs/zzz")).status == 404
        assert (await client.get("/v1/jobs/zzz/stream")).status == 404
        assert (await client.get("/v1/results/deadbeef")).status == 404
        assert (await client.request("PUT", "/v1/jobs/zzz")).status == 405
        bad = await client.request("POST", "/v1/jobs", json_body=None)
        assert bad.status == 400  # empty body: a point with no load
        resp = await client.post("/v1/jobs", json_body={**POINT, "laod": 1})
        assert resp.status == 400 and "laod" in resp.json()["error"]


def test_submit_run_and_replay_stream(monkeypatch):
    rows = [{"type": "meta", "bucket": 10}, {"type": "bucket", "index": 0},
            {"type": "summary"}]
    fake = FakeRunner(rows=rows)
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test()
    async def _(client, app):
        resp = await client.post("/v1/jobs", json_body=POINT)
        assert resp.status == 202
        job_id = resp.json()["job"]
        body = await wait_state(client, job_id, "done")
        assert body["result"]["records"] == [{"ran": body["key"][:8]}]
        expected = "".join(jsonl_line(r) + "\n" for r in rows)
        first = await client.get(f"/v1/jobs/{job_id}/stream")
        again = await client.get(f"/v1/jobs/{job_id}/stream")
        assert first.status == 200
        assert first.headers["content-type"] == "application/x-ndjson"
        assert first.text == expected  # live rows
        assert again.text == expected  # replay after completion
        assert fake.calls == 1


def test_dedupe_coalesces_identical_submissions(monkeypatch):
    fake = FakeRunner(blocking=True)
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test()
    async def _(client, app):
        first = (await client.post("/v1/jobs", json_body=POINT)).json()
        dup = (await client.post("/v1/jobs", json_body=dict(POINT))).json()
        other = (await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.3})).json()
        assert dup["job"] == first["job"] and dup["deduped"]
        assert other["job"] != first["job"] and not other["deduped"]
        fake.release.set()
        await wait_state(client, first["job"], "done")
        done = await wait_state(client, other["job"], "done")
        assert done["state"] == "done"
        stats = (await client.get("/v1/stats")).json()
        assert stats["deduped"] == 1 and stats["jobs_total"] == 2
        # a finished job still satisfies dedupe: same key, same result
        replay = (await client.post("/v1/jobs", json_body=POINT)).json()
        assert replay["job"] == first["job"] and replay["deduped"]


def test_queue_full_returns_429_with_retry_after(monkeypatch):
    fake = FakeRunner(blocking=True)
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test(ServeSettings(workers=1, queue_limit=1, retry_after=7,
                              job_timeout=30))
    async def _(client, app):
        running = (await client.post("/v1/jobs", json_body=POINT)).json()
        await wait_state(client, running["job"], "running")
        queued = await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.31})
        assert queued.status == 202
        rejected = await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.32})
        assert rejected.status == 429
        assert rejected.headers["retry-after"] == "7"
        assert "queue_limit" in rejected.json()["error"]
        fake.release.set()
        await wait_state(client, queued.json()["job"], "done")
        # capacity is back: the same payload is accepted now
        assert (await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.33})).status == 202


def test_cancel_running_and_queued(monkeypatch):
    fake = FakeRunner(blocking=True)
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test(ServeSettings(workers=1, job_timeout=30))
    async def _(client, app):
        running = (await client.post("/v1/jobs", json_body=POINT)).json()
        await wait_state(client, running["job"], "running")
        queued = (await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.4})).json()
        assert (await client.delete(f"/v1/jobs/{queued['job']}")).status == 202
        assert (await client.delete(f"/v1/jobs/{running['job']}")).status == 202
        ran = await wait_state(client, running["job"], "cancelled")
        held = await wait_state(client, queued["job"], "cancelled")
        assert ran["error"]["type"] == "cancelled"
        assert held["error"]["type"] == "cancelled"
        # cancelled jobs do not satisfy dedupe: resubmission runs anew
        fake.blocking = False
        again = (await client.post("/v1/jobs", json_body=POINT)).json()
        assert again["job"] != running["job"] and not again["deduped"]
        await wait_state(client, again["job"], "done")


def test_job_timeout_marks_job_cancelled(monkeypatch):
    fake = FakeRunner(blocking=True)
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test(ServeSettings(workers=1, job_timeout=0.1))
    async def _(client, app):
        job = (await client.post("/v1/jobs", json_body=POINT)).json()["job"]
        body = await wait_state(client, job, "cancelled")
        assert body["timed_out"] is True
        assert body["error"]["type"] == "timeout"
        assert "job_timeout" in body["error"]["message"]


def test_conservation_violation_fails_job(monkeypatch):
    report = {"check": "flow_conservation", "ok": False, "injected": 10,
              "delivered": 8, "in_flight": 1,
              "in_flight_at_window_start": 0, "expected_in_flight": 2}
    fake = FakeRunner(error=FlowConservationError(report))
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test()
    async def _(client, app):
        job = (await client.post("/v1/jobs", json_body=POINT)).json()["job"]
        body = await wait_state(client, job, "failed")
        assert body["error"]["type"] == "flow_conservation"
        assert body["error"]["report"]["expected_in_flight"] == 2
        assert "injected=10" in body["error"]["message"]


def test_simulation_error_fails_job_and_allows_retry(monkeypatch):
    fake = FakeRunner(error=ValueError("boom"))
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test()
    async def _(client, app):
        job = (await client.post("/v1/jobs", json_body=POINT)).json()["job"]
        body = await wait_state(client, job, "failed")
        assert body["error"] == {"type": "ValueError", "message": "boom"}
        fake.error = None  # failed jobs never dedupe: retry really reruns
        retry = (await client.post("/v1/jobs", json_body=POINT)).json()
        assert retry["job"] != job and not retry["deduped"]
        await wait_state(client, retry["job"], "done")
        assert fake.calls == 2


def test_stream_stops_on_client_disconnect(monkeypatch):
    fake = FakeRunner(rows=[{"type": "meta"}], blocking=True)
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test()
    async def _(client, app):
        job = (await client.post("/v1/jobs", json_body=POINT)).json()["job"]
        hangup = asyncio.Event()
        streamer = asyncio.create_task(
            client.get(f"/v1/jobs/{job}/stream", disconnect=hangup))
        await wait_state(client, job, "running")
        await asyncio.sleep(0.05)  # let the emitted row reach the stream
        hangup.set()
        partial = await asyncio.wait_for(streamer, timeout=5)
        assert partial.jsonl() == [{"type": "meta"}]
        # the job itself is unaffected by the subscriber leaving
        fake.release.set()
        assert (await wait_state(client, job, "done"))["state"] == "done"


def test_finished_jobs_evicted_beyond_keep_jobs(monkeypatch):
    fake = FakeRunner()
    monkeypatch.setattr(serve_runner, "run_submission", fake)

    @serve_test(ServeSettings(workers=1, keep_jobs=1, job_timeout=30))
    async def _(client, app):
        first = (await client.post("/v1/jobs", json_body=POINT)).json()["job"]
        await wait_state(client, first, "done")
        second = (await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.5})).json()["job"]
        await wait_state(client, second, "done")
        third = (await client.post(
            "/v1/jobs", json_body={**POINT, "load": 0.6})).json()["job"]
        await wait_state(client, third, "done")
        assert (await client.get(f"/v1/jobs/{first}")).status == 404
        assert (await client.get(f"/v1/jobs/{third}")).status == 200
        # evicted key no longer dedupes; it re-runs instead
        again = (await client.post("/v1/jobs", json_body=POINT)).json()
        assert again["job"] != first and not again["deduped"]
        await wait_state(client, again["job"], "done")


# ------------------------------------------- scheduler-backed run_submission
def _tiny_spec_payload(**extra):
    return {"spec": {"config": {"h": 2, "routing": "minimal"},
                     "pattern": "uniform", "loads": [0.1, 0.2],
                     "warmup": 100, "measure": 100}, **extra}


def test_submission_progress_flag_parses_and_keys():
    plain = parse_submission(_tiny_spec_payload())
    verbose = parse_submission(_tiny_spec_payload(progress=True))
    assert not plain.progress and verbose.progress
    assert plain.key() != verbose.key()  # different stream → no dedupe
    with pytest.raises(SubmissionError, match="progress"):
        parse_submission(_tiny_spec_payload(progress="yes"))


def test_run_submission_emits_progress_rows_only_on_opt_in():
    rows = []
    result = serve_runner.run_submission(
        parse_submission(_tiny_spec_payload()), emit=rows.append)
    assert result["executed_points"] == 2
    assert not [r for r in rows if r.get("event") == "point"]

    rows = []
    serve_runner.run_submission(
        parse_submission(_tiny_spec_payload(progress=True)), emit=rows.append)
    prog = [r for r in rows if r.get("event") == "point"]
    assert [p["completed"] for p in prog] == [1, 2]
    assert all(p["status"] == "computed" and p["total"] == 2 for p in prog)
    # progress rows are extra — the metrics rows themselves are unchanged
    metrics = [r for r in rows if r.get("event") != "point"]
    assert any("throughput" in r for r in metrics)


def test_run_submission_quarantines_bad_point_and_completes():
    import dataclasses

    sub = parse_submission(_tiny_spec_payload(progress=True))
    bad = dataclasses.replace(sub.points[1], pattern="no_such_pattern")
    mixed = dataclasses.replace(sub, points=(sub.points[0], bad))
    rows = []
    result = serve_runner.run_submission(mixed, max_retries=1,
                                         emit=rows.append)
    assert len(result["records"]) == 1
    (err,) = result["point_errors"]
    assert err["index"] == 1 and err["attempts"] == 2
    assert err["key"] == bad.key()
    failed = [r for r in rows if r.get("event") == "point"
              and r["status"] == "failed"]
    assert len(failed) == 1 and failed[0]["error"] == err["error"]


def test_run_submission_all_points_failed_raises_original():
    import dataclasses

    sub = parse_submission(_tiny_spec_payload())
    poisoned = tuple(dataclasses.replace(p, pattern="no_such_pattern")
                     for p in sub.points)
    with pytest.raises(Exception, match="no_such_pattern"):
        serve_runner.run_submission(dataclasses.replace(sub, points=poisoned))


def test_run_submission_cancellation_is_never_retried():
    cancelled = threading.Event()
    cancelled.set()
    with pytest.raises(serve_runner.JobCancelled):
        serve_runner.run_submission(parse_submission(_tiny_spec_payload()),
                                    cancelled=cancelled, max_retries=5)


def test_stats_counts_quarantined_points(monkeypatch):
    seen_retries = []

    def with_errors(submission, *, max_retries=0, **kw):
        seen_retries.append(max_retries)
        return {"records": [], "aggregated": False,
                "executed_points": 1, "cached_points": 0,
                "point_errors": [{"index": 0, "error": "ValueError"}]}

    monkeypatch.setattr(serve_runner, "run_submission", with_errors)

    @serve_test(ServeSettings(workers=1, point_retries=3))
    async def _(client, app):
        resp = await client.post("/v1/jobs", json_body=_tiny_spec_payload())
        job_id = resp.json()["job"]
        body = await wait_state(client, job_id, "done")
        assert body["result"]["point_errors"] == [
            {"index": 0, "error": "ValueError"}]
        stats = (await client.get("/v1/stats")).json()
        assert stats["quarantined_points"] == 1
        assert stats["settings"]["point_retries"] == 3
        assert seen_retries == [3]
