"""Packet/flit and flow-control unit tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flowcontrol import (
    VirtualCutThrough,
    Wormhole,
    flow_control_by_name,
)
from repro.network.packet import Packet, flitize


def make_packet(size=8) -> Packet:
    return Packet(0, 0, 9, size, 0, 0, 0, 4, 1)


def test_flitize_single():
    p = make_packet(8)
    flits = flitize(p, 8)
    assert len(flits) == 1
    assert flits[0].is_head and flits[0].is_tail
    assert flits[0].size == 8


def test_flitize_exact_division():
    p = make_packet(80)
    flits = flitize(p, 10)
    assert len(flits) == 8
    assert flits[0].is_head and not flits[0].is_tail
    assert flits[-1].is_tail and not flits[-1].is_head
    assert all(not f.is_head and not f.is_tail for f in flits[1:-1])
    assert sum(f.size for f in flits) == 80
    assert [f.index for f in flits] == list(range(8))


def test_flitize_remainder():
    p = make_packet(25)
    flits = flitize(p, 10)
    assert [f.size for f in flits] == [10, 10, 5]
    assert flits[-1].is_tail


def test_flitize_rejects_bad_size():
    with pytest.raises(ValueError):
        flitize(make_packet(8), 0)


@given(size=st.integers(1, 300), flit=st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_flitize_properties(size, flit):
    p = make_packet(size)
    flits = flitize(p, flit)
    assert sum(f.size for f in flits) == size
    assert flits[0].is_head
    assert flits[-1].is_tail
    assert sum(f.is_head for f in flits) == 1
    assert sum(f.is_tail for f in flits) == 1
    assert all(f.size > 0 for f in flits)
    assert all(f.size <= flit for f in flits)


def test_vct_semantics():
    fc = VirtualCutThrough()
    p = make_packet(8)
    (flit,) = fc.flits_of(p)
    assert fc.required_space(flit) == 8  # whole packet
    assert fc.arrival_delay(10, flit) == 11  # cut-through: head routable fast
    assert fc.whole_packet_reservation


def test_wh_semantics():
    fc = Wormhole(10)
    p = make_packet(80)
    flits = fc.flits_of(p)
    assert len(flits) == 8
    assert fc.required_space(flits[0]) == 10  # one flit only
    assert fc.arrival_delay(10, flits[0]) == 20  # store-and-forward per flit
    assert not fc.whole_packet_reservation
    with pytest.raises(ValueError):
        Wormhole(0)


def test_factory():
    assert isinstance(flow_control_by_name("vct"), VirtualCutThrough)
    wh = flow_control_by_name("wh", flit_size=10)
    assert isinstance(wh, Wormhole) and wh.flit_size == 10
    with pytest.raises(ValueError):
        flow_control_by_name("bubble")


def test_factory_wh_requires_explicit_flit_size():
    """The old default (flit_size=0) crashed deep inside Wormhole.__init__."""
    with pytest.raises(ValueError, match="explicit flit size"):
        flow_control_by_name("wh")
    with pytest.raises(ValueError, match="flit_size must be positive"):
        flow_control_by_name("wh", flit_size=0)  # explicit garbage stays loud
    assert isinstance(flow_control_by_name("vct"), VirtualCutThrough)  # no size needed


def test_both_policies_build_from_config():
    from repro.network.config import paper_vct_config, paper_wh_config
    from repro.registry import FLOW_CONTROL_REGISTRY

    vct_cfg, wh_cfg = paper_vct_config(), paper_wh_config()
    vct = FLOW_CONTROL_REGISTRY.get(vct_cfg.flow_control).from_config(vct_cfg)
    assert isinstance(vct, VirtualCutThrough)
    wh = FLOW_CONTROL_REGISTRY.get(wh_cfg.flow_control).from_config(wh_cfg)
    assert isinstance(wh, Wormhole) and wh.flit_size == wh_cfg.flit_phits
    p = make_packet(wh_cfg.packet_phits)
    assert sum(f.size for f in wh.flits_of(p)) == wh_cfg.packet_phits
    (vf,) = vct.flits_of(make_packet(vct_cfg.packet_phits))
    assert vf.is_head and vf.is_tail


def test_packet_initial_routing_state():
    p = make_packet()
    assert p.valiant_group is None
    assert not p.committed
    assert p.g_hops == 0 and p.local_hops_group == 0 and p.local_hops_total == 0
    assert not p.misrouted_group and p.prev_local_type is None
    assert p.local_misroutes == 0 and not p.global_misrouted
    assert p.delivered_cycle is None
