"""Parity-sign restriction (Table I) unit + property tests."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paritysign import (
    EVEN_MINUS,
    EVEN_PLUS,
    ODD_MINUS,
    ODD_PLUS,
    allowed_intermediates,
    build_allowed_table,
    hop_pair_allowed,
    link_type,
    min_route_guarantee,
    pair_allowed,
)

# The paper's Table I, verbatim: (first, second) -> allowed
PAPER_TABLE_I = {
    (ODD_MINUS, EVEN_PLUS): True,
    (ODD_MINUS, EVEN_MINUS): True,
    (ODD_MINUS, ODD_PLUS): True,
    (ODD_MINUS, ODD_MINUS): True,
    (EVEN_PLUS, EVEN_PLUS): True,
    (EVEN_PLUS, EVEN_MINUS): True,
    (EVEN_PLUS, ODD_PLUS): True,
    (EVEN_PLUS, ODD_MINUS): False,
    (ODD_PLUS, EVEN_PLUS): False,
    (ODD_PLUS, EVEN_MINUS): True,
    (ODD_PLUS, ODD_PLUS): True,
    (ODD_PLUS, ODD_MINUS): False,
    (EVEN_MINUS, EVEN_PLUS): False,
    (EVEN_MINUS, EVEN_MINUS): True,
    (EVEN_MINUS, ODD_PLUS): False,
    (EVEN_MINUS, ODD_MINUS): False,
}


def test_table_matches_paper_exactly():
    for (t1, t2), allowed in PAPER_TABLE_I.items():
        assert pair_allowed(t1, t2) == allowed, (t1, t2)


def test_link_type_classification():
    assert link_type(3, 6) == ODD_PLUS      # 3->6: different parity, ascending
    assert link_type(6, 3) == ODD_MINUS
    assert link_type(5, 2) == ODD_MINUS     # the paper's odd example (5-2)
    assert link_type(1, 7) == EVEN_PLUS     # the paper's even example (1-7)
    assert link_type(7, 1) == EVEN_MINUS
    assert link_type(0, 2) == EVEN_PLUS
    with pytest.raises(ValueError):
        link_type(4, 4)


def test_paper_figure2_examples():
    # combination 1: 0 -> 1 through 5 — forbidden under sign-only, but the
    # parity-sign table decides by types: (0->5) odd+, (5->1) even-
    assert pair_allowed(link_type(0, 5), link_type(5, 1))
    # combination 2: 5 -> 0 through 1 is [even-, odd-]: forbidden
    assert not hop_pair_allowed(5, 1, 0)
    # valid alternatives from 5 to 0: via 2 and 4 ([odd-, odd-]) and 6 ([odd+, odd-])
    assert hop_pair_allowed(5, 2, 0)
    assert hop_pair_allowed(5, 4, 0)
    assert hop_pair_allowed(5, 6, 0)
    assert allowed_intermediates(5, 0, 8) == (2, 4, 6)


@pytest.mark.parametrize("a", [4, 6, 8, 10, 12, 16])
def test_route_count_guarantee(a):
    """At least h-1 = a/2-1 two-hop routes between every pair (paper claim)."""
    assert min_route_guarantee(a) >= a // 2 - 1


@pytest.mark.parametrize("order", list(itertools.permutations(range(4))))
def test_construction_any_order_consistent(order):
    """The marking procedure fully decides the table for any type order."""
    table = build_allowed_table(order)
    # same-type pairs always allowed
    for t in range(4):
        assert table[t][t]
    # exactly 10 allowed / 6 forbidden for every order
    assert sum(cell for row in table for cell in row) == 10
    # pair (x, y) with x != y: allowed iff x comes before y in the order
    pos = {t: i for i, t in enumerate(order)}
    for x in range(4):
        for y in range(4):
            if x != y:
                assert table[x][y] == (pos[x] < pos[y])


def test_construction_rejects_bad_order():
    with pytest.raises(ValueError):
        build_allowed_table((0, 1, 2, 2))


@pytest.mark.parametrize("a", [4, 6, 8, 10])
def test_channel_dependency_graph_acyclic(a):
    """The deadlock-freedom core: allowed 2-hop chains cannot loop.

    Nodes are directed local links (i, j); an edge (i,j) -> (j,k) exists
    when Table I allows the combination.  RLM is deadlock-free inside a
    supernode iff this dependency graph is a DAG.
    """
    g = nx.DiGraph()
    for i in range(a):
        for j in range(a):
            if i != j:
                g.add_node((i, j))
    for i, j, k in itertools.permutations(range(a), 3):
        if pair_allowed(link_type(i, j), link_type(j, k)):
            g.add_edge((i, j), (j, k))
    assert nx.is_directed_acyclic_graph(g)


def test_sign_only_is_unbalanced():
    """The paper's motivation for parity-sign: sign-only starves some pairs.

    Forbidding (+,-) leaves zero non-minimal routes from 0 to 1 (all 2-hop
    routes 0->k->1 with k>1 are (+,-)), while 0 to a-1 keeps many.
    """
    a = 8

    def sign_only_allowed(i, k, j):
        first_positive = k > i
        second_positive = j > k
        return not (first_positive and not second_positive)  # forbid (+, -)

    routes_0_1 = [k for k in range(2, a) if sign_only_allowed(0, k, 1)]
    assert routes_0_1 == []  # every 0->k->1 is (+,-): starved pair
    routes_0_7 = [k for k in range(1, a - 1) if sign_only_allowed(0, k, a - 1)]
    assert len(routes_0_7) == a - 2  # every 0->k->7 is (+,+): maximal pair


@given(
    a=st.sampled_from([4, 6, 8, 10, 12]),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_allowed_intermediates_properties(a, data):
    i = data.draw(st.integers(0, a - 1))
    j = data.draw(st.integers(0, a - 1).filter(lambda x: x != i))
    inter = allowed_intermediates(i, j, a)
    assert i not in inter and j not in inter
    assert len(set(inter)) == len(inter)
    assert len(inter) >= a // 2 - 1
    for k in inter:
        assert hop_pair_allowed(i, k, j)


@given(i=st.integers(0, 31), j=st.integers(0, 31))
@settings(max_examples=100, deadline=None)
def test_link_type_antisymmetry(i, j):
    """Reversing a hop flips the sign and keeps the parity."""
    if i == j:
        return
    t, r = link_type(i, j), link_type(j, i)
    sign_of = {ODD_PLUS: 1, EVEN_PLUS: 1, ODD_MINUS: -1, EVEN_MINUS: -1}
    odd_of = {ODD_PLUS: True, ODD_MINUS: True, EVEN_PLUS: False, EVEN_MINUS: False}
    assert sign_of[t] == -sign_of[r]
    assert odd_of[t] == odd_of[r]
