"""Per-mechanism virtual-channel discipline, validated on replayed paths.

These are the paper's deadlock-freedom arguments turned into runtime
invariants: ascending Günther chains (MIN/VAL/PB/PAR-6/2), the RLM
per-supernode VC + Table I restriction, and the OLM escape-level bound.
"""

import pytest

from repro.traffic.patterns import (
    AdversarialGlobal,
    AdversarialLocal,
    MixedGlobalLocal,
    UniformRandom,
)

from tests.helpers import (
    assert_ascending_vcs,
    assert_olm_discipline,
    assert_rlm_discipline,
    bernoulli_sim,
    collect_delivered,
)

PATTERNS = [
    ("uniform", UniformRandom()),
    ("advg1", AdversarialGlobal(1)),
    ("advgh", AdversarialGlobal(2)),
    ("advl", AdversarialLocal(1)),
    ("mixed", MixedGlobalLocal(0.5, global_offset=2)),
]


@pytest.mark.parametrize("pattern_name,pattern", PATTERNS)
@pytest.mark.parametrize("routing", ["minimal", "valiant", "pb"])
def test_static_mechanisms_ascend(routing, pattern_name, pattern):
    sim = bernoulli_sim(routing, pattern, 0.5)
    for pkt in collect_delivered(sim, 300):
        assert_ascending_vcs(sim, pkt, local_vcs=3)


@pytest.mark.parametrize("pattern_name,pattern", PATTERNS)
def test_par62_ascends_with_six_vcs(pattern_name, pattern):
    sim = bernoulli_sim("par62", pattern, 0.6)
    for pkt in collect_delivered(sim, 300):
        assert_ascending_vcs(sim, pkt, local_vcs=6)


@pytest.mark.parametrize("pattern_name,pattern", PATTERNS)
def test_rlm_discipline(pattern_name, pattern):
    sim = bernoulli_sim("rlm", pattern, 0.6)
    for pkt in collect_delivered(sim, 300):
        assert_rlm_discipline(sim, pkt)


@pytest.mark.parametrize("pattern_name,pattern", PATTERNS)
def test_olm_discipline(pattern_name, pattern):
    sim = bernoulli_sim("olm", pattern, 0.6)
    for pkt in collect_delivered(sim, 300):
        assert_olm_discipline(sim, pkt)


@pytest.mark.parametrize("routing", ["par62", "rlm"])
def test_wormhole_discipline(routing):
    sim = bernoulli_sim(routing, AdversarialGlobal(1), 0.3,
                        flow_control="wh", packet_phits=40, flit_phits=10)
    pkts = collect_delivered(sim, 150)
    for pkt in pkts:
        if routing == "rlm":
            assert_rlm_discipline(sim, pkt)
        else:
            assert_ascending_vcs(sim, pkt, local_vcs=6)


def test_route_length_bound_eight_hops():
    """No route exceeds l-l-g-l-l-g-l-l (8 link hops) for any mechanism."""
    for routing in ("par62", "rlm", "olm"):
        sim = bernoulli_sim(routing, MixedGlobalLocal(0.5, 2), 0.7)
        for pkt in collect_delivered(sim, 200):
            hops = len(pkt.hops_log) - 1  # drop the ejection entry
            assert hops <= 8, (routing, pkt.hops_log)
            assert pkt.g_hops <= 2
            assert pkt.local_misroutes <= 3


def test_minimal_paths_are_minimal():
    sim = bernoulli_sim("minimal", UniformRandom(), 0.3)
    for pkt in collect_delivered(sim, 200):
        hops = len(pkt.hops_log) - 1
        assert hops == sim.topo.minimal_hops(pkt.src_router, pkt.dst_router)


def test_valiant_always_detours():
    sim = bernoulli_sim("valiant", AdversarialGlobal(1), 0.3)
    for pkt in collect_delivered(sim, 200):
        if pkt.dst_router != pkt.src_router:
            assert pkt.global_misrouted
            assert pkt.g_hops == 2
