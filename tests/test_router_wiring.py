"""Router construction and inter-router wiring invariants."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.topology.dragonfly import PortKind


@pytest.fixture(scope="module")
def sim():
    return Simulator(SimConfig(h=2, routing="rlm", seed=1))


def test_port_layout(sim):
    topo = sim.topo
    for router in sim.routers[:8]:
        assert len(router.outputs) == topo.p + (topo.a - 1) + topo.h
        assert len(router.inputs) == topo.p + (topo.a - 1) + topo.h
        kinds = [o.kind for o in router.outputs]
        assert kinds == (
            [PortKind.EJECT] * topo.p
            + [PortKind.LOCAL] * (topo.a - 1)
            + [PortKind.GLOBAL] * topo.h
        )
        for k in range(topo.p):
            assert router.inputs[k].is_injection
            assert len(router.inputs[k].vcs) == 1
        for q in range(topo.a - 1):
            assert len(router.inputs[topo.p + q].vcs) == sim.local_vcs
        for k in range(topo.h):
            assert len(router.inputs[topo.p + topo.a - 1 + k].vcs) == sim.global_vcs


def test_output_helpers(sim):
    router = sim.routers[0]
    topo = sim.topo
    assert router.out_eject(1) == 1
    assert router.out_local(0) == topo.p
    assert router.out_global(0) == topo.p + topo.a - 1
    assert router.outputs[router.out_global(topo.h - 1)].kind == PortKind.GLOBAL


def test_wiring_bidirectional(sim):
    """Every output's (dest_router, dest_port) points back to a matching input."""
    topo = sim.topo
    for router in sim.routers:
        for out in router.outputs:
            if out.kind == PortKind.EJECT:
                assert out.dest_router is None
                continue
            dest = sim.routers[out.dest_router]
            ip = dest.inputs[out.dest_port]
            assert not ip.is_injection
            # the upstream pointer of that input must be this very output
            for vcb in ip.vcs:
                assert vcb.upstream_output is out
            if out.kind == PortKind.LOCAL:
                assert topo.group_of(dest.rid) == router.group
                assert out.latency == sim.config.local_latency
                assert out.capacity == sim.config.local_buffer_phits
            else:
                assert topo.group_of(dest.rid) != router.group
                assert out.latency == sim.config.global_latency
                assert out.capacity == sim.config.global_buffer_phits


def test_every_link_input_has_exactly_one_feeder(sim):
    feeders: dict = {}
    for router in sim.routers:
        for out in router.outputs:
            if out.kind == PortKind.EJECT:
                continue
            key = (out.dest_router, out.dest_port)
            assert key not in feeders, "two outputs feed one input port"
            feeders[key] = out
    # every non-injection input port of every router is fed
    for router in sim.routers:
        for ip in router.inputs:
            if not ip.is_injection:
                assert (router.rid, ip.index) in feeders


def test_can_accept_credit_and_busy_rules(sim):
    router = sim.routers[0]
    out_idx = router.out_local(0)
    out = router.outputs[out_idx]

    class FakeFlit:
        size = 8
        is_tail = True
        is_head = True

    flit = FakeFlit()
    assert router.can_accept(out_idx, 0, flit, now=0)
    out.busy_until = 5
    assert not router.can_accept(out_idx, 0, flit, now=4)
    assert router.can_accept(out_idx, 0, flit, now=5)
    out.credits[0] = 7
    assert not router.can_accept(out_idx, 0, flit, now=5)
    out.credits[0] = 8
    assert router.can_accept(out_idx, 0, flit, now=5)
    # restore shared fixture state
    out.busy_until = 0
    out.credits[0] = out.capacity


def test_wormhole_ownership_rules():
    sim = Simulator(SimConfig(h=2, routing="rlm", flow_control="wh",
                              packet_phits=20, flit_phits=10, seed=1))
    router = sim.routers[0]
    out_idx = router.out_local(0)
    out = router.outputs[out_idx]

    class FakePacket:
        pid = 7

    class Head:
        size = 10
        is_tail = False
        is_head = True
        packet = FakePacket()

    class Body:
        size = 10
        is_tail = True
        is_head = False
        packet = FakePacket()

    head, body = Head(), Body()
    assert router.can_accept(out_idx, 0, head, 0)
    out.owner[0] = 99  # someone else holds the VC
    assert not router.can_accept(out_idx, 0, head, 0)
    assert not router.can_accept_body(out_idx, 0, body, 0)
    out.owner[0] = 7
    assert router.can_accept_body(out_idx, 0, body, 0)


def test_eject_ports_always_creditless(sim):
    router = sim.routers[3]
    out = router.outputs[router.out_eject(0)]
    assert out.capacity == 0
    assert out.dest_router is None and out.dest_port is None
