"""Channel-dependency-graph verification of the paper's §III claims."""

import networkx as nx
import pytest

from repro.analysis.cdg import (
    build_cdg,
    cycle_witness,
    escape_reachable,
    is_deadlock_free,
)
from repro.topology import Dragonfly

TOPO = Dragonfly(2)


@pytest.mark.parametrize("mechanism", ["minimal", "valiant", "pb", "par62", "rlm"])
def test_full_cdg_acyclic(mechanism):
    """All mechanisms but OLM have an acyclic full dependency graph."""
    assert is_deadlock_free(TOPO, mechanism)
    assert cycle_witness(TOPO, mechanism) is None


def test_rlm_without_restriction_has_cycles():
    """The counterfactual: unrestricted same-VC local misrouting deadlocks."""
    cycle = cycle_witness(TOPO, "rlm", rlm_restricted=False)
    assert cycle is not None
    # the witness cycle lives on local channels of one group, as §III-B argues
    kinds = {edge[0][0] for edge in cycle}
    assert kinds == {"L"}
    groups = {TOPO.group_of(edge[0][1]) for edge in cycle}
    assert len(groups) == 1


def test_olm_full_graph_is_cyclic_by_design():
    cycle = cycle_witness(TOPO, "olm")
    assert cycle is not None


def test_olm_escape_graph_is_dag_and_reachable():
    escape = build_cdg(TOPO, "olm", escape_only=True)
    assert nx.is_directed_acyclic_graph(escape)
    assert escape_reachable(TOPO)
    assert is_deadlock_free(TOPO, "olm")


def test_unknown_mechanism_rejected():
    with pytest.raises(ValueError):
        build_cdg(TOPO, "ofar")


@pytest.mark.parametrize("h", [1, 3])
def test_cdg_scales_with_h(h):
    topo = Dragonfly(h)
    assert is_deadlock_free(topo, "rlm")
    assert is_deadlock_free(topo, "olm")


def test_cdg_node_population():
    g = build_cdg(TOPO, "minimal")
    a, groups = TOPO.a, TOPO.num_groups
    n_local = groups * a * (a - 1) * 3          # ordered pairs x 3 VCs
    n_global = TOPO.num_routers * TOPO.h * 2    # directed global channels x 2 VCs
    n_eject = TOPO.num_routers
    assert g.number_of_nodes() == n_local + n_global + n_eject


def test_ejection_nodes_are_sinks():
    g = build_cdg(TOPO, "rlm")
    for node in g.nodes:
        if node[0] == "EJ":
            assert g.out_degree(node) == 0


def test_par62_rank_edges_ascend():
    """Every PAR-6/2 dependency increases the Günther rank."""
    lrank = [0, 1, 3, 4, 6, 7]
    grank = [2, 5]

    def rank(node):
        if node[0] == "L":
            return lrank[node[3]]
        if node[0] == "G":
            return grank[node[3]]
        return 99

    g = build_cdg(TOPO, "par62")
    for u, v in g.edges:
        assert rank(v) > rank(u), (u, v)
