"""Streaming scheduler: retry, worker-death resume, sharding, crash resume.

The elastic-execution acceptance criteria live here:

* a SIGKILL-ed pool worker mid-plan never loses the plan — the pool is
  respawned, only the lost attempts are resubmitted, everything
  completes;
* a killed *run* resumes from the cache with zero recomputation;
* points that keep failing are quarantined as structured
  :class:`PointError` records after every other point completed;
* records are byte-identical (canonical JSON) between a serial run, a
  process-pool run, a resumed run and the union of shard runs.
"""

import json
import os
import signal

import pytest

from repro.network.config import paper_vct_config
from repro.runplan import (
    PlanExecutionError,
    PointError,
    PoolScheduler,
    ProcessExecutor,
    ResultCache,
    RunSpec,
    SerialScheduler,
    canonical_record_json,
    execute_points,
    expand_specs,
    in_shard,
    parse_shard,
    replica_seeds,
    shard_points,
)

WARMUP = MEASURE = 250


def tiny_points(loads=(0.1, 0.2, 0.3), routing="minimal", seed=3, seeds=1):
    spec = RunSpec(config=paper_vct_config(h=2, routing=routing, seed=seed),
                   pattern="uniform", loads=loads, warmup=WARMUP,
                   measure=MEASURE, seeds=replica_seeds(seed, seeds))
    return expand_specs([spec])


# --------------------------------------------------- picklable pool workers
def square(x):
    return x * x


def kill_once(arg):
    """SIGKILL this worker process the first time it sees ``arg``.

    The marker file (under the test's tmp dir) records that the kill
    already happened, so the retried attempt — in the respawned pool —
    succeeds: a deterministic one-shot worker death.
    """
    value, marker = arg
    if marker is not None and not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def always_die(arg):
    os.kill(os.getpid(), signal.SIGKILL)


def fail_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x * x


# ----------------------------------------------------------- serial contract
def test_serial_scheduler_streams_in_order():
    s = SerialScheduler()
    assert list(s.run(square, [1, 2, 3])) == [(0, 1), (1, 4), (2, 9)]
    assert s.attempt_counts == {0: 1, 1: 1, 2: 1}


def test_serial_scheduler_retries_transient_failure():
    failures = {"left": 2}

    def flaky(x):
        if failures["left"]:
            failures["left"] -= 1
            raise RuntimeError("transient")
        return x

    s = SerialScheduler(max_retries=2)
    assert list(s.run(flaky, ["ok"])) == [(0, "ok")]
    assert s.attempt_counts[0] == 3


def test_serial_scheduler_quarantines_after_max_retries():
    s = SerialScheduler(max_retries=1)
    results = dict(s.run(fail_odd, [2, 3, 4]))
    assert results[0] == 4 and results[2] == 16
    err = results[1]
    assert isinstance(err, PointError)
    assert err.error == "ValueError" and err.attempts == 2
    assert not err.worker_death
    assert isinstance(err.exception, ValueError)


def test_serial_scheduler_fatal_never_retried():
    calls = []

    def boom(x):
        calls.append(x)
        raise KeyboardInterrupt

    s = SerialScheduler(max_retries=5, fatal=(KeyboardInterrupt,))
    with pytest.raises(KeyboardInterrupt):
        list(s.run(boom, [1]))
    assert calls == [1]


# ------------------------------------------------------------- pool contract
def test_pool_scheduler_completes_all_points():
    s = PoolScheduler(jobs=2)
    results = dict(s.run(square, list(range(8))))
    assert results == {i: i * i for i in range(8)}
    assert s.respawns == 0


def test_pool_survives_worker_sigkill(tmp_path):
    """Acceptance: SIGKILL a pool worker mid-plan; the plan completes."""
    marker = str(tmp_path / "killed")
    items = [(i, marker if i == 3 else None) for i in range(8)]
    s = PoolScheduler(jobs=2, max_retries=2, backoff=0.01)
    results = dict(s.run(kill_once, items))
    assert results == {i: i * i for i in range(8)}
    assert s.respawns >= 1
    assert os.path.exists(marker)
    # the killed point needed more than one attempt; innocents at most
    # jobs-bounded blame, and nothing exceeded the retry budget
    assert s.attempt_counts[3] >= 2
    assert all(n <= 3 for n in s.attempt_counts.values())


def test_pool_quarantines_poison_points():
    """Points that kill every worker they touch are quarantined as
    structured worker-death records (all-poison, so no innocent
    in-flight neighbour can be blamed into quarantine by the broken
    pool — innocents are covered by the kill-once test above)."""
    s = PoolScheduler(jobs=2, max_retries=1, backoff=0.01)
    results = dict(s.run(always_die, ["a", "b"]))
    assert set(results) == {0, 1}
    for err in results.values():
        assert isinstance(err, PointError)
        assert err.worker_death and err.error == "WorkerDeath"
        assert err.attempts == 2  # 1 + max_retries, never more


def test_pool_scheduler_rejects_bad_jobs():
    with pytest.raises(ValueError, match="jobs >= 1"):
        PoolScheduler(jobs=0)


def test_process_executor_streams_out_of_order_results():
    ex = ProcessExecutor(jobs=2)
    results = dict(ex.run(square, list(range(6))))
    assert results == {i: i * i for i in range(6)}


# ------------------------------------------------------------------ sharding
def test_parse_shard_grammar():
    assert parse_shard("0/2") == (0, 2)
    assert parse_shard("3/8") == (3, 8)
    for bad in ("", "2", "2/2", "-1/2", "a/b", "1/0", "1/2/3"):
        with pytest.raises(ValueError):
            parse_shard(bad)


def test_shard_points_partition_is_exact():
    points = tiny_points(loads=(0.1, 0.2, 0.3, 0.4), seeds=3)
    count = 3
    shards = [shard_points(points, i, count) for i in range(count)]
    # disjoint, union = whole plan, plan order preserved
    seen = [p.key() for shard in shards for p in shard]
    assert sorted(seen) == sorted(p.key() for p in points)
    assert len(set(seen)) == len(points)
    for shard in shards:
        keys = [p.key() for p in shard]
        plan_order = [p.key() for p in points if p.key() in set(keys)]
        assert keys == plan_order
    # membership is content-addressed: independent of list order
    for p in points:
        assert sum(in_shard(p, i, count) for i in range(count)) == 1
    assert shard_points(points, 0, 1) == list(points)


def test_shard_union_byte_identical_to_serial(tmp_path):
    """Acceptance: shard caches union to the serial run, byte for byte."""
    # seed 1 gives a 3/3 split across the two shards (content-hash
    # partition: which shard a point lands in is luck of the hash)
    points = tiny_points(loads=(0.1, 0.2, 0.3), seed=1, seeds=2)
    serial_cache = ResultCache(tmp_path / "serial")
    serial = execute_points(points, cache=serial_cache)

    shard_cache = ResultCache(tmp_path / "shards")  # shared by both shards
    part0 = execute_points(points, cache=shard_cache, shard="0/2")
    part1 = execute_points(points, cache=shard_cache, shard=(1, 2))
    assert len(part0) + len(part1) == len(serial)
    assert 0 < len(part0) < len(serial)  # the split is real

    union = {canonical_record_json(r) for r in part0 + part1}
    assert union == {canonical_record_json(r) for r in serial}

    # cache directories byte-identical: same keys, same file contents
    serial_entries = dict(serial_cache.iter_entries())
    shard_entries = dict(shard_cache.iter_entries())
    assert sorted(serial_entries) == sorted(shard_entries)
    for key, path in serial_entries.items():
        assert path.read_bytes() == shard_entries[key].read_bytes()


# ------------------------------------------------------- crash/resume + cache
def test_killed_run_resumes_with_zero_recomputation(tmp_path):
    """Acceptance: a run killed mid-plan replays every completed point."""
    points = tiny_points(loads=(0.1, 0.2, 0.3, 0.4))
    cache = ResultCache(tmp_path / "c")
    completed_before_kill = 2

    def die_after(outcome):
        if outcome.completed >= completed_before_kill:
            raise KeyboardInterrupt  # the "kill" lands after checkpointing

    with pytest.raises(KeyboardInterrupt):
        execute_points(points, cache=cache, on_result=die_after)
    assert len(cache) == completed_before_kill

    resumed_cache = ResultCache(tmp_path / "c")
    statuses = []
    resumed = execute_points(points, cache=resumed_cache,
                             on_result=lambda o: statuses.append(o.status))
    assert statuses.count("cached") == completed_before_kill
    assert statuses.count("computed") == len(points) - completed_before_kill
    assert resumed_cache.hits == completed_before_kill

    # resumed == serial == process, byte for byte
    serial = execute_points(points)
    process = execute_points(points, executor="process", jobs=2,
                             cache=ResultCache(tmp_path / "p"))
    for a, b, c in zip(serial, resumed, process):
        assert canonical_record_json(a) == canonical_record_json(b)
        assert canonical_record_json(a) == canonical_record_json(c)


def test_cache_checkpoint_happens_before_failure_surfaces(tmp_path, monkeypatch):
    """Quarantine is complete-then-raise: every good point is cached and
    labelled before PlanExecutionError surfaces, so the rerun only
    recomputes the quarantined point."""
    points = tiny_points(loads=(0.1, 0.2, 0.3))
    import repro.runplan.runner as runner_mod

    real = runner_mod.execute_point
    bad_key = points[1].key()

    def sabotaged(point):
        if point.key() == bad_key:
            raise RuntimeError("sabotaged point")
        return real(point)

    monkeypatch.setattr(runner_mod, "execute_point", sabotaged)
    cache = ResultCache(tmp_path / "c")
    with pytest.raises(PlanExecutionError) as ei:
        execute_points(points, cache=cache)
    assert len(cache) == len(points) - 1  # everything else checkpointed
    (err,) = ei.value.errors
    assert err.key == bad_key and err.error == "RuntimeError"
    assert err.index == 1  # plan index, not submission order

    # errors="skip" drops the quarantined slot instead of raising
    skipped = execute_points(points, cache=ResultCache(tmp_path / "s"),
                             errors="skip")
    assert len(skipped) == len(points) - 1

    # with the saboteur gone, the rerun replays the good points and only
    # computes the one that was quarantined
    monkeypatch.setattr(runner_mod, "execute_point", real)
    cache2 = ResultCache(tmp_path / "c")
    full = execute_points(points, cache=cache2)
    assert cache2.hits == len(points) - 1 and cache2.misses == 1
    assert [canonical_record_json(r) for r in full] == [
        canonical_record_json(r) for r in execute_points(points)]


def test_on_result_reports_progress_counters(tmp_path):
    points = tiny_points(loads=(0.1, 0.2))
    outcomes = []
    execute_points(points, cache=ResultCache(tmp_path / "c"),
                   on_result=outcomes.append)
    assert [o.completed for o in outcomes] == [1, 2]
    assert all(o.total == 2 for o in outcomes)
    assert {o.status for o in outcomes} == {"computed"}
    assert all(o.record is not None and o.error is None for o in outcomes)
    assert all(o.point.key() for o in outcomes)


def test_plan_execution_error_message_and_describe():
    err = PointError(index=4, attempts=3, error="ValueError",
                     message="boom", key="abc123")
    exc = PlanExecutionError([err])
    assert "1 of the plan's points failed" in str(exc)
    assert "ValueError" in str(exc) and "boom" in str(exc)
    d = err.describe()
    assert d == {"index": 4, "key": "abc123", "error": "ValueError",
                 "message": "boom", "attempts": 3, "worker_death": False}


def test_run_stats_sidecar_tracks_last_plan(tmp_path):
    points = tiny_points(loads=(0.1, 0.2))
    cache = ResultCache(tmp_path / "c")
    execute_points(points, cache=cache)
    stats = ResultCache(tmp_path / "c").last_run_stats()
    assert stats["hits"] == 0 and stats["misses"] == 2

    cache2 = ResultCache(tmp_path / "c")
    execute_points(points, cache=cache2)
    stats = ResultCache(tmp_path / "c").last_run_stats()
    assert stats["hits"] == 2 and stats["misses"] == 0


# ------------------------------------------------------------- cache pruning
def test_prune_requires_a_criterion(tmp_path):
    with pytest.raises(ValueError, match="refusing to prune"):
        ResultCache(tmp_path).prune()


def test_prune_by_age_spares_young_entries(tmp_path):
    points = tiny_points(loads=(0.1, 0.2))
    cache = ResultCache(tmp_path / "c")
    execute_points(points, cache=cache)
    now = max(p.stat().st_mtime for _, p in cache.iter_entries())
    summary = cache.prune(older_than=3600, now=now)
    assert summary["removed"] == 0 and summary["kept"] == 2
    summary = cache.prune(older_than=0, now=now + 10, dry_run=True)
    assert summary["removed"] == 2 and len(cache) == 2  # dry run: intact
    summary = cache.prune(older_than=0, now=now + 10)
    assert summary["removed"] == 2 and len(cache) == 0


def test_prune_keep_keys_protects_live_plan(tmp_path):
    from repro.runplan import plan_keys

    live = tiny_points(loads=(0.1, 0.2))
    stale = tiny_points(loads=(0.3, 0.4), seed=9)
    cache = ResultCache(tmp_path / "c")
    execute_points(live + stale, cache=cache)
    summary = cache.prune(older_than=0, keep=plan_keys(live),
                          now=os.path.getmtime(
                              next(cache.iter_entries())[1]) + 10)
    assert summary["protected"] == 2 and summary["removed"] == 2
    # prune-safety: every live-plan point is still a hit
    cache2 = ResultCache(tmp_path / "c")
    execute_points(live, cache=cache2)
    assert cache2.hits == 2 and cache2.misses == 0
    assert json.loads((cache2.root / cache2.RUN_STATS_NAME).read_text())[
        "hits"] == 2
