"""ResultCache atomicity: readers never observe a torn record.

``ResultCache.put`` writes to a uniquely-named temp file in the cache
directory and publishes it with an atomic rename.  With the serve
layer's worker threads and offline process pools sharing one cache
directory, a reader racing any writer must see either a clean miss or
a complete record — never partial JSON.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.network.config import SimConfig
from repro.runplan.cache import ResultCache
from repro.runplan.spec import RunPoint


def mk_point(seed: int = 1, load: float = 0.2) -> RunPoint:
    return RunPoint(config=SimConfig(h=1, seed=seed), pattern="uniform",
                    load=load, warmup=100, measure=100)


def test_put_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in range(5):
        cache.put(mk_point(seed=seed + 1), {"seed": seed + 1})
    assert len(cache) == 5
    leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
    assert leftovers == []


def test_record_invisible_until_rename(tmp_path, monkeypatch):
    """Mid-write (temp file fully written, not yet renamed) a reader
    must see the previous state: a miss the first time, the old record
    on overwrite."""
    cache = ResultCache(tmp_path)
    point = mk_point()
    observed = []
    real_replace = Path.replace

    def spying_replace(self, target):
        if str(target).endswith(".json"):
            observed.append(cache.get_record(point.key()))
        return real_replace(self, target)

    monkeypatch.setattr(Path, "replace", spying_replace)
    cache.put(point, {"version": 1})
    cache.put(point, {"version": 2})
    assert observed == [None, {"version": 1}]
    assert cache.get_record(point.key()) == {"version": 2}


def test_concurrent_writers_and_readers_never_tear(tmp_path):
    """Hammer one key from several writer threads while a reader spins:
    every read is a clean miss or a complete record (per-thread temp
    names keep writers from clobbering each other's files)."""
    cache = ResultCache(tmp_path)
    point = mk_point()
    record = {"payload": list(range(200)), "tag": "x" * 500}
    stop = threading.Event()
    bad: list[object] = []

    def writer():
        reader_cache = ResultCache(tmp_path)
        for _ in range(150):
            reader_cache.put(point, record)

    def reader():
        reader_cache = ResultCache(tmp_path)
        while not stop.is_set():
            got = reader_cache.get_record(point.key())
            if got is not None and got != record:
                bad.append(got)  # torn or partial read

    readers = [threading.Thread(target=reader) for _ in range(2)]
    writers = [threading.Thread(target=writer) for _ in range(4)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    assert bad == []
    assert cache.get_record(point.key()) == record
    leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
    assert leftovers == []


def test_get_record_by_raw_hash(tmp_path):
    """The serve layer's /v1/results path: raw-hash lookup, no stats."""
    cache = ResultCache(tmp_path)
    point = mk_point()
    cache.put(point, {"throughput": 0.5})
    assert cache.get_record(point.key()) == {"throughput": 0.5}
    assert cache.get_record("0" * 64) is None
    assert cache.hits == 0 and cache.misses == 0  # raw lookups: uncounted
    assert cache.get(point) == {"throughput": 0.5}
    assert cache.hits == 1  # point lookups still count
