"""Event-driven observability: taps, MetricsHub, auto steady state.

The two contracts under test:

* **free when not attached / invisible when attached** — no tap, no
  cost (the hot path stays on the fast-forward path); with a tap, the
  simulated records are byte-identical to an uninstrumented run;
* **deterministic** — series and JSONL records depend only on the
  config/seed, never on wall clock, executor or attach bookkeeping.
"""

import json
import math
from pathlib import Path

import pytest

import repro
from repro import MetricsHub, SimConfig
from repro.facade import Session, run_transient, session
from repro.metrics.hub import LatencyTap, jsonl_line
from repro.metrics.statistics import recovery_time
from repro.network.simulator import Simulator
from repro.topology.base import PortKind
from repro.traffic.patterns import UniformRandom, pattern_by_name
from repro.traffic.processes import BernoulliTraffic, BurstTraffic

GOLDENS = Path(__file__).parent / "data" / "engine_goldens.json"


def _sim(routing="olm", load=0.4, seed=7, **over):
    cfg = SimConfig(h=2, routing=routing, seed=seed, **over)
    return Simulator(cfg, BernoulliTraffic(UniformRandom(), load))


# ------------------------------------------------------------------ tap layer
class _CountingTap:
    def __init__(self):
        self.events = {"inject": 0, "grant": 0, "eject": 0, "credit": 0,
                       "ring": 0}

    def on_inject(self, pkt, cycle):
        self.events["inject"] += 1

    def on_grant(self, router, out, vc, flit, dec, cycle):
        self.events["grant"] += 1

    def on_eject(self, pkt, cycle):
        self.events["eject"] += 1

    def on_credit(self, out, vc, amount, cycle):
        self.events["credit"] += 1

    def on_ring_entry(self, router, out, vc, flit, cycle):
        self.events["ring"] += 1


def test_tap_sees_every_event_kind():
    sim = _sim()
    tap = sim.add_tap(_CountingTap())
    sim.run(800)
    ev = tap.events
    assert ev["inject"] == sim.stats.generated
    assert ev["eject"] == sim.stats.delivered
    assert ev["grant"] > ev["eject"]  # every hop grants, not just ejects
    assert ev["credit"] > 0
    assert ev["ring"] == 0  # no escape ring outside OFAR


def test_ring_tap_fires_only_on_escape_vcs():
    sim = _sim(routing="ofar", load=0.5)
    tap = sim.add_tap(_CountingTap())
    sim.run(1200)
    assert tap.events["ring"] > 0
    hub = MetricsHub(sim, bucket=200)
    sim.run(600)
    assert hub.ring_hops >= hub.ring_entries > 0


def test_remove_tap_detaches_every_event_and_is_idempotent():
    sim = _sim()
    tap = sim.add_tap(_CountingTap())
    sim.run(300)
    sim.remove_tap(tap)
    sim.remove_tap(tap)  # idempotent
    snapshot = dict(tap.events)
    sim.run(300)
    assert tap.events == snapshot
    for attr in ("_tap_inject", "_tap_grant", "_tap_credit", "_tap_ring"):
        assert getattr(sim, attr) is None  # back to the zero-cost path


def test_add_tap_rejects_event_free_objects():
    with pytest.raises(TypeError, match="tap event methods"):
        _sim().add_tap(object())


def test_taps_do_not_change_simulated_records():
    """Acceptance: with taps attached, delivery records are unchanged."""
    def run(with_hub):
        sim = _sim(seed=13)
        hub = MetricsHub(sim, bucket=100) if with_hub else None
        sim.run(1500)
        return sim.stats.as_dict(sim.topo.num_nodes, sim.now), hub

    bare, _ = run(False)
    tapped, hub = run(True)
    assert bare == tapped
    assert hub.delivered == tapped["delivered"]
    assert hub.injected == tapped["generated"]


def test_golden_record_unchanged_with_hub_attached():
    """The pinned seed-engine goldens survive instrumentation, byte for byte."""
    from repro.facade import point_record
    from repro.runplan import canonical_record_json

    entry = next(e for e in json.loads(GOLDENS.read_text())["entries"]
                 if e["kind"] == "point")
    cfg = SimConfig.from_dict(entry["config"])
    s = Session(sim=Simulator(cfg))
    MetricsHub(s.sim, bucket=250)
    result = (s.bernoulli(entry["pattern"], entry["load"])
              .warmup(entry["warmup"]).measure(entry["measure"]))
    record = point_record(result, cfg, pattern=entry["pattern"],
                          load=entry["load"])
    assert canonical_record_json(record) == entry["record"]


# ------------------------------------------------------------------- the hub
def test_hub_series_totals_match_collector():
    sim = _sim(seed=9)
    hub = MetricsHub(sim, bucket=300)
    sim.run(3000)
    s = hub.series()
    assert len(s["throughput"]) == 10
    # deliveries are stamped at tail-ejection *completion* (t + size), so
    # packets completing just past the window end fall into the next
    # bucket: series totals trail the collector by at most one in-flight
    # serialization worth of packets
    spill = sim.stats.delivered - sum(s["delivered"])
    assert 0 <= spill <= sim.topo.num_nodes
    assert sum(b * 72 * 300 for b in s["throughput"]) == pytest.approx(
        sim.stats.delivered_phits - spill * sim.config.packet_phits)
    assert sum(s["injected"]) == sim.stats.generated
    # percentile series present and ordered where the bucket delivered
    for p50, p99, mx in zip(s["latency_p50"], s["latency_p99"], s["latency_max"]):
        if not math.isnan(p50):
            assert p50 <= p99 <= mx


def test_hub_occupancy_tracks_credit_ledger():
    sim = _sim(seed=3)
    hub = MetricsHub(sim, bucket=250)
    sim.run(1500)
    # the hub ledger must equal the engine's credit view at any instant
    expected = {}
    for router in sim.routers:
        for out in router.outputs:
            if out.kind is PortKind.EJECT:
                continue
            for vc, credits in enumerate(out.credits):
                key = (int(out.kind), vc)
                expected[key] = expected.get(key, 0) + (out.capacity - credits)
    assert hub._occ == expected
    assert all(v >= 0 for v in hub._occ.values())


def test_hub_buckets_fill_fast_forward_gaps_with_zeros():
    """Series length == elapsed/bucket even when the engine skipped cycles."""
    cfg = SimConfig(h=2, routing="olm", seed=5)
    sim = Simulator(cfg)
    pattern = pattern_by_name("uniform", sim.topo)
    sim.traffic = BurstTraffic(pattern, 2)
    hub = MetricsHub(sim, bucket=100)
    sim.run_until_drained(100_000)
    sim.run(1000)  # pure idle tail: fast-forwarded, event-free
    series = hub.throughput_series()
    assert len(series) == (sim.now - hub.start_cycle) // 100
    assert series[-1] == 0.0 and series[-5] == 0.0


def test_hub_jsonl_deterministic_and_strict(tmp_path):
    def produce(path):
        sim = _sim(seed=21)
        hub = MetricsHub(sim, bucket=200)
        sim.run(1200)
        return hub.write_jsonl(path, meta={"label": "x"})

    a = produce(tmp_path / "a.jsonl").read_bytes()
    b = produce(tmp_path / "b.jsonl").read_bytes()
    assert a == b  # byte-identical across runs
    rows = [json.loads(line) for line in a.decode().splitlines()]
    assert rows[0]["type"] == "meta" and rows[0]["label"] == "x"
    assert rows[-1]["type"] == "summary"
    assert all(r["type"] == "bucket" for r in rows[1:-1])
    json.loads(a.decode().splitlines()[1], parse_constant=pytest.fail)  # strict


def test_hub_reset_restarts_window_keeps_physical_occupancy():
    sim = _sim(seed=2)
    hub = MetricsHub(sim, bucket=200)
    sim.run(1000)
    occ = dict(hub._occ)
    hub.reset()
    assert hub.delivered == 0 and hub._buckets == []
    assert hub.start_cycle == sim.now
    assert hub._occ == occ


# ------------------------------------------------------- deprecated shims
def test_probe_shims_warn_and_still_work():
    sim = _sim(seed=4)
    with pytest.warns(DeprecationWarning, match="MetricsHub"):
        from repro.metrics.probes import ThroughputProbe

        probe = ThroughputProbe(sim, interval=400)
    with pytest.warns(DeprecationWarning, match="LatencyTap"):
        from repro.metrics.probes import LatencyProbe

        lat = LatencyProbe(sim)
    probe.run(1200)
    assert len(probe.series) == 3
    assert len(lat.latencies) == sim.stats.delivered > 0
    probe.detach()
    lat.detach()


def test_attached_probe_no_longer_suppresses_fast_forward():
    """Regression (satellite): the polling-era probe disabled idle
    fast-forward by stepping cycle-by-cycle; the tap-based shim must not."""
    cfg = SimConfig(h=2, routing="olm", seed=5)

    def drain_steps(attach_probe):
        sim = Simulator(cfg)
        sim.traffic = BurstTraffic(pattern_by_name("uniform", sim.topo), 3)
        if attach_probe:
            with pytest.warns(DeprecationWarning):
                from repro.metrics.probes import ThroughputProbe

                ThroughputProbe(sim, interval=100)
        steps = 0
        orig = sim.step

        def counting():
            nonlocal steps
            steps += 1
            orig()

        sim.step = counting  # type: ignore[method-assign]
        drained = sim.run_until_drained(100_000)
        return steps, drained

    bare_steps, bare_drained = drain_steps(False)
    probed_steps, probed_drained = drain_steps(True)
    assert probed_drained == bare_drained  # identical simulation
    assert probed_steps == bare_steps < bare_drained  # gaps still skipped


# ------------------------------------------------------- auto steady state
def test_warmup_until_steady_detects_and_resets():
    s = session(SimConfig(h=2, routing="olm", seed=6),
                pattern="uniform", load=0.3)
    s.warmup_until_steady(bucket=250, max_cycles=20_000)
    info = s.auto_warmup
    assert info["steady"] is True
    assert 0 < info["cycles"] < 20_000
    assert info["cycles"] % 250 == 0
    assert info["steady_throughput"] == pytest.approx(0.3, rel=0.15)
    assert s.sim.stats.window_start == s.now  # window reset


def test_warmup_until_steady_zero_load_short_circuits():
    s = session(SimConfig(h=2, routing="minimal", seed=1),
                pattern="uniform", load=0.0)
    s.warmup_until_steady(bucket=100, window=5, max_cycles=50_000)
    assert s.auto_warmup["steady"] is True
    assert s.auto_warmup["cycles"] == 500  # window * bucket, all-zero rule


def test_warmup_until_steady_respects_cap():
    s = session(SimConfig(h=2, routing="minimal", seed=1),
                pattern="uniform", load=0.2)
    s.warmup_until_steady(bucket=300, window=50, max_cycles=1000)
    assert s.auto_warmup["steady"] is False
    assert s.auto_warmup["cycles"] == 1000
    with pytest.raises(ValueError, match="bucket"):
        s.warmup_until_steady(bucket=0)


def test_measure_series_pairs_result_and_series():
    s = session(SimConfig(h=2, routing="rlm", seed=8),
                pattern="advg+1", load=0.2).warmup(1000)
    sr = s.measure_series(2000, bucket=500)
    assert sr.result.kind == "measure"
    assert sr.result.window_cycles == 2000
    assert len(sr.series["throughput"]) == 4
    assert 0 <= sr.result.delivered - sum(sr.series["delivered"]) <= 72
    assert sr.records[0]["type"] == "meta"
    assert sr.records[-1]["type"] == "summary"
    # the hub detached with the window: later runs don't grow the series
    s.run(1000)
    assert len(sr.series["throughput"]) == 4
    # records are JSONL-encodable (strict)
    for row in sr.records:
        jsonl_line(row)


def test_hub_verify_flow_conservation_holds():
    sim = Simulator(SimConfig(h=2, routing="olm", seed=4),
                    BernoulliTraffic(UniformRandom(), 0.3))
    sim.run(700)  # attach mid-flight: the window baseline is non-zero
    hub = MetricsHub(sim, bucket=100)
    assert hub._inflight_at_window_start == sim.packets_in_flight
    sim.run(1500)
    report = hub.verify()
    assert report["ok"], report
    assert report["in_flight"] == (report["in_flight_at_window_start"]
                                   + report["injected"] - report["delivered"])
    assert report["injected"] > 0 and report["delivered"] > 0


def test_hub_verify_detects_imbalance():
    sim = Simulator(SimConfig(h=2, routing="olm", seed=4),
                    BernoulliTraffic(UniformRandom(), 0.3))
    hub = MetricsHub(sim, bucket=100)
    sim.run(800)
    hub.injected += 1  # simulate a lost packet
    report = hub.verify()
    assert not report["ok"]
    assert report["expected_in_flight"] == report["in_flight"] + 1


def test_measure_series_emit_streams_the_exact_records():
    """Rows pushed live through ``emit`` == the batch records, in order,
    and the result carries the window's conservation report."""
    def run(emit):
        s = session(SimConfig(h=2, routing="olm", seed=6),
                    pattern="uniform", load=0.25).warmup(600)
        return s.measure_series(1000, bucket=250, emit=emit,
                                meta={"tag": "live"})

    streamed: list[dict] = []
    sr = run(streamed.append)
    assert streamed == list(sr.records)
    assert streamed[0]["tag"] == "live"
    assert [r["type"] for r in streamed] == ["meta"] + ["bucket"] * 4 + ["summary"]
    assert sr.verify is not None and sr.verify["ok"]
    # emit raising aborts the window (the serve layer cancels this way)
    def bomb(row):
        raise RuntimeError("cancelled")
    with pytest.raises(RuntimeError, match="cancelled"):
        run(bomb)


def test_session_latency_recorder_is_tap_based():
    s = session(SimConfig(h=2, routing="minimal", seed=3),
                pattern="uniform", load=0.2)
    assert isinstance(s._probe, LatencyTap)
    result = s.warmup(500).measure(500)
    assert result.latency_p50 <= result.latency_p99


# ------------------------------------------------------------ recovery rule
def test_recovery_time_rule():
    base = 0.3
    series = [0.8, 0.6, 0.45, 0.31, 0.30, 0.29, 0.30]
    assert recovery_time(series, base, bucket=100, hold=3) == 300
    assert recovery_time([0.8] * 5, base, bucket=100) is None
    assert recovery_time([0.0, 0.0, 0.0], 0.0, bucket=50, hold=2) == 0
    with pytest.raises(ValueError):
        recovery_time(series, base, bucket=100, hold=0)


def test_run_transient_record_shape():
    cfg = repro.SimConfig(h=2, routing="olm", seed=3)
    rec = run_transient(cfg, "uniform", 0.3, 8, warmup=10_000, measure=3000,
                        bucket=250)
    assert rec["kind"] == "transient"
    assert rec["warmup_steady"] is True
    assert rec["recovered"] is True
    assert 0 <= rec["recovery_cycles"] <= 3000
    assert rec["baseline_throughput"] == pytest.approx(0.3, rel=0.2)
    assert len(rec["throughput_series"]) == 12
    # the step is visible: the first bucket outruns the baseline
    assert rec["throughput_series"][0] > rec["baseline_throughput"] * 1.2


# ------------------------------------ auto-warmup reproduces a paper figure
def test_auto_warmup_reproduces_fig5a_shape():
    """Acceptance: warmup_until_steady() reproduces an existing figure.

    Fig 5a (UN/VCT accepted-vs-offered) at smoke scale, with every
    point's warm-up auto-detected instead of the blind scale preset;
    the figure's registered shape checks must still pass.
    """
    from repro.experiments.figures import VCT_UN_MECHS
    from repro.experiments.presets import get_scale, preset_config
    from repro.experiments.verify import check_vct_uniform
    from repro.runplan import RunSpec, execute, series_map

    scale = get_scale("smoke")
    specs = [
        RunSpec(config=preset_config("vct", scale=scale, routing=mech, seed=1),
                pattern="uniform", loads=scale.loads_uniform,
                warmup=4 * scale.warmup, measure=scale.measure,
                steady=True, series=mech)
        for mech in VCT_UN_MECHS
    ]
    records = execute(specs)
    # at mid load the rule fires well before the cap (low-load buckets
    # are too noisy for the 5% band, where the cap applies instead)
    assert all(rec["warmup_steady"] for rec in records if rec["load"] == 0.5)
    assert all(rec["warmup_cycles"] <= 4 * scale.warmup for rec in records)
    result = {"series": series_map(records, VCT_UN_MECHS)}
    claims = check_vct_uniform(result)
    assert all(c.passed for c in claims), [c.text for c in claims if not c.passed]
