"""Engine correctness: single-packet timing, conservation, wiring."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import UniformRandom
from repro.traffic.processes import BernoulliTraffic

from tests.helpers import EJECT, GLOBAL, LOCAL, build_sim, replay_path


def deliver_one(sim, src, dst):
    pkt = sim.inject_packet(src, dst)
    sim.run_until_drained(20000)
    assert pkt.delivered_cycle is not None
    return pkt


def test_same_router_delivery_timing():
    sim = build_sim("minimal")
    pkt = deliver_one(sim, 0, 1)  # two nodes of router 0
    path = replay_path(sim, pkt)
    assert [k for k, *_ in path] == [EJECT]
    # inject at t=0, granted at t=0, consumed after serialization (8 phits)
    assert pkt.delivered_cycle == sim.config.packet_phits


def test_same_group_delivery_timing():
    sim = build_sim("minimal")
    dst = sim.topo.node_id(1, 0)  # router 1, same group as router 0
    pkt = deliver_one(sim, 0, dst)
    path = replay_path(sim, pkt)
    assert [k for k, *_ in path] == [LOCAL, EJECT]
    # local hop: granted t=0, head routable at 0+10+1, ejected at 11+8
    assert pkt.delivered_cycle == 11 + 8


def test_three_hop_minimal_delivery_timing():
    sim = build_sim("minimal")
    topo = sim.topo
    # choose a destination group whose exit router is NOT router 0 and whose
    # entry router is not the destination router, forcing the full l-g-l path
    for tg in range(1, topo.num_groups):
        exit_idx, _ = topo.exit_port(0, tg)
        entry_idx, _ = topo.exit_port(tg, 0)
        if exit_idx != 0:
            dst_idx = (entry_idx + 1) % topo.a
            dst = topo.node_id(topo.router_id(tg, dst_idx), 0)
            break
    pkt = deliver_one(sim, 0, dst)
    path = replay_path(sim, pkt)
    assert [k for k, *_ in path] == [LOCAL, GLOBAL, LOCAL, EJECT]
    # 11 (local) + 101 (global) + 11 (local) + 8 (ejection serialization)
    assert pkt.delivered_cycle == 11 + 101 + 11 + 8


def test_injection_rejects_self_traffic():
    sim = build_sim("minimal")
    with pytest.raises(ValueError):
        sim.inject_packet(3, 3)


@pytest.mark.parametrize("routing", ["minimal", "valiant", "pb", "par62", "rlm", "olm"])
def test_conservation_all_mechanisms(routing):
    """Every injected packet is delivered exactly once; buffers end empty."""
    sim = build_sim(routing, traffic=BernoulliTraffic(UniformRandom(), 0.3))
    sim.run(1500)
    sim.traffic = None  # stop sources, drain
    sim.run_until_drained(100000)
    assert sim.stats.delivered == sim.stats.generated
    assert sim.packets_in_flight == 0
    assert sim.total_buffered_flits() == 0
    # all credits returned eventually
    sim.run(300)  # flush in-flight credit events
    for router in sim.routers:
        for out in router.outputs:
            for c in out.credits:
                assert c == out.capacity or out.capacity == 0


def test_credits_never_negative_and_capacity_respected():
    sim = build_sim("olm", traffic=BernoulliTraffic(UniformRandom(), 0.8))
    for _ in range(60):
        sim.run(25)
        for router in sim.routers:
            for out in router.outputs:
                for c in out.credits:
                    assert 0 <= c <= out.capacity or out.capacity == 0
            for ip in router.inputs:
                for vcb in ip.vcs:
                    assert vcb.occupancy <= vcb.capacity


def test_latency_includes_source_queueing():
    sim = build_sim("minimal")
    dst = sim.topo.node_id(1, 0)
    first = sim.inject_packet(0, dst)
    second = sim.inject_packet(0, dst)  # queued behind the first
    sim.run_until_drained(20000)
    assert second.delivered_cycle > first.delivered_cycle
    assert second.delivered_cycle - second.birth > first.delivered_cycle - first.birth


def test_run_accounts_deadlock_window_without_traffic():
    sim = build_sim("minimal")
    sim.run(6000)  # idle network: must not raise despite zero progress
    assert sim.now == 6000


def test_packet_vcs_within_limits():
    cfg = SimConfig(h=2, routing="par62", record_hops=True, seed=1)
    sim = Simulator(cfg, BernoulliTraffic(UniformRandom(), 0.4))
    assert sim.local_vcs == 6  # PAR-6/2 demands 6 local VCs
    sim.run(800)
    cfg2 = SimConfig(h=2, routing="rlm")
    assert Simulator(cfg2).local_vcs == 3
