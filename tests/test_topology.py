"""Dragonfly geometry unit tests."""

import pytest

from repro.topology import Dragonfly, validate_topology


@pytest.mark.parametrize("h", [1, 2, 3, 4])
def test_validate_canonical(h):
    validate_topology(Dragonfly(h))


@pytest.mark.parametrize("arrangement", ["palmtree", "consecutive"])
def test_validate_arrangements(arrangement):
    validate_topology(Dragonfly(2, arrangement=arrangement))


def test_validate_general_pa():
    # general (p, a, h) with the complete global graph constraint
    validate_topology(Dragonfly(2, p=1, a=4))
    validate_topology(Dragonfly(1, p=3, a=6))


def test_counts_paper_machine():
    t = Dragonfly(8)
    assert t.num_groups == 129
    assert t.a == 16
    assert t.num_routers == 2064
    assert t.num_nodes == 16512
    assert t.radix == 31  # 8 injection + 15 local + 8 global


def test_bad_parameters():
    with pytest.raises(ValueError):
        Dragonfly(0)
    with pytest.raises(ValueError):
        Dragonfly(2, p=0)
    with pytest.raises(ValueError):
        Dragonfly(2, a=1)


def test_id_arithmetic_roundtrip():
    t = Dragonfly(3)
    for r in range(0, t.num_routers, 7):
        g, i = t.group_of(r), t.index_in_group(r)
        assert t.router_id(g, i) == r
        for k in range(t.p):
            n = t.node_id(r, k)
            assert t.router_of_node(n) == r
            assert t.node_index(n) == k


def test_local_port_maps_inverse():
    t = Dragonfly(2)
    for i in range(t.a):
        for j in range(t.a):
            if i == j:
                continue
            q = t.local_port_to(i, j)
            assert 0 <= q < t.local_ports
            assert t.local_neighbor_index(i, q) == j


def test_local_port_to_self_rejected():
    t = Dragonfly(2)
    with pytest.raises(ValueError):
        t.local_port_to(1, 1)
    with pytest.raises(ValueError):
        t.local_neighbor_index(0, t.local_ports)


def test_local_neighbor_global_ids_stay_in_group():
    t = Dragonfly(2)
    r = t.router_id(3, 1)
    for q in range(t.local_ports):
        n = t.local_neighbor(r, q)
        assert t.group_of(n) == 3
        assert n != r


def test_global_neighbor_symmetry():
    t = Dragonfly(3)
    for r in range(0, t.num_routers, 5):
        for k in range(t.global_ports):
            peer, pport = t.global_neighbor(r, k)
            assert t.global_neighbor(peer, pport) == (r, k)
            assert t.group_of(peer) == t.target_group_of(r, k)


def test_exit_port_reaches_target():
    t = Dragonfly(2)
    for g in range(t.num_groups):
        for tg in range(t.num_groups):
            if g == tg:
                continue
            i, k = t.exit_port(g, tg)
            assert t.target_group_of(t.router_id(g, i), k) == tg
    with pytest.raises(ValueError):
        t.exit_port(0, 0)


def test_minimal_hops():
    t = Dragonfly(2)
    assert t.minimal_hops(0, 0) == 0
    # same group: always 1
    assert t.minimal_hops(0, 1) == 1
    # different groups: 1..3 and never more
    for src in range(0, t.num_routers, 3):
        for dst in range(0, t.num_routers, 5):
            d = t.minimal_hops(src, dst)
            assert 0 <= d <= 3
            if t.group_of(src) != t.group_of(dst):
                assert d >= 1


def test_global_link_owner_roundtrip():
    t = Dragonfly(3)
    for link in range(t.links_per_group):
        i, k = t.global_link_owner(link)
        assert t.global_link_index(i, k) == link


def test_networkx_export():
    t = Dragonfly(2)
    g = t.as_networkx()
    assert g.number_of_nodes() == t.num_routers
    # each router: a-1 local + h global edges, each edge counted once
    assert g.number_of_edges() == t.num_routers * (t.a - 1 + t.h) // 2
    import networkx as nx

    assert nx.is_connected(nx.Graph(g))
