"""``verify-results`` CLI behaviour: verdicts, reports, error paths.

Exit-code contract: 0 when every invariant passes, 1 when any check
fails, 2 on usage errors (missing file, malformed JSON, unknown figure
id) — each with an actionable message on stderr.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.invariants import dragonfly_nodes
from repro.experiments.cli import main

RESULTS = Path(__file__).parent.parent / "results"


def _figure_payload(throughput=0.3, **record_over):
    nodes = dragonfly_nodes(2)
    rec = {
        "pattern": "uniform", "routing": "minimal", "h": 2, "load": 0.3,
        "throughput": throughput,
        "delivered": 2700, "delivered_phits": throughput * nodes * 1000,
        "generated": 2700, "start_cycle": 1000, "end_cycle": 2000,
        "mean_latency": 60.0, "latency_p50": 55, "latency_p95": 90,
        "latency_p99": 110, "max_latency": 150, "mean_hops": 2.5,
    }
    rec.update(record_over)
    return {"id": "fig4a", "description": "synthetic fig4a",
            "series": {"minimal": [rec]}}


def _write(tmp_path, payload, name="result.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_valid_file_passes_with_report(tmp_path, capsys):
    path = _write(tmp_path, _figure_payload())
    assert main(["verify-results", path]) == 0
    out = capsys.readouterr().out
    assert "all ✅" in out
    assert "## ✅ fig4a" in out
    # every registered invariant is listed, applicable or not
    for name in ("counters", "capacity_bounds", "drain_conservation",
                 "ci_sanity"):
        assert name in out


def test_checked_in_results_directory_passes(capsys):
    assert main(["verify-results", str(RESULTS)]) == 0
    out = capsys.readouterr().out
    assert "all ✅" in out
    for fig in ("fig4a", "fig6b", "tab1", "trans1", "xtopo1"):
        assert f"## ✅ {fig}" in out


def test_corrupted_result_fails_with_exit_1(tmp_path, capsys):
    path = _write(tmp_path, _figure_payload(throughput=1.7))
    assert main(["verify-results", path]) == 1
    captured = capsys.readouterr()
    assert "❌" in captured.out
    assert "throughput_bounds" in captured.out
    assert "check(s) failed" in captured.err


def test_report_file_written(tmp_path, capsys):
    path = _write(tmp_path, _figure_payload())
    report = tmp_path / "out" / "verify.md"
    assert main(["verify-results", path, "--report", str(report)]) == 0
    assert report.read_text() == capsys.readouterr().out


def test_fail_fast_stops_at_first_failing_file(tmp_path, capsys):
    bad = _write(tmp_path, _figure_payload(throughput=1.7), "a_bad.json")
    good = _write(tmp_path, _figure_payload(), "b_good.json")
    assert main(["verify-results", "--fail-fast", bad, good]) == 1
    out = capsys.readouterr().out
    assert "1 result(s)" in out  # second file never verified


def test_tolerance_flag_widens_bounds(tmp_path, capsys):
    # (g-1)/g = 8/9; 0.95 fails at 5% tolerance but passes at 30%
    payload = _figure_payload(throughput=0.95)
    path = _write(tmp_path, payload)
    assert main(["verify-results", path]) == 1
    capsys.readouterr()
    assert main(["verify-results", path, "--tolerance", "0.3"]) == 0
    capsys.readouterr()
    assert main(["verify-results", path, "--tolerance", "-1"]) == 2
    assert "--tolerance" in capsys.readouterr().err


def test_missing_file_exits_2(tmp_path, capsys):
    assert main(["verify-results", str(tmp_path / "nope.json")]) == 2
    err = capsys.readouterr().err
    assert "no such file" in err and "results/" in err


def test_empty_directory_exits_2(tmp_path, capsys):
    assert main(["verify-results", str(tmp_path)]) == 2
    assert "no *.json result files" in capsys.readouterr().err


def test_malformed_json_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text('{"id": "fig4a", "series": {')
    assert main(["verify-results", str(path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_non_object_payload_exits_2(tmp_path, capsys):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    assert main(["verify-results", str(path)]) == 2
    assert "result object" in capsys.readouterr().err


def test_unknown_figure_id_exits_2(tmp_path, capsys):
    path = _write(tmp_path, dict(_figure_payload(), id="figZZ"))
    assert main(["verify-results", path]) == 2
    err = capsys.readouterr().err
    assert "unknown figure id 'figZZ'" in err
    assert "fig4a" in err and "tab1" in err  # lists the known ids


def test_malformed_series_exits_2(tmp_path, capsys):
    path = _write(tmp_path, dict(_figure_payload(), series={"a": ["x"]}))
    assert main(["verify-results", path]) == 2
    assert "is not a record" in capsys.readouterr().err


def test_live_single_combination(tmp_path, capsys):
    path = _write(tmp_path, _figure_payload())
    assert main(["verify-results", path, "--live", "--engines", "wheel",
                 "--topologies", "dragonfly"]) == 0
    out = capsys.readouterr().out
    assert "## ✅ live:dragonfly/wheel" in out
    assert "little_law" not in out  # live gate failures would be listed


def test_run_verify_flag_passes_on_tab1(capsys):
    assert main(["run", "tab1", "--verify"]) == 0
    captured = capsys.readouterr()
    assert "Invariant verification" in captured.err
    assert "tab1" in captured.out
