"""SimConfig validation and presets."""

import pytest

from repro.network.config import SimConfig, paper_vct_config, paper_wh_config


def test_defaults_follow_paper():
    cfg = SimConfig()
    assert cfg.local_latency == 10
    assert cfg.global_latency == 100
    assert cfg.local_buffer_phits == 32
    assert cfg.global_buffer_phits == 256
    assert cfg.local_vcs == 3 and cfg.global_vcs == 2
    assert cfg.threshold == 0.45
    assert cfg.pb_update_period == cfg.local_latency


def test_validation():
    with pytest.raises(ValueError):
        SimConfig(flow_control="bubble")
    with pytest.raises(ValueError):
        SimConfig(packet_phits=0)
    with pytest.raises(ValueError):
        SimConfig(threshold=-0.1)
    with pytest.raises(ValueError, match="latencies"):
        SimConfig(local_latency=0)
    with pytest.raises(ValueError, match="latencies"):
        SimConfig(global_latency=0)


def test_with_copies():
    cfg = SimConfig(h=2, routing="rlm")
    cfg2 = cfg.with_(threshold=0.6)
    assert cfg2.threshold == 0.6 and cfg.threshold == 0.45
    assert cfg2.routing == "rlm"


def test_paper_presets():
    v = paper_vct_config(h=3, routing="olm")
    assert (v.flow_control, v.packet_phits, v.h) == ("vct", 8, 3)
    w = paper_wh_config(h=3)
    assert (w.flow_control, w.packet_phits, w.flit_phits) == ("wh", 80, 10)


def test_explicit_pb_update_period_kept():
    cfg = SimConfig(pb_update_period=25)
    assert cfg.pb_update_period == 25


def test_with_recomputes_derived_defaults():
    """The auto pb_update_period must track a new local_latency (stale-default fix)."""
    cfg = SimConfig()
    assert cfg.with_(local_latency=20).pb_update_period == 20
    # chained copies keep re-deriving
    assert cfg.with_(local_latency=20).with_(local_latency=7).pb_update_period == 7
    # an explicit period survives any with_()
    explicit = SimConfig(pb_update_period=25)
    assert explicit.with_(local_latency=50).pb_update_period == 25
    # and with_ can still set the period directly
    assert cfg.with_(pb_update_period=3).pb_update_period == 3
    assert cfg.with_(pb_update_period=3).with_(local_latency=40).pb_update_period == 3


def test_to_dict_from_dict_round_trip():
    cfg = SimConfig(h=3, routing="rlm", flow_control="wh", packet_phits=80,
                    threshold=0.6, seed=9)
    data = cfg.to_dict()
    import json

    json.dumps(data)  # JSON-safe
    clone = SimConfig.from_dict(data)
    assert clone == cfg
    # the auto-derived period serializes as None so round-trips stay auto
    assert data["pb_update_period"] is None
    assert clone.with_(local_latency=21).pb_update_period == 21
    # explicit values serialize as-is
    assert SimConfig(pb_update_period=25).to_dict()["pb_update_period"] == 25


def test_from_dict_rejects_unknown_keys():
    import pytest as _pytest

    with _pytest.raises(ValueError, match="unknown SimConfig field"):
        SimConfig.from_dict({"h": 2, "rooting": "olm"})
    with _pytest.raises(ValueError, match="needs a dict"):
        SimConfig.from_dict([("h", 2)])


def test_topology_field_defaults_and_validates():
    assert SimConfig().topology == "dragonfly"
    with pytest.raises(ValueError, match="unknown topology"):
        SimConfig(topology="hypercube")
