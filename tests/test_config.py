"""SimConfig validation and presets."""

import pytest

from repro.network.config import SimConfig, paper_vct_config, paper_wh_config


def test_defaults_follow_paper():
    cfg = SimConfig()
    assert cfg.local_latency == 10
    assert cfg.global_latency == 100
    assert cfg.local_buffer_phits == 32
    assert cfg.global_buffer_phits == 256
    assert cfg.local_vcs == 3 and cfg.global_vcs == 2
    assert cfg.threshold == 0.45
    assert cfg.pb_update_period == cfg.local_latency


def test_validation():
    with pytest.raises(ValueError):
        SimConfig(flow_control="bubble")
    with pytest.raises(ValueError):
        SimConfig(packet_phits=0)
    with pytest.raises(ValueError):
        SimConfig(threshold=-0.1)


def test_with_copies():
    cfg = SimConfig(h=2, routing="rlm")
    cfg2 = cfg.with_(threshold=0.6)
    assert cfg2.threshold == 0.6 and cfg.threshold == 0.45
    assert cfg2.routing == "rlm"


def test_paper_presets():
    v = paper_vct_config(h=3, routing="olm")
    assert (v.flow_control, v.packet_phits, v.h) == ("vct", 8, 3)
    w = paper_wh_config(h=3)
    assert (w.flow_control, w.packet_phits, w.flit_phits) == ("wh", 80, 10)


def test_explicit_pb_update_period_kept():
    cfg = SimConfig(pb_update_period=25)
    assert cfg.pb_update_period == 25
