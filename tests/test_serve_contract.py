"""Serve determinism contracts, proven against real simulations.

The service is only trustworthy if going through HTTP changes nothing:

* a record computed by the service is **byte-identical** (canonical
  JSON) to the same point run through the offline facade workers, for
  every point kind;
* the live-streamed JSONL equals an offline ``MetricsHub`` export of
  the same window, byte for byte;
* N concurrent identical submissions execute the simulation exactly
  once (content-hash dedupe), and every subscriber reads the same
  bytes;
* a persistent cache directory replays records across service
  restarts without re-simulating.

Sims here are tiny (h=1) but real; the fast queue-semantics tests live
in ``tests/test_serve.py``.
"""

from __future__ import annotations

import asyncio

from repro.facade import run_drain, run_point, run_transient, session
from repro.metrics.hub import jsonl_line, strict_jsonable
from repro.network.config import SimConfig
from repro.runplan.cache import canonical_record_json
from repro.serve import ServeSettings, create_app, parse_submission, stream_meta
from repro.serve import runner as serve_runner
from repro.serve.testclient import Client

CONFIG = {"h": 1, "seed": 11}

STEADY = {"config": CONFIG, "pattern": "uniform", "load": 0.25,
          "warmup": 400, "measure": 600, "bucket": 150}

TRANSIENT = {"config": CONFIG, "pattern": "uniform", "kind": "transient",
             "load": 0.15, "packets_per_node": 2, "warmup": 2000,
             "measure": 1200, "bucket": 100}

DRAIN = {"config": CONFIG, "pattern": "uniform", "kind": "drain",
         "packets_per_node": 2, "max_cycles": 50_000}


def canonical(record: dict) -> str:
    return canonical_record_json(strict_jsonable(record))


def run_job(payload, settings=None):
    """Submit one job, await completion, return (status_body, stream_body)."""
    async def main():
        app = create_app(settings or ServeSettings(workers=1, bucket=150))
        async with Client(app) as client:
            resp = await client.post("/v1/jobs", json_body=payload)
            assert resp.status == 202, resp.text
            job_id = resp.json()["job"]
            stream = await client.get(f"/v1/jobs/{job_id}/stream")
            status = await client.get(f"/v1/jobs/{job_id}")
            return status.json(), stream.text
    return asyncio.run(main())


# ------------------------------------------------------- record byte-identity
def test_steady_record_matches_offline_facade():
    body, _ = run_job(STEADY)
    assert body["state"] == "done", body
    offline = run_point(SimConfig(**CONFIG), "uniform", 0.25, 400, 600)
    [served] = body["result"]["records"]
    assert canonical_record_json(served) == canonical(offline)


def test_steady_autowarmup_record_matches_offline_facade():
    body, _ = run_job({**STEADY, "steady": True})
    offline = run_point(SimConfig(**CONFIG), "uniform", 0.25, 400, 600,
                        steady=True)
    [served] = body["result"]["records"]
    assert canonical_record_json(served) == canonical(offline)


def test_transient_record_matches_offline_facade():
    body, _ = run_job(TRANSIENT)
    assert body["state"] == "done", body
    offline = run_transient(SimConfig(**CONFIG), "uniform", 0.15, 2, 2000,
                            1200, bucket=100)
    [served] = body["result"]["records"]
    assert canonical_record_json(served) == canonical(offline)


def test_drain_record_matches_offline_facade():
    body, stream = run_job(DRAIN)
    assert body["state"] == "done", body
    offline = run_drain(SimConfig(**CONFIG), "uniform", 2, 50_000)
    [served] = body["result"]["records"]
    assert canonical_record_json(served) == canonical(offline)
    # drain streams its rows at completion; the window covers the drain
    rows = [line for line in stream.splitlines() if line]
    assert rows, "drain job produced no metrics rows"


# ------------------------------------------------------- stream byte-identity
def test_streamed_jsonl_equals_offline_hub_export():
    """The live chunked stream == a batch MetricsHub export, byte for byte."""
    body, stream = run_job(STEADY)
    assert body["state"] == "done"
    [point] = parse_submission(STEADY).points
    s = session(SimConfig(**CONFIG), pattern="uniform", load=0.25)
    s.warmup(400)  # one blind run; the service warms up in chunks
    sr = s.measure_series(600, bucket=150, meta=stream_meta(point))
    expected = "".join(jsonl_line(row) + "\n" for row in sr.records)
    assert stream == expected


# ----------------------------------------------------------------- the dedupe
def test_concurrent_identical_submissions_execute_once(monkeypatch):
    """Acceptance: N concurrent identical submissions -> ONE simulation."""
    executed = []
    real = serve_runner.execute_point_streamed

    def counting(point, emit, **kw):
        executed.append(point.key())
        return real(point, emit, **kw)

    monkeypatch.setattr(serve_runner, "execute_point_streamed", counting)

    async def main():
        app = create_app(ServeSettings(workers=2, bucket=150))
        async with Client(app) as client:
            posts = await asyncio.gather(*(
                client.post("/v1/jobs", json_body=dict(STEADY))
                for _ in range(5)))
            ids = [p.json()["job"] for p in posts]
            assert len(set(ids)) == 1, "identical submissions must coalesce"
            assert sum(p.json()["deduped"] for p in posts) == 4
            # a *different* point stays independent
            other = await client.post(
                "/v1/jobs", json_body={**STEADY, "load": 0.3})
            assert other.json()["job"] not in ids
            streams = await asyncio.gather(*(
                client.get(f"/v1/jobs/{ids[0]}/stream") for _ in range(5)))
            status = (await client.get(f"/v1/jobs/{ids[0]}")).json()
            # a stream request returns only once its job finished
            await client.get(f"/v1/jobs/{other.json()['job']}/stream")
            other_status = (await client.get(
                f"/v1/jobs/{other.json()['job']}")).json()
            return streams, status, other_status

    streams, status, other_status = asyncio.run(main())
    bodies = {s.body for s in streams}
    assert len(bodies) == 1, "every subscriber must read the same bytes"
    assert status["state"] == "done"
    assert status["result"]["executed_points"] == 1
    assert other_status["state"] == "done"
    # exactly two distinct simulations ran in total: the shared one + other
    assert len(executed) == 2 and len(set(executed)) == 2


def test_persistent_cache_replays_across_restarts(tmp_path):
    """Same cache dir, fresh service: the record replays, nothing re-runs."""
    cache_dir = str(tmp_path / "cache")
    first, _ = run_job(STEADY, ServeSettings(workers=1, cache_dir=cache_dir))
    assert first["result"]["executed_points"] == 1
    second, stream = run_job(
        STEADY, ServeSettings(workers=1, cache_dir=cache_dir))
    assert second["result"]["executed_points"] == 0
    assert second["result"]["cached_points"] == 1
    assert (canonical_record_json(second["result"]["records"][0])
            == canonical_record_json(first["result"]["records"][0]))
    assert stream == ""  # replayed records stream no new rows


def test_results_endpoint_serves_cache_hits_without_queue(tmp_path):
    async def main():
        settings = ServeSettings(workers=1,
                                 cache_dir=str(tmp_path / "cache"))
        app = create_app(settings)
        [point] = parse_submission(STEADY).points
        async with Client(app) as client:
            job = (await client.post(
                "/v1/jobs", json_body=STEADY)).json()["job"]
            while (await client.get(f"/v1/jobs/{job}")).json()["state"] != "done":
                await asyncio.sleep(0.01)
            hit = await client.get(f"/v1/results/{point.key()}")
            jobs_before = (await client.get("/v1/stats")).json()["jobs_total"]
            assert hit.status == 200
            assert hit.json()["record"]["seed"] == 11
            jobs_after = (await client.get("/v1/stats")).json()["jobs_total"]
            assert jobs_after == jobs_before  # no job was created
    asyncio.run(main())


def test_flow_conservation_gate_fails_job_on_real_sim(monkeypatch):
    """Force the hub's verify() to report a violation: the job must fail."""
    from repro.metrics import hub as hub_mod

    real_verify = hub_mod.MetricsHub.verify

    def lying_verify(self):
        report = real_verify(self)
        report["ok"] = False
        report["injected"] += 1  # simulate a lost packet
        return report

    monkeypatch.setattr(hub_mod.MetricsHub, "verify", lying_verify)
    body, _ = run_job(STEADY)
    assert body["state"] == "failed"
    assert body["error"]["type"] == "flow_conservation"
    assert "flow conservation violated" in body["error"]["message"]
