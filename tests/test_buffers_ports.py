"""Input buffers, input ports and output units."""

import pytest

from repro.network.buffers import InputPort, VCBuffer
from repro.network.packet import Packet, flitize
from repro.network.ports import OutputUnit
from repro.topology.dragonfly import PortKind


def flits(n=3, size=8):
    p = Packet(1, 0, 9, size * n, 0, 0, 0, 4, 1)
    return flitize(p, size)


def test_vcbuffer_fifo_and_occupancy():
    b = VCBuffer(capacity=32, vc_index=1)
    fs = flits(3, 8)
    assert b.head() is None and len(b) == 0
    for f in fs:
        b.push(f)
    assert b.occupancy == 24 and len(b) == 3
    assert b.head() is fs[0]
    assert b.pop() is fs[0]
    assert b.occupancy == 16
    assert b.head() is fs[1]


def test_input_port_layout():
    ip = InputPort(3, 32, index=5)
    assert len(ip.vcs) == 3
    assert [v.vc_index for v in ip.vcs] == [0, 1, 2]
    assert ip.busy_until == 0 and not ip.is_injection
    ip.vcs[1].push(flits(1)[0])
    assert ip.total_flits() == 1


def test_output_unit_credits_and_occupancy():
    o = OutputUnit(PortKind.LOCAL, 2, num_vcs=3, capacity=32, latency=10,
                   dest_router=7, dest_port=4)
    assert o.credits == [32, 32, 32]
    assert o.occupancy(0) == 0
    o.credits[0] -= 8
    assert o.occupancy(0) == 8
    assert o.occupancy_fraction(0) == pytest.approx(0.25)
    assert o.mean_occupancy_fraction() == pytest.approx(8 / 96)


def test_output_unit_eject_degenerate():
    o = OutputUnit(PortKind.EJECT, 0, num_vcs=1, capacity=0, latency=0,
                   dest_router=None, dest_port=None)
    assert o.occupancy_fraction(0) == 0.0
    assert o.mean_occupancy_fraction() == 0.0
