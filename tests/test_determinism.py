"""Reproducibility: identical seeds give identical simulations."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import MixedGlobalLocal, UniformRandom
from repro.traffic.processes import BernoulliTraffic


def snapshot(routing, seed, pattern=None):
    cfg = SimConfig(h=2, routing=routing, seed=seed)
    sim = Simulator(cfg, BernoulliTraffic(pattern or UniformRandom(), 0.5))
    sim.run(1200)
    s = sim.stats
    return (s.generated, s.delivered, s.latency_sum, s.delivered_phits,
            s.local_misroutes, s.global_misroutes, sim.total_buffered_flits())


@pytest.mark.parametrize("routing", ["minimal", "valiant", "pb", "par62", "rlm", "olm"])
def test_same_seed_same_history(routing):
    assert snapshot(routing, 42) == snapshot(routing, 42)


def test_different_seed_different_history():
    assert snapshot("olm", 1) != snapshot("olm", 2)


def test_mixed_pattern_deterministic():
    p1 = snapshot("rlm", 7, MixedGlobalLocal(0.5, 2))
    p2 = snapshot("rlm", 7, MixedGlobalLocal(0.5, 2))
    assert p1 == p2


def test_traffic_and_routing_rngs_are_independent():
    """Routing rng draws must not perturb the traffic stream."""
    cfg = SimConfig(h=2, routing="minimal", seed=9)
    sim_min = Simulator(cfg, BernoulliTraffic(UniformRandom(), 0.4))
    sim_min.run(600)
    cfg2 = SimConfig(h=2, routing="olm", seed=9)  # same seed, adaptive routing
    sim_olm = Simulator(cfg2, BernoulliTraffic(UniformRandom(), 0.4))
    sim_olm.run(600)
    assert sim_min.stats.generated == sim_olm.stats.generated
