"""Public API surface: imports, exports, docstrings."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.registry",
    "repro.facade",
    "repro.topology",
    "repro.topology.base",
    "repro.topology.dragonfly",
    "repro.topology.arrangements",
    "repro.topology.ring",
    "repro.topology.validate",
    "repro.network",
    "repro.network.config",
    "repro.network.packet",
    "repro.network.flowcontrol",
    "repro.network.arbitration",
    "repro.network.buffers",
    "repro.network.ports",
    "repro.network.router",
    "repro.network.simulator",
    "repro.network.taps",
    "repro.core",
    "repro.core.base",
    "repro.core.paritysign",
    "repro.core.trigger",
    "repro.core.minimal",
    "repro.core.valiant",
    "repro.core.piggyback",
    "repro.core.par",
    "repro.core.rlm",
    "repro.core.olm",
    "repro.core.ofar",
    "repro.traffic",
    "repro.traffic.patterns",
    "repro.traffic.processes",
    "repro.traffic.extra",
    "repro.metrics",
    "repro.metrics.collector",
    "repro.metrics.statistics",
    "repro.metrics.probes",
    "repro.metrics.hub",
    "repro.runplan",
    "repro.runplan.spec",
    "repro.runplan.executors",
    "repro.runplan.cache",
    "repro.runplan.aggregate",
    "repro.runplan.runner",
    "repro.serve",
    "repro.serve.app",
    "repro.serve.jobs",
    "repro.serve.protocol",
    "repro.serve.runner",
    "repro.serve.settings",
    "repro.serve.httpd",
    "repro.serve.testclient",
    "repro.analysis",
    "repro.analysis.bounds",
    "repro.analysis.cdg",
    "repro.experiments",
    "repro.experiments.presets",
    "repro.experiments.sweeps",
    "repro.experiments.figures",
    "repro.experiments.registry",
    "repro.experiments.reporting",
    "repro.experiments.svgplot",
    "repro.experiments.cli",
]


@pytest.mark.parametrize("module", PUBLIC_MODULES)
def test_module_imports_and_documented(module):
    mod = importlib.import_module(module)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module} lacks a docstring"


def test_top_level_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version_string():
    import repro

    major, *_ = repro.__version__.split(".")
    assert major.isdigit()


@pytest.mark.parametrize("package", ["repro.core", "repro.traffic", "repro.metrics",
                                     "repro.analysis", "repro.experiments",
                                     "repro.topology", "repro.network"])
def test_subpackage_all_exports_resolve(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, f"{package}.{name}"


def test_public_classes_have_docstrings():
    from repro.core import ROUTING_REGISTRY

    for cls in ROUTING_REGISTRY.values():
        assert cls.__doc__
        assert any(getattr(base, "decide", None) and base.decide.__doc__
                   for base in cls.__mro__)


def test_facade_and_registry_exports_pinned():
    """The Session/registry surface of the redesigned public API."""
    import repro

    for name in ("session", "Session", "RunResult", "Registry",
                 "UnknownComponentError", "DuplicateComponentError",
                 "all_registries", "TOPOLOGY_REGISTRY", "ROUTING_REGISTRY",
                 "FLOW_CONTROL_REGISTRY", "ARBITER_REGISTRY",
                 "PATTERN_REGISTRY", "PROCESS_REGISTRY", "Topology"):
        assert name in repro.__all__, name
        assert getattr(repro, name) is not None


def test_backward_compat_shims_unchanged():
    """Pre-redesign imports keep working exactly as documented."""
    from repro import SimConfig, Simulator, build_simulator  # noqa: F401
    from repro.core import ROUTING_REGISTRY, routing_by_name
    from repro.network.flowcontrol import flow_control_by_name

    sim = build_simulator(SimConfig(h=2, routing="minimal"))
    assert sim.on_packet_delivered is None  # legacy hook still present
    assert routing_by_name("olm").name == "olm"
    assert flow_control_by_name("wh", flit_size=4).flit_size == 4
    assert "olm" in ROUTING_REGISTRY


def test_simulator_is_topology_agnostic():
    """The engine resolves the fabric via TOPOLOGY_REGISTRY, never directly."""
    import inspect

    import repro.network.simulator as engine

    src = inspect.getsource(engine)
    assert "Dragonfly" not in src
    assert "TOPOLOGY_REGISTRY" in src
