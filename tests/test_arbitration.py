"""Output arbitration policies and router pipeline latency."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import UniformRandom
from repro.traffic.processes import BernoulliTraffic


def test_config_validates_policies():
    SimConfig(arbitration="rr")
    SimConfig(arbitration="random")
    SimConfig(arbitration="age")
    with pytest.raises(ValueError):
        SimConfig(arbitration="lottery")
    with pytest.raises(ValueError):
        SimConfig(router_latency=-1)


def test_age_arbitration_prefers_older_packet():
    sim = Simulator(SimConfig(h=2, routing="minimal", arbitration="age", seed=1))
    topo = sim.topo
    dst_a = topo.node_id(topo.router_id(0, 1), 0)
    dst_b = topo.node_id(topo.router_id(0, 1), 1)
    # node 0's packet is *younger* (birth 10) than node 1's (birth 0); both
    # need the same local output of router 0
    young = sim.inject_packet(topo.node_id(0, 0), dst_a, now=10)
    old = sim.inject_packet(topo.node_id(0, 1), dst_b, now=0)
    sim.step()  # t=0: one grant on the contended local port
    r0 = sim.routers[0]
    assert r0.inputs[1].total_flits() == 0, "older packet must win"
    assert r0.inputs[0].total_flits() == 1
    sim.run_until_drained(20000)
    assert old.delivered_cycle < young.delivered_cycle


def test_rr_arbitration_would_pick_port_zero_instead():
    sim = Simulator(SimConfig(h=2, routing="minimal", arbitration="rr", seed=1))
    topo = sim.topo
    sim.inject_packet(topo.node_id(0, 0), topo.node_id(topo.router_id(0, 1), 0), now=10)
    sim.inject_packet(topo.node_id(0, 1), topo.node_id(topo.router_id(0, 1), 1), now=0)
    sim.step()
    r0 = sim.routers[0]
    assert r0.inputs[0].total_flits() == 0, "round-robin starts at port 0"


@pytest.mark.parametrize("policy", ["rr", "random", "age"])
def test_policies_conserve_and_are_deterministic(policy):
    def run():
        cfg = SimConfig(h=2, routing="olm", arbitration=policy, seed=9)
        sim = Simulator(cfg, BernoulliTraffic(UniformRandom(), 0.6))
        sim.run(900)
        sim.traffic = None
        sim.run_until_drained(150000)
        return (sim.stats.delivered, sim.stats.latency_sum)

    first, second = run(), run()
    assert first == second
    assert first[0] > 0


def test_router_latency_adds_per_hop_delay():
    def delivery(router_latency):
        cfg = SimConfig(h=2, routing="minimal", router_latency=router_latency, seed=1)
        sim = Simulator(cfg)
        dst = sim.topo.node_id(1, 0)  # one local hop
        pkt = sim.inject_packet(0, dst)
        sim.run_until_drained(20000)
        return pkt.delivered_cycle

    base = delivery(0)
    assert delivery(3) == base + 3  # single link hop -> one extra traversal
    assert delivery(10) == base + 10
