"""Parallel sweep execution through the run-plan layer.

Historic home of the ``repro.experiments.parallel`` compat tests; that
shim is gone and the same guarantees are now pinned directly against
:mod:`repro.runplan`: identical records under any pool size, result
order preserved, and figure runners unchanged by ``workers``.
"""

import pytest

from repro.experiments.sweeps import load_sweep
from repro.network.config import paper_vct_config
from repro.runplan import RunPoint, default_workers, execute_points, executor_for_jobs


def test_default_workers_positive():
    assert default_workers() >= 1


def test_executor_for_jobs_policy():
    assert executor_for_jobs(None) == "serial"
    assert executor_for_jobs(1) == "serial"
    assert executor_for_jobs(4) == "process"


def test_parallel_matches_serial():
    cfg = paper_vct_config(h=2, routing="minimal", seed=3)
    loads = (0.1, 0.3)
    serial = load_sweep(cfg, "uniform", loads, warmup=300, measure=300)
    par = load_sweep(cfg, "uniform", loads, warmup=300, measure=300,
                     executor="process", jobs=2)
    assert par == serial


def test_run_points_order_preserved():
    cfg = paper_vct_config(h=2, routing="minimal", seed=1)
    points = [RunPoint(config=cfg, pattern="uniform", load=load,
                       warmup=200, measure=200)
              for load in (0.3, 0.1, 0.2)]
    results = execute_points(points, executor="process", jobs=3)
    assert [r["load"] for r in results] == [0.3, 0.1, 0.2]


def test_single_point_short_circuits_the_pool():
    cfg = paper_vct_config(h=2, routing="minimal", seed=1)
    point = RunPoint(config=cfg, pattern="uniform", load=0.1,
                     warmup=200, measure=200)
    results = execute_points([point], executor="process", jobs=4)
    assert len(results) == 1


def test_multi_series_over_one_pool():
    loads = (0.1, 0.2)
    points = [
        RunPoint(config=paper_vct_config(h=2, routing=name, seed=2),
                 pattern="advg+1", load=load, warmup=250, measure=250,
                 series=name)
        for name in ("minimal", "valiant")
        for load in loads
    ]
    from repro.runplan import series_map

    series = series_map(execute_points(points, executor="process", jobs=2))
    assert set(series) == {"minimal", "valiant"}
    for pts in series.values():
        assert [p["load"] for p in pts] == list(loads)


@pytest.mark.parametrize("workers", [1, 2])
def test_figure_runner_workers_equivalent(workers):
    from repro.experiments import run_experiment

    res = run_experiment("fig5b", scale="smoke", seed=4, workers=workers)
    sat = {m: max(p["throughput"] for p in pts) for m, pts in res["series"].items()}
    assert all(v > 0 for v in sat.values())
    if workers == 1:
        test_figure_runner_workers_equivalent.cache = res  # type: ignore[attr-defined]
    else:
        assert res == test_figure_runner_workers_equivalent.cache  # type: ignore[attr-defined]
