"""Parallel sweep execution: identical results, any pool size."""

import pytest

from repro.experiments.parallel import (
    default_workers,
    parallel_load_sweep,
    parallel_multi_sweep,
    run_points,
)
from repro.experiments.sweeps import load_sweep
from repro.network.config import paper_vct_config


def test_default_workers_positive():
    assert default_workers() >= 1


def test_parallel_matches_serial():
    cfg = paper_vct_config(h=2, routing="minimal", seed=3)
    loads = (0.1, 0.3)
    serial = load_sweep(cfg, "uniform", loads, warmup=300, measure=300)
    par = parallel_load_sweep(cfg, "uniform", loads, warmup=300, measure=300, workers=2)
    assert par == serial


def test_run_points_order_preserved():
    cfg = paper_vct_config(h=2, routing="minimal", seed=1)
    tasks = [(cfg, "uniform", load, 200, 200) for load in (0.3, 0.1, 0.2)]
    results = run_points(tasks, workers=3)
    assert [r["load"] for r in results] == [0.3, 0.1, 0.2]


def test_run_points_serial_path():
    cfg = paper_vct_config(h=2, routing="minimal", seed=1)
    results = run_points([(cfg, "uniform", 0.1, 200, 200)], workers=4)
    assert len(results) == 1  # single task short-circuits the pool


def test_parallel_multi_sweep_series():
    loads = (0.1, 0.2)
    spec = [
        (name, paper_vct_config(h=2, routing=name, seed=2), "advg+1")
        for name in ("minimal", "valiant")
    ]
    series = parallel_multi_sweep(spec, loads, warmup=250, measure=250, workers=2)
    assert set(series) == {"minimal", "valiant"}
    for pts in series.values():
        assert [p["load"] for p in pts] == list(loads)


@pytest.mark.parametrize("workers", [1, 2])
def test_figure_runner_workers_equivalent(workers):
    from repro.experiments import run_experiment

    res = run_experiment("fig5b", scale="smoke", seed=4, workers=workers)
    sat = {m: max(p["throughput"] for p in pts) for m, pts in res["series"].items()}
    assert all(v > 0 for v in sat.values())
    if workers == 1:
        test_figure_runner_workers_equivalent.cache = res  # type: ignore[attr-defined]
    else:
        assert res == test_figure_runner_workers_equivalent.cache  # type: ignore[attr-defined]
