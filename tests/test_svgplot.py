"""SVG chart renderer tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.svgplot import LineChart, _nice_ticks, chart_from_result


def sample_chart():
    c = LineChart("demo", "x", "y")
    c.add_series("olm", [(0.1, 110.0), (0.3, 130.0), (0.5, 170.0)])
    c.add_series("pb", [(0.1, 115.0), (0.3, 150.0)])
    return c


def test_svg_is_valid_xml():
    svg = sample_chart().to_svg()
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")


def test_svg_contains_series_and_labels():
    svg = sample_chart().to_svg()
    for token in ("olm", "pb", "demo", "<path", "<circle"):
        assert token in svg


def test_nan_points_dropped():
    c = LineChart("t", "x", "y")
    c.add_series("s", [(0.1, float("nan")), (0.2, 1.0), (0.3, 2.0)])
    assert len(c.series[0][1]) == 2
    c.to_svg()  # must not raise


def test_empty_series_ignored_and_empty_chart_rejected():
    c = LineChart("t", "x", "y")
    c.add_series("all-nan", [(0.1, float("nan"))])
    assert c.series == []
    with pytest.raises(ValueError):
        c.to_svg()


def test_single_point_series_renders():
    c = LineChart("t", "x", "y")
    c.add_series("s", [(0.5, 3.0)])
    ET.fromstring(c.to_svg())


def test_nice_ticks_cover_range():
    ticks = _nice_ticks(0.0, 1.0)
    assert ticks[0] >= 0.0 and ticks[-1] <= 1.0 + 1e-9
    assert len(ticks) >= 3
    deltas = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
    assert len(deltas) == 1  # uniform spacing
    assert _nice_ticks(2.0, 2.0)  # degenerate range does not crash


def test_chart_from_result_load_series():
    result = {
        "id": "fig5a", "description": "demo", "metric": "throughput",
        "series": {"olm": [{"load": 0.1, "throughput": 0.1},
                           {"load": 0.2, "throughput": 0.19}]},
    }
    chart = chart_from_result(result)
    assert "Accepted load" in chart.ylabel
    assert "Offered load" in chart.xlabel
    ET.fromstring(chart.to_svg())


def test_chart_from_result_mixed_series():
    result = {
        "id": "fig6b", "description": "demo", "metric": "drain_cycles",
        "series": {"pb": [{"global_pct": 0, "drain_cycles": 100},
                          {"global_pct": 100, "drain_cycles": 220}]},
    }
    chart = chart_from_result(result)
    assert "%" in chart.xlabel
    svg = chart.to_svg()
    assert "Burst consumption" in svg


def test_save_creates_directories(tmp_path):
    path = sample_chart().save(tmp_path / "a" / "b" / "fig.svg")
    assert path.exists()
    assert path.read_text().startswith("<svg")
