"""Shape-verification module: claim predicates and markdown rendering."""


from repro.experiments.verify import (
    CHECKS,
    Claim,
    check_burst,
    check_cross_topology,
    check_mixed,
    check_table1,
    check_vct_advgh,
    check_vct_uniform,
    low_load_latency,
    mean_drain,
    render_experiments_md,
    saturation,
    verify_result,
)


def sweep_points(loads_thr, lat0=120.0):
    return [{"load": load, "throughput": thr, "mean_latency": lat0 + 100 * i}
            for i, (load, thr) in enumerate(loads_thr)]


def test_helpers():
    pts = sweep_points([(0.1, 0.1), (0.5, 0.45)])
    assert saturation(pts) == 0.45
    assert low_load_latency(pts) == 120.0
    assert mean_drain([{"drain_cycles": 10}, {"drain_cycles": 30}]) == 20.0
    assert saturation([]) == 0.0


def good_uniform_result():
    mk = lambda sat: sweep_points([(0.2, 0.2), (0.8, sat)])
    return {
        "id": "fig5a",
        "description": "demo",
        "series": {
            "par62": mk(0.62), "olm": mk(0.61), "rlm": mk(0.60),
            "minimal": mk(0.55), "pb": mk(0.55),
        },
    }


def test_uniform_claims_pass():
    claims = check_vct_uniform(good_uniform_result())
    assert all(c.passed for c in claims)


def test_uniform_claims_fail_when_olm_weak():
    r = good_uniform_result()
    r["series"]["olm"] = sweep_points([(0.2, 0.2), (0.8, 0.40)])
    claims = check_vct_uniform(r)
    assert not all(c.passed for c in claims)


def test_advgh_claims():
    mk = lambda sat: sweep_points([(0.1, 0.1), (0.5, sat)])
    r = {"id": "fig5c", "series": {
        "par62": mk(0.40), "olm": mk(0.39), "rlm": mk(0.38),
        "valiant": mk(0.28), "pb": mk(0.30),
    }}
    assert all(c.passed for c in check_vct_advgh(r))
    r["series"]["par62"] = r["series"]["olm"] = r["series"]["rlm"] = mk(0.2)
    assert not all(c.passed for c in check_vct_advgh(r))


def test_mixed_and_burst_claims():
    mix = lambda v: [{"global_pct": p, "throughput": v} for p in (0, 100)]
    r = {"id": "fig6a", "series": {
        "par62": mix(0.7), "olm": mix(0.7), "rlm": mix(0.6), "pb": mix(0.5),
    }}
    assert all(c.passed for c in check_mixed(r))
    drain = lambda v: [{"global_pct": p, "drain_cycles": v} for p in (0, 100)]
    rb = {"id": "fig6b", "series": {"olm": drain(40), "rlm": drain(45), "pb": drain(100)}}
    assert all(c.passed for c in check_burst(rb))
    rb_bad = {"id": "fig6b", "series": {"olm": drain(95), "rlm": drain(99), "pb": drain(100)}}
    assert not any(c.passed for c in check_burst(rb_bad))


def test_table1_claim():
    from repro.experiments.registry import run_experiment

    res = run_experiment("tab1")
    claims = check_table1(res)
    assert claims[0].passed
    assert verify_result(res)[0].passed


def xtopo_points(sat, lat0):
    """Curve tracking offered load up to a saturation plateau."""
    return [{"load": load, "throughput": min(load, sat),
             "mean_latency": lat0 * (1 + 2 * i)}
            for i, load in enumerate((0.1, 0.4, 0.8))]


def good_xtopo_result():
    return {"id": "xtopo1", "series": {
        "dragonfly/minimal": xtopo_points(0.65, 115.0),
        "dragonfly/valiant": xtopo_points(0.40, 240.0),
        "flattened_butterfly/minimal": xtopo_points(0.80, 21.0),
        "flattened_butterfly/valiant": xtopo_points(0.78, 32.0),
        "torus/minimal": xtopo_points(0.25, 190.0),
        "torus/valiant": xtopo_points(0.22, 430.0),
    }}


def test_cross_topology_claims_pass():
    claims = check_cross_topology(good_xtopo_result())
    assert len(claims) == 4
    assert all(c.passed for c in claims)


def test_cross_topology_claims_fail_on_broken_fabric():
    # a deadlocked torus (throughput collapse) must trip the first claim
    r = good_xtopo_result()
    r["series"]["torus/valiant"] = [
        {"load": load, "throughput": 0.01, "mean_latency": 9000.0}
        for load in (0.1, 0.4, 0.8)
    ]
    claims = check_cross_topology(r)
    assert not claims[0].passed
    # and Valiant beating minimal on a fabric trips the ordering claim
    r = good_xtopo_result()
    r["series"]["dragonfly/valiant"] = xtopo_points(0.90, 240.0)
    assert not check_cross_topology(r)[1].passed


def test_every_check_has_expectation_text():
    for exp_id, (checker, expectation) in CHECKS.items():
        assert callable(checker)
        assert expectation


def test_render_markdown():
    from repro.experiments.registry import run_experiment

    results = {"tab1": run_experiment("tab1")}
    md = render_experiments_md(results)
    assert "# EXPERIMENTS" in md
    assert "tab1" in md
    assert "shape checks pass" in md
    assert "| claim | ok | measured |" in md


def test_claim_row_rendering():
    c = Claim("demo", True, "x=1")
    assert "✅" in c.row()
    assert "❌" in Claim("demo", False, "x").row()
