"""Deadlock-freedom stress tests.

Small buffers + high adversarial load + long runs; every configuration
must keep making progress (the engine raises DeadlockError otherwise)
and fully drain once sources stop.  These runs exercise exactly the
cyclic-dependency scenarios the paper's mechanisms are designed for.
"""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import AdversarialGlobal, AdversarialLocal, MixedGlobalLocal
from repro.traffic.processes import BernoulliTraffic

STRESS_PATTERNS = [
    AdversarialGlobal(1),
    AdversarialGlobal(2),
    AdversarialLocal(1),
    MixedGlobalLocal(0.5, global_offset=2),
]


def stress(routing, flow_control, pattern, seed, *, packet=8, flit=4):
    # Buffers sized to be tight (2 flow-control units locally) while keeping
    # global links usable: far below the ~200-cycle global round trip the
    # drain is merely glacial, which is not what this test is about.
    unit = packet if flow_control == "vct" else flit
    cfg = SimConfig(
        h=2, routing=routing, flow_control=flow_control,
        packet_phits=packet, flit_phits=flit,
        local_buffer_phits=2 * unit,
        global_buffer_phits=8 * unit,
        seed=seed, deadlock_window=4000,
    )
    sim = Simulator(cfg, BernoulliTraffic(pattern, 1.0))
    sim.run(2000)  # would raise DeadlockError on a cycle
    sim.traffic = None
    sim.run_until_drained(600000)
    assert sim.stats.delivered == sim.stats.generated


@pytest.mark.parametrize("pattern", STRESS_PATTERNS, ids=lambda p: p.name + str(getattr(p, "offset", "")))
@pytest.mark.parametrize("routing", ["minimal", "valiant", "pb", "par62", "rlm", "olm"])
def test_vct_no_deadlock_tight_buffers(routing, pattern):
    stress(routing, "vct", pattern, seed=13)


@pytest.mark.parametrize("pattern", STRESS_PATTERNS, ids=lambda p: p.name + str(getattr(p, "offset", "")))
@pytest.mark.parametrize("routing", ["minimal", "valiant", "pb", "par62", "rlm"])
def test_wh_no_deadlock_tight_buffers(routing, pattern):
    """Wormhole with multi-flit packets: the extended-dependency case."""
    stress(routing, "wh", pattern, seed=17, packet=16, flit=4)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_rlm_wh_seeds(seed):
    """RLM under WH is the paper's headline safety claim; vary seeds."""
    stress("rlm", "wh", AdversarialGlobal(2), seed=seed, packet=16, flit=4)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_olm_vct_seeds(seed):
    """OLM creates cycles by design; the escape path must always resolve them."""
    stress("olm", "vct", AdversarialGlobal(2), seed=seed)


def test_deadlock_detector_fires_on_artificial_stall():
    """Sanity-check the watchdog itself: strangle a sim and expect the error."""
    from repro.network.simulator import DeadlockError

    cfg = SimConfig(h=2, routing="minimal", deadlock_window=50, seed=1)
    sim = Simulator(cfg)
    pkt_dst = sim.topo.node_id(1, 0)
    sim.inject_packet(0, pkt_dst)
    # freeze every output port forever: no grant can ever happen
    for router in sim.routers:
        for out in router.outputs:
            out.busy_until = 10**9
    with pytest.raises(DeadlockError):
        sim.run(1000)
