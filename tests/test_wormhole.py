"""Wormhole-specific engine behaviour: flit ordering, VC ownership, HOLB."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.topology.dragonfly import PortKind
from repro.traffic.patterns import UniformRandom
from repro.traffic.processes import BernoulliTraffic

from tests.helpers import EJECT, LOCAL, replay_path


def wh_sim(**over):
    defaults = dict(h=2, routing="rlm", flow_control="wh",
                    packet_phits=40, flit_phits=10, record_hops=True, seed=3)
    defaults.update(over)
    return Simulator(SimConfig(**defaults))


def test_single_packet_multiflit_delivery():
    sim = wh_sim()
    dst = sim.topo.node_id(1, 0)
    pkt = sim.inject_packet(0, dst)
    sim.run_until_drained(20000)
    path = replay_path(sim, pkt)
    assert [k for k, *_ in path] == [LOCAL, EJECT]
    # head flit: grant t=0, store-and-forward arrival 0+10+10, eject grant
    # waits for the 4 flits to stream; tail consumed at 20+3*10(+10 eject)... at
    # minimum the serialization of 40 phits must appear end-to-end:
    assert pkt.delivered_cycle >= 40 + 10


def test_flits_arrive_in_order_single_vc():
    """Per input VC, flit indices of one packet must be consecutive."""
    sim = wh_sim()
    sim.traffic = BernoulliTraffic(UniformRandom(), 0.3)
    seen: dict[tuple, list] = {}
    for _ in range(2500):
        for router, port_idx, vc_idx, flit in sim.arrivals_due(sim.now):
            key = (router.rid, port_idx, vc_idx, flit.packet.pid)
            seen.setdefault(key, []).append(flit.index)
        sim.step()
    assert seen, "no arrivals observed"
    for key, indices in seen.items():
        assert indices == sorted(indices), key
        # contiguity: each packet's flits on one VC are consecutive
        assert indices == list(range(indices[0], indices[0] + len(indices))), key


def test_vc_ownership_exclusive():
    """While a packet owns a downstream VC, no other packet's flit enters it."""
    sim = wh_sim()
    sim.traffic = BernoulliTraffic(UniformRandom(), 0.5)
    violations = []
    orig_grant = sim._grant

    def checked_grant(router, out, sel, t):
        ip, vcb, flit, oidx, ovc, dec = sel
        if out.kind != PortKind.EJECT:
            owner = out.owner[ovc]
            if owner is not None and owner != flit.packet.pid:
                violations.append((t, owner, flit.packet.pid))
        orig_grant(router, out, sel, t)

    sim._grant = checked_grant  # type: ignore[method-assign]
    sim.run(2000)
    assert not violations


def test_wh_packet_streams_across_routers():
    """A blocked wormhole packet occupies buffers in more than one router."""
    cfg = SimConfig(h=2, routing="rlm", flow_control="wh",
                    packet_phits=40, flit_phits=10,
                    local_buffer_phits=10, global_buffer_phits=20, seed=3)
    sim = Simulator(cfg)
    # one long packet to a remote group: with 10-phit buffers a 4-flit packet
    # can never sit in a single router
    tg = sim.topo.target_group_of(0, 0)
    dst = sim.topo.node_id(sim.topo.router_id(tg, 0), 0)
    sim.inject_packet(0, dst)
    spread = 0
    for _ in range(400):
        sim.step()
        holding = sum(
            1
            for r in sim.routers
            for ip in r.inputs
            if not ip.is_injection and ip.total_flits()
        )
        spread = max(spread, holding)
    assert spread >= 1
    sim.run_until_drained(20000)


def test_vct_vs_wh_base_latency():
    """Store-and-forward flits make WH slower per hop at zero load."""
    lat = {}
    for fcname, pkt_phits in (("vct", 40), ("wh", 40)):
        cfg = SimConfig(h=2, routing="minimal", flow_control=fcname,
                        packet_phits=pkt_phits, flit_phits=10,
                        local_buffer_phits=64, global_buffer_phits=256, seed=1)
        sim = Simulator(cfg)
        tg = sim.topo.target_group_of(0, 0)
        dst = sim.topo.node_id(sim.topo.router_id(tg, 0), 0)
        p = sim.inject_packet(0, dst)
        sim.run_until_drained(10000)
        lat[fcname] = p.delivered_cycle
    assert lat["wh"] > lat["vct"]


def test_flow_control_unit_must_fit_buffers():
    with pytest.raises(ValueError, match="does not fit"):
        Simulator(SimConfig(h=2, routing="minimal", flow_control="vct",
                            packet_phits=80, local_buffer_phits=32))
    with pytest.raises(ValueError, match="does not fit"):
        Simulator(SimConfig(h=2, routing="rlm", flow_control="wh",
                            packet_phits=80, flit_phits=40, local_buffer_phits=32))
