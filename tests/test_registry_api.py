"""The unified component registry: registration, introspection, errors."""

import pytest

from repro.network.config import SimConfig
from repro.network.simulator import build_simulator
from repro.registry import (
    ARBITER_REGISTRY,
    FLOW_CONTROL_REGISTRY,
    PATTERN_REGISTRY,
    PROCESS_REGISTRY,
    ROUTING_REGISTRY,
    TOPOLOGY_REGISTRY,
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
    all_registries,
)
from repro.topology.dragonfly import Dragonfly


def test_register_direct_and_decorator():
    reg = Registry("widget")
    reg.register("alpha", object(), description="first")

    @reg.register("beta")
    class Beta:
        """A beta widget."""

    assert set(reg.available()) == {"alpha", "beta"}
    assert reg.get("beta") is Beta
    assert reg.describe()["alpha"] == "first"
    # description defaults to the first docstring line
    assert reg.describe()["beta"] == "A beta widget."


def test_duplicate_name_rejected():
    reg = Registry("widget")
    reg.register("x", 1)
    with pytest.raises(DuplicateComponentError, match="already registered"):
        reg.register("x", 2)
    assert reg.get("x") == 1
    reg.register("x", 2, overwrite=True)
    assert reg.get("x") == 2


def test_unknown_name_error_text_with_suggestion():
    reg = Registry("flavor")
    reg.register("vanilla", 1)
    reg.register("chocolate", 2)
    with pytest.raises(UnknownComponentError) as exc:
        reg.get("vanila")
    msg = str(exc.value)
    assert "unknown flavor 'vanila'" in msg
    assert "chocolate" in msg and "vanilla" in msg  # known names listed
    assert "did you mean 'vanilla'?" in msg
    # the error is both a ValueError (legacy contract) and a KeyError (mapping)
    assert isinstance(exc.value, ValueError)
    assert isinstance(exc.value, KeyError)


def test_get_with_default_follows_mapping_semantics():
    reg = Registry("thing")
    reg.register("a", 1)
    assert reg.get("a", 99) == 1
    assert reg.get("missing", 99) == 99
    assert reg.get("missing", None) is None
    with pytest.raises(UnknownComponentError):
        reg.get("missing")


def test_registry_is_a_mapping():
    reg = Registry("thing")
    reg.register("a", 1)
    reg.register("b", 2)
    assert reg == {"a": 1, "b": 2}
    assert "a" in reg and "z" not in reg
    assert len(reg) == 2
    assert sorted(reg) == ["a", "b"]
    assert reg["b"] == 2
    reg.unregister("b")
    assert "b" not in reg
    with pytest.raises(UnknownComponentError):
        reg.unregister("b")


def test_all_registries_lists_every_component_kind():
    regs = all_registries()
    assert set(regs) == {"topology", "routing", "flow-control", "arbitration",
                         "traffic-pattern", "traffic-process", "executor",
                         "engine"}
    assert "dragonfly" in regs["topology"].available()
    assert regs["engine"].available() == ("array", "auto", "reference", "wheel")
    assert "olm" in regs["routing"].available()
    assert regs["flow-control"].available() == ("vct", "wh")
    assert regs["arbitration"].available() == ("age", "random", "rr")
    assert "uniform" in regs["traffic-pattern"].available()
    assert "bernoulli" in regs["traffic-process"].available()
    for registry in regs.values():
        for name, description in registry.describe().items():
            assert description, f"{registry.kind} {name!r} lacks a description"


def test_third_party_pattern_via_decorator():
    from repro.traffic.patterns import TrafficPattern, pattern_by_name

    @PATTERN_REGISTRY.register("all-to-zero", description="everyone floods node 0")
    class AllToZero(TrafficPattern):
        """Everyone sends to node 0 (node 0 bounces to 1)."""

        name = "all-to-zero"

        def dest(self, src, topo, rng):
            return 0 if src != 0 else 1

    try:
        topo = Dragonfly(2)
        pattern = pattern_by_name("all-to-zero", topo)
        assert isinstance(pattern, AllToZero)
        assert pattern.dest(5, topo, None) == 0
    finally:
        PATTERN_REGISTRY.unregister("all-to-zero")
    assert "all-to-zero" not in PATTERN_REGISTRY


def test_third_party_topology_selected_by_config():
    @TOPOLOGY_REGISTRY.register("dragonfly-consecutive",
                                description="dragonfly with consecutive links")
    class ConsecutiveDragonfly(Dragonfly):
        """Dragonfly hard-wired to the consecutive arrangement."""

        @classmethod
        def from_config(cls, config):
            return cls(config.h, p=config.p, a=config.a,
                       arrangement="consecutive")

    try:
        cfg = SimConfig(h=2, topology="dragonfly-consecutive", routing="minimal")
        sim = build_simulator(cfg)
        assert isinstance(sim.topo, ConsecutiveDragonfly)
        assert sim.topo.arrangement.name == "consecutive"
        pkt = sim.inject_packet(0, sim.topo.num_nodes - 1)
        sim.run_until_drained(50_000)
        assert pkt.delivered_cycle is not None
    finally:
        TOPOLOGY_REGISTRY.unregister("dragonfly-consecutive")
    with pytest.raises(ValueError, match="unknown topology"):
        SimConfig(topology="dragonfly-consecutive")


def test_config_names_validated_against_registries():
    with pytest.raises(ValueError, match="unknown topology.*did you mean"):
        SimConfig(topology="dragonfy")
    with pytest.raises(ValueError, match="unknown routing.*did you mean"):
        SimConfig(routing="olmm")
    with pytest.raises(ValueError, match="unknown flow control"):
        SimConfig(flow_control="bubble")
    with pytest.raises(ValueError, match="unknown arbitration"):
        SimConfig(arbitration="lottery")


def test_registered_pattern_with_required_args_gets_clear_error():
    from repro.traffic.extra import NodeShift
    from repro.traffic.patterns import TrafficPattern, pattern_by_name

    topo = Dragonfly(2)

    @PATTERN_REGISTRY.register("needy", description="requires a ctor argument")
    class Needy(TrafficPattern):
        def __init__(self, knob: int) -> None:
            self.knob = knob

        def dest(self, src, topo, rng):
            return (src + self.knob) % topo.num_nodes

    try:
        with pytest.raises(ValueError, match="cannot be built from a bare name"):
            pattern_by_name("needy", topo)
        assert pattern_by_name("needy", topo, knob=2).knob == 2
    finally:
        PATTERN_REGISTRY.unregister("needy")
    shifted = pattern_by_name("shift", topo, offset=3)
    assert isinstance(shifted, NodeShift) and shifted.offset == 3


def test_spec_prefixes_do_not_shadow_registered_names():
    from repro.traffic.patterns import TrafficPattern, pattern_by_name

    topo = Dragonfly(2)

    @PATTERN_REGISTRY.register("mixed-hot", description="prefix-sharing plugin")
    class MixedHot(TrafficPattern):
        """Plugin whose name shares the 'mixed' spec prefix."""

        def dest(self, src, topo, rng):
            return (src + 1) % topo.num_nodes

    try:
        assert isinstance(pattern_by_name("mixed-hot", topo), MixedHot)
    finally:
        PATTERN_REGISTRY.unregister("mixed-hot")
    # malformed spec-like names fall through to the registry error, not int()
    with pytest.raises(ValueError, match="unknown traffic pattern"):
        pattern_by_name("advglobal", topo)
    with pytest.raises(ValueError, match="unknown traffic pattern"):
        pattern_by_name("advg+x", topo)


def test_routing_registry_equals_legacy_dict_shape():
    # the Mapping face keeps the pre-registry contract alive
    from repro.core import OlmRouting, routing_by_name

    assert ROUTING_REGISTRY["olm"] is OlmRouting
    assert routing_by_name("olm") is OlmRouting
    assert dict(ROUTING_REGISTRY) == {name: ROUTING_REGISTRY[name]
                                      for name in ROUTING_REGISTRY.available()}


def test_flow_control_from_config():
    from repro.network.flowcontrol import VirtualCutThrough, Wormhole

    vct = FLOW_CONTROL_REGISTRY.get("vct").from_config(SimConfig())
    assert isinstance(vct, VirtualCutThrough)
    wh = FLOW_CONTROL_REGISTRY.get("wh").from_config(SimConfig(flow_control="wh"))
    assert isinstance(wh, Wormhole) and wh.flit_size == 10


def test_process_registry_contents():
    from repro.traffic.extra import TraceReplay
    from repro.traffic.processes import BernoulliTraffic, BurstTraffic

    assert PROCESS_REGISTRY.get("bernoulli") is BernoulliTraffic
    assert PROCESS_REGISTRY.get("burst") is BurstTraffic
    assert PROCESS_REGISTRY.get("trace") is TraceReplay


def test_arbiter_registry_builds_strategies():
    from repro.network.arbitration import AgeArbiter, RandomArbiter, RoundRobinArbiter

    assert ARBITER_REGISTRY.get("rr") is RoundRobinArbiter
    assert ARBITER_REGISTRY.get("random") is RandomArbiter
    assert ARBITER_REGISTRY.get("age") is AgeArbiter
    sim = build_simulator(SimConfig(arbitration="age", routing="minimal"))
    assert isinstance(sim.arbiter, AgeArbiter)
