"""Metamorphic properties of the statistics helpers.

Instead of pinning numeric outputs, these tests assert relations that
must hold under controlled input transformations — permutation
invariance of :func:`mean_ci`, CI shrinkage with more replicas, and
shift monotonicity of :func:`recovery_time` — the properties the
invariant verifier's ``ci_sanity`` and ``transient_window`` checks
lean on.
"""

import math
import random

import pytest

from repro.metrics.statistics import mean_ci, recovery_time


# ----------------------------------------------------------------- mean_ci

@pytest.mark.parametrize("seed", range(5))
def test_mean_ci_is_permutation_invariant(seed):
    rng = random.Random(seed)
    values = [rng.uniform(0.0, 10.0) for _ in range(rng.randrange(2, 30))]
    mean, half = mean_ci(values)
    for _ in range(5):
        shuffled = values[:]
        rng.shuffle(shuffled)
        m2, h2 = mean_ci(shuffled)
        assert m2 == pytest.approx(mean, rel=1e-12)
        assert h2 == pytest.approx(half, rel=1e-9)


def test_mean_ci_shift_and_scale_equivariance():
    values = [1.0, 2.0, 4.0, 8.0, 9.5]
    mean, half = mean_ci(values)
    m_shift, h_shift = mean_ci([v + 100.0 for v in values])
    assert m_shift == pytest.approx(mean + 100.0)
    assert h_shift == pytest.approx(half)  # CI width ignores location
    m_scale, h_scale = mean_ci([3.0 * v for v in values])
    assert m_scale == pytest.approx(3.0 * mean)
    assert h_scale == pytest.approx(3.0 * half)


def test_mean_ci_width_shrinks_with_more_replicas():
    # same per-seed spread, more seeds: the half-width must shrink
    rng = random.Random(42)
    base = [rng.gauss(5.0, 1.0) for _ in range(64)]
    widths = []
    for n in (4, 8, 16, 64):
        # block means keep the variance comparable while n grows
        _, half = mean_ci(base[:n])
        widths.append(half)
    assert widths[0] > widths[-1]
    assert all(w >= 0 for w in widths)


def test_mean_ci_degenerate_cases():
    mean, half = mean_ci([7.25])
    assert (mean, half) == (7.25, 0.0)  # one replica: no interval
    mean, half = mean_ci([3.0, 3.0, 3.0])
    assert mean == 3.0 and half == 0.0  # zero variance: zero width
    mean, half = mean_ci([1.0, float("nan")])
    assert math.isnan(mean) and math.isnan(half)  # NaN poisons, never hides
    with pytest.raises(ValueError):
        mean_ci([])


# ----------------------------------------------------------- recovery_time

def _ramp(baseline, *, high=0.9, settle_at=6, length=16):
    """A burst-response curve: elevated, then settled at the baseline."""
    return [high if i < settle_at else baseline for i in range(length)]


def test_recovery_time_is_monotone_under_series_shift():
    """Delaying the settle point can only delay (never hasten) recovery."""
    baseline = 0.3
    previous = None
    for settle_at in (2, 5, 8, 11):
        series = _ramp(baseline, settle_at=settle_at)
        t = recovery_time(series, baseline, bucket=100, hold=3)
        assert t is not None
        if previous is not None:
            assert t >= previous
        previous = t


def test_recovery_time_shifts_with_prepended_congestion():
    baseline = 0.25
    series = _ramp(baseline, settle_at=4, length=12)
    t = recovery_time(series, baseline, bucket=50, hold=2)
    shifted = [0.9, 0.9] + series
    t_shifted = recovery_time(shifted, baseline, bucket=50, hold=2)
    assert t is not None and t_shifted is not None
    assert t_shifted == t + 2 * 50  # two extra congested buckets


def test_recovery_time_bucket_scaling():
    baseline = 0.3
    series = _ramp(baseline, settle_at=5)
    t_small = recovery_time(series, baseline, bucket=100, hold=3)
    t_large = recovery_time(series, baseline, bucket=300, hold=3)
    assert t_small is not None and t_large == 3 * t_small


def test_recovery_time_never_recovers_on_elevated_series():
    assert recovery_time([0.9] * 10, 0.3, bucket=100, hold=3) is None


def test_recovery_time_tolerance_monotonicity():
    """A wider tolerance band can only make recovery earlier, not later."""
    baseline = 0.4
    series = [0.9, 0.8, 0.6, 0.5, 0.45, 0.42, 0.41, 0.40, 0.40, 0.40]
    times = []
    for rel in (0.02, 0.1, 0.3, 0.6):
        times.append(recovery_time(series, baseline, bucket=100,
                                   rel_tolerance=rel, hold=2))
    known = [t for t in times if t is not None]
    assert known == sorted(known, reverse=True)
    assert times[-1] is not None
