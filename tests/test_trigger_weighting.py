"""UGAL-style hop weighting of global misroute candidates."""


from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.traffic.patterns import AdversarialGlobal, UniformRandom
from repro.traffic.processes import BernoulliTraffic


def misroute_fraction(weight: float, pattern, load: float) -> float:
    cfg = SimConfig(h=2, routing="olm", trigger_global_hop_weight=weight, seed=3)
    sim = Simulator(cfg, BernoulliTraffic(pattern, load))
    sim.run(1200)
    sim.stats.reset(sim.now)
    sim.run(1200)
    return sim.stats.global_misroute_fraction()


def test_default_weight_is_ugal():
    assert SimConfig().trigger_global_hop_weight == 2.0


def test_weight_one_reproduces_verbatim_trigger():
    """weight=1.0 is the paper's raw occupancy comparison: most misrouting."""
    eager = misroute_fraction(1.0, UniformRandom(), 0.9)
    weighted = misroute_fraction(2.0, UniformRandom(), 0.9)
    strict = misroute_fraction(8.0, UniformRandom(), 0.9)
    assert eager > weighted > strict


def test_adversarial_misrouting_survives_weighting():
    """Under ADVG the minimal queue is saturated: Valiant still triggers."""
    gm = misroute_fraction(2.0, AdversarialGlobal(1), 0.6)
    assert gm > 0.5


def test_weighting_helps_uniform_throughput():
    def thr(weight):
        cfg = SimConfig(h=2, routing="olm", trigger_global_hop_weight=weight, seed=3)
        sim = Simulator(cfg, BernoulliTraffic(UniformRandom(), 0.9))
        sim.run(1500)
        sim.stats.reset(sim.now)
        sim.run(1500)
        return sim.stats.throughput(sim.topo.num_nodes, sim.now)

    assert thr(2.0) >= thr(1.0)
