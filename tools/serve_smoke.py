"""CI smoke for the simulation service: the serve contracts, end to end.

Runs the ASGI app fully in-process (no socket, no server dependency)
against one sparse steady-state point and asserts the three serve
contracts:

1. the streamed JSONL equals an offline ``MetricsHub`` export of the
   same window, byte for byte;
2. the HTTP result record equals a direct facade run (canonical JSON);
3. N concurrent identical submissions coalesce onto ONE execution and
   every subscriber reads identical bytes.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import sys

from repro.facade import run_point, session
from repro.metrics.hub import jsonl_line, strict_jsonable
from repro.network.config import SimConfig
from repro.runplan.cache import canonical_record_json
from repro.serve import ServeSettings, create_app, parse_submission, stream_meta
from repro.serve.testclient import Client

CONFIG = {"h": 1, "seed": 13}
PAYLOAD = {"config": CONFIG, "pattern": "uniform", "load": 0.2,
           "warmup": 300, "measure": 600, "bucket": 150}
SUBSCRIBERS = 4


async def smoke() -> None:
    app = create_app(ServeSettings(workers=2))
    async with Client(app) as client:
        posts = await asyncio.gather(*(
            client.post("/v1/jobs", json_body=dict(PAYLOAD))
            for _ in range(SUBSCRIBERS)))
        ids = {p.json()["job"] for p in posts}
        assert len(ids) == 1, f"dedupe failed: {len(ids)} jobs for one payload"
        job_id = ids.pop()

        streams = await asyncio.gather(*(
            client.get(f"/v1/jobs/{job_id}/stream")
            for _ in range(SUBSCRIBERS)))
        bodies = {s.body for s in streams}
        assert len(bodies) == 1, "subscribers read different stream bytes"

        status = (await client.get(f"/v1/jobs/{job_id}")).json()
        assert status["state"] == "done", status
        assert status["result"]["executed_points"] == 1, status["result"]
        [served] = status["result"]["records"]

    # contract 1: streamed JSONL == offline MetricsHub export
    [point] = parse_submission(PAYLOAD).points
    s = session(SimConfig(**CONFIG), pattern="uniform", load=0.2)
    s.warmup(300)
    sr = s.measure_series(600, bucket=150, meta=stream_meta(point))
    offline_jsonl = "".join(jsonl_line(row) + "\n" for row in sr.records)
    streamed = bodies.pop().decode()
    assert streamed == offline_jsonl, "stream bytes != offline hub export"

    # contract 2: HTTP record == direct facade run
    offline_record = strict_jsonable(
        run_point(SimConfig(**CONFIG), "uniform", 0.2, 300, 600))
    assert (canonical_record_json(served)
            == canonical_record_json(offline_record)), \
        "served record != offline facade record"

    rows = streamed.count("\n")
    print(f"serve smoke OK: {SUBSCRIBERS} identical submissions -> "
          f"1 execution, {rows} streamed rows byte-identical to the "
          "offline export, record byte-identical to the facade")


def main() -> int:
    asyncio.run(smoke())
    return 0


if __name__ == "__main__":
    sys.exit(main())
