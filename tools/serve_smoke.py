"""CI smoke for the simulation service: the serve contracts, end to end.

Runs the ASGI app fully in-process (no socket, no server dependency)
against one sparse steady-state point and asserts the three serve
contracts:

1. the streamed JSONL equals an offline ``MetricsHub`` export of the
   same window, byte for byte;
2. the HTTP result record equals a direct facade run (canonical JSON);
3. N concurrent identical submissions coalesce onto ONE execution and
   every subscriber reads identical bytes;
4. a served ``engine: "array"`` job returns records and stream bytes
   byte-equal to the same job on the wheel engine — and, on a shared
   queue, the two submissions dedupe onto ONE job (engine choice is
   excluded from point identity by contract).

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import sys

from repro.facade import run_point, session
from repro.metrics.hub import jsonl_line, strict_jsonable
from repro.network.config import SimConfig
from repro.runplan.cache import canonical_record_json
from repro.serve import ServeSettings, create_app, parse_submission, stream_meta
from repro.serve.testclient import Client

CONFIG = {"h": 1, "seed": 13}
PAYLOAD = {"config": CONFIG, "pattern": "uniform", "load": 0.2,
           "warmup": 300, "measure": 600, "bucket": 150}
SUBSCRIBERS = 4


async def smoke() -> None:
    app = create_app(ServeSettings(workers=2))
    async with Client(app) as client:
        posts = await asyncio.gather(*(
            client.post("/v1/jobs", json_body=dict(PAYLOAD))
            for _ in range(SUBSCRIBERS)))
        ids = {p.json()["job"] for p in posts}
        assert len(ids) == 1, f"dedupe failed: {len(ids)} jobs for one payload"
        job_id = ids.pop()

        streams = await asyncio.gather(*(
            client.get(f"/v1/jobs/{job_id}/stream")
            for _ in range(SUBSCRIBERS)))
        bodies = {s.body for s in streams}
        assert len(bodies) == 1, "subscribers read different stream bytes"

        status = (await client.get(f"/v1/jobs/{job_id}")).json()
        assert status["state"] == "done", status
        assert status["result"]["executed_points"] == 1, status["result"]
        [served] = status["result"]["records"]

    # contract 1: streamed JSONL == offline MetricsHub export
    [point] = parse_submission(PAYLOAD).points
    s = session(SimConfig(**CONFIG), pattern="uniform", load=0.2)
    s.warmup(300)
    sr = s.measure_series(600, bucket=150, meta=stream_meta(point))
    offline_jsonl = "".join(jsonl_line(row) + "\n" for row in sr.records)
    streamed = bodies.pop().decode()
    assert streamed == offline_jsonl, "stream bytes != offline hub export"

    # contract 2: HTTP record == direct facade run
    offline_record = strict_jsonable(
        run_point(SimConfig(**CONFIG), "uniform", 0.2, 300, 600))
    assert (canonical_record_json(served)
            == canonical_record_json(offline_record)), \
        "served record != offline facade record"

    # contract 4: served array-engine records == served wheel records.
    # A saturated minimal-routing point, so the array job really runs
    # on the vectorised core (olm/h=1 points would fall back to wheel).
    sat = {"config": {"h": 2, "routing": "minimal", "seed": 13},
           "pattern": "uniform", "load": 0.9,
           "warmup": 200, "measure": 400, "bucket": 100}
    served_by_engine = {}
    for engine in ("wheel", "array"):
        payload = {**sat, "config": {**sat["config"], "engine": engine}}
        app = create_app(ServeSettings(workers=1))
        async with Client(app) as client:
            job_id = (await client.post("/v1/jobs", json_body=payload)).json()["job"]
            stream = (await client.get(f"/v1/jobs/{job_id}/stream")).body
            status = (await client.get(f"/v1/jobs/{job_id}")).json()
            assert status["state"] == "done", status
            [record] = status["result"]["records"]
            served_by_engine[engine] = (canonical_record_json(record), stream)
    assert served_by_engine["array"] == served_by_engine["wheel"], \
        "served array-engine job != served wheel-engine job"

    # ...and on one queue the two engine spellings coalesce onto ONE job
    app = create_app(ServeSettings(workers=1))
    async with Client(app) as client:
        jobs = set()
        for engine in ("wheel", "array"):
            payload = {**sat, "config": {**sat["config"], "engine": engine}}
            jobs.add((await client.post("/v1/jobs", json_body=payload)).json()["job"])
            await client.get(f"/v1/jobs/{min(jobs)}/stream")  # let it finish
        assert len(jobs) == 1, f"engine choice changed the dedupe key: {jobs}"

    rows = streamed.count("\n")
    print(f"serve smoke OK: {SUBSCRIBERS} identical submissions -> "
          f"1 execution, {rows} streamed rows byte-identical to the "
          "offline export, record byte-identical to the facade, "
          "array-engine job byte-identical to the wheel job (and "
          "deduped onto it)")


def main() -> int:
    asyncio.run(smoke())
    return 0


if __name__ == "__main__":
    sys.exit(main())
