#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from saved experiment JSONs.

Usage::

    python -m repro.experiments.cli run all --scale tiny --json-dir results
    python tools/generate_experiments_md.py results EXPERIMENTS.md
"""

import sys
from pathlib import Path

from repro.experiments.reporting import load_result
from repro.experiments.verify import render_experiments_md


def main(results_dir: str = "results", out: str = "EXPERIMENTS.md") -> int:
    results = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        result = load_result(path)
        results[result["id"]] = result
    if not results:
        print(f"no result JSONs found in {results_dir!r}", file=sys.stderr)
        return 1
    Path(out).write_text(render_experiments_md(results))
    print(f"wrote {out} from {len(results)} experiments")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
