#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from saved experiment JSONs.

Usage::

    python -m repro.experiments.cli run all --scale tiny --json-dir results
    python tools/generate_experiments_md.py results EXPERIMENTS.md

``--check`` renders in memory and compares against the existing file
instead of writing — exit status 1 when EXPERIMENTS.md is stale (the
CI docs-drift gate)::

    python tools/generate_experiments_md.py --check results EXPERIMENTS.md
"""

import argparse
import sys
from pathlib import Path

from repro.experiments.reporting import load_result
from repro.experiments.verify import render_experiments_md


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", nargs="?", default="results")
    parser.add_argument("out", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when the rendered document "
                             "differs from the existing file; write nothing")
    args = parser.parse_args(argv)

    results = {}
    for path in sorted(Path(args.results_dir).glob("*.json")):
        result = load_result(path)
        results[result["id"]] = result
    if not results:
        print(f"no result JSONs found in {args.results_dir!r}", file=sys.stderr)
        return 1
    rendered = render_experiments_md(results)
    out = Path(args.out)
    if args.check:
        current = out.read_text() if out.exists() else ""
        if current != rendered:
            print(
                f"{args.out} is stale: regenerate it with\n"
                f"    python tools/generate_experiments_md.py "
                f"{args.results_dir} {args.out}",
                file=sys.stderr,
            )
            return 1
        print(f"{args.out} is up to date ({len(results)} experiments)")
        return 0
    out.write_text(rendered)
    print(f"wrote {args.out} from {len(results)} experiments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
