#!/usr/bin/env python3
"""Capture the engine's golden records for the determinism suite.

Runs a pinned scenario matrix (routing x pattern x load x VCT/WH, plus
burst-drain points) through the public Session workflow and stores each
record's canonical JSON string in ``tests/data/engine_goldens.json``.
The stored strings were captured from the *seed* engine (PR 3); the
equivalence suite (``tests/test_engine_equivalence.py``) asserts that
the timing-wheel engine — and the frozen ``ReferenceSimulator`` —
reproduce every record byte-identically.

Regenerating this file is only legitimate when a record-changing
behaviour change is *intended*; the diff then documents exactly which
scenarios moved.

Usage::

    PYTHONPATH=src python tools/make_engine_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.facade import run_drain, run_point
from repro.network.config import SimConfig
from repro.runplan import canonical_record_json

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "engine_goldens.json"

#: warm-up / measurement window of every steady-state golden (cycles)
WARMUP = 400
MEASURE = 400
#: drain budget of every burst golden (cycles)
MAX_DRAIN = 200_000
SEED = 7

VCT_ROUTINGS = ("minimal", "valiant", "pb", "par62", "olm", "ofar")
WH_ROUTINGS = ("minimal", "rlm")
PATTERNS = ("uniform", "advg+1")
LOADS = (0.05, 0.4)


def _vct_config(routing: str) -> SimConfig:
    return SimConfig(h=2, routing=routing, flow_control="vct",
                     packet_phits=8, seed=SEED)


def _wh_config(routing: str) -> SimConfig:
    return SimConfig(h=2, routing=routing, flow_control="wh",
                     packet_phits=40, flit_phits=10, seed=SEED)


def scenario_matrix() -> list[dict]:
    """The pinned matrix; each entry fully describes one record."""
    entries: list[dict] = []
    for routing in VCT_ROUTINGS:
        for pattern in PATTERNS:
            for load in LOADS:
                entries.append({
                    "kind": "point",
                    "config": _vct_config(routing).to_dict(),
                    "pattern": pattern, "load": load,
                    "warmup": WARMUP, "measure": MEASURE,
                })
    for routing in WH_ROUTINGS:
        for pattern in PATTERNS:
            entries.append({
                "kind": "point",
                "config": _wh_config(routing).to_dict(),
                "pattern": pattern, "load": 0.2,
                "warmup": WARMUP, "measure": MEASURE,
            })
    # burst-drain goldens exercise run_until_drained (and, in the
    # timing-wheel engine, the idle-gap fast-forward; the "pb" entry
    # pins the per-cycle-hook gate that disables fast-forwarding)
    for routing, fc in (("olm", "vct"), ("pb", "vct"), ("rlm", "wh")):
        cfg = _vct_config(routing) if fc == "vct" else _wh_config(routing)
        entries.append({
            "kind": "drain",
            "config": cfg.to_dict(),
            "pattern": "uniform", "packets_per_node": 3,
            "max_cycles": MAX_DRAIN,
        })
    # saturated minimal-routing points on every fabric — the array
    # engine's target regime (PR 7).  Beyond-saturation Bernoulli load
    # keeps every router backlogged through the whole window, and the
    # burst entries drain a fully backpressured network; h=2 scale
    # keeps the suite fast while still filling every buffer class.
    for topology in ("dragonfly", "flattened_butterfly", "torus"):
        for fc in ("vct", "wh"):
            cfg = SimConfig(h=2, topology=topology, routing="minimal",
                            flow_control=fc, seed=SEED)
            entries.append({
                "kind": "point",
                "config": cfg.to_dict(),
                "pattern": "uniform", "load": 0.9,
                "warmup": WARMUP, "measure": MEASURE,
            })
            entries.append({
                "kind": "drain",
                "config": cfg.to_dict(),
                "pattern": "uniform", "packets_per_node": 8,
                "max_cycles": MAX_DRAIN,
            })
    # saturated + age arbitration + hop recording: pins the array
    # engine's age-ordered arbitration keys and hops_log prefill
    entries.append({
        "kind": "point",
        "config": SimConfig(h=2, routing="minimal", arbitration="age",
                            record_hops=True, seed=SEED).to_dict(),
        "pattern": "uniform", "load": 0.9,
        "warmup": WARMUP, "measure": MEASURE,
    })
    # batched-injection goldens (PR 9): Bernoulli-saturated points
    # whose patterns exercise every inject_batch code path — hotspot
    # and mixed draw extra uniforms per hit (the interleaved
    # destination-draw contract), shift is deterministic (fully
    # vectorized destinations) — plus a sparse-hotspot drain pinning
    # the compaction path where only a handful of lanes stay live.
    base = SimConfig(h=2, routing="minimal", flow_control="vct", seed=SEED)
    for pattern, load in (("hotspot", 0.85), ("shift", 0.9), ("mixed:40", 0.8)):
        entries.append({
            "kind": "point", "config": base.to_dict(),
            "pattern": pattern, "load": load,
            "warmup": WARMUP, "measure": MEASURE,
        })
    entries.append({
        "kind": "point",
        "config": SimConfig(h=2, routing="minimal", flow_control="wh",
                            packet_phits=40, flit_phits=10, seed=SEED).to_dict(),
        "pattern": "hotspot", "load": 0.6,
        "warmup": WARMUP, "measure": MEASURE,
    })
    entries.append({
        "kind": "drain", "config": base.to_dict(),
        "pattern": "hotspot", "packets_per_node": 5,
        "max_cycles": MAX_DRAIN,
    })
    return entries


def run_entry(entry: dict) -> dict:
    """Produce the record of one matrix entry through the public facade."""
    cfg = SimConfig.from_dict(entry["config"])
    if entry["kind"] == "point":
        return run_point(cfg, entry["pattern"], entry["load"],
                         entry["warmup"], entry["measure"])
    return run_drain(cfg, entry["pattern"], entry["packets_per_node"],
                     entry["max_cycles"])


def main() -> int:
    entries = scenario_matrix()
    for i, entry in enumerate(entries):
        entry["record"] = canonical_record_json(run_entry(entry))
        print(f"[{i + 1:2d}/{len(entries)}] {entry['config']['routing']:8s} "
              f"{entry['config']['flow_control']} {entry['kind']}")
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps({"seed_commit": "d7548dd", "entries": entries},
                              indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT} ({len(entries)} records)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
