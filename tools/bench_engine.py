#!/usr/bin/env python3
"""Benchmark the cycle-engine backends against each other.

Runs a pinned scenario set on the registered engines — the frozen seed
hot path (``reference``), the live timing-wheel object engine
(``wheel``), the numpy structure-of-arrays core (``array``) and the
per-point selector (``auto``) — checks that every emitted record is
byte-identical across engines, and writes ``BENCH_engine.json`` with
cycles/sec and per-scenario speedups.

Scenario families (all record-gated, speedup-gated where marked):

* ``low_load_probe_*`` / ``burst_drain_superstep_*`` — the PR-3 wheel
  gates: sparse traffic where the timing wheel's idle fast-forward is
  the whole story (>= 2x over the seed engine).
* ``saturated_burst_*`` — the PR-7 array-core gates: a fully
  backpressured fabric draining an adversarial-global burst at h=4
  scale (1056 nodes).  Every router stays busy, so the wheel pays a
  Python pass per active router per cycle while the array core does a
  fixed number of numpy kernel calls regardless of fabric size
  (>= 5x over the wheel).
* ``saturated_bernoulli_*`` — formerly honesty rows, now gated on the
  vct row (>= 4x over the wheel): the batched-injection protocol
  (``TrafficProcess.inject_batch``) lets the array core consume a whole
  cycle's Bernoulli arrivals as (srcs, dsts) vectors, and the per-flit
  next-hop cache plus single-flit allocation fast path removed the
  remaining per-cycle numpy overhead.  The RNG draw itself stays a
  Python-loop contract floor shared by every engine, which is why the
  gate is 4x rather than the drain rows' 5x.  Measured over a long
  steady window (warmup excluded) because the array core's one-time
  route-cache population otherwise dilutes the steady-state ratio.
* ``sparse_hotspot_backlog`` — formerly the array core's worst case:
  only a handful of routers are ever active.  Sparse-activity
  compaction (epoch-keyed active-pair layouts, the event-driven
  allocation cache and the credit watch) makes the per-cycle kernels
  O(active), so the array core now has to at least match the wheel
  (>= 1x, gated) instead of losing outright.
* ``low_load_bernoulli`` / ``burst_drain_dense`` / ``mid_load`` /
  ``adversarial`` — wheel-vs-seed context rows (see PR 3).  The dense
  vct drain additionally gates the array engine's wheel fallback at
  >= 1x: olm routing falls back to the object engine, which must not
  cost anything over using the wheel directly.

The ``auto`` engine (array when eligible, wheel otherwise) is in the
smoke matrix so CI proves its records match whatever engine it picks.

Speed gates are targets recorded in the report, never asserted by CI
(CI machines are noisy); record equality is always asserted.
``--smoke`` runs a short matrix over all engines and exits
non-zero on any record mismatch — the CI engine-equivalence gate.

Usage::

    PYTHONPATH=src python tools/bench_engine.py              # full bench
    PYTHONPATH=src python tools/bench_engine.py --smoke      # CI gate
    PYTHONPATH=src python tools/bench_engine.py --engine array
    PYTHONPATH=src python tools/bench_engine.py --profile --engine array
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import time
from pathlib import Path

from repro.facade import Session, point_record
from repro.network.arraysim import ArraySimulator, AutoSimulator
from repro.network.config import SimConfig
from repro.network.reference import ReferenceSimulator
from repro.network.simulator import Simulator
from repro.runplan import canonical_record_json
from repro.traffic.extra import TraceReplay
from repro.traffic.patterns import pattern_by_name
from repro.traffic.processes import BurstTraffic

SEED = 11

ENGINES = {
    "reference": ReferenceSimulator,
    "wheel": Simulator,
    "array": ArraySimulator,
    "auto": AutoSimulator,
}
ENGINE_NAMES = tuple(ENGINES)


def _cfg(fc: str, routing: str, **over) -> dict:
    base = dict(h=2, routing=routing, seed=SEED, flow_control=fc)
    if fc == "wh":
        base.update(packet_phits=40, flit_phits=10)
    base.update(over)
    return base


def _uniform_trace(topo, cycles_and_sources, rng_seed: int) -> list[tuple]:
    """(cycle, src, uniform dst) records; deterministic per rng_seed."""
    rng = random.Random(rng_seed)
    n = topo.num_nodes
    records = []
    for cycle, src in cycles_and_sources:
        d = rng.randrange(n - 1)
        d = d if d < src else d + 1
        records.append((cycle, src, d))
    return records


def scenarios(smoke: bool) -> list[dict]:
    w, m = (600, 600) if smoke else (3000, 3000)
    probes = 24 if smoke else 144
    steps = 2 if smoke else 4
    gated = [
        dict(name="low_load_probe_vct", kind="probe", cfg=_cfg("vct", "olm"),
             spacing=131, probes=probes, gate="wheel>=2x_vs_reference",
             engines=("reference", "wheel")),
        dict(name="burst_drain_superstep_vct", kind="superstep",
             cfg=_cfg("vct", "olm"), period=5000, steps=steps,
             packets_per_node=1, gate="wheel>=2x_vs_reference",
             engines=("reference", "wheel")),
    ]
    if smoke:
        # the CI gate: short windows, every engine on every row —
        # including a saturated minimal-routing row that actually runs
        # on the array core (olm rows exercise its wheel fallback)
        gated[0]["engines"] = gated[1]["engines"] = ENGINE_NAMES
        return gated + [
            dict(name="saturated_burst_vct", kind="drain",
                 cfg=_cfg("vct", "minimal"), pattern="advg+1",
                 packets_per_node=4, max_cycles=200_000, gate=None,
                 engines=ENGINE_NAMES),
            dict(name="saturated_bernoulli_wh", kind="point",
                 cfg=_cfg("wh", "minimal"), pattern="uniform", load=0.9,
                 warmup=200, measure=200, gate=None, engines=ENGINE_NAMES),
        ]
    return gated + [
        dict(name="low_load_probe_wh", kind="probe", cfg=_cfg("wh", "rlm"),
             spacing=131, probes=probes, gate="wheel>=2x_vs_reference",
             engines=("reference", "wheel")),
        dict(name="burst_drain_superstep_wh", kind="superstep",
             cfg=_cfg("wh", "rlm"), period=5000, steps=steps,
             packets_per_node=1, gate="wheel>=2x_vs_reference",
             engines=("reference", "wheel")),
        # ---- PR-7 array-core gates: saturated drains at h=4 scale.
        # The reference engine is omitted on the h=4 rows (several
        # minutes per repetition adds nothing: the wheel is already
        # record-gated against it on every other row).
        dict(name="saturated_burst_advg_vct_h4", kind="drain",
             cfg=_cfg("vct", "minimal", h=4), pattern="advg+1",
             packets_per_node=40, max_cycles=500_000,
             gate="array>=5x_vs_wheel", engines=("wheel", "array"),
             repeat=1),
        dict(name="saturated_burst_advg_wh_h4", kind="drain",
             cfg=_cfg("wh", "minimal", h=4), pattern="advg+1",
             packets_per_node=15, max_cycles=500_000,
             gate="array>=5x_vs_wheel", engines=("wheel", "array"),
             repeat=1),
        # ---- PR-9 array-core gates: the two former honesty rows.
        # The Bernoulli row measures a long steady window: the array
        # core pays a one-time ~0.5s route-cache population (a Python
        # walk per hot router pair) that would dilute the steady-state
        # ratio the row exists to report — per-cycle it runs ~4.5-5x
        # the wheel at this saturation.
        dict(name="saturated_bernoulli_vct_h3", kind="point",
             cfg=_cfg("vct", "minimal", h=3), pattern="uniform", load=0.9,
             warmup=1000, measure=15000, gate="array>=4x_vs_wheel",
             engines=("wheel", "array"), repeat=4),
        dict(name="saturated_burst_uniform_vct_h3", kind="drain",
             cfg=_cfg("vct", "minimal", h=3), pattern="uniform",
             packets_per_node=200, max_cycles=500_000, gate=None,
             engines=("wheel", "array"), repeat=2),
        dict(name="sparse_hotspot_backlog", kind="drain",
             cfg=_cfg("vct", "minimal", h=3), pattern="hotspot",
             pattern_kwargs={"hot_node": 0}, packets_per_node=5,
             max_cycles=500_000, gate="array>=1x_vs_wheel",
             engines=("wheel", "array"), repeat=4),
        # ---- wheel-vs-seed context rows (PR 3)
        dict(name="low_load_bernoulli_vct", kind="point", cfg=_cfg("vct", "olm"),
             pattern="uniform", load=0.02, warmup=w, measure=m, gate=None,
             engines=("reference", "wheel")),
        # olm routing sends the array engine down its wheel fallback;
        # the >=1x gate proves pinned dispatch makes that free.  The
        # drain is ~30ms, so parity needs a deep best-of to shake
        # timer noise out of both sides of the ratio.
        dict(name="burst_drain_dense_vct", kind="drain", cfg=_cfg("vct", "olm"),
             pattern="uniform", packets_per_node=10, max_cycles=500_000,
             gate="array>=1x_vs_wheel",
             engines=("reference", "wheel", "array"), repeat=10),
        dict(name="burst_drain_dense_wh", kind="drain", cfg=_cfg("wh", "rlm"),
             pattern="uniform", packets_per_node=4, max_cycles=500_000,
             gate=None, engines=("reference", "wheel")),
        dict(name="mid_load_vct", kind="point", cfg=_cfg("vct", "olm"),
             pattern="uniform", load=0.4, warmup=w, measure=m, gate=None,
             engines=("reference", "wheel")),
        dict(name="adversarial_vct", kind="point", cfg=_cfg("vct", "olm"),
             pattern="advg+1", load=0.3, warmup=w, measure=m, gate=None,
             engines=("reference", "wheel")),
    ]


def _timed(fn) -> tuple[float, object]:
    """(wall seconds, result) of ``fn()`` with the cyclic GC parked.

    Collect before the clock starts and disable the collector while it
    runs: GC pauses otherwise land in one engine's window and tilt the
    near-parity ratios (the wheel-fallback gate) by a few percent.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result
    finally:
        gc.enable()


def run_scenario(sc: dict, sim_cls, with_tap: bool = False) -> tuple[float, int, str]:
    """(wall seconds, cycles simulated, canonical record) for one engine.

    ``with_tap`` attaches a full MetricsHub (every event point wired)
    before the run — the instrumentation-overhead gate: the emitted
    record must stay byte-identical to the untapped reference engine.
    """
    cfg = SimConfig(**sc["cfg"])
    session = Session(sim=sim_cls(cfg))
    sim = session.sim
    if with_tap:
        from repro.metrics.hub import MetricsHub

        MetricsHub(sim, bucket=500)
    kind = sc["kind"]
    if kind == "point":
        # Warm-up is outside the clock: steady-state rows compare the
        # engines' per-cycle rate, not one-time setup (the array core
        # populates its route cache during the first injected cycles).
        session.bernoulli(sc["pattern"], sc["load"]).warmup(sc["warmup"])
        elapsed, result = _timed(lambda: session.measure(sc["measure"]))
        record = point_record(result, cfg, pattern=sc["pattern"], load=sc["load"])
    elif kind == "drain":
        pattern = pattern_by_name(sc["pattern"], sim.topo,
                                  **sc.get("pattern_kwargs", {}))
        session.with_traffic(BurstTraffic(pattern, sc["packets_per_node"]))
        elapsed, result = _timed(lambda: session.drain(sc["max_cycles"]))
        record = point_record(result, cfg, pattern=sc["pattern"],
                              packets_per_node=sc["packets_per_node"])
    elif kind == "probe":
        n = sim.topo.num_nodes
        pairs = [(i * sc["spacing"], (i * 5) % n) for i in range(sc["probes"])]
        sim.traffic = TraceReplay(_uniform_trace(sim.topo, pairs, SEED))
        elapsed, result = _timed(lambda: session.drain(500_000))
        record = result.to_dict()
    else:  # superstep
        n = sim.topo.num_nodes
        pairs = [(s * sc["period"], node)
                 for s in range(sc["steps"]) for node in range(n)
                 for _ in range(sc["packets_per_node"])]
        sim.traffic = TraceReplay(_uniform_trace(sim.topo, pairs, SEED))
        elapsed, result = _timed(lambda: session.measure(sc["steps"] * sc["period"]))
        record = result.to_dict()
    cycles = sim.now - (sc["warmup"] if kind == "point" else 0)
    return elapsed, cycles, canonical_record_json(record)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="short matrix, all engines, no report file "
                         "unless --out is given (the CI equivalence gate)")
    ap.add_argument("--engine", choices=(*ENGINES, "all"), default="all",
                    help="time only this engine (records are still "
                         "cross-checked against every other engine the "
                         "scenario lists); default: all")
    ap.add_argument("--repeat", type=int, default=3,
                    help="timing repetitions per scenario (best-of, default 3)")
    ap.add_argument("--profile", action="store_true",
                    help="after timing, run each timed engine once more "
                         "under cProfile and print the top 10 functions "
                         "by cumulative time (profiled runs are never "
                         "used for the timings in the report)")
    ap.add_argument("--tap", action="store_true",
                    help="attach a MetricsHub to the non-reference engines: "
                         "records must stay byte-identical to the untapped "
                         "seed engine (the instrumentation-overhead gate)")
    ap.add_argument("--out", default=None,
                    help="report path (default BENCH_engine.json; smoke: none)")
    args = ap.parse_args(argv)

    rows, mismatches = [], []
    for sc in scenarios(args.smoke):
        repeat = 1 if args.smoke else max(1, sc.get("repeat", args.repeat))
        engines = sc["engines"]
        timed = engines if args.engine == "all" else tuple(
            e for e in engines if e == args.engine)
        secs: dict[str, float] = {}
        recs: dict[str, str] = {}
        cycles = 0
        # rep-major order: each repetition cycles through every engine,
        # so slow drift of the host machine (frequency scaling, noisy
        # neighbours) biases all engines alike instead of whichever one
        # happened to run last — and the within-rep order rotates each
        # repetition, because under monotone drift a fixed order still
        # systematically taxes the engine in the last slot (visible as
        # a few percent on the near-parity fallback rows); untimed
        # engines still run once for the record cross-check
        reps_of = {name: repeat if name in timed else 1 for name in engines}
        for rep in range(max(reps_of.values())):
            k = rep % len(engines)
            for name in engines[k:] + engines[:k]:
                if rep >= reps_of[name]:
                    continue
                tap = args.tap and name != "reference"
                s, cycles, recs[name] = run_scenario(sc, ENGINES[name],
                                                     with_tap=tap)
                if name in timed:
                    secs[name] = min(secs.get(name, s), s)
        if args.profile:
            import cProfile
            import pstats

            for name in timed:
                prof = cProfile.Profile()
                prof.enable()
                run_scenario(sc, ENGINES[name],
                             with_tap=args.tap and name != "reference")
                prof.disable()
                print(f"--- profile: {sc['name']} / {name} ---")
                pstats.Stats(prof).sort_stats("cumulative").print_stats(10)
        identical = len(set(recs.values())) == 1
        if not identical:
            mismatches.append(sc["name"])
        row = {
            "scenario": sc["name"],
            "gate": sc["gate"],
            "cycles": cycles,
            "engines": {name: {"seconds": round(s, 4),
                               "cycles_per_sec": round(cycles / s, 1)}
                        for name, s in secs.items()},
            "records_identical": identical,
        }
        if "reference" in secs and "wheel" in secs:
            row["speedup_wheel_vs_reference"] = round(
                secs["reference"] / secs["wheel"], 3)
        if "wheel" in secs and "array" in secs:
            row["speedup_array_vs_wheel"] = round(
                secs["wheel"] / secs["array"], 3)
        rows.append(row)
        perf = "  ".join(f"{n} {cycles / s:10.0f} cyc/s" for n, s in secs.items())
        ratios = "  ".join(
            f"{k.split('_vs_')[0].split('speedup_')[1]}/{k.split('_vs_')[1]} "
            f"x{row[k]:5.2f}" for k in row if k.startswith("speedup"))
        print(f"{sc['name']:30s} {cycles:7d} cyc  {perf}  {ratios}  "
              f"{'OK' if identical else 'RECORD MISMATCH'}")

    report = {
        "bench": "engine-backends",
        "mode": "smoke" if args.smoke else "full",
        "engine_filter": args.engine,
        "tap_attached": args.tap,
        "repeat": args.repeat,
        "cpu_count": os.cpu_count(),
        "scenarios": rows,
        "gate": "records byte-identical across engines on every scenario; "
                "speed targets per row in 'gate' (wheel >= 2x the seed "
                "engine on sparse rows, array >= 5x the wheel on saturated "
                "h=4 drains, >= 4x on the saturated Bernoulli steady "
                "window now that injection is batched, and >= 1x on the "
                "sparse-hotspot and wheel-fallback rows after "
                "sparse-activity compaction)",
    }
    out = args.out or (None if args.smoke else "BENCH_engine.json")
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    if mismatches:
        print(f"ERROR: record mismatch in {mismatches}", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
