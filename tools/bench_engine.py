#!/usr/bin/env python3
"""Benchmark the timing-wheel cycle engine against the frozen seed engine.

Runs a pinned scenario set on both the live :class:`Simulator` and the
frozen seed hot path (:class:`ReferenceSimulator`), checks that every
emitted record is byte-identical, and writes ``BENCH_engine.json`` with
cycles/sec and per-scenario speedups.

Scenario families (all record-gated, speedup-gated where marked):

* ``low_load_probe_*`` — zero-load latency probes: a sparse trace
  injects one packet every ~100 cycles, the left end of the paper's
  latency/load curves.  The seed engine pays a full scan cycle per
  quiet cycle; the timing-wheel engine fast-forwards between probes.
* ``burst_drain_superstep_*`` — synchronized all-node bursts every
  ``period`` cycles (BSP supersteps: communicate, drain, compute).
  Covers the burst allocation storm *and* the drain tail + idle gap.
* ``low_load_bernoulli`` / ``burst_drain_dense`` / ``mid_load`` /
  ``adversarial`` — context rows.  Open-loop Bernoulli injection draws
  one RNG uniform per node per cycle by contract (the record streams
  are byte-identical to the seed engine, so the draw loop cannot be
  restructured), and a dense all-node burst is allocation-bound with
  every router active; both bound the achievable speedup well below
  the sparse scenarios and are reported for honesty, not gated.

The PR-3 acceptance bar is >= 2x cycles/sec on the gated low-load and
burst-drain scenarios.  ``--smoke`` runs a 2-point matrix with short
windows and exits non-zero on any record mismatch — CI wires this in
as the engine-equivalence gate (perf is recorded, never asserted,
because CI machines are noisy).

Usage::

    PYTHONPATH=src python tools/bench_engine.py             # full bench
    PYTHONPATH=src python tools/bench_engine.py --smoke     # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time
from pathlib import Path

from repro.facade import Session, point_record
from repro.network.config import SimConfig
from repro.network.reference import ReferenceSimulator
from repro.network.simulator import Simulator
from repro.runplan import canonical_record_json
from repro.traffic.extra import TraceReplay
from repro.traffic.patterns import pattern_by_name
from repro.traffic.processes import BurstTraffic

SEED = 11


def _cfg(fc: str, routing: str, **over) -> dict:
    base = dict(h=2, routing=routing, seed=SEED, flow_control=fc)
    if fc == "wh":
        base.update(packet_phits=40, flit_phits=10)
    base.update(over)
    return base


def _uniform_trace(topo, cycles_and_sources, rng_seed: int) -> list[tuple]:
    """(cycle, src, uniform dst) records; deterministic per rng_seed."""
    rng = random.Random(rng_seed)
    n = topo.num_nodes
    records = []
    for cycle, src in cycles_and_sources:
        d = rng.randrange(n - 1)
        d = d if d < src else d + 1
        records.append((cycle, src, d))
    return records


def scenarios(smoke: bool) -> list[dict]:
    w, m = (600, 600) if smoke else (3000, 3000)
    probes = 24 if smoke else 144
    steps = 2 if smoke else 4
    gated = [
        dict(name="low_load_probe_vct", kind="probe", cfg=_cfg("vct", "olm"),
             spacing=131, probes=probes, gate=True),
        dict(name="burst_drain_superstep_vct", kind="superstep",
             cfg=_cfg("vct", "olm"), period=5000, steps=steps,
             packets_per_node=1, gate=True),
    ]
    if smoke:
        return gated
    return gated + [
        dict(name="low_load_probe_wh", kind="probe", cfg=_cfg("wh", "rlm"),
             spacing=131, probes=probes, gate=True),
        dict(name="burst_drain_superstep_wh", kind="superstep",
             cfg=_cfg("wh", "rlm"), period=5000, steps=steps,
             packets_per_node=1, gate=True),
        dict(name="low_load_bernoulli_vct", kind="point", cfg=_cfg("vct", "olm"),
             pattern="uniform", load=0.02, warmup=w, measure=m, gate=False),
        dict(name="burst_drain_dense_vct", kind="drain", cfg=_cfg("vct", "olm"),
             pattern="uniform", packets_per_node=10, max_cycles=500_000,
             gate=False),
        dict(name="burst_drain_dense_wh", kind="drain", cfg=_cfg("wh", "rlm"),
             pattern="uniform", packets_per_node=4, max_cycles=500_000,
             gate=False),
        dict(name="mid_load_vct", kind="point", cfg=_cfg("vct", "olm"),
             pattern="uniform", load=0.4, warmup=w, measure=m, gate=False),
        dict(name="adversarial_vct", kind="point", cfg=_cfg("vct", "olm"),
             pattern="advg+1", load=0.3, warmup=w, measure=m, gate=False),
    ]


def run_scenario(sc: dict, sim_cls, with_tap: bool = False) -> tuple[float, int, str]:
    """(wall seconds, cycles simulated, canonical record) for one engine.

    ``with_tap`` attaches a full MetricsHub (every event point wired)
    before the run — the instrumentation-overhead gate: the emitted
    record must stay byte-identical to the untapped reference engine.
    """
    cfg = SimConfig(**sc["cfg"])
    session = Session(sim=sim_cls(cfg))
    sim = session.sim
    if with_tap:
        from repro.metrics.hub import MetricsHub

        MetricsHub(sim, bucket=500)
    kind = sc["kind"]
    if kind == "point":
        session.bernoulli(sc["pattern"], sc["load"])
        start = time.perf_counter()
        result = session.warmup(sc["warmup"]).measure(sc["measure"])
        elapsed = time.perf_counter() - start
        record = point_record(result, cfg, pattern=sc["pattern"], load=sc["load"])
    elif kind == "drain":
        pattern = pattern_by_name(sc["pattern"], sim.topo)
        session.with_traffic(BurstTraffic(pattern, sc["packets_per_node"]))
        start = time.perf_counter()
        result = session.drain(sc["max_cycles"])
        elapsed = time.perf_counter() - start
        record = point_record(result, cfg, pattern=sc["pattern"],
                              packets_per_node=sc["packets_per_node"])
    elif kind == "probe":
        n = sim.topo.num_nodes
        pairs = [(i * sc["spacing"], (i * 5) % n) for i in range(sc["probes"])]
        sim.traffic = TraceReplay(_uniform_trace(sim.topo, pairs, SEED))
        start = time.perf_counter()
        result = session.drain(500_000)
        elapsed = time.perf_counter() - start
        record = result.to_dict()
    else:  # superstep
        n = sim.topo.num_nodes
        pairs = [(s * sc["period"], node)
                 for s in range(sc["steps"]) for node in range(n)
                 for _ in range(sc["packets_per_node"])]
        sim.traffic = TraceReplay(_uniform_trace(sim.topo, pairs, SEED))
        start = time.perf_counter()
        result = session.measure(sc["steps"] * sc["period"])
        elapsed = time.perf_counter() - start
        record = result.to_dict()
    return elapsed, sim.now, canonical_record_json(record)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="2-point matrix, short windows, no report file "
                         "unless --out is given (the CI equivalence gate)")
    ap.add_argument("--repeat", type=int, default=3,
                    help="timing repetitions per scenario (best-of, default 3)")
    ap.add_argument("--tap", action="store_true",
                    help="attach a MetricsHub to the timing-wheel engine: "
                         "records must stay byte-identical to the untapped "
                         "seed engine (the instrumentation-overhead gate)")
    ap.add_argument("--out", default=None,
                    help="report path (default BENCH_engine.json; smoke: none)")
    args = ap.parse_args(argv)

    repeat = 1 if args.smoke else max(1, args.repeat)
    rows, mismatches = [], []
    for sc in scenarios(args.smoke):
        ref_s = wheel_s = float("inf")
        ref_rec = wheel_rec = ""
        for _ in range(repeat):
            s, cycles, ref_rec = run_scenario(sc, ReferenceSimulator)
            ref_s = min(ref_s, s)
            s, cycles, wheel_rec = run_scenario(sc, Simulator, with_tap=args.tap)
            wheel_s = min(wheel_s, s)
        identical = ref_rec == wheel_rec
        if not identical:
            mismatches.append(sc["name"])
        rows.append({
            "scenario": sc["name"],
            "gated": sc["gate"],
            "cycles": cycles,
            "seed_seconds": round(ref_s, 4),
            "wheel_seconds": round(wheel_s, 4),
            "seed_cycles_per_sec": round(cycles / ref_s, 1),
            "wheel_cycles_per_sec": round(cycles / wheel_s, 1),
            "speedup": round(ref_s / wheel_s, 3),
            "records_identical": identical,
        })
        print(f"{sc['name']:26s} {cycles:7d} cyc  "
              f"seed {cycles / ref_s:10.0f} cyc/s  "
              f"wheel {cycles / wheel_s:10.0f} cyc/s  "
              f"x{ref_s / wheel_s:5.2f}  "
              f"{'OK' if identical else 'RECORD MISMATCH'}")

    report = {
        "bench": "engine-hot-path",
        "mode": "smoke" if args.smoke else "full",
        "tap_attached": args.tap,
        "repeat": repeat,
        "cpu_count": os.cpu_count(),
        "scenarios": rows,
        "gate": "records byte-identical on all scenarios; >= 2x speedup "
                "targeted on gated (low-load probe / superstep burst-drain) "
                "scenarios",
    }
    out = args.out or (None if args.smoke else "BENCH_engine.json")
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    if mismatches:
        print(f"ERROR: record mismatch in {mismatches}", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
