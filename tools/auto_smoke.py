#!/usr/bin/env python3
"""CI smoke for the ``auto`` engine's per-point selection rule.

``engine="auto"`` (:class:`repro.network.arraysim.AutoSimulator`) must
resolve each point to the fastest backend that preserves the record
bytes:

* a saturated minimal-routing point with no taps attached runs on the
  numpy array core (``_mode == "array"``);
* the same point with a full :class:`MetricsHub` attached needs the
  object engine's event sites, so auto lands on the wheel path
  (``_mode == "wheel"``);
* in both cases the emitted record is byte-identical to the explicit
  ``array`` and ``wheel`` engines (the golden-matrix contract — engine
  choice is an execution detail, never physics).

Exits non-zero on any violated expectation.

Usage::

    PYTHONPATH=src python tools/auto_smoke.py
"""

from __future__ import annotations

from repro.facade import Session, point_record
from repro.network.arraysim import ArraySimulator, AutoSimulator
from repro.network.config import SimConfig
from repro.network.simulator import Simulator
from repro.runplan import canonical_record_json

SEED = 11
PATTERN = "uniform"
LOAD = 0.9
WARMUP = 200
MEASURE = 200


def _run(sim_cls, with_tap: bool) -> tuple[str, object]:
    """(canonical record, simulator) of the pinned saturated point."""
    cfg = SimConfig(h=2, routing="minimal", seed=SEED)
    session = Session(sim=sim_cls(cfg))
    if with_tap:
        from repro.metrics.hub import MetricsHub

        MetricsHub(session.sim, bucket=100)
    result = (session.bernoulli(PATTERN, LOAD)
              .warmup(WARMUP).measure(MEASURE))
    record = point_record(result, cfg, pattern=PATTERN, load=LOAD)
    return canonical_record_json(record), session.sim


def main() -> int:
    failures = []

    auto_rec, auto_sim = _run(AutoSimulator, with_tap=False)
    if auto_sim._mode != "array":
        failures.append(
            f"auto picked {auto_sim._mode!r} on a saturated untapped "
            "minimal-routing point; expected the array core")
    tap_rec, tap_sim = _run(AutoSimulator, with_tap=True)
    if tap_sim._mode != "wheel":
        failures.append(
            f"auto picked {tap_sim._mode!r} under a full MetricsHub; "
            "expected the wheel path (taps need the object engine)")

    array_rec, _ = _run(ArraySimulator, with_tap=False)
    wheel_rec, _ = _run(Simulator, with_tap=False)
    for name, rec in (("array", array_rec), ("wheel", wheel_rec),
                      ("auto+tap", tap_rec)):
        if rec != auto_rec:
            failures.append(f"auto record diverged from {name}")

    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        return 1
    print("auto smoke OK: array on the saturated point, wheel under a "
          "MetricsHub, records byte-identical to both explicit engines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
