#!/usr/bin/env python3
"""Benchmark the run-plan executors: serial vs process-pool wall-clock.

Times the same 8-point load sweep under the ``serial`` and ``process``
executors and writes ``BENCH_runplan.json`` with points/sec, wall-clock
seconds and the parallel speedup.  Also measures the streaming
scheduler's bookkeeping overhead (a no-op work function through the
streaming ``SerialScheduler`` vs a bare Python loop, per point)
and per-shard wall-clock for a two-way ``--shard``-style split of the
plan — the numbers behind the sharded-CI recipe in
``docs/DISTRIBUTED.md``.  The sweep points are mutually
independent simulations, so on an N-core machine the expected speedup
approaches min(N, points); on a single core the process executor's
pickling overhead makes the ratio <= 1.  The report always records
``cpu_count`` and the raw ``wall_clock_ratio``; the ``speedup`` field
is only emitted when more than one core was available — a "speedup"
claim measured on one core would be noise dressed as a result.

Usage::

    PYTHONPATH=src python tools/bench_runplan.py            # defaults
    PYTHONPATH=src python tools/bench_runplan.py --jobs 4 --warmup 2500
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path

from repro.network.config import paper_vct_config
from repro.runplan import (
    RunSpec,
    SerialScheduler,
    canonical_record_json,
    execute,
    execute_points,
    expand_specs,
    shard_points,
)

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def time_executor(spec: RunSpec, executor: str, jobs: int) -> tuple[float, list[dict]]:
    start = time.perf_counter()
    records = execute(spec, executor=executor, jobs=jobs, aggregate=False)
    return time.perf_counter() - start, records


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--routing", default="olm")
    ap.add_argument("--warmup", type=int, default=1500)
    ap.add_argument("--measure", type=int, default=1500)
    ap.add_argument("--jobs", type=int, default=None,
                    help="process-pool size (default: all cores)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", default="BENCH_runplan.json")
    args = ap.parse_args(argv)

    jobs = args.jobs or (os.cpu_count() or 1)
    spec = RunSpec(
        config=paper_vct_config(h=2, routing=args.routing, seed=args.seed),
        pattern="uniform", loads=DEFAULT_LOADS,
        warmup=args.warmup, measure=args.measure,
    )
    n = len(spec.expand())

    serial_s, serial_records = time_executor(spec, "serial", 1)
    process_s, process_records = time_executor(spec, "process", jobs)
    identical = ([canonical_record_json(r) for r in serial_records]
                 == [canonical_record_json(r) for r in process_records])

    # scheduler bookkeeping overhead, isolated from simulation cost: a
    # no-op work function through the streaming scheduler vs a bare
    # loop.  min of three passes — wall-clocking real points here would
    # drown microseconds of bookkeeping in CPU-steal noise.
    n_noop = 20_000
    items = list(range(n_noop))

    def _timed(work):
        best = math.inf
        for _ in range(3):
            start = time.perf_counter()
            work()
            best = min(best, time.perf_counter() - start)
        return best

    inline_s = _timed(lambda: [item for item in items])
    scheduler_s = _timed(
        lambda: list(SerialScheduler().run(lambda item: item, items)))
    overhead_us = 1e6 * (scheduler_s - inline_s) / n_noop

    # per-shard wall-clock of a two-way split (run serially here; in CI
    # the shards run on separate machines against one shared cache)
    points = expand_specs([spec])
    shards = []
    for index in range(2):
        members = shard_points(points, index, 2)
        start = time.perf_counter()
        execute_points(points, shard=(index, 2))
        shards.append({"shard": f"{index}/2", "points": len(members),
                       "seconds": round(time.perf_counter() - start, 3)})

    cpu_count = os.cpu_count() or 1
    report = {
        "bench": "runplan-executors",
        "points": n,
        "routing": args.routing,
        "warmup": args.warmup,
        "measure": args.measure,
        "cpu_count": cpu_count,
        "jobs": jobs,
        "serial_seconds": round(serial_s, 3),
        "process_seconds": round(process_s, 3),
        "serial_points_per_sec": round(n / serial_s, 3),
        "process_points_per_sec": round(n / process_s, 3),
        "wall_clock_ratio": round(serial_s / process_s, 3),
        "records_identical": identical,
        "scheduler_overhead_us_per_point": round(overhead_us, 2),
        "shards": shards,
    }
    # honest reporting: a "speedup" claim needs >1 core to stand on —
    # on a single-core box the ratio only measures pool overhead
    if cpu_count > 1:
        report["speedup"] = report["wall_clock_ratio"]
    else:
        report["note"] = (
            "single-core machine: no parallel speedup is possible, the "
            "wall_clock_ratio measures process-pool overhead only")
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if not identical:
        print("ERROR: executor records diverged", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
