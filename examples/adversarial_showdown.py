#!/usr/bin/env python3
"""Adversarial traffic showdown: why Dragonflies need misrouting.

Reproduces the paper's core story at reduced scale (h=2):

* under ADVG+1 minimal routing collapses to ~1/(2h^2+1) while Valiant
  and the adaptive mechanisms keep accepting traffic;
* under ADVG+h even Valiant/PB hit the pathological local-link wall
  (~1/h) because they cannot misroute locally, while RLM/OLM/PAR-6/2
  sail past it.

Takes ~1 minute.
"""

from repro import SimConfig, session
from repro.analysis import advg_minimal_bound, advl_minimal_bound


def measure(routing: str, offset: int, load: float, h: int = 2) -> float:
    cfg = SimConfig(h=h, routing=routing, flow_control="vct", seed=7)
    result = (session(cfg, pattern=f"advg+{offset}", load=load)
              .warmup(2500).measure(2500))
    return result.throughput


def main() -> None:
    h = 2
    load = 0.7
    print(f"h={h}: ADVG minimal bound = {advg_minimal_bound(h):.3f}, "
          f"local-saturation bound = {advl_minimal_bound(h):.3f}\n")
    for pattern_name, offset in (("ADVG+1", 1), (f"ADVG+h (h={h})", h)):
        print(f"--- {pattern_name}, offered load {load}")
        for routing in ("minimal", "valiant", "pb", "rlm", "olm", "par62"):
            thr = measure(routing, offset, load, h)
            bar = "#" * int(thr * 60)
            print(f"  {routing:8} accepted {thr:.3f}  {bar}")
        print()


if __name__ == "__main__":
    main()
