#!/usr/bin/env python3
"""Quickstart: build a Dragonfly, route with OLM, measure a steady state.

Runs in a few seconds.  Shows the three core objects of the library:
``SimConfig`` (all knobs), a traffic process, and the ``Simulator``.
"""

from repro import SimConfig, build_simulator
from repro.traffic import BernoulliTraffic, UniformRandom


def main() -> None:
    cfg = SimConfig(
        h=2,                 # canonical well-balanced Dragonfly: 9 groups, 36 routers
        routing="olm",       # the paper's best mechanism (needs VCT)
        flow_control="vct",
        packet_phits=8,      # Cascade-like small packets
        threshold=0.45,      # misrouting trigger (Figs 10/11 pick 45%)
        seed=42,
    )
    sim = build_simulator(cfg, BernoulliTraffic(UniformRandom(), load=0.5))

    print(f"topology: {sim.topo}")
    sim.run(3000)                    # warm-up to steady state
    sim.stats.reset(sim.now)         # measure from here
    sim.run(3000)

    s = sim.stats
    nodes = sim.topo.num_nodes
    print(f"offered load        : 0.500 phits/(node*cycle)")
    print(f"accepted load       : {s.throughput(nodes, sim.now):.3f} phits/(node*cycle)")
    print(f"mean packet latency : {s.mean_latency():.1f} cycles")
    print(f"mean hops           : {s.mean_hops():.2f}")
    print(f"local misroutes/pkt : {s.local_misroute_rate():.3f}")
    print(f"Valiant detours     : {100 * s.global_misroute_fraction():.1f}% of packets")


if __name__ == "__main__":
    main()
