#!/usr/bin/env python3
"""Quickstart: build a Dragonfly, route with OLM, measure a steady state.

Runs in a few seconds.  Shows the two core objects of the public API:
``SimConfig`` (all knobs, every component selected by registry name)
and the ``session(...)`` facade whose ``measure`` returns an immutable
``RunResult`` snapshot.
"""

import repro


def main() -> None:
    cfg = repro.SimConfig(
        h=2,                 # canonical well-balanced Dragonfly: 9 groups, 36 routers
        topology="dragonfly",  # any TOPOLOGY_REGISTRY name
        routing="olm",       # the paper's best mechanism (needs VCT)
        flow_control="vct",
        packet_phits=8,      # Cascade-like small packets
        threshold=0.45,      # misrouting trigger (Figs 10/11 pick 45%)
        seed=42,
    )
    s = repro.session(cfg, pattern="uniform", load=0.5)
    print(f"topology: {s.sim.topo}")

    result = s.warmup(3000).measure(3000)

    print(f"offered load        : 0.500 phits/(node*cycle)")
    print(f"accepted load       : {result.throughput:.3f} phits/(node*cycle)")
    print(f"mean packet latency : {result.mean_latency:.1f} cycles")
    print(f"p50/p95/p99 latency : {result.latency_p50:.0f}/"
          f"{result.latency_p95:.0f}/{result.latency_p99:.0f} cycles")
    print(f"mean hops           : {result.mean_hops:.2f}")
    print(f"local misroutes/pkt : {result.local_misroute_rate:.3f}")
    print(f"Valiant detours     : {100 * result.global_misroute_fraction:.1f}% of packets")


if __name__ == "__main__":
    main()
