#!/usr/bin/env python3
"""Trace-driven simulation: replay an application communication trace.

Generates a synthetic two-phase trace (an all-to-all transposition
burst followed by a neighbour-exchange phase), replays it under two
routing mechanisms and reports completion times — the workflow for
driving the simulator from real application traces.  Takes ~30s.
"""

import random

from repro import SimConfig, session
from repro.topology import Dragonfly
from repro.traffic import TraceReplay


def synthesize_trace(topo: Dragonfly, seed: int = 7):
    """Phase 1: random permutation burst at t=0; phase 2: ADVL-style
    neighbour exchange, one packet per node every 50 cycles."""
    rng = random.Random(seed)
    records = []
    nodes = list(range(topo.num_nodes))
    perm = nodes[:]
    rng.shuffle(perm)
    for src, dst in zip(nodes, perm):
        if src != dst:
            records.append((0, src, dst))
    for round_idx in range(10):
        t = 200 + 50 * round_idx
        for src in nodes:
            r = topo.router_of_node(src)
            nbr = topo.router_id(topo.group_of(r), (topo.index_in_group(r) + 1) % topo.a)
            records.append((t, src, topo.node_id(nbr, topo.node_index(src))))
    return records


def main() -> None:
    topo = Dragonfly(2)
    records = synthesize_trace(topo)
    print(f"trace: {len(records)} packets over {topo.num_nodes} nodes\n")
    for routing in ("minimal", "olm"):
        cfg = SimConfig(h=2, routing=routing, seed=1)
        s = session(cfg, traffic=TraceReplay(records))
        # delivery observers see every ejection: track the burst phase (t=0)
        burst_done = 0

        @s.sim.add_delivery_observer
        def note_burst(pkt, now):
            nonlocal burst_done
            if pkt.birth == 0:
                burst_done = max(burst_done, now)

        result = s.drain(2_000_000)
        print(f"{routing:8} completed in {result.drain_cycles:6d} cycles "
              f"(burst phase by {burst_done:6d}) | "
              f"avg latency {result.mean_latency:7.1f} | p99 {result.latency_p99:6.0f} | "
              f"misrouted {100 * result.global_misroute_fraction:.0f}%")
    print("\nAt this light per-phase load both finish with the last phase; "
          "rerun with denser traces (more packets per record time) to see "
          "adaptive routing pull ahead.")


if __name__ == "__main__":
    main()
