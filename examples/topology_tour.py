#!/usr/bin/env python3
"""Topology tour: geometry, port maps and the parity-sign table.

No simulation — instant.  Useful to understand the id arithmetic before
reading the router code, and to see Table I regenerated from the
construction procedure in §III-B.
"""

from repro import Dragonfly, TOPOLOGY_REGISTRY, validate_topology
from repro.core.paritysign import (
    CANONICAL_ORDER,
    TYPE_NAMES,
    allowed_intermediates,
    build_allowed_table,
    min_route_guarantee,
)


def main() -> None:
    print("registered topologies:", ", ".join(
        f"{n} ({d})" for n, d in TOPOLOGY_REGISTRY.describe().items()))
    print()
    for h in (2, 4, 8):
        t = Dragonfly(h)
        validate_topology(t)
        print(f"h={h}: {t.num_groups} groups x {t.a} routers, "
              f"{t.num_routers} routers, {t.num_nodes} nodes, radix {t.radix}")
    print()

    t = Dragonfly(4)  # the paper's Figure 2 example group size (2h = 8 routers)
    print("example minimal path: router 0 -> router 100")
    print(f"  groups: {t.group_of(0)} -> {t.group_of(100)}, "
          f"hops: {t.minimal_hops(0, 100)}")
    exit_idx, gport = t.exit_port(t.group_of(0), t.group_of(100))
    print(f"  exit router index {exit_idx}, global port {gport}\n")

    print("Table I (parity-sign 2-hop combinations), regenerated:")
    table = build_allowed_table(CANONICAL_ORDER)
    for t1 in range(4):
        for t2 in range(4):
            print(f"  {TYPE_NAMES[t1]:>6} {TYPE_NAMES[t2]:>6} : "
                  f"{'Allowed' if table[t1][t2] else 'NOT allowed'}")
    print()

    a = 8  # routers per group at h=4
    print(f"paper example (Fig 2): routes 5 -> 0 in a group of {a}:")
    print(f"  allowed intermediates: {allowed_intermediates(5, 0, a)} "
          f"(paper: 2, 4 and 6 — i.e. h-1 = 3 routes)")
    print(f"  worst-case 2-hop routes over all pairs: {min_route_guarantee(a)} "
          f"(>= h-1 = {a // 2 - 1})")


if __name__ == "__main__":
    main()
