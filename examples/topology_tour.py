#!/usr/bin/env python3
"""Topology tour: all three fabrics, port maps and the parity-sign table.

No simulation — instant.  Useful to understand the id arithmetic and
the routing oracle before reading the router code, and to see Table I
regenerated from the construction procedure in §III-B.
"""

from repro import Dragonfly, TOPOLOGY_REGISTRY, validate_topology
from repro.core.paritysign import (
    CANONICAL_ORDER,
    TYPE_NAMES,
    allowed_intermediates,
    build_allowed_table,
    min_route_guarantee,
)
from repro.network.packet import Packet
from repro.topology import FlattenedButterfly, PortKind, Torus2D
from repro.topology.ring import hamiltonian_ring, validate_ring

KIND = {PortKind.EJECT: "eject", PortKind.LOCAL: "local", PortKind.GLOBAL: "global"}


def oracle_path(topo, src_router: int, dst_router: int) -> list[str]:
    """Hops of the fabric's minimal route, as (kind, port, vc) labels."""
    pkt = Packet(0, topo.node_id(src_router, 0), topo.node_id(dst_router, 0),
                 8, 0, src_router, topo.group_of(src_router),
                 dst_router, topo.group_of(dst_router))
    cur, hops = src_router, []
    while True:
        kind, port, target, vc = topo.min_hop(cur, pkt)
        hops.append(f"{KIND[kind]}[{port}]@vc{vc}")
        if kind == PortKind.EJECT:
            return hops
        if kind == PortKind.LOCAL:
            cur = topo.router_id(
                topo.group_of(cur),
                topo.local_neighbor_index(topo.index_in_group(cur), port))
        else:
            cur, _ = topo.global_neighbor(cur, port)


def main() -> None:
    print("registered topologies:")
    for name, desc in TOPOLOGY_REGISTRY.describe().items():
        print(f"  {name}: {desc}")
    print()

    # ---- Dragonfly: the paper's fabric -----------------------------------
    for h in (2, 4, 8):
        t = Dragonfly(h)
        validate_topology(t)
        print(f"dragonfly h={h}: {t.num_groups} groups x {t.a} routers, "
              f"{t.num_routers} routers, {t.num_nodes} nodes, radix {t.radix}")
    print()

    t = Dragonfly(4)  # the paper's Figure 2 example group size (2h = 8 routers)
    print("dragonfly minimal path: router 0 -> router 100")
    print(f"  groups: {t.group_of(0)} -> {t.group_of(100)}, "
          f"hops: {t.minimal_hops(0, 100)}")
    exit_idx, gport = t.exit_port(t.group_of(0), t.group_of(100))
    print(f"  exit router index {exit_idx}, global port {gport}")
    print(f"  oracle: {' -> '.join(oracle_path(t, 0, 100))}\n")

    # ---- flattened butterfly: one group, complete graph ------------------
    fb = FlattenedButterfly(36, p=2)
    validate_topology(fb)
    print(f"flattened butterfly: {fb.num_routers} routers in one complete "
          f"graph, {fb.num_nodes} nodes, radix {fb.radix}, "
          f"caps={sorted(fb.caps)}")
    print(f"  minimal path 3 -> 29 (always one hop): "
          f"{' -> '.join(oracle_path(fb, 3, 29))}")
    validate_ring(fb, hamiltonian_ring(fb))
    print(f"  escape ring: 0 -> 1 -> ... -> {fb.num_routers - 1} -> 0 "
          "(validated)\n")

    # ---- 2-D torus: rings on both port kinds -----------------------------
    torus = Torus2D(6, 6, p=2)
    validate_topology(torus)
    print(f"torus {torus.rows}x{torus.cols}: rows are groups (Y rings on "
          f"GLOBAL ports), X rings on LOCAL ports; {torus.num_nodes} nodes, "
          f"radix {torus.radix}, caps={sorted(torus.caps) or '{}'}")
    src, dst = 0, torus.router_id(4, 5)
    print(f"  dimension-ordered path (0,0) -> (4,5), "
          f"{torus.minimal_hops(src, dst)} hops with date-line VCs:")
    print(f"  {' -> '.join(oracle_path(torus, src, dst))}")
    validate_ring(torus, hamiltonian_ring(torus))
    print("  escape ring: serpentine over the grid (validated)\n")

    # ---- Table I ---------------------------------------------------------
    print("Table I (parity-sign 2-hop combinations), regenerated:")
    table = build_allowed_table(CANONICAL_ORDER)
    for t1 in range(4):
        for t2 in range(4):
            print(f"  {TYPE_NAMES[t1]:>6} {TYPE_NAMES[t2]:>6} : "
                  f"{'Allowed' if table[t1][t2] else 'NOT allowed'}")
    print()

    a = 8  # routers per group at h=4
    print(f"paper example (Fig 2): routes 5 -> 0 in a group of {a}:")
    print(f"  allowed intermediates: {allowed_intermediates(5, 0, a)} "
          f"(paper: 2, 4 and 6 — i.e. h-1 = 3 routes)")
    print(f"  worst-case 2-hop routes over all pairs: {min_route_guarantee(a)} "
          f"(>= h-1 = {a // 2 - 1})")


if __name__ == "__main__":
    main()
