#!/usr/bin/env python3
"""A PERCS-like Wormhole system: large packets, flit-level flow control.

The paper's §IV-B models an IBM PERCS-like environment: 80-phit packets
split into 8 flits of 10 phits under Wormhole.  OLM cannot be used here
(it needs whole-packet reservation), which is exactly why the paper
contributes RLM: local misrouting that stays deadlock-free under WH.
This example compares RLM against PAR-6/2 (double the local VCs) and
the baselines.  Takes ~1 minute.
"""

from repro import SimConfig, build_simulator, session


def run(routing: str, pattern_spec: str, load: float):
    cfg = SimConfig(h=2, routing=routing, flow_control="wh",
                    packet_phits=80, flit_phits=10, seed=9)
    result = session(cfg, pattern=pattern_spec, load=load).warmup(4000).measure(4000)
    return result.mean_latency, result.throughput


def main() -> None:
    try:
        SimConfigBad = SimConfig(h=2, routing="olm", flow_control="wh",
                                 packet_phits=80, flit_phits=10)
        build_simulator(SimConfigBad)
    except ValueError as e:
        print(f"OLM under WH is rejected as expected: {e}\n")

    print("UN, load 0.25 (WH, 80-phit packets):")
    for routing in ("minimal", "pb", "rlm", "par62"):
        lat, thr = run(routing, "uniform", 0.25)
        print(f"  {routing:8} latency {lat:7.1f} cy  accepted {thr:.3f}")
    print("\nADVG+1, load 0.35:")
    for routing in ("valiant", "pb", "rlm", "par62"):
        lat, thr = run(routing, "advg+1", 0.35)
        print(f"  {routing:8} latency {lat:7.1f} cy  accepted {thr:.3f}")
    print("\nRLM matches PAR-6/2 with half the local VCs — the paper's WH story.")


if __name__ == "__main__":
    main()
