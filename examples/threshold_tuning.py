#!/usr/bin/env python3
"""Misrouting-threshold tuning (the experiment behind Figures 10-11).

The trigger threshold trades uniform-traffic throughput against
adversarial-traffic throughput: high thresholds misroute eagerly (good
under ADVG, wasteful under UN) and vice versa.  The paper settles on
45% as the balanced choice; this example reproduces that trade-off
curve for RLM at h=2.  Takes ~1-2 minutes.
"""

from repro import SimConfig, session
from repro.traffic import AdversarialGlobal, BernoulliTraffic, UniformRandom


def saturation(routing: str, threshold: float, pattern, loads) -> float:
    best = 0.0
    for load in loads:
        cfg = SimConfig(h=2, routing=routing, threshold=threshold, seed=11)
        result = (session(cfg, traffic=BernoulliTraffic(pattern, load))
                  .warmup(2000).measure(2000))
        best = max(best, result.throughput)
    return best


def main() -> None:
    loads = (0.5, 0.7, 0.9)
    print(f"{'threshold':>10} | {'UN sat.':>8} | {'ADVG+1 sat.':>11}")
    print("-" * 36)
    for th in (0.30, 0.40, 0.45, 0.50, 0.60):
        un = saturation("rlm", th, UniformRandom(), loads)
        adv = saturation("rlm", th, AdversarialGlobal(1), loads)
        print(f"{int(th * 100):>9}% | {un:8.3f} | {adv:11.3f}")
    print("\nPick the threshold balancing both columns (the paper chooses 45%).")


if __name__ == "__main__":
    main()
