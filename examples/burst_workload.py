#!/usr/bin/env python3
"""Burst consumption: drain an all-at-once workload (Figures 6b/9b).

Every node queues a burst of packets following the mixed
ADVG+h/ADVL+1 pattern; we report how many cycles each mechanism needs
to deliver everything.  This models the bursty phases of HPC codes
(checkpointing, all-to-all transpositions) the paper motivates.
Takes ~1 minute.
"""

from repro import SimConfig, session
from repro.traffic import BurstTraffic, MixedGlobalLocal


def drain_cycles(routing: str, p_global: float, packets: int = 60) -> int:
    cfg = SimConfig(h=2, routing=routing, flow_control="vct", seed=5)
    traffic = BurstTraffic(MixedGlobalLocal(p_global, global_offset=2), packets)
    return session(cfg, traffic=traffic).drain(2_000_000).drain_cycles


def main() -> None:
    mechs = ("pb", "rlm", "olm", "par62")
    print(f"{'%global':>8} | " + " | ".join(f"{m:>8}" for m in mechs) + " |  best/pb")
    print("-" * 60)
    for pct in (0, 50, 100):
        row = {m: drain_cycles(m, pct / 100.0) for m in mechs}
        best = min(row[m] for m in mechs if m != "pb")
        ratio = best / row["pb"]
        print(f"{pct:>7}% | " + " | ".join(f"{row[m]:>8}" for m in mechs)
              + f" | {100 * ratio:6.1f}%")
    print("\nThe paper reports OLM draining in ~36% and RLM in ~42.5% of PB's time.")


if __name__ == "__main__":
    main()
