#!/usr/bin/env python3
"""OFAR vs OLM: why the paper replaces the escape ring.

OFAR (the authors' ICPP 2012 mechanism) obtains the same routing
freedom as OLM but avoids deadlock with a Hamiltonian escape ring under
bubble flow control.  Section II of the reproduced paper lists its
weaknesses: the ring's poor capacity congests, and escape hops balloon
the latency of unlucky packets.  This example makes both visible at
h=2, plus the machine-checked deadlock argument for each mechanism.
Takes ~1 minute.
"""

from repro import SimConfig, session
from repro.analysis.cdg import cycle_witness, is_deadlock_free
from repro.topology import Dragonfly


def run(routing: str, load: float):
    cfg = SimConfig(h=2, routing=routing, seed=13, record_hops=True)
    result = session(cfg, pattern="advg+2", load=load).warmup(2500).measure(2500)
    return result.throughput, result.mean_latency, result.max_latency


def main() -> None:
    topo = Dragonfly(2)
    print("machine-checked deadlock-freedom (channel dependency graphs):")
    print(f"  OLM escape sub-CDG acyclic + reachable : {is_deadlock_free(topo, 'olm')}")
    print(f"  OLM full CDG has cycles (by design)    : "
          f"{cycle_witness(topo, 'olm') is not None}")
    print(f"  RLM full CDG acyclic (Table I)         : {is_deadlock_free(topo, 'rlm')}")
    print()
    print(f"{'load':>6} | {'mech':>5} | {'accepted':>8} | {'avg lat':>8} | {'max lat':>8}")
    print("-" * 50)
    for load in (0.3, 0.8):
        for routing in ("olm", "ofar"):
            thr, lat, mx = run(routing, load)
            print(f"{load:>6} | {routing:>5} | {thr:8.3f} | {lat:8.1f} | {mx:8d}")
    print("\nUnder congestion OFAR's escape hops inflate worst-case latency;")
    print("OLM keeps the same freedom with ordinary 3/2 VCs — the paper's point.")


if __name__ == "__main__":
    main()
