"""Asyncio job queue: dedupe, bounded workers, timeout, live row fan-out.

One :class:`JobQueue` owns the whole execution side of the service:

* **dedupe** — jobs are addressed by their submission content hash
  (:meth:`~repro.serve.protocol.Submission.key`); a submission whose
  hash matches a queued, running or retained-successful job returns
  *that* job instead of enqueueing a second simulation, so N concurrent
  identical submissions coalesce onto one execution and all N callers
  watch the same stream;
* **backpressure** — at most ``queue_limit`` jobs may wait; beyond that
  :meth:`submit` raises :class:`QueueFull` (the app maps it to HTTP 429
  with ``Retry-After``);
* **bounded workers** — a ``ThreadPoolExecutor`` of ``workers``
  threads runs the synchronous simulations
  (:func:`repro.serve.runner.run_submission`); the event loop never
  blocks;
* **timeout / cancellation** — both are delivered through the job's
  ``threading.Event``, which the runner checks at bucket boundaries;
  no thread is ever killed mid-bucket.

Threading discipline: worker threads touch **only** the cache (itself
safe: atomic writes, GIL-atomic dict ops) and signal everything else to
the event loop via ``call_soon_threadsafe`` — all Job/queue state is
mutated on the loop thread, so handlers read it without locks.  Row
fan-out uses the pulse pattern: appended rows pulse an ``asyncio.Event``
(``set()`` then ``clear()``) and any number of stream subscribers wake
and drain the shared row list by index.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from repro.runplan.cache import ResultCache

from . import runner
from .protocol import parse_submission
from .settings import ServeSettings

#: job lifecycle states
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")
_FINISHED = frozenset({DONE, FAILED, CANCELLED})


class QueueFull(Exception):
    """The pending-job queue is at ``queue_limit`` (maps to HTTP 429)."""


class _MemoryCache:
    """In-process stand-in for :class:`ResultCache` when no dir is given.

    Same surface (``get``/``put``/``get_record``/``stats``), records
    live in a dict: dedupe and ``GET /v1/results/{hash}`` still work,
    but nothing survives a restart.  Plain dict ops are GIL-atomic, so
    worker threads share it without a lock.
    """

    def __init__(self) -> None:
        self._records: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def get(self, point) -> dict | None:
        record = self._records.get(point.key())
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def get_record(self, key: str) -> dict | None:
        return self._records.get(key)

    def put(self, point, record: dict) -> None:
        self._records[point.key()] = record

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else math.nan,
            "entries": len(self._records),
        }


class Job:
    """One submission's lifecycle: state, streamed rows, result.

    All attributes are loop-thread state (see module docstring);
    ``cancel_event`` is the only object shared with the worker thread.
    """

    def __init__(self, job_id: str, key: str, submission) -> None:
        self.id = job_id
        self.key = key
        self.submission = submission
        self.state = QUEUED
        self.rows: list[dict] = []
        self.result: dict | None = None
        self.error: dict | None = None
        self.timed_out = False
        self.subscribers = 0
        self.created = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: set → the runner raises JobCancelled at the next boundary
        self.cancel_event = threading.Event()
        #: broadcast signal: replaced (and the old one set) on every row
        #: append and on finish.  Subscribers must capture ``updated``
        #: *before* checking ``rows``/``finished`` and then await the
        #: captured event — any change after the capture sets it, so no
        #: wakeup can be lost to the capture/await gap.
        self.updated = asyncio.Event()
        #: set once by the worker thread when execution actually starts
        self.started = asyncio.Event()

    @property
    def finished(self) -> bool:
        return self.state in _FINISHED

    def _pulse(self) -> None:
        signalled, self.updated = self.updated, asyncio.Event()
        signalled.set()

    # -- loop-side mutators (reached via call_soon_threadsafe) --------
    def _mark_running(self) -> None:
        if self.state == QUEUED:
            self.state = RUNNING
            self.started_at = time.time()
        self.started.set()

    def _push_row(self, row: dict) -> None:
        self.rows.append(row)
        self._pulse()

    def _finish(self, state: str, *, result: dict | None = None,
                error: dict | None = None) -> None:
        if self.finished:
            return
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.time()
        self.started.set()
        self._pulse()

    def describe(self) -> dict:
        """The ``GET /v1/jobs/{id}`` body."""
        body = {
            "job": self.id,
            "key": self.key,
            "state": self.state,
            "kind": self.submission.kind,
            "points": len(self.submission.points),
            "rows": len(self.rows),
            "created": self.created,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.timed_out:
            body["timed_out"] = True
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        return body


class JobQueue:
    """The service's execution core (see module docstring).

    Lifecycle: :meth:`start` binds the running event loop and spawns the
    worker pool, :meth:`stop` cancels everything outstanding and joins
    the pool; the ASGI lifespan hooks call both.
    """

    def __init__(self, settings: ServeSettings | None = None) -> None:
        self.settings = settings or ServeSettings()
        self.cache = (ResultCache(self.settings.cache_dir)
                      if self.settings.cache_dir else _MemoryCache())
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._tasks: dict[str, asyncio.Task] = {}
        self._seq = 0
        self.deduped = 0
        self.rejected = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind the running loop and open the worker pool (lifespan startup)."""
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.settings.workers,
            thread_name_prefix="repro-serve")

    async def stop(self) -> None:
        """Cancel outstanding jobs and join the pool (lifespan shutdown)."""
        for job in self._jobs.values():
            if not job.finished:
                job.cancel_event.set()
        for task in list(self._tasks.values()):
            task.cancel()
        for task in list(self._tasks.values()):
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------ submission
    def submit(self, payload) -> tuple[Job, bool]:
        """Parse, dedupe and enqueue one submission.

        Returns ``(job, deduped)``; raises
        :class:`~repro.serve.protocol.SubmissionError` on a bad payload
        and :class:`QueueFull` when the waiting line is at
        ``queue_limit``.  Failed, cancelled and timed-out jobs never
        satisfy dedupe — resubmitting one runs it again.
        """
        if self._loop is None:
            raise RuntimeError("JobQueue.start() has not run (no lifespan?)")
        submission = parse_submission(
            payload, max_points=self.settings.max_points)
        key = submission.key()
        existing = self._by_key.get(key)
        if existing is not None and existing.state in (QUEUED, RUNNING, DONE):
            self.deduped += 1
            return existing, True
        if self._queued_count() >= self.settings.queue_limit:
            self.rejected += 1
            raise QueueFull(
                f"{self._queued_count()} jobs already waiting "
                f"(queue_limit={self.settings.queue_limit})")
        self._seq += 1
        job = Job(f"j{self._seq:06d}", key, submission)
        self._jobs[job.id] = job
        self._by_key[key] = job
        self._tasks[job.id] = self._loop.create_task(self._supervise(job))
        return job, False

    def _queued_count(self) -> int:
        return sum(1 for j in self._jobs.values() if j.state == QUEUED)

    def _running_count(self) -> int:
        return sum(1 for j in self._jobs.values() if j.state == RUNNING)

    # ------------------------------------------------------------- execution
    async def _supervise(self, job: Job) -> None:
        """Loop-side babysitter: ship to the pool, enforce the timeout."""
        fut = self._loop.run_in_executor(self._pool, self._run_sync, job)
        try:
            await job.started.wait()
            done, pending = await asyncio.wait(
                {fut}, timeout=self.settings.job_timeout)
            if pending:
                # wall-clock budget exhausted: ask the runner to stop at
                # the next bucket boundary, then wait for it to comply
                job.timed_out = True
                job.cancel_event.set()
                await fut
        except asyncio.CancelledError:
            job.cancel_event.set()
            raise
        finally:
            self._tasks.pop(job.id, None)
            self._evict()

    def _run_sync(self, job: Job) -> None:
        """Worker-thread body; reports back only via call_soon_threadsafe."""
        send = self._loop.call_soon_threadsafe

        def finish(state, **kw):
            send(partial(job._finish, state, **kw))

        send(job._mark_running)
        try:
            result = runner.run_submission(
                job.submission,
                cache=self.cache,
                default_bucket=self.settings.bucket,
                cancelled=job.cancel_event,
                emit=lambda row: send(job._push_row, row),
                max_retries=self.settings.point_retries,
                verify=self.settings.verify,
            )
        except runner.JobCancelled:
            finish(CANCELLED, error={
                "type": "timeout" if job.timed_out else "cancelled",
                "message": ("job exceeded job_timeout="
                            f"{self.settings.job_timeout}s"
                            if job.timed_out else "job cancelled"),
            })
        except runner.FlowConservationError as e:
            finish(FAILED, error={
                "type": "flow_conservation",
                "message": str(e),
                "report": e.report,
            })
        except runner.InvariantViolation as e:
            # a full-verify gate tripped on a non-flow invariant
            finish(FAILED, error={
                "type": "invariant_violation",
                "message": str(e),
                "report": e.report,
            })
        except Exception as e:  # simulation errors become job failures
            finish(FAILED, error={
                "type": type(e).__name__,
                "message": str(e),
            })
        else:
            finish(DONE, result=result)

    # ------------------------------------------------------------ inspection
    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Job | None:
        """Request cancellation; lands at the runner's next boundary check."""
        job = self._jobs.get(job_id)
        if job is not None and not job.finished:
            job.cancel_event.set()
        return job

    def result_by_hash(self, content_hash: str) -> dict | None:
        """A cached point record by raw content hash (no queue involved)."""
        return self.cache.get_record(content_hash)

    async def subscribe(self, job: Job, start: int = 0):
        """Yield the job's rows from index ``start``, live until finished.

        Multiple subscribers share ``job.rows`` and each drains at its
        own pace; replaying a finished job just yields the stored rows.
        The ``updated`` event is captured before the index check (see
        :class:`Job`), so a row appended after the check still wakes
        the wait.
        """
        i = start
        job.subscribers += 1
        try:
            while True:
                updated = job.updated
                while i < len(job.rows):
                    yield job.rows[i]
                    i += 1
                if job.finished:
                    return
                await updated.wait()
        finally:
            job.subscribers -= 1

    def _evict(self) -> None:
        """Trim retained *finished* jobs to ``keep_jobs`` (oldest first)."""
        finished = [j for j in self._jobs.values() if j.finished]
        for job in finished[:max(0, len(finished) - self.settings.keep_jobs)]:
            self._jobs.pop(job.id, None)
            if self._by_key.get(job.key) is job:
                self._by_key.pop(job.key, None)

    def stats(self) -> dict:
        """The ``GET /v1/stats`` body: queue, job and cache counters."""
        states: dict[str, int] = {}
        executed = cached_points = quarantined = 0
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
            if job.result is not None:
                executed += job.result.get("executed_points", 0)
                cached_points += job.result.get("cached_points", 0)
                quarantined += len(job.result.get("point_errors", ()))
        return {
            "jobs_total": self._seq,
            "jobs_retained": len(self._jobs),
            "states": states,
            "queued": self._queued_count(),
            "running": self._running_count(),
            "deduped": self.deduped,
            "rejected": self.rejected,
            "executed_points": executed,
            "cached_points": cached_points,
            "quarantined_points": quarantined,
            "cache": self.cache.stats(),
            "settings": {
                "cache_dir": self.settings.cache_dir,
                "workers": self.settings.workers,
                "queue_limit": self.settings.queue_limit,
                "job_timeout": self.settings.job_timeout,
                "bucket": self.settings.bucket,
                "max_points": self.settings.max_points,
                "keep_jobs": self.settings.keep_jobs,
                "point_retries": self.settings.point_retries,
                "verify": self.settings.verify,
            },
        }
