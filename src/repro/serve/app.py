"""The ASGI 3 application: HTTP surface over one :class:`JobQueue`.

Framework-free by design — the callable speaks the raw ASGI protocol
(``scope`` / ``receive`` / ``send``), so it runs under any ASGI server
(``uvicorn``, ``hypercorn``, ...), under the bundled stdlib bridge
(:mod:`repro.serve.httpd`) when none is installed, and fully in-process
under the test client (:mod:`repro.serve.testclient`) — CI exercises
the whole HTTP surface without opening a socket.

Routes (all JSON; bodies are canonically encoded — sorted keys, fixed
separators, NaN→null — so equal results are byte-equal)::

    GET    /v1/healthz            liveness probe
    GET    /v1/stats              queue/cache/settings counters
    POST   /v1/jobs               submit a point or spec   → 202 / 400 / 429
    GET    /v1/jobs/{id}          job status + result when finished
    DELETE /v1/jobs/{id}          request cancellation
    GET    /v1/jobs/{id}/stream   live metrics rows as JSONL (chunked)
    GET    /v1/results/{hash}     cached point record by content hash

The stream body is *exactly* the hub's record rows, one
:func:`repro.metrics.hub.jsonl_line` per line — byte-identical to an
offline ``MetricsHub.write_jsonl`` export of the same window, which the
contract tests assert.  Job-level status never pollutes the stream;
poll ``GET /v1/jobs/{id}`` for that.
"""

from __future__ import annotations

import asyncio
import json

from repro.metrics.hub import jsonl_line, strict_jsonable

from .jobs import JobQueue, QueueFull
from .protocol import SERVE_SCHEMA_VERSION, SubmissionError
from .settings import ServeSettings

_JSON = [(b"content-type", b"application/json")]
_NDJSON = [(b"content-type", b"application/x-ndjson")]


def _encode(obj) -> bytes:
    return json.dumps(strict_jsonable(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False).encode()


async def _read_body(receive) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.request":
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                break
        elif message["type"] == "http.disconnect":
            break
    return b"".join(chunks)


async def _respond(send, status: int, obj, headers=()) -> None:
    body = _encode(obj)
    await send({"type": "http.response.start", "status": status,
                "headers": [*_JSON, *headers]})
    await send({"type": "http.response.body", "body": body})


class ServeApp:
    """ASGI 3 callable; ``create_app`` is the conventional constructor."""

    def __init__(self, settings: ServeSettings | None = None, *,
                 queue: JobQueue | None = None) -> None:
        self.settings = queue.settings if queue else (settings or ServeSettings())
        self.queue = queue or JobQueue(self.settings)

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websockets etc.
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        await self._dispatch(scope, receive, send)

    # -------------------------------------------------------------- lifespan
    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    self.queue.start()
                except Exception as e:  # pragma: no cover - defensive
                    await send({"type": "lifespan.startup.failed",
                                "message": str(e)})
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.queue.stop()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -------------------------------------------------------------- dispatch
    async def _dispatch(self, scope, receive, send) -> None:
        method = scope["method"]
        parts = [p for p in scope["path"].split("/") if p]
        if not parts or parts[0] != "v1":
            await _respond(send, 404, {"error": "unknown path; all routes "
                                       "live under /v1 (see docs/SERVICE.md)"})
            return
        parts = parts[1:]
        if parts == ["healthz"] and method == "GET":
            await _respond(send, 200, {"ok": True, "service": "repro.serve",
                                       "schema": SERVE_SCHEMA_VERSION})
        elif parts == ["stats"] and method == "GET":
            await _respond(send, 200, self.queue.stats())
        elif parts == ["jobs"] and method == "POST":
            await self._submit(receive, send)
        elif len(parts) == 2 and parts[0] == "jobs":
            if method == "GET":
                await self._job_status(parts[1], send)
            elif method == "DELETE":
                await self._job_cancel(parts[1], send)
            else:
                await _respond(send, 405, {"error": f"{method} not allowed"})
        elif (len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream"
              and method == "GET"):
            await self._job_stream(parts[1], receive, send)
        elif len(parts) == 2 and parts[0] == "results" and method == "GET":
            await self._result(parts[1], send)
        else:
            await _respond(send, 404, {"error": f"no route for {method} "
                                       f"{scope['path']}"})

    # -------------------------------------------------------------- handlers
    async def _submit(self, receive, send) -> None:
        body = await _read_body(receive)
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as e:
            await _respond(send, 400, {"error": f"body is not JSON: {e}"})
            return
        try:
            job, deduped = self.queue.submit(payload)
        except SubmissionError as e:
            await _respond(send, 400, {"error": str(e)})
            return
        except QueueFull as e:
            await _respond(
                send, 429, {"error": str(e),
                            "retry_after": self.settings.retry_after},
                headers=[(b"retry-after",
                          str(self.settings.retry_after).encode())])
            return
        await _respond(send, 202, {
            "job": job.id,
            "key": job.key,
            "state": job.state,
            "deduped": deduped,
            "points": len(job.submission.points),
            "status_url": f"/v1/jobs/{job.id}",
            "stream_url": f"/v1/jobs/{job.id}/stream",
        })

    async def _job_status(self, job_id: str, send) -> None:
        job = self.queue.get(job_id)
        if job is None:
            await _respond(send, 404, {"error": f"no job {job_id!r}"})
            return
        await _respond(send, 200, job.describe())

    async def _job_cancel(self, job_id: str, send) -> None:
        job = self.queue.cancel(job_id)
        if job is None:
            await _respond(send, 404, {"error": f"no job {job_id!r}"})
            return
        await _respond(send, 202, {"job": job.id, "state": job.state,
                                   "cancel_requested": True})

    async def _result(self, content_hash: str, send) -> None:
        record = self.queue.result_by_hash(content_hash)
        if record is None:
            await _respond(send, 404, {
                "error": f"no cached record under hash {content_hash!r}"})
            return
        await _respond(send, 200, {"key": content_hash, "record": record})

    async def _job_stream(self, job_id: str, receive, send) -> None:
        """Chunked JSONL of the job's metrics rows, live until it finishes.

        Rows already emitted replay instantly (late subscribers and
        finished jobs see the full stream); new rows are pushed as each
        bucket closes.  A client disconnect stops the stream without
        touching the job — other subscribers and the job itself carry
        on.
        """
        job = self.queue.get(job_id)
        if job is None:
            await _respond(send, 404, {"error": f"no job {job_id!r}"})
            return
        await send({"type": "http.response.start", "status": 200,
                    "headers": list(_NDJSON)})

        disconnected = asyncio.Event()

        async def watch() -> None:
            while True:
                message = await receive()
                if message["type"] == "http.disconnect":
                    disconnected.set()
                    return

        watcher = asyncio.create_task(watch())
        job.subscribers += 1
        try:
            i = 0
            while not disconnected.is_set():
                updated = job.updated  # capture BEFORE the drain (see Job)
                while i < len(job.rows):
                    await send({"type": "http.response.body",
                                "body": (jsonl_line(job.rows[i]) + "\n").encode(),
                                "more_body": True})
                    i += 1
                if job.finished:
                    break
                waiter = asyncio.create_task(updated.wait())
                stop = asyncio.create_task(disconnected.wait())
                _, pending = await asyncio.wait(
                    {waiter, stop}, return_when=asyncio.FIRST_COMPLETED)
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
            if not disconnected.is_set():
                await send({"type": "http.response.body", "body": b"",
                            "more_body": False})
        finally:
            job.subscribers -= 1
            watcher.cancel()


def create_app(settings: ServeSettings | None = None, *,
               queue: JobQueue | None = None) -> ServeApp:
    """Build the service (the ``repro serve`` entry point).

    Pass a prebuilt ``queue`` to share one across apps or to inspect it
    from tests; otherwise one is created from ``settings``.
    """
    return ServeApp(settings, queue=queue)
