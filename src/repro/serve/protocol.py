"""Wire protocol: submission payloads → run points, job content hashes.

``POST /v1/jobs`` accepts two JSON shapes:

* a **single point** — the payload *is* the point::

      {"config": {...}, "pattern": "uniform", "load": 0.3,
       "warmup": 2000, "measure": 2000}

  plus optional ``kind`` (``steady``/``drain``/``transient``),
  ``packets_per_node``, ``max_cycles``, ``bucket``, ``steady`` and
  ``series`` — the fields of :class:`~repro.runplan.spec.RunPoint`;

* a **run spec** — a full declarative grid under ``"spec"``::

      {"spec": {"config": {...}, "pattern": "uniform",
                "loads": [0.1, 0.3], "warmup": 2000, "measure": 2000,
                "replicas": 3},
       "aggregate": true}

  mirroring :class:`~repro.runplan.spec.RunSpec` (``seeds`` lists
  explicit replica seeds; ``replicas`` derives them from the config's
  base seed via :func:`~repro.runplan.spec.replica_seeds`).

Parsing is strict — unknown fields raise :class:`SubmissionError`
listing the known ones, and every structural error names the offending
field — so typos fail the request with 400, never a silently-wrong
simulation.  A parsed :class:`Submission` hashes to a deterministic
content key over its points' content hashes: the dedupe address under
which concurrent identical submissions coalesce.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.network.config import SimConfig
from repro.runplan.spec import RunPoint, RunSpec, replica_seeds

#: bump when the submission grammar or job-key derivation changes
SERVE_SCHEMA_VERSION = 2

_POINT_FIELDS = frozenset({
    "config", "pattern", "kind", "load", "warmup", "measure",
    "packets_per_node", "max_cycles", "bucket", "steady", "series",
})
_SPEC_FIELDS = (_POINT_FIELDS - {"load"}) | {"loads", "seeds", "replicas"}


class SubmissionError(ValueError):
    """A malformed job payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class Submission:
    """A parsed job: the flat points to run plus result-shaping flags.

    ``progress`` opts the job's row stream into per-point progress rows
    (``{"event": "point", ...}``) interleaved with the metrics rows —
    off by default so the streamed JSONL of an unadorned submission
    stays byte-identical across schema versions.
    """

    points: tuple[RunPoint, ...]
    aggregate: bool
    progress: bool = False

    @property
    def kind(self) -> str:
        kinds = {p.kind for p in self.points}
        return kinds.pop() if len(kinds) == 1 else "mixed"

    def key(self) -> str:
        """Content hash of the whole job — the dedupe address.

        Covers each point's own content hash (config, traffic, windows,
        schema version) plus the aggregation flag, so two submissions
        coalesce exactly when they would produce the same result
        payload.
        """
        blob = json.dumps({
            "schema": SERVE_SCHEMA_VERSION,
            "aggregate": self.aggregate,
            "progress": self.progress,
            "points": [p.key() for p in self.points],
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def _reject_unknown(data: dict, allowed: frozenset, what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SubmissionError(
            f"unknown {what} field(s): {unknown}; known: {sorted(allowed)}")


def _config_of(data: dict) -> SimConfig:
    raw = data.get("config")
    if raw is None:
        return SimConfig()
    try:
        return SimConfig.from_dict(raw)
    except (TypeError, ValueError) as e:
        raise SubmissionError(f"bad config: {e}") from None


def _int_field(data: dict, name: str, default: int = 0) -> int:
    value = data.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise SubmissionError(
            f"{name} must be a non-negative integer cycle count, "
            f"got {value!r}")
    return value


def _parse_point(payload: dict) -> RunPoint:
    _reject_unknown(payload, _POINT_FIELDS | {"aggregate", "progress"}, "point")
    config = _config_of(payload)
    load = payload.get("load")
    if load is not None and not isinstance(load, (int, float)):
        raise SubmissionError(f"load must be a number, got {load!r}")
    try:
        return RunPoint(
            config=config,
            pattern=str(payload.get("pattern", "uniform")),
            kind=payload.get("kind", "steady"),
            load=None if load is None else float(load),
            warmup=_int_field(payload, "warmup"),
            measure=_int_field(payload, "measure"),
            packets_per_node=payload.get("packets_per_node"),
            max_cycles=payload.get("max_cycles"),
            bucket=payload.get("bucket"),
            steady=bool(payload.get("steady", False)),
            series=str(payload.get("series", "")),
        )
    except (TypeError, ValueError) as e:
        raise SubmissionError(f"bad point: {e}") from None


def _parse_spec(payload: dict) -> tuple[RunSpec, int]:
    spec_data = payload["spec"]
    if not isinstance(spec_data, dict):
        raise SubmissionError(
            f"spec must be a JSON object, got {type(spec_data).__name__}")
    _reject_unknown(spec_data, _SPEC_FIELDS, "spec")
    config = _config_of(spec_data)
    loads = spec_data.get("loads", ())
    if not isinstance(loads, (list, tuple)) or any(
            not isinstance(x, (int, float)) or isinstance(x, bool) for x in loads):
        raise SubmissionError(f"loads must be a list of numbers, got {loads!r}")
    if "seeds" in spec_data and "replicas" in spec_data:
        raise SubmissionError("pass either seeds (explicit list) or "
                              "replicas (count from the config's seed), not both")
    if "seeds" in spec_data:
        seeds = spec_data["seeds"]
        if not isinstance(seeds, (list, tuple)) or any(
                not isinstance(s, int) or isinstance(s, bool) for s in seeds):
            raise SubmissionError(f"seeds must be a list of integers, got {seeds!r}")
        seeds = tuple(seeds)
    else:
        replicas = spec_data.get("replicas", 1)
        if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
            raise SubmissionError(
                f"replicas must be a positive integer, got {replicas!r}")
        seeds = replica_seeds(config.seed, replicas)
    try:
        spec = RunSpec(
            config=config,
            pattern=str(spec_data.get("pattern", "uniform")),
            loads=tuple(float(x) for x in loads),
            warmup=_int_field(spec_data, "warmup"),
            measure=_int_field(spec_data, "measure"),
            seeds=seeds,
            kind=spec_data.get("kind", "steady"),
            packets_per_node=spec_data.get("packets_per_node"),
            max_cycles=spec_data.get("max_cycles"),
            bucket=spec_data.get("bucket"),
            steady=bool(spec_data.get("steady", False)),
            series=str(spec_data.get("series", "")),
        )
    except (TypeError, ValueError) as e:
        raise SubmissionError(f"bad spec: {e}") from None
    return spec, len(seeds)


def parse_submission(payload, *, max_points: int = 512) -> Submission:
    """Parse a ``POST /v1/jobs`` body into a :class:`Submission`.

    Raises :class:`SubmissionError` (→ HTTP 400) on any structural
    problem; config errors surface the underlying ``SimConfig``
    message.
    """
    if not isinstance(payload, dict):
        raise SubmissionError(
            f"job payload must be a JSON object, got {type(payload).__name__}")
    aggregate = payload.get("aggregate")
    if aggregate is not None and not isinstance(aggregate, bool):
        raise SubmissionError(f"aggregate must be a boolean, got {aggregate!r}")
    progress = payload.get("progress", False)
    if not isinstance(progress, bool):
        raise SubmissionError(f"progress must be a boolean, got {progress!r}")
    if "spec" in payload:
        _reject_unknown(payload, frozenset({"spec", "aggregate", "progress"}), "job")
        spec, n_seeds = _parse_spec(payload)
        try:
            points = tuple(spec.expand())
        except (TypeError, ValueError) as e:
            raise SubmissionError(f"bad spec: {e}") from None
        if aggregate is None:
            aggregate = n_seeds > 1
    else:
        points = (_parse_point(payload),)
        aggregate = False
    if not points:
        raise SubmissionError(
            "spec expands to zero run points: steady/transient specs need "
            "a non-empty loads list, drain specs need packets_per_node")
    if len(points) > max_points:
        raise SubmissionError(
            f"spec expands to {len(points)} run points, over this "
            f"service's max_points limit of {max_points}; split the grid "
            "into smaller submissions")
    return Submission(points=points, aggregate=bool(aggregate),
                      progress=progress)
