"""Minimal stdlib ASGI server: ``repro serve`` with nothing installed.

A dev-grade HTTP/1.1 bridge on ``asyncio.start_server`` so the service
runs out of the box — ``uvicorn`` is an optional extra, not a
dependency, and the container image does not carry it.  Scope is
deliberately small: one request per connection (``Connection: close``),
close-delimited response bodies (no keep-alive, no TLS, no websockets),
client disconnects surfaced as ``http.disconnect``.  Anything
production-shaped should sit behind a real ASGI server; the protocol
handling here is just enough for ``curl``, the docs examples and local
experiments.
"""

from __future__ import annotations

import asyncio

_MAX_HEADER_BYTES = 65536

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error"}


async def _read_request(reader):
    """Parse one request head + body; returns (scope, body) or None on EOF."""
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    method, target, _version = lines[0].split(" ", 2)
    headers = []
    content_length = 0
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        name = name.strip().lower()
        value = value.strip()
        headers.append((name.encode("latin-1"), value.encode("latin-1")))
        if name == "content-length":
            content_length = int(value)
    path, _, query = target.partition("?")
    body = (await reader.readexactly(content_length)
            if content_length else b"")
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query.encode("latin-1"),
        "headers": headers,
        "server": None,
        "client": None,
    }
    return scope, body


async def _handle(app, reader, writer) -> None:
    try:
        try:
            scope, body = await _read_request(reader)
        except (asyncio.IncompleteReadError, ValueError):
            return

        request_messages = [
            {"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if request_messages:
                return request_messages.pop(0)
            while True:  # one request per connection: further bytes are
                chunk = await reader.read(4096)  # ignored, EOF = hangup
                if not chunk:
                    return {"type": "http.disconnect"}

        started = False

        async def send(message):
            nonlocal started
            if message["type"] == "http.response.start":
                status = message["status"]
                reason = _REASONS.get(status, "Unknown")
                head = [f"HTTP/1.1 {status} {reason}"]
                head += [f"{name.decode('latin-1')}: {value.decode('latin-1')}"
                         for name, value in message.get("headers", [])]
                head.append("connection: close")
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
                started = True
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                await writer.drain()

        try:
            await app(scope, receive, send)
        except Exception:
            if not started:
                writer.write(b"HTTP/1.1 500 Internal Server Error\r\n"
                             b"content-length: 0\r\nconnection: close\r\n\r\n")
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _serve(app, host: str, port: int) -> None:
    # run the lifespan protocol around the server exactly as a real
    # ASGI server would (the job queue's worker pool lives in it)
    to_app: asyncio.Queue = asyncio.Queue()
    from_app: asyncio.Queue = asyncio.Queue()
    lifespan = asyncio.ensure_future(
        app({"type": "lifespan", "asgi": {"version": "3.0"}},
            to_app.get, from_app.put))
    await to_app.put({"type": "lifespan.startup"})
    message = await from_app.get()
    if message["type"] != "lifespan.startup.complete":
        raise RuntimeError(f"app failed to start: {message}")

    server = await asyncio.start_server(
        lambda r, w: _handle(app, r, w), host, port)
    addr = ", ".join(
        "%s:%d" % sock.getsockname()[:2] for sock in server.sockets)
    print(f"repro.serve listening on http://{addr} (stdlib bridge; "
          "install uvicorn for a production-grade server)", flush=True)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await to_app.put({"type": "lifespan.shutdown"})
        await from_app.get()
        await lifespan


def run(app, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Serve ``app`` until interrupted (the ``repro serve`` fallback)."""
    try:
        asyncio.run(_serve(app, host, port))
    except KeyboardInterrupt:
        print("repro.serve stopped", flush=True)
