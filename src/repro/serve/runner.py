"""Synchronous job execution: facade workers + streaming + cancellation.

The serve layer cannot call :func:`repro.facade.run_point` directly —
it needs row-by-row metrics streaming and a cancellation point between
buckets — so this module re-states each facade worker with those two
hooks added.  Everything else is kept call-for-call identical, and the
contract tests (``tests/test_serve_contract.py``) pin the consequence:
for any point, the record produced here is **byte-identical**
(:func:`~repro.runplan.cache.canonical_record_json`) to the offline
facade worker's.  That identity is what makes the shared
:class:`~repro.runplan.cache.ResultCache` safe — a record cached by a
CLI sweep replays verbatim over HTTP and vice versa.

Why the identity holds despite the extra machinery:

* attaching a :class:`~repro.metrics.hub.MetricsHub` never changes what
  a simulation records (the PR-4 observation-only guarantee);
* advancing the engine in bucket-sized chunks is cycle-for-cycle
  identical to one long ``run()`` (the timing wheel holds no state
  across ``run`` boundaries and fast-forward clamps to the limit);
* cancellation is *cooperative* — checked between chunks, never
  interrupting one — so an uncancelled run takes the exact same steps.

Every window additionally self-checks flow conservation
(``injected == delivered + Δin_flight``, satellite of PR 6): a tripped
check raises :class:`FlowConservationError` and the job is marked
failed rather than returning silently-wrong numbers.  A service
configured with ``verify="full"`` widens that gate to the whole
physical-invariant set (:mod:`repro.analysis.invariants` — Little's
law, occupancy non-negativity, throughput/latency bounds); a non-flow
failure surfaces as the base
:class:`~repro.analysis.invariants.InvariantViolation`.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace

from repro.analysis.invariants import InvariantViolation
from repro.facade import point_record, session
from repro.metrics.hub import MetricsHub
from repro.metrics.statistics import recovery_time
from repro.runplan.aggregate import aggregate_replicas
from repro.runplan.runner import labeled_record
from repro.runplan.scheduler import PointError, SerialScheduler
from repro.runplan.spec import RunPoint
from repro.traffic.patterns import pattern_by_name
from repro.traffic.processes import BurstTraffic


class JobCancelled(Exception):
    """Raised inside a worker when the job's cancel event is set."""


class FlowConservationError(InvariantViolation):
    """A measurement window lost or invented packets.

    ``report`` is the failing
    :meth:`repro.metrics.hub.MetricsHub.verify` dict.  Subclasses
    :class:`~repro.analysis.invariants.InvariantViolation` so one
    ``except`` clause covers the whole verification gate while the
    flow-specific message format stays intact.
    """

    def __init__(self, report: dict, message: str | None = None) -> None:
        if message is None:
            message = (
                "flow conservation violated: injected={injected} delivered="
                "{delivered} in_flight={in_flight} (expected "
                "{expected_in_flight})".format(**report))
        super().__init__(report, message)


def stream_meta(point: RunPoint) -> dict:
    """Extra meta-row fields identifying the point a stream belongs to."""
    return {
        "point": point.key(),
        "kind": point.kind,
        "pattern": point.pattern,
        "load": point.load,
        "config_hash": point.config.content_hash(),
    }


def _check(cancelled) -> None:
    if cancelled is not None and cancelled.is_set():
        raise JobCancelled("job cancelled")


def _guard(emit, cancelled):
    """Wrap ``emit`` so every bucket boundary is a cancellation point."""
    def guarded(row: dict) -> None:
        _check(cancelled)
        emit(row)
    return guarded


def _chunked_warmup(s, cycles: int, bucket: int, cancelled) -> None:
    """``Session.warmup(cycles)`` in bucket-sized chunks (cancellable).

    Chunked runs are cycle-identical to one long run, so the post-warmup
    state — and therefore the measured record — matches the facade's
    blind ``warmup()`` exactly.
    """
    end = s.now + cycles
    while s.now < end:
        _check(cancelled)
        s.run(min(bucket, end - s.now))
    s.reset()


def _check_conservation(report: dict | None) -> None:
    """Raise on a failed verify report, keeping the error type specific.

    Flow-conservation failures keep their dedicated
    :class:`FlowConservationError` (and its message format, pinned by
    the contract tests); a report that failed *only* on wider
    invariants (Little's law, bounds, occupancy) raises the base
    :class:`InvariantViolation` naming the failed checks.
    """
    if report is None or report["ok"]:
        return
    failed = [c for c in report.get("checks", ()) if not c.get("ok", True)]
    if failed and all(c.get("check") != "flow_conservation" for c in failed):
        raise InvariantViolation(report)
    raise FlowConservationError(report)


def _steady_streamed(point: RunPoint, emit, bucket: int, cancelled,
                     full_verify: bool) -> dict:
    """Mirror of :func:`repro.facade.run_point`, streaming the window."""
    s = session(point.config, pattern=point.pattern, load=point.load)
    if point.steady:
        s.warmup_until_steady(max_cycles=point.warmup)
        _check(cancelled)
    else:
        _chunked_warmup(s, point.warmup, bucket, cancelled)
    sr = s.measure_series(point.measure, bucket=bucket,
                          emit=_guard(emit, cancelled),
                          meta=stream_meta(point), full_verify=full_verify)
    _check_conservation(sr.verify)
    rec = point_record(sr.result, point.config, pattern=point.pattern,
                       load=point.load)
    if point.steady:
        rec["warmup_cycles"] = s.auto_warmup["cycles"]
        rec["warmup_steady"] = s.auto_warmup["steady"]
    return rec


def _transient_streamed(point: RunPoint, emit, cancelled,
                        full_verify: bool) -> dict:
    """Mirror of :func:`repro.facade.run_transient`, streaming the window.

    The bucket is the *point's* (default 250, exactly as the run-plan
    dispatcher resolves it) because for transient records the bucket is
    part of the measurement, not just the stream resolution — using the
    service default here would poison the shared cache with records
    that differ from offline runs of the same point key.
    """
    bucket = point.bucket or 250
    s = session(point.config, pattern=point.pattern, load=point.load)
    s.warmup_until_steady(bucket=bucket, max_cycles=point.warmup)
    _check(cancelled)
    baseline = s.auto_warmup["steady_throughput"]
    sim = s.sim
    burst_pattern = pattern_by_name(point.pattern, sim.topo)
    BurstTraffic(burst_pattern, point.packets_per_node).inject(sim, sim.now)
    sr = s.measure_series(point.measure, bucket=bucket, latencies=True,
                          emit=_guard(emit, cancelled),
                          meta=stream_meta(point), full_verify=full_verify)
    _check_conservation(sr.verify)
    recovery = recovery_time(sr.series["throughput"], baseline,
                             bucket=bucket, rel_tolerance=0.15, hold=3)
    rec = point_record(sr.result, point.config, pattern=point.pattern,
                       load=point.load,
                       packets_per_node=point.packets_per_node)
    rec.update(
        kind="transient",
        bucket=bucket,
        warmup_cycles=s.auto_warmup["cycles"],
        warmup_steady=s.auto_warmup["steady"],
        baseline_throughput=baseline,
        recovered=recovery is not None,
        recovery_cycles=point.measure if recovery is None else recovery,
        throughput_series=sr.series["throughput"],
        latency_series=sr.series["latency_mean"],
    )
    return rec


def _drain_streamed(point: RunPoint, emit, bucket: int, cancelled,
                    full_verify: bool) -> dict:
    """Mirror of :func:`repro.facade.run_drain`, rows emitted on completion.

    A drain run has no end cycle known up front (the meta row needs
    one), so the row stream is emitted in one piece once the fabric is
    empty rather than live; ``max_cycles`` bounds the wait.  For the
    same reason cancellation takes effect only before the drain starts —
    the drain itself must be the facade's single
    ``run_until_drained`` call to keep ``drain_cycles`` byte-identical.
    """
    _check(cancelled)
    s = session(point.config)
    pattern = pattern_by_name(point.pattern, s.sim.topo)
    s.with_traffic(BurstTraffic(pattern, point.packets_per_node))
    hub = MetricsHub(s.sim, bucket=bucket, latencies=True)
    try:
        result = s.drain(point.max_cycles or 1_000_000)
        _check_conservation(hub.verify(full=full_verify))
        for row in hub.records(s.now, stream_meta(point)):
            emit(row)
    finally:
        hub.detach()
    return point_record(result, point.config, pattern=point.pattern,
                        packets_per_node=point.packets_per_node)


def execute_point_streamed(point: RunPoint, emit, *, bucket: int = 250,
                           cancelled=None, verify: str = "flow") -> dict:
    """One point's raw record, streaming metrics rows through ``emit``.

    The serve-side twin of :func:`repro.runplan.runner.execute_point`:
    same dispatch, same record bytes, plus ``emit(row)`` per
    meta/bucket/summary row and a cooperative ``cancelled``
    (``threading.Event``) checked at bucket boundaries.  ``bucket`` is
    the stream resolution for kinds where it does not shape the record
    (steady, drain); a point's own ``bucket`` always wins.  ``verify``
    is ``"flow"`` (conservation only, the default) or ``"full"`` (the
    whole live invariant set); either way the record bytes are
    unchanged — verification only decides whether the point fails.
    """
    full = verify == "full"
    if point.kind == "drain":
        return _drain_streamed(point, emit, point.bucket or bucket,
                               cancelled, full)
    if point.kind == "transient":
        return _transient_streamed(point, emit, cancelled, full)
    return _steady_streamed(point, emit, point.bucket or bucket,
                            cancelled, full)


def run_submission(submission, *, cache=None, default_bucket: int = 250,
                   cancelled=None, emit=None, max_retries: int = 0,
                   verify: str = "flow") -> dict:
    """Execute a whole submission synchronously; the worker-thread entry.

    Points run through the same :class:`~repro.runplan.scheduler`
    contract as offline plans — a :class:`SerialScheduler` with
    :class:`JobCancelled` and :class:`InvariantViolation` (which covers
    :class:`FlowConservationError`) marked fatal, so cancellation and
    the verification gate still abort the
    job instantly while any *other* per-point failure is retried up to
    ``max_retries`` times and then quarantined: the job completes with
    the surviving records plus a ``point_errors`` list instead of
    failing outright.  Only when **every** point failed does the first
    failure propagate as the job error.

    Consults ``cache`` per point (hits replay verbatim and stream no
    rows — their rows were streamed when the record was first computed),
    stores fresh records the moment they land, labels every record
    through :func:`~repro.runplan.runner.labeled_record`, and collapses
    seed replicas when the submission asked to aggregate.  The result
    payload reports how many points actually ran (``executed_points``)
    versus replayed (``cached_points``).  When the submission opted in
    (``progress``), one ``{"event": "point", ...}`` row per completed
    point is interleaved with the metrics rows.  ``verify`` passes
    through to :func:`execute_point_streamed` for every computed point;
    cache hits replay without re-verification.
    """
    if emit is None:
        def emit(row):
            return None
    points = submission.points
    total = len(points)
    completed = 0
    want_progress = getattr(submission, "progress", False)

    def note(index: int, point: RunPoint, status: str, attempts: int,
             error: str | None = None) -> None:
        nonlocal completed
        completed += 1
        if want_progress:
            row = {"event": "point", "index": index, "point": point.key(),
                   "status": status, "attempts": attempts,
                   "completed": completed, "total": total}
            if error is not None:
                row["error"] = error
            emit(row)

    records: dict[int, dict] = {}
    errors: list[PointError] = []
    pending: list[tuple[int, RunPoint]] = []
    executed = cached = 0
    for i, point in enumerate(points):
        _check(cancelled)
        hit = cache.get(point) if cache is not None else None
        if hit is None:
            pending.append((i, point))
        else:
            records[i] = labeled_record(point, hit)
            cached += 1
            note(i, point, "cached", 0)
    if pending:
        scheduler = SerialScheduler(
            max_retries=max_retries,
            fatal=(JobCancelled, InvariantViolation))

        def work(item):
            _check(cancelled)
            _, point = item
            return execute_point_streamed(point, emit, bucket=default_bucket,
                                          cancelled=cancelled, verify=verify)

        for j, result in scheduler.run(work, pending):
            i, point = pending[j]
            if isinstance(result, PointError):
                errors.append(_dc_replace(result, index=i, key=point.key()))
                note(i, point, "failed", result.attempts, error=result.error)
                continue
            if cache is not None:
                cache.put(point, result)
            executed += 1
            records[i] = labeled_record(point, result)
            attempts = scheduler.attempt_counts.get(j, 1)
            note(i, point, "retried" if attempts > 1 else "computed", attempts)
    out = [records[i] for i in sorted(records)]
    if errors and not out:
        first = min(errors, key=lambda e: e.index)
        if first.exception is not None:
            raise first.exception
        raise RuntimeError(
            f"all {total} point(s) failed; first: "
            f"[{first.error}] {first.message}")
    if submission.aggregate:
        out = aggregate_replicas(out)
    result = {
        "records": out,
        "aggregated": submission.aggregate,
        "executed_points": executed,
        "cached_points": cached,
    }
    if errors:
        result["point_errors"] = [
            e.describe() for e in sorted(errors, key=lambda e: e.index)]
    return result
