"""Service configuration: every serve knob, bounds-checked on construction.

Validation follows the topology-validator style — each violated bound
raises ``ValueError`` with the offending value and what would fix it,
so ``repro serve --workers 0`` fails with an actionable message before
a socket is ever bound.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServeSettings:
    """All knobs of one service instance (see ``docs/SERVICE.md``).

    ``cache_dir`` — directory of the shared persistent content-addressed
    :class:`~repro.runplan.cache.ResultCache`; ``None`` keeps results
    in memory only (dedupe still works, but nothing survives a restart
    and ``GET /v1/results/{hash}`` only sees what this process ran).
    ``workers`` — simulation worker threads; each runs one job at a
    time, so at most ``workers`` simulations are in flight.
    ``queue_limit`` — jobs allowed to *wait*; a new submission beyond it
    is rejected with HTTP 429 and ``Retry-After: retry_after`` seconds.
    ``job_timeout`` — wall-clock seconds per job before it is cancelled
    and marked failed (cancellation lands at the next bucket boundary).
    ``bucket`` — default stream resolution in cycles for points that do
    not set their own ``bucket``.
    ``max_points`` — cap on how many run points one submission may
    expand to (a full RunSpec grid times its seed replicas).
    ``keep_jobs`` — finished jobs retained in memory for status/stream
    replay before the oldest are evicted.
    ``point_retries`` — extra attempts per failing point before it is
    quarantined into the job result's ``point_errors`` list (the
    scheduler's ``max_retries``; cancellation and the flow-conservation
    gate are never retried).
    ``verify`` — per-point verification level: ``"flow"`` (the default,
    flow conservation only) or ``"full"`` (the whole live
    physical-invariant set from :mod:`repro.analysis.invariants`).
    Record bytes are identical either way, so a full-verify service
    shares its cache with flow-only ones.
    """

    cache_dir: str | None = None
    workers: int = 2
    queue_limit: int = 64
    job_timeout: float = 300.0
    retry_after: int = 2
    bucket: int = 250
    max_points: int = 512
    keep_jobs: int = 256
    point_retries: int = 1
    verify: str = "flow"

    def __post_init__(self) -> None:
        if not 1 <= self.workers <= 64:
            raise ValueError(
                f"workers must be between 1 and 64 (got {self.workers}): "
                "the pool needs at least one simulation worker, and each "
                "worker is a CPU-bound thread — size it to the machine's "
                "cores, not the request rate"
            )
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1 (got {self.queue_limit}): with "
                "no waiting room every submission beyond the running jobs "
                "would be rejected with 429"
            )
        if not self.job_timeout > 0:
            raise ValueError(
                f"job_timeout must be positive seconds (got "
                f"{self.job_timeout}); raise it for paper-scale points "
                "instead of disabling it"
            )
        if self.retry_after < 1:
            raise ValueError(
                f"retry_after must be >= 1 second (got {self.retry_after}): "
                "it is sent verbatim in the 429 Retry-After header"
            )
        if self.bucket < 1:
            raise ValueError(
                f"bucket must be a positive cycle count (got {self.bucket}); "
                "it sets the stream's time-series resolution"
            )
        if self.max_points < 1:
            raise ValueError(
                f"max_points must be >= 1 (got {self.max_points}): a "
                "submission expands to at least one run point"
            )
        if self.keep_jobs < 1:
            raise ValueError(
                f"keep_jobs must be >= 1 (got {self.keep_jobs}): finished "
                "jobs must stay addressable at least until their status "
                "is read"
            )
        if not 0 <= self.point_retries <= 10:
            raise ValueError(
                f"point_retries must be between 0 and 10 (got "
                f"{self.point_retries}): it multiplies the worst-case work "
                "per failing point — 0 disables retries, a job_timeout "
                "still bounds the total"
            )
        if self.verify not in ("flow", "full"):
            raise ValueError(
                f"verify must be 'flow' or 'full' (got {self.verify!r}): "
                "'flow' gates each window on flow conservation only, "
                "'full' enforces the whole physical-invariant set"
            )
