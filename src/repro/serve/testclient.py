"""In-process ASGI client: drive the app with no socket and no server.

CI and the test suite exercise the full HTTP surface — lifespan,
routing, chunked streaming, disconnects — by calling the ASGI app
directly::

    app = create_app(ServeSettings(workers=1))
    async with Client(app) as client:
        resp = await client.post("/v1/jobs", json_body={...})
        job = resp.json()["job"]
        stream = await client.get(f"/v1/jobs/{job}/stream")

``Client.__aenter__`` runs the app's lifespan startup (spawning the
job queue's worker pool on the current loop) and ``__aexit__`` its
shutdown, exactly as an ASGI server would.  ``request()`` performs one
request to completion — for a stream route that means it returns once
the job finishes and the stream closes, with the whole JSONL body
assembled.  Pass ``disconnect`` (an ``asyncio.Event``) to simulate the
client hanging up mid-stream: once set, the app sees
``http.disconnect`` on its receive channel.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field


@dataclass
class Response:
    """One completed HTTP exchange."""

    status: int
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def text(self) -> str:
        return self.body.decode()

    def json(self):
        return json.loads(self.body)

    def jsonl(self) -> list[dict]:
        """The body parsed as JSONL (one object per non-empty line)."""
        return [json.loads(line) for line in self.text.splitlines() if line]


class Client:
    """Async context manager driving one ASGI app in-process."""

    def __init__(self, app) -> None:
        self.app = app
        self._to_app: asyncio.Queue | None = None
        self._from_app: asyncio.Queue | None = None
        self._lifespan: asyncio.Task | None = None

    async def __aenter__(self) -> "Client":
        self._to_app = asyncio.Queue()
        self._from_app = asyncio.Queue()
        scope = {"type": "lifespan", "asgi": {"version": "3.0"}}
        self._lifespan = asyncio.create_task(
            self.app(scope, self._to_app.get, self._from_app.put))
        await self._to_app.put({"type": "lifespan.startup"})
        message = await self._from_app.get()
        if message["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"lifespan startup failed: {message}")
        return self

    async def __aexit__(self, *exc) -> None:
        await self._to_app.put({"type": "lifespan.shutdown"})
        message = await self._from_app.get()
        if message["type"] != "lifespan.shutdown.complete":  # pragma: no cover
            raise RuntimeError(f"lifespan shutdown failed: {message}")
        await self._lifespan

    async def request(self, method: str, path: str, json_body=None, *,
                      disconnect: asyncio.Event | None = None) -> Response:
        """Run one request through the app and assemble the response.

        ``disconnect`` simulates the client closing the connection:
        after the request body is delivered, the app's next ``receive``
        blocks until the event is set and then yields
        ``http.disconnect`` (without it, ``receive`` blocks forever —
        the server-side idiom for a client that stays connected).
        """
        body = b"" if json_body is None else json.dumps(json_body).encode()
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": path,
            "raw_path": path.encode(),
            "query_string": b"",
            "headers": [(b"content-type", b"application/json"),
                        (b"content-length", str(len(body)).encode())],
            "server": ("testclient", 80),
            "client": ("testclient", 1),
        }
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if request_messages:
                return request_messages.pop(0)
            if disconnect is not None:
                await disconnect.wait()
                return {"type": "http.disconnect"}
            await asyncio.Event().wait()  # stay connected forever

        sent: list[dict] = []

        async def send(message):
            sent.append(message)

        await self.app(scope, receive, send)
        response = Response(status=500)
        chunks = []
        for message in sent:
            if message["type"] == "http.response.start":
                response.status = message["status"]
                response.headers = {
                    name.decode(): value.decode()
                    for name, value in message.get("headers", [])}
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
        response.body = b"".join(chunks)
        return response

    async def get(self, path: str, **kw) -> Response:
        return await self.request("GET", path, **kw)

    async def post(self, path: str, json_body=None, **kw) -> Response:
        return await self.request("POST", path, json_body, **kw)

    async def delete(self, path: str, **kw) -> Response:
        return await self.request("DELETE", path, **kw)
