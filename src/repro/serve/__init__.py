"""Simulation-as-a-service: the repro simulator behind an HTTP API.

``repro.serve`` exposes the run-plan execution layer as a small
framework-free ASGI application (``repro serve`` on the CLI):

* ``POST /v1/jobs`` — submit a single point or a full RunSpec grid;
* content-hash **dedupe** — concurrent identical submissions coalesce
  onto one execution, and the shared persistent
  :class:`~repro.runplan.cache.ResultCache` replays anything already
  computed (by the service *or* by offline sweeps — records are
  byte-identical either way);
* ``GET /v1/jobs/{id}/stream`` — live metrics rows as JSONL while the
  simulation runs, byte-identical to an offline
  ``MetricsHub.write_jsonl`` export;
* bounded worker pool, bounded queue (429 + ``Retry-After``), per-job
  timeout and cancellation.

See ``docs/SERVICE.md`` for the full API and operational model.
"""

from repro.serve.app import ServeApp, create_app
from repro.serve.jobs import Job, JobQueue, QueueFull
from repro.serve.protocol import (SERVE_SCHEMA_VERSION, Submission,
                                  SubmissionError, parse_submission)
from repro.serve.runner import (FlowConservationError, JobCancelled,
                                execute_point_streamed, run_submission,
                                stream_meta)
from repro.serve.settings import ServeSettings

__all__ = [
    "ServeApp", "create_app",
    "Job", "JobQueue", "QueueFull",
    "Submission", "SubmissionError", "parse_submission",
    "SERVE_SCHEMA_VERSION",
    "FlowConservationError", "JobCancelled",
    "execute_point_streamed", "run_submission", "stream_meta",
    "ServeSettings",
]
