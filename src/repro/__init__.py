"""Reproduction of "Efficient Routing Mechanisms for Dragonfly Networks"
(García, Vallejo, Beivide, Odriozola, Valero — ICPP 2013).

Public API quick tour::

    import repro

    cfg = repro.SimConfig(h=2, routing="olm", flow_control="vct")
    result = repro.session(cfg, pattern="uniform", load=0.5).warmup(2000).measure(2000)
    print(result.mean_latency, result.latency_p99, result.throughput)

``repro.session(cfg)`` opens a :class:`Session` around one live
simulator; ``warmup`` runs to steady state and resets the measurement
window, ``measure``/``drain`` return a frozen :class:`RunResult`
(latency mean and percentiles, throughput, misroute fractions, drain
cycles).  Every pluggable component — topology, routing, flow control,
arbitration, traffic — is selected by name in :class:`SimConfig` and
resolved through one registry API::

    from repro.registry import all_registries, TOPOLOGY_REGISTRY

    for kind, registry in all_registries().items():
        print(kind, registry.available())

    @TOPOLOGY_REGISTRY.register("mytopo", description="my fabric")
    class MyTopology: ...          # then SimConfig(topology="mytopo")

Routing mechanisms: ``minimal``, ``valiant``, ``pb`` (Piggybacking),
``par62`` (naïve PAR-6/2), ``rlm`` (Restricted Local Misrouting),
``olm`` (Opportunistic Local Misrouting) and the ``ofar`` baseline.
Topologies: ``dragonfly`` (the paper's), ``flattened_butterfly``
(1-D), ``torus`` (2-D) — minimal/Valiant/OFAR run on all three via the
fabric's routing oracle; Dragonfly-only mechanisms raise
:class:`~repro.topology.base.UnsupportedTopologyError` elsewhere (see
``docs/ARCHITECTURE.md`` and ``docs/ADDING_A_TOPOLOGY.md``).

The lower-level surface (``build_simulator``, ``sim.stats``,
``sim.add_delivery_observer``) remains available for custom loops.
"""

from repro.core import ROUTING_REGISTRY, MisroutingTrigger, routing_by_name
from repro.network import (
    DeadlockError,
    SimConfig,
    Simulator,
    build_simulator,
)
from repro.topology import (
    Dragonfly,
    FlattenedButterfly,
    Topology,
    Torus2D,
    UnsupportedTopologyError,
    validate_topology,
)
from repro.traffic import PATTERN_REGISTRY, PROCESS_REGISTRY
from repro.registry import (
    ARBITER_REGISTRY,
    FLOW_CONTROL_REGISTRY,
    TOPOLOGY_REGISTRY,
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
    all_registries,
)
from repro.facade import (
    RunResult,
    SeriesResult,
    Session,
    run_drain,
    run_point,
    run_transient,
    session,
)
from repro.metrics import LatencyTap, MetricsHub
from repro.network.taps import Tap
from repro.runplan import (
    EXECUTOR_REGISTRY,
    ResultCache,
    RunPoint,
    RunSpec,
    aggregate_replicas,
    execute,
    replica_seeds,
)

__version__ = "1.1.0"

__all__ = [
    # configuration + engine
    "SimConfig",
    "Simulator",
    "build_simulator",
    "DeadlockError",
    # session facade
    "session",
    "Session",
    "RunResult",
    "SeriesResult",
    "run_point",
    "run_drain",
    "run_transient",
    # observability (taps + hub)
    "Tap",
    "MetricsHub",
    "LatencyTap",
    # run plans (parallel execution, caching, replication)
    "RunSpec",
    "RunPoint",
    "execute",
    "replica_seeds",
    "aggregate_replicas",
    "ResultCache",
    "EXECUTOR_REGISTRY",
    # registries
    "Registry",
    "UnknownComponentError",
    "DuplicateComponentError",
    "all_registries",
    "TOPOLOGY_REGISTRY",
    "ROUTING_REGISTRY",
    "FLOW_CONTROL_REGISTRY",
    "ARBITER_REGISTRY",
    "PATTERN_REGISTRY",
    "PROCESS_REGISTRY",
    # topology
    "Topology",
    "Dragonfly",
    "FlattenedButterfly",
    "Torus2D",
    "UnsupportedTopologyError",
    "validate_topology",
    # routing helpers
    "routing_by_name",
    "MisroutingTrigger",
    "__version__",
]
