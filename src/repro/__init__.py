"""Reproduction of "Efficient Routing Mechanisms for Dragonfly Networks"
(García, Vallejo, Beivide, Odriozola, Valero — ICPP 2013).

Public API quick tour::

    from repro import SimConfig, build_simulator
    from repro.traffic import BernoulliTraffic, UniformRandom

    cfg = SimConfig(h=2, routing="olm", flow_control="vct")
    sim = build_simulator(cfg, BernoulliTraffic(UniformRandom(), load=0.5))
    sim.run(2000)                       # warm up
    sim.stats.reset(sim.now)
    sim.run(2000)                       # measure
    print(sim.stats.mean_latency(), sim.stats.throughput(sim.topo.num_nodes, sim.now))

Routing mechanisms: ``minimal``, ``valiant``, ``pb`` (Piggybacking),
``par62`` (naïve PAR-6/2), ``rlm`` (Restricted Local Misrouting) and
``olm`` (Opportunistic Local Misrouting).
"""

from repro.core import ROUTING_REGISTRY, MisroutingTrigger, routing_by_name
from repro.network import (
    DeadlockError,
    SimConfig,
    Simulator,
    build_simulator,
)
from repro.topology import Dragonfly, validate_topology

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "Simulator",
    "build_simulator",
    "DeadlockError",
    "Dragonfly",
    "validate_topology",
    "ROUTING_REGISTRY",
    "routing_by_name",
    "MisroutingTrigger",
    "__version__",
]
