"""Shape verification: the paper's qualitative claims, checked on results.

The reproduction contract (DESIGN.md): absolute numbers move with scale
(the paper simulates h=8, the default harness h=2/3), but *who wins, by
roughly what factor, and where crossovers fall* must match.  This
module encodes each figure's headline claims as predicates over the
result records and renders EXPERIMENTS.md from them.
"""

from __future__ import annotations

from dataclasses import dataclass


def saturation(points) -> float:
    return max((p["throughput"] for p in points), default=0.0)


def low_load_latency(points) -> float:
    pts = sorted(points, key=lambda p: p["load"])
    return pts[0]["mean_latency"] if pts else float("nan")


def mean_drain(points) -> float:
    return sum(p["drain_cycles"] for p in points) / len(points)


@dataclass
class Claim:
    """One checkable statement derived from the paper."""

    text: str
    passed: bool
    detail: str

    def row(self) -> str:
        mark = "✅" if self.passed else "❌"
        return f"| {self.text} | {mark} | {self.detail} |"


def _sat_map(result) -> dict[str, float]:
    return {name: saturation(pts) for name, pts in result["series"].items()}


def _fmt_map(m: dict[str, float]) -> str:
    return ", ".join(f"{k}={v:.3f}" for k, v in m.items())


# ------------------------------------------------------------ claim checks
def check_vct_uniform(result) -> list[Claim]:
    sat = _sat_map(result)
    lat = {m: low_load_latency(p) for m, p in result["series"].items()}
    return [
        Claim("UN/VCT: misrouting mechanisms stay within ~5% of minimal "
              "(paper at h=8: slightly above; misrouting overhead is a larger "
              "fraction of capacity at reduced scale)",
              min(sat["par62"], sat["olm"], sat["rlm"]) >= 0.93 * sat["minimal"],
              _fmt_map(sat)),
        Claim("UN/VCT: OLM throughput within 5% of PAR-6/2 (paper: 'very similar')",
              sat["olm"] >= 0.95 * sat["par62"], _fmt_map(sat)),
        Claim("UN/VCT: all in-transit adaptive mechanisms beat PB",
              min(sat["par62"], sat["olm"], sat["rlm"]) >= sat["pb"] * 0.98,
              _fmt_map(sat)),
        Claim("UN/VCT: minimal has the lowest low-load latency (misrouting costs hops)",
              lat["minimal"] <= 1.25 * min(lat.values()),
              _fmt_map(lat)),
    ]


def check_vct_advg1(result) -> list[Claim]:
    sat = _sat_map(result)
    return [
        Claim("ADVG+1/VCT: in-transit adaptive >= Valiant",
              min(sat["par62"], sat["olm"], sat["rlm"]) >= 0.95 * sat["valiant"],
              _fmt_map(sat)),
        Claim("ADVG+1/VCT: in-transit adaptive >= PB",
              min(sat["par62"], sat["olm"], sat["rlm"]) >= 0.95 * sat["pb"],
              _fmt_map(sat)),
    ]


def check_vct_advgh(result) -> list[Claim]:
    sat = _sat_map(result)
    best_local = max(sat["par62"], sat["olm"], sat["rlm"])
    return [
        Claim("ADVG+h/VCT: local-misrouting mechanisms clearly beat Valiant",
              best_local > sat["valiant"], _fmt_map(sat)),
        Claim("ADVG+h/VCT: local-misrouting mechanisms beat PB",
              min(sat["par62"], sat["olm"], sat["rlm"]) > 0.95 * sat["pb"],
              _fmt_map(sat)),
    ]


def check_mixed(result, mechs=("par62", "olm", "rlm", "pb")) -> list[Claim]:
    series = result["series"]
    present = [m for m in mechs if m in series]
    ok_each = all(
        all(series[m][i]["throughput"] >= 0.85 * p["throughput"]
            for m in present if m != "pb")
        for i, p in enumerate(series["pb"])
    )
    at0 = {m: series[m][0]["throughput"] for m in present}
    return [
        Claim("Mixed: every local-misrouting mechanism >= PB at every mix point",
              ok_each, _fmt_map(at0) + " (values at 0% global)"),
        Claim("Mixed at 0% global (pure ADVL): misrouting mechanisms exceed PB",
              all(at0[m] > at0["pb"] for m in present if m != "pb"),
              _fmt_map(at0)),
    ]


def check_burst(result, *, olm_expected: float | None = 0.36,
                rlm_expected: float = 0.425) -> list[Claim]:
    series = result["series"]
    pb = mean_drain(series["pb"])
    claims = []
    if "olm" in series and olm_expected is not None:
        ratio = mean_drain(series["olm"]) / pb
        claims.append(Claim(
            f"Burst: OLM drains far faster than PB (paper ~{olm_expected:.0%} of PB's time)",
            ratio < 0.8, f"measured {ratio:.1%} of PB"))
    if "rlm" in series:
        ratio = mean_drain(series["rlm"]) / pb
        claims.append(Claim(
            f"Burst: RLM drains far faster than PB (paper ~{rlm_expected:.1%} of PB's time)",
            ratio < 0.85, f"measured {ratio:.1%} of PB"))
    return claims


def check_wh_uniform(result) -> list[Claim]:
    sat = _sat_map(result)
    return [
        Claim("UN/WH: PAR-6/2 leads the misrouting mechanisms and stays near "
              "minimal (paper at h=8: highest overall)",
              sat["par62"] >= max(sat["rlm"], sat["pb"]) * 0.98
              and sat["par62"] >= 0.85 * sat["minimal"],
              _fmt_map(sat)),
        Claim("UN/WH: RLM close to PB or better",
              sat["rlm"] >= 0.85 * sat["pb"], _fmt_map(sat)),
    ]


def check_wh_adv(result) -> list[Claim]:
    sat = _sat_map(result)
    return [
        Claim("ADVG/WH: RLM and PAR-6/2 above PB",
              min(sat["rlm"], sat["par62"]) >= 0.95 * sat["pb"], _fmt_map(sat)),
        Claim("ADVG/WH: RLM and PAR-6/2 above Valiant",
              min(sat["rlm"], sat["par62"]) >= 0.95 * sat["valiant"], _fmt_map(sat)),
    ]


def check_threshold_uniform(result) -> list[Claim]:
    sat = {name: saturation(pts) for name, pts in result["series"].items()}
    return [
        Claim("Fig 10: under UN, cautious thresholds do not lose to aggressive ones",
              sat["th=30%"] >= 0.95 * sat["th=60%"], _fmt_map(sat)),
    ]


def check_threshold_advg(result) -> list[Claim]:
    sat = {name: saturation(pts) for name, pts in result["series"].items()}
    return [
        Claim("Fig 11: under ADVG+1, aggressive thresholds pay off",
              sat["th=60%"] >= 0.95 * sat["th=30%"], _fmt_map(sat)),
        Claim("Fig 10/11: the paper's 45% stays near the best",
              sat["th=45%"] >= 0.9 * max(sat.values()), _fmt_map(sat)),
    ]


def mean_recovery(points) -> float:
    return sum(p["recovery_cycles"] for p in points) / len(points)


def check_burst_response(result) -> list[Claim]:
    series = result["series"]
    rec = {m: mean_recovery(pts) for m, pts in series.items()}
    adaptive = [m for m in ("par62", "olm", "rlm") if m in series]
    grows = all(
        pts[-1]["recovery_cycles"] >= pts[0]["recovery_cycles"]
        for pts in series.values()
    )
    # aggregate_replicas drops "recovered" when seed replicas disagree,
    # so a missing key means at least one replica failed to recover
    recovered = all(p.get("recovered", False) for m in adaptive for p in series[m])
    claims = [
        Claim("Transient: every adaptive mechanism absorbs the load step "
              "within the observation window",
              recovered, _fmt_map(rec) + " (mean recovery cycles)"),
        Claim("Transient: recovery time grows with the burst size "
              "(larger backlog, longer drain)",
              grows, _fmt_map(rec)),
    ]
    if "pb" in rec and adaptive:
        best = min(rec[m] for m in adaptive)
        claims.append(Claim(
            "Transient: the best local-misrouting mechanism recovers no "
            "slower than PB (§II: the escape/source-throttling designs "
            "hold congestion longest)",
            best <= 1.05 * rec["pb"],
            _fmt_map(rec)))
    return claims


def check_cross_topology(result) -> list[Claim]:
    """Shape checks of the cross-fabric figure (xtopo1).

    Fabric-independent physics, not paper claims: Valiant's doubled
    paths cannot beat minimal under uniform traffic, the one-hop
    complete graph has the lowest latency, and the torus — with ring
    bisection instead of complete graphs — saturates lowest.
    """
    series = result["series"]
    fabrics = sorted({name.split("/")[0] for name in series})
    sat = _sat_map(result)
    lat = {name: low_load_latency(pts) for name, pts in series.items()}
    lowest = {name: min(pts, key=lambda p: p["load"]) for name, pts in series.items()}
    tracks = all(
        p["throughput"] >= 0.85 * p["load"] for p in lowest.values()
    )
    return [
        Claim("xtopo: every fabric/mechanism pair routes deadlock-free and "
              "accepts ~the offered load at the lowest load point",
              min(sat.values()) > 0.05 and tracks, _fmt_map(sat)),
        Claim("xtopo: under UN, minimal saturates within 10% of Valiant or "
              "better on every fabric (obligatory misrouting never pays "
              "off for uniform traffic)",
              all(sat[f"{t}/minimal"] >= 0.9 * sat[f"{t}/valiant"]
                  for t in fabrics),
              _fmt_map(sat)),
        Claim("xtopo: the flattened butterfly (one-hop minimal paths over "
              "10-cycle links) has the lowest low-load latency",
              lat["flattened_butterfly/minimal"] <= min(lat.values()) * 1.05,
              _fmt_map(lat)),
        Claim("xtopo: the torus saturates below the high-radix fabrics "
              "(ring bisection vs complete graphs at matched node count)",
              sat["torus/minimal"] < min(sat["dragonfly/minimal"],
                                         sat["flattened_butterfly/minimal"]),
              _fmt_map(sat)),
    ]


def check_table1(result) -> list[Claim]:
    rows = result["series"]["parity-sign"]
    allowed = sum(r["allowed"] for r in rows)
    return [
        Claim("Table I: 10 allowed / 6 forbidden combinations, exactly as printed",
              len(rows) == 16 and allowed == 10,
              f"{allowed} allowed of {len(rows)}"),
    ]


#: figure id -> (checker, paper expectation text)
CHECKS = {
    "fig4a": (check_vct_uniform, "PAR-6/2 ≳ OLM ≳ RLM > minimal > PB; adaptive pays latency at low load"),
    "fig5a": (check_vct_uniform, "same sweep as 4a; paper: OLM +24.2% over PB under UN at h=8"),
    "fig4b": (check_vct_advg1, "adaptive saturate later than Valiant/PB"),
    "fig5b": (check_vct_advg1, "adaptive > Valiant > PB under ADVG+1"),
    "fig4c": (check_vct_advgh, "Valiant/PB capped near 1/h; adaptive well above"),
    "fig5c": (check_vct_advgh, "paper (h=8): PAR/OLM ≈0.35, RLM ≈0.3, Valiant/PB <0.125"),
    "fig6a": (check_mixed, "paper at 0% global: OLM/PAR 0.79, RLM 0.61, PB ≈0.5"),
    "fig6b": (check_burst, "paper: OLM ≈36%, RLM ≈42.5% of PB's drain time"),
    "fig7a": (check_wh_uniform, "PAR-6/2 best; RLM ≈ PB"),
    "fig8a": (check_wh_uniform, "same sweep as 7a"),
    "fig7b": (check_wh_adv, "RLM/PAR above PB and Valiant"),
    "fig8b": (check_wh_adv, "paper: PAR highest, RLM close"),
    "fig7c": (check_wh_adv, "gap to Valiant/PB grows for ADVG+h"),
    "fig8c": (check_wh_adv, "local misrouting required"),
    "fig9a": (lambda r: check_mixed(r, ("par62", "rlm", "pb")),
              "paper at 0%: PAR 0.59, RLM 0.54, PB 0.39; at 100%: 0.39/0.34/0.125"),
    "fig9b": (lambda r: check_burst(r, olm_expected=None, rlm_expected=0.43),
              "paper: RLM ≈43% of PB's drain time"),
    "fig10": (check_threshold_uniform, "low thresholds win under UN"),
    "fig11": (check_threshold_advg, "high thresholds win under ADVG+1; 45% balanced"),
    "tab1": (check_table1, "Table I regenerated exactly"),
    "xtopo1": (check_cross_topology,
               "not in the paper: the topology-agnostic engine routing the "
               "same minimal/Valiant baselines over three fabrics at "
               "matched node counts — fabric-independent orderings only"),
    "trans1": (check_burst_response,
               "not in the paper: §II's congestion dynamics as a time series "
               "— a burst stepped onto steady load drains fastest under "
               "local-misrouting mechanisms"),
}


def verify_result(result: dict) -> list[Claim]:
    """Run the registered shape checks for one experiment result."""
    checker, _ = CHECKS[result["id"]]
    return checker(result)


def render_experiments_md(results: dict[str, dict]) -> str:
    """Render EXPERIMENTS.md from a full set of experiment results."""
    scale = next((r.get("scale") for r in results.values()
                  if r.get("scale") not in (None, "n/a")), "tiny")
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Regenerated with `dragonfly-repro run all --scale {scale}` "
        "(the paper simulates h=8 with 16 512 nodes — see DESIGN.md §3 "
        "for the scale substitution).  Absolute values differ with "
        "scale; the checks below verify the paper's *qualitative* "
        "claims: orderings, factors, crossovers.",
        "",
        "Every record is produced through the public Session API — one "
        "sweep point is::",
        "",
        "    result = repro.session(cfg, pattern=..., load=...)"
        ".warmup(W).measure(M)",
        "",
        "and the tables below read the resulting `RunResult` fields "
        "(`throughput`, `mean_latency`, `drain_cycles`, ...).",
        "",
        "Sweeps execute through the declarative run-plan layer "
        "(`repro.runplan`): every figure expands into independent "
        "`RunPoint` jobs that can be fanned out over a process pool, "
        "cached and seed-replicated — `dragonfly-repro run all "
        "--jobs 4 --seeds 3 --cache .runcache` reproduces everything "
        "in parallel with mean ± 95% CI records.",
        "",
        "Each point runs on the timing-wheel cycle engine (PR 3: "
        "cycle-indexed event buckets, an active-router set and idle "
        "fast-forwarding).  The engine is byte-identical to the seed "
        "engine on a pinned golden matrix "
        "(`tests/test_engine_equivalence.py`), so these tables are "
        "engine-revision-independent; `tools/bench_engine.py` writes "
        "`BENCH_engine.json` with cycles/sec vs. the frozen seed hot "
        "path (2-3.5x on sparse scenarios, ~1.1-1.3x when saturated "
        "allocation dominates).",
        "",
        "Observability is event-driven (PR 4): instrumentation taps on "
        "the engine's event points (inject, grant/misroute, eject, "
        "credit, ring-entry) feed a `MetricsHub` of counters and "
        "cycle-bucketed series with JSONL export — free when detached, "
        "invisible when attached (`tools/bench_engine.py --tap` pins "
        "record equality).  Steady-state warm-up can be auto-detected "
        "(`Session.warmup_until_steady()`, a moving-window relative-"
        "precision rule), and the new `trans1` figure below is a "
        "*transient* scenario: a per-node packet burst stepped onto "
        "steady load, with `recovery_cycles` read off the bucketed "
        "throughput series.",
        "",
        "The engine is topology-agnostic (PR 5): three fabrics register "
        "out of the box — the paper's Dragonfly, a 1-D flattened "
        "butterfly and a 2-D torus — and baseline routing goes through "
        "each fabric's `min_hop` oracle (see `docs/ARCHITECTURE.md` and "
        "`docs/ADDING_A_TOPOLOGY.md`).  The `xtopo1` figure below runs "
        "the same minimal/Valiant mechanisms over all three fabrics at "
        "matched node counts.",
        "",
        "Beyond these shape checks, every record is verified against "
        "*physical invariants* (PR 10: `repro.analysis.invariants`) — "
        "flow conservation, Little's law, the paper's §II capacity "
        "bounds, serialization/minimal-hop latency floors, monotone "
        "counters and CI sanity: `dragonfly-repro verify-results "
        "results/` re-checks every table below, and `--live` re-runs "
        "an engine × fabric matrix under the full gate (see "
        "`docs/VERIFICATION.md`).",
        "",
    ]
    passed = failed = 0
    for exp_id in sorted(CHECKS):
        if exp_id not in results:
            continue
        result = results[exp_id]
        _, expectation = CHECKS[exp_id]
        lines.append(f"## {exp_id} — {result.get('description', '')}")
        lines.append("")
        lines.append(f"*Paper expectation*: {expectation}")
        lines.append("")
        lines.append("| claim | ok | measured |")
        lines.append("|---|---|---|")
        for claim in verify_result(result):
            lines.append(claim.row())
            passed += claim.passed
            failed += not claim.passed
        lines.append("")
        summary = _measured_summary(result)
        if summary:
            lines.append(summary)
            lines.append("")
    lines.insert(4, f"**{passed} shape checks pass, {failed} fail.**")
    lines.insert(5, "")
    return "\n".join(lines)


def _measured_summary(result: dict) -> str:
    first = next(iter(result["series"].values()))
    if not first:
        return ""
    if "recovery_cycles" in first[0]:
        rec = {m: mean_recovery(p) for m, p in result["series"].items()}
        return ("Mean recovery cycles after the load step: "
                + ", ".join(f"{k}={v:.0f}" for k, v in rec.items()))
    if "throughput" in first[0] and "load" in first[0]:
        sat = _sat_map(result)
        return "Saturation throughput: " + _fmt_map(sat)
    if "drain_cycles" in first[0]:
        drains = {m: mean_drain(p) for m, p in result["series"].items()}
        return ("Mean drain cycles: "
                + ", ".join(f"{k}={v:.0f}" for k, v in drains.items()))
    if "global_pct" in first[0]:
        sat = _sat_map(result)
        return "Max throughput over the mix sweep: " + _fmt_map(sat)
    return ""
