"""Text rendering and JSON persistence of experiment results."""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path


class ProgressPrinter:
    """Render scheduler ``PointOutcome`` events as one-line progress rows.

    Plugs straight into the ``on_result`` callback surface of
    :func:`~repro.runplan.execute_points` (the CLI's ``--progress``
    flag): each completed point prints its status (``cached`` /
    ``computed`` / ``retried`` / ``failed``), a short content-hash
    prefix, the point's seed and x-coordinate, and an ETA extrapolated
    from the completed-point rate so far.  Lines go to ``stderr`` so
    they never mix with result JSON on ``stdout``.
    """

    def __init__(self, stream=None, clock=time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started = None

    def _eta(self, completed: int, total: int) -> str:
        if self._started is None or not completed or completed >= total:
            return ""
        elapsed = self._clock() - self._started
        remaining = elapsed / completed * (total - completed)
        return f" eta={remaining:.0f}s"

    def __call__(self, outcome) -> None:
        if self._started is None:
            self._started = self._clock()
        point = outcome.point
        bits = [f"[{outcome.completed}/{outcome.total}]",
                f"{outcome.status:>8}", point.key()[:12],
                f"seed={point.config.seed}"]
        if point.load is not None:
            bits.append(f"load={point.load:g}")
        for name, value in point.coords:
            bits.append(f"{name}={value}")
        if outcome.attempts > 1:
            bits.append(f"attempts={outcome.attempts}")
        if outcome.error is not None:
            bits.append(f"error={outcome.error.error}")
        line = " ".join(bits) + self._eta(outcome.completed, outcome.total)
        print(line, file=self.stream, flush=True)


def save_result(result: dict, path: str | Path) -> None:
    """Write an experiment result to JSON (directories created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2, sort_keys=True))


def load_result(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "YES" if value else "NO"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}"
    return str(value)


def format_result(result: dict) -> str:
    """Render an experiment result as an aligned text table."""
    metric = result.get("metric", "throughput")
    lines = [f"# {result.get('id', '?')} — {result.get('description', '')}"
             f" [scale={result.get('scale', '?')}]"]
    for series_name, points in result["series"].items():
        lines.append(f"\n## {series_name}")
        if not points:
            continue
        if "second" in points[0]:  # Table I layout
            lines.append(f"{'first':>8} {'second':>8} | allowed")
            lines.append("-" * 28)
            for p in points:
                lines.append(f"{p['first']:>8} {p['second']:>8} | {_fmt(p['allowed'])}")
            continue
        x_key = _x_key(points[0])
        header = f"{x_key:>12} | {metric:>14}"
        lines.append(header)
        lines.append("-" * len(header))
        for p in points:
            lines.append(f"{_fmt(p.get(x_key)):>12} | {_fmt(p.get(metric)):>14}")
    return "\n".join(lines)


def _x_key(point: dict) -> str:
    for key in ("burst", "load", "global_pct", "first"):
        if key in point:
            return key
    return next(iter(point))


def summarize_saturation(result: dict) -> dict[str, float]:
    """Max accepted load per series — the headline numbers of Figs 5/8."""
    return {
        name: max((p.get("throughput", 0.0) for p in pts), default=0.0)
        for name, pts in result["series"].items()
    }
