"""One runner per evaluation element of the paper.

Figure pairs that share simulations (4a/5a are the latency and
throughput of the same sweep) are produced by a single runner; the
registry exposes per-figure ids that project the shared records.
"""

from __future__ import annotations

from repro.core.paritysign import CANONICAL_ORDER, TYPE_NAMES, build_allowed_table
from repro.experiments.presets import get_scale, preset_config
from repro.experiments.sweeps import burst_drain, load_sweep, mixed_sweep, threshold_sweep

#: mechanisms plotted per figure family (paper legend order)
VCT_UN_MECHS = ("par62", "olm", "rlm", "minimal", "pb")
VCT_ADV_MECHS = ("par62", "olm", "rlm", "valiant", "pb")
VCT_MIX_MECHS = ("par62", "olm", "rlm", "pb")
WH_UN_MECHS = ("par62", "rlm", "minimal", "pb")
WH_ADV_MECHS = ("par62", "rlm", "valiant", "pb")
WH_MIX_MECHS = ("par62", "rlm", "pb")

MIX_PERCENTAGES = (0, 20, 40, 60, 80, 100)
THRESHOLDS = (0.30, 0.40, 0.45, 0.50, 0.60)


def _sweep(mechs, preset: str, scale, pattern: str, loads, seed: int,
           workers: int = 1) -> dict:
    scale = get_scale(scale)
    loads = tuple(loads or _loads(scale, pattern))
    configs = {m: preset_config(preset, scale=scale, routing=m, seed=seed)
               for m in mechs}
    if workers and workers > 1:
        from repro.experiments.parallel import parallel_multi_sweep

        spec = [(m, configs[m], pattern) for m in mechs]
        series = parallel_multi_sweep(spec, loads, scale.warmup, scale.measure, workers)
    else:
        series = {
            mech: load_sweep(configs[mech], pattern, loads,
                             scale.warmup, scale.measure)
            for mech in mechs
        }
    return {"pattern": pattern, "scale": scale.name, "series": series}


def _loads(scale, pattern: str):
    return scale.loads_uniform if pattern == "uniform" else scale.loads_adversarial


# ------------------------------------------------------------ VCT (Figs 4/5)
def sweep_vct_uniform(scale="tiny", loads=None, seed=1, workers=1) -> dict:
    """Figures 4a + 5a: UN traffic, VCT."""
    return _sweep(VCT_UN_MECHS, "vct", scale, "uniform", loads, seed, workers)


def sweep_vct_advg1(scale="tiny", loads=None, seed=1, workers=1) -> dict:
    """Figures 4b + 5b: ADVG+1, VCT."""
    return _sweep(VCT_ADV_MECHS, "vct", scale, "advg+1", loads, seed, workers)


def sweep_vct_advgh(scale="tiny", loads=None, seed=1, workers=1) -> dict:
    """Figures 4c + 5c: ADVG+h, VCT (pathological local saturation)."""
    return _sweep(VCT_ADV_MECHS, "vct", scale, "advg+h", loads, seed, workers)


# ------------------------------------------------------------- WH (Figs 7/8)
def sweep_wh_uniform(scale="tiny", loads=None, seed=1, workers=1) -> dict:
    """Figures 7a + 8a: UN traffic, WH."""
    return _sweep(WH_UN_MECHS, "wh", scale, "uniform", loads, seed, workers)


def sweep_wh_advg1(scale="tiny", loads=None, seed=1, workers=1) -> dict:
    """Figures 7b + 8b: ADVG+1, WH."""
    return _sweep(WH_ADV_MECHS, "wh", scale, "advg+1", loads, seed, workers)


def sweep_wh_advgh(scale="tiny", loads=None, seed=1, workers=1) -> dict:
    """Figures 7c + 8c: ADVG+h, WH."""
    return _sweep(WH_ADV_MECHS, "wh", scale, "advg+h", loads, seed, workers)


# ------------------------------------------------ mixed + burst (Figs 6 / 9)
def mixed_vct(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1) -> dict:
    """Figure 6a: ADVG+h/ADVL+1 mix throughput at offered load 1.0, VCT."""
    scale = get_scale(scale)
    series = {
        mech: mixed_sweep(preset_config("vct", scale=scale, routing=mech, seed=seed),
                          percentages, 1.0, scale.warmup, scale.measure)
        for mech in VCT_MIX_MECHS
    }
    return {"pattern": "mixed", "scale": scale.name, "series": series}


def burst_vct(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1) -> dict:
    """Figure 6b: burst-consumption time under the ADVG/ADVL mix, VCT."""
    scale = get_scale(scale)
    series = {
        mech: burst_drain(preset_config("vct", scale=scale, routing=mech, seed=seed),
                          percentages, scale.burst_vct, scale.max_drain_cycles)
        for mech in VCT_MIX_MECHS
    }
    return {"pattern": "burst", "scale": scale.name, "series": series}


def mixed_wh(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1) -> dict:
    """Figure 9a: mix throughput, WH."""
    scale = get_scale(scale)
    series = {
        mech: mixed_sweep(preset_config("wh", scale=scale, routing=mech, seed=seed),
                          percentages, 1.0, scale.warmup, scale.measure)
        for mech in WH_MIX_MECHS
    }
    return {"pattern": "mixed", "scale": scale.name, "series": series}


def burst_wh(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1) -> dict:
    """Figure 9b: burst-consumption time, WH (payload matched to Fig 6b)."""
    scale = get_scale(scale)
    series = {
        mech: burst_drain(preset_config("wh", scale=scale, routing=mech, seed=seed),
                          percentages, scale.burst_wh, scale.max_drain_cycles)
        for mech in WH_MIX_MECHS
    }
    return {"pattern": "burst", "scale": scale.name, "series": series}


# ------------------------------------------------- thresholds (Figs 10 / 11)
def threshold_uniform(scale="tiny", thresholds=THRESHOLDS, seed=1, workers=1) -> dict:
    """Figure 10: RLM/VCT misrouting-threshold sweep under UN."""
    scale = get_scale(scale)
    cfg = preset_config("vct", scale=scale, routing="rlm", seed=seed)
    series = threshold_sweep(cfg, thresholds, "uniform", scale.loads_uniform,
                             scale.warmup, scale.measure)
    return {"pattern": "uniform", "scale": scale.name,
            "series": {f"th={int(th * 100)}%": pts for th, pts in series.items()}}


def threshold_advg1(scale="tiny", thresholds=THRESHOLDS, seed=1, workers=1) -> dict:
    """Figure 11: RLM/VCT misrouting-threshold sweep under ADVG+1."""
    scale = get_scale(scale)
    cfg = preset_config("vct", scale=scale, routing="rlm", seed=seed)
    series = threshold_sweep(cfg, thresholds, "advg+1", scale.loads_adversarial,
                             scale.warmup, scale.measure)
    return {"pattern": "advg+1", "scale": scale.name,
            "series": {f"th={int(th * 100)}%": pts for th, pts in series.items()}}


# ----------------------------------------------------------------- Table I
def table1(**_ignored) -> dict:
    """Table I: the parity-sign hop-combination table, regenerated."""
    table = build_allowed_table(CANONICAL_ORDER)
    rows = [
        {
            "first": TYPE_NAMES[t1],
            "second": TYPE_NAMES[t2],
            "allowed": table[t1][t2],
        }
        for t1 in range(4)
        for t2 in range(4)
    ]
    return {"pattern": "table1", "scale": "n/a", "series": {"parity-sign": rows}}
