"""One runner per evaluation element of the paper.

Figure pairs that share simulations (4a/5a are the latency and
throughput of the same sweep) are produced by a single runner; the
registry exposes per-figure ids that project the shared records.

Every runner builds a declarative run plan (:mod:`repro.runplan`) —
one :class:`~repro.runplan.RunSpec` per curve — and executes the whole
figure through a single executor pass, so ``workers > 1`` parallelises
across *all* curves at once, ``cache=`` replays already-computed points
and ``seeds > 1`` replicates every point and reports mean ± 95% CI.
"""

from __future__ import annotations

from repro.core.paritysign import CANONICAL_ORDER, TYPE_NAMES, build_allowed_table
from repro.experiments.presets import (
    XTOPO_TOPOLOGIES,
    cross_topology_config,
    get_scale,
    preset_config,
    preset_runspec,
)
from repro.runplan import (
    RunSpec,
    aggregate_replicas,
    execute,
    executor_for_jobs,
    replica_seeds,
    series_map,
)

#: mechanisms plotted per figure family (paper legend order)
VCT_UN_MECHS = ("par62", "olm", "rlm", "minimal", "pb")
VCT_ADV_MECHS = ("par62", "olm", "rlm", "valiant", "pb")
VCT_MIX_MECHS = ("par62", "olm", "rlm", "pb")
WH_UN_MECHS = ("par62", "rlm", "minimal", "pb")
WH_ADV_MECHS = ("par62", "rlm", "valiant", "pb")
WH_MIX_MECHS = ("par62", "rlm", "pb")

MIX_PERCENTAGES = (0, 20, 40, 60, 80, 100)
THRESHOLDS = (0.30, 0.40, 0.45, 0.50, 0.60)


class FigureInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-figure; ``partial`` holds the curves so far.

    A ``KeyboardInterrupt`` subclass, so existing interrupt handling
    (shells, test runners) is unchanged — but a consumer that wants the
    progressive results (the CLI emits them as a ``"partial": true``
    figure JSON) finds everything that landed before the interrupt,
    already aggregated and grouped per series.
    """

    def __init__(self, partial: dict) -> None:
        super().__init__("figure interrupted; partial records attached")
        self.partial = partial


def _figure(specs, scale, pattern: str, order, *, workers=1, seeds=1,
            cache=None, shard=None, on_result=None) -> dict:
    """Execute a figure's specs in one streaming pass, grouped per curve.

    Records are collected progressively through the scheduler's
    ``on_result`` stream (the user callback, if any, sees every
    :class:`~repro.runplan.PointOutcome` too), so an interrupt raises
    :class:`FigureInterrupted` carrying the partial figure instead of
    discarding the completed points — which are all checkpointed in
    ``cache`` anyway and replay for free on the next run.
    """
    landed: list[dict] = []

    def collect(outcome) -> None:
        if outcome.record is not None:
            landed.append(outcome.record)
        if on_result is not None:
            on_result(outcome)

    def shaped(records, *, partial: bool = False) -> dict:
        body = {"pattern": pattern, "scale": scale.name, "seeds": seeds,
                "series": series_map(records, order)}
        if partial:
            body["partial"] = True
        if shard is not None:
            body["shard"] = shard if isinstance(shard, str) else "/".join(
                str(x) for x in shard)
        return body

    try:
        records = execute(specs, executor=executor_for_jobs(workers),
                          jobs=workers, cache=cache, aggregate=seeds > 1,
                          shard=shard, on_result=collect)
    except KeyboardInterrupt as e:
        partial = aggregate_replicas(landed) if seeds > 1 else list(landed)
        raise FigureInterrupted(shaped(partial, partial=True)) from e
    return shaped(records)


def _sweep(mechs, preset: str, scale, pattern: str, loads, seed: int,
           workers: int = 1, seeds: int = 1, cache=None, shard=None,
           on_result=None) -> dict:
    scale = get_scale(scale)
    loads = tuple(loads) if loads is not None else None
    specs = [
        preset_runspec(preset, scale=scale, routing=mech, pattern=pattern,
                       loads=loads, seed=seed, seeds=seeds)
        for mech in mechs
    ]
    return _figure(specs, scale, pattern, mechs, workers=workers,
                   seeds=seeds, cache=cache, shard=shard, on_result=on_result)


# ------------------------------------------------------------ VCT (Figs 4/5)
def sweep_vct_uniform(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                      cache=None, shard=None, on_result=None) -> dict:
    """Figures 4a + 5a: UN traffic, VCT."""
    return _sweep(VCT_UN_MECHS, "vct", scale, "uniform", loads, seed,
                  workers, seeds, cache, shard, on_result)


def sweep_vct_advg1(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                    cache=None, shard=None, on_result=None) -> dict:
    """Figures 4b + 5b: ADVG+1, VCT."""
    return _sweep(VCT_ADV_MECHS, "vct", scale, "advg+1", loads, seed,
                  workers, seeds, cache, shard, on_result)


def sweep_vct_advgh(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                    cache=None, shard=None, on_result=None) -> dict:
    """Figures 4c + 5c: ADVG+h, VCT (pathological local saturation)."""
    return _sweep(VCT_ADV_MECHS, "vct", scale, "advg+h", loads, seed,
                  workers, seeds, cache, shard, on_result)


# ------------------------------------------------------------- WH (Figs 7/8)
def sweep_wh_uniform(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                     cache=None, shard=None, on_result=None) -> dict:
    """Figures 7a + 8a: UN traffic, WH."""
    return _sweep(WH_UN_MECHS, "wh", scale, "uniform", loads, seed,
                  workers, seeds, cache, shard, on_result)


def sweep_wh_advg1(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                   cache=None, shard=None, on_result=None) -> dict:
    """Figures 7b + 8b: ADVG+1, WH."""
    return _sweep(WH_ADV_MECHS, "wh", scale, "advg+1", loads, seed,
                  workers, seeds, cache, shard, on_result)


def sweep_wh_advgh(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                   cache=None, shard=None, on_result=None) -> dict:
    """Figures 7c + 8c: ADVG+h, WH."""
    return _sweep(WH_ADV_MECHS, "wh", scale, "advg+h", loads, seed,
                  workers, seeds, cache, shard, on_result)


# ------------------------------------------------ mixed + burst (Figs 6 / 9)
def _mixed_specs(mechs, preset: str, scale, percentages, seed, seeds):
    return [
        RunSpec(config=preset_config(preset, scale=scale, routing=mech, seed=seed),
                pattern=f"mixed:{pct}", loads=(1.0,),
                warmup=scale.warmup, measure=scale.measure,
                seeds=replica_seeds(seed, seeds),
                series=mech, coords=(("global_pct", pct),))
        for mech in mechs
        for pct in percentages
    ]


def _burst_specs(mechs, preset: str, scale, percentages, packets_per_node,
                 seed, seeds):
    return [
        RunSpec(config=preset_config(preset, scale=scale, routing=mech, seed=seed),
                pattern=f"mixed:{pct}", kind="drain",
                packets_per_node=packets_per_node,
                max_cycles=scale.max_drain_cycles,
                seeds=replica_seeds(seed, seeds),
                series=mech, coords=(("global_pct", pct),))
        for mech in mechs
        for pct in percentages
    ]


def mixed_vct(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1,
              seeds=1, cache=None, shard=None, on_result=None) -> dict:
    """Figure 6a: ADVG+h/ADVL+1 mix throughput at offered load 1.0, VCT."""
    scale = get_scale(scale)
    specs = _mixed_specs(VCT_MIX_MECHS, "vct", scale, percentages, seed, seeds)
    return _figure(specs, scale, "mixed", VCT_MIX_MECHS,
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


def burst_vct(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1,
              seeds=1, cache=None, shard=None, on_result=None) -> dict:
    """Figure 6b: burst-consumption time under the ADVG/ADVL mix, VCT."""
    scale = get_scale(scale)
    specs = _burst_specs(VCT_MIX_MECHS, "vct", scale, percentages,
                         scale.burst_vct, seed, seeds)
    return _figure(specs, scale, "burst", VCT_MIX_MECHS,
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


def mixed_wh(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1,
             seeds=1, cache=None, shard=None, on_result=None) -> dict:
    """Figure 9a: mix throughput, WH."""
    scale = get_scale(scale)
    specs = _mixed_specs(WH_MIX_MECHS, "wh", scale, percentages, seed, seeds)
    return _figure(specs, scale, "mixed", WH_MIX_MECHS,
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


def burst_wh(scale="tiny", percentages=MIX_PERCENTAGES, seed=1, workers=1,
             seeds=1, cache=None, shard=None, on_result=None) -> dict:
    """Figure 9b: burst-consumption time, WH (payload matched to Fig 6b)."""
    scale = get_scale(scale)
    specs = _burst_specs(WH_MIX_MECHS, "wh", scale, percentages,
                         scale.burst_wh, seed, seeds)
    return _figure(specs, scale, "burst", WH_MIX_MECHS,
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


# --------------------------------------------- transient burst response (new)
def burst_response(scale="tiny", bursts=None, seed=1, workers=1, seeds=1,
                   cache=None, shard=None, on_result=None) -> dict:
    """Transient burst response: recovery time after a load step, VCT.

    Not a paper figure — the congestion story of §II told as a time
    series: steady uniform traffic at the scale's base load, a
    per-node packet burst stepped on top, and the cycles until the
    throughput series settles back onto the pre-step baseline
    (``recovery_cycles``, via auto-detected steady state and the
    event-driven metrics hub), per mechanism and burst size.
    """
    scale = get_scale(scale)
    bursts = tuple(bursts) if bursts is not None else scale.trans_bursts
    specs = [
        RunSpec(config=preset_config("vct", scale=scale, routing=mech, seed=seed),
                pattern="uniform", kind="transient",
                loads=(scale.trans_load,),
                warmup=4 * scale.warmup,  # cap for the auto warm-up
                measure=scale.trans_measure,
                packets_per_node=n, bucket=scale.trans_bucket,
                seeds=replica_seeds(seed, seeds),
                series=mech, coords=(("burst", n),))
        for mech in VCT_MIX_MECHS
        for n in bursts
    ]
    return _figure(specs, scale, "uniform+burst", VCT_MIX_MECHS,
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


# ------------------------------------------------ cross-topology (new)
#: mechanisms compared on every fabric (the fabric-agnostic baselines)
XTOPO_MECHS = ("minimal", "valiant")


def cross_topology(scale="tiny", loads=None, seed=1, workers=1, seeds=1,
                   cache=None, shard=None, on_result=None) -> dict:
    """Cross-fabric comparison: throughput vs load per topology, VCT.

    Not a paper figure — the generality check of the topology-agnostic
    engine: the same minimal and Valiant mechanisms, routed through
    each fabric's ``min_hop`` oracle, under uniform traffic on a
    Dragonfly, a 1-D flattened butterfly and a 2-D torus sized to the
    *same node count* (see
    :func:`~repro.experiments.presets.cross_topology_config`).  One
    curve per (fabric, mechanism); records carry a ``topology``
    coordinate.
    """
    scale = get_scale(scale)
    loads = tuple(loads) if loads is not None else scale.loads_uniform
    order = [f"{topo}/{mech}" for topo in XTOPO_TOPOLOGIES
             for mech in XTOPO_MECHS]
    specs = [
        RunSpec(config=cross_topology_config(topo, scale=scale, routing=mech,
                                             seed=seed),
                pattern="uniform", loads=loads,
                warmup=scale.warmup, measure=scale.measure,
                seeds=replica_seeds(seed, seeds),
                series=f"{topo}/{mech}", coords=(("topology", topo),))
        for topo in XTOPO_TOPOLOGIES
        for mech in XTOPO_MECHS
    ]
    return _figure(specs, scale, "uniform", order,
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


# ------------------------------------------------- thresholds (Figs 10 / 11)
def _threshold_figure(scale, pattern: str, loads, thresholds, seed, workers,
                      seeds, cache, shard=None, on_result=None) -> dict:
    scale = get_scale(scale)
    labels = {th: f"th={int(th * 100)}%" for th in thresholds}
    specs = [
        RunSpec(config=preset_config("vct", scale=scale, routing="rlm",
                                     seed=seed).with_(threshold=th),
                pattern=pattern, loads=tuple(loads),
                warmup=scale.warmup, measure=scale.measure,
                seeds=replica_seeds(seed, seeds),
                series=labels[th], coords=(("threshold", th),))
        for th in thresholds
    ]
    return _figure(specs, scale, pattern, labels.values(),
                   workers=workers, seeds=seeds, cache=cache,
                   shard=shard, on_result=on_result)


def threshold_uniform(scale="tiny", thresholds=THRESHOLDS, seed=1, workers=1,
                      seeds=1, cache=None, shard=None, on_result=None) -> dict:
    """Figure 10: RLM/VCT misrouting-threshold sweep under UN."""
    return _threshold_figure(scale, "uniform", get_scale(scale).loads_uniform,
                             thresholds, seed, workers, seeds, cache,
                             shard, on_result)


def threshold_advg1(scale="tiny", thresholds=THRESHOLDS, seed=1, workers=1,
                    seeds=1, cache=None, shard=None, on_result=None) -> dict:
    """Figure 11: RLM/VCT misrouting-threshold sweep under ADVG+1."""
    return _threshold_figure(scale, "advg+1", get_scale(scale).loads_adversarial,
                             thresholds, seed, workers, seeds, cache,
                             shard, on_result)


# ----------------------------------------------------------------- Table I
def table1(**_ignored) -> dict:
    """Table I: the parity-sign hop-combination table, regenerated."""
    table = build_allowed_table(CANONICAL_ORDER)
    rows = [
        {
            "first": TYPE_NAMES[t1],
            "second": TYPE_NAMES[t2],
            "allowed": table[t1][t2],
        }
        for t1 in range(4)
        for t2 in range(4)
    ]
    return {"pattern": "table1", "scale": "n/a", "series": {"parity-sign": rows}}
