"""Sweep runners: one steady-state point, load sweeps, mixed sweeps, bursts.

Every runner is expressed as a declarative run plan
(:mod:`repro.runplan`): build the :class:`~repro.runplan.RunSpec` /
:class:`~repro.runplan.RunPoint` list, hand it to an executor.  The
default executor is ``serial``; callers that want parallelism, caching
or seed replication pass ``executor="process"`` / ``cache=...`` /
``seeds=...`` through the keyword surface.  Records are plain dicts
(JSON-serialisable) carrying the :class:`~repro.facade.RunResult`
fields plus the sweep coordinates (routing, pattern, load, seed, ...),
so the CLI, the benchmarks and EXPERIMENTS.md share one source of
numbers.
"""

from __future__ import annotations

from repro.facade import point_record as _record
from repro.facade import run_point as _facade_run_point
from repro.facade import session
from repro.network.config import SimConfig
from repro.runplan import (
    RunPoint,
    RunSpec,
    execute,
    execute_points,
    parse_shard,
    shard_points,
)
from repro.traffic.patterns import MixedGlobalLocal
from repro.traffic.processes import BernoulliTraffic, BurstTraffic


def run_point(config: SimConfig, pattern_spec: str, load: float,
              warmup: int, measure: int) -> dict:
    """One steady-state measurement: warm up, reset stats, measure."""
    return _facade_run_point(config, pattern_spec, load, warmup, measure)


def load_sweep(config: SimConfig, pattern_spec: str, loads, warmup: int,
               measure: int, *, executor="serial", jobs: int | None = None,
               cache=None, shard=None, on_result=None) -> list[dict]:
    """Offered-load sweep (one latency/throughput curve of Figs 4/5/7/8)."""
    spec = RunSpec(config=config, pattern=pattern_spec, loads=tuple(loads),
                   warmup=warmup, measure=measure)
    return execute(spec, executor=executor, jobs=jobs, cache=cache,
                   aggregate=False, shard=shard, on_result=on_result)


def mixed_sweep(config: SimConfig, percentages, load: float, warmup: int,
                measure: int, *, global_offset: int | None = None,
                executor="serial", jobs: int | None = None,
                cache=None, shard=None, on_result=None) -> list[dict]:
    """ADVG+h / ADVL+1 mix sweep at fixed offered load (Figs 6a/9a).

    The default ADVG offset is the config's ``h`` (the ``mixed:P`` spec
    grammar); pass ``global_offset`` to target a different group, which
    routes through a direct (non-plannable) traffic object.
    """
    if global_offset is not None and global_offset != config.h:
        out = []
        for pct in percentages:
            s = session(config)
            s.with_traffic(BernoulliTraffic(
                MixedGlobalLocal(pct / 100.0, global_offset), load))
            result = s.warmup(warmup).measure(measure)
            out.append(_record(result, config, pattern=f"mixed:{pct}",
                               load=load, global_pct=pct))
        return out
    points = [
        RunPoint(config=config, pattern=f"mixed:{pct}", load=load,
                 warmup=warmup, measure=measure, coords=(("global_pct", pct),))
        for pct in percentages
    ]
    return execute_points(points, executor=executor, jobs=jobs, cache=cache,
                          shard=shard, on_result=on_result)


def burst_drain(config: SimConfig, percentages, packets_per_node: int,
                max_cycles: int, *, global_offset: int | None = None,
                executor="serial", jobs: int | None = None,
                cache=None, shard=None, on_result=None) -> list[dict]:
    """Burst-consumption experiment (Figs 6b/9b): cycles to drain a burst."""
    if global_offset is not None and global_offset != config.h:
        out = []
        for pct in percentages:
            s = session(config)
            s.with_traffic(BurstTraffic(
                MixedGlobalLocal(pct / 100.0, global_offset), packets_per_node))
            result = s.drain(max_cycles)
            out.append(_record(result, config, pattern=f"mixed:{pct}",
                               packets_per_node=packets_per_node,
                               global_pct=pct))
        return out
    points = [
        RunPoint(config=config, pattern=f"mixed:{pct}", kind="drain",
                 packets_per_node=packets_per_node, max_cycles=max_cycles,
                 coords=(("global_pct", pct),))
        for pct in percentages
    ]
    return execute_points(points, executor=executor, jobs=jobs, cache=cache,
                          shard=shard, on_result=on_result)


def threshold_sweep(config: SimConfig, thresholds, pattern_spec: str, loads,
                    warmup: int, measure: int, *, executor="serial",
                    jobs: int | None = None, cache=None, shard=None,
                    on_result=None) -> dict[float, list[dict]]:
    """Misrouting-threshold sweep (Figs 10/11): one load sweep per threshold."""
    loads = tuple(loads)
    points = [
        RunPoint(config=config.with_(threshold=th), pattern=pattern_spec,
                 load=load, warmup=warmup, measure=measure,
                 coords=(("threshold", th),))
        for th in thresholds
        for load in loads
    ]
    flat = execute_points(points, executor=executor, jobs=jobs, cache=cache,
                          shard=shard, on_result=on_result)
    executed = points
    if shard is not None:
        index, count = (parse_shard(shard) if isinstance(shard, str)
                        else (int(shard[0]), int(shard[1])))
        executed = shard_points(points, index, count)
    out: dict[float, list[dict]] = {}
    for point, rec in zip(executed, flat):
        out.setdefault(point.coords[0][1], []).append(rec)
    return out


def saturation_throughput(points: list[dict]) -> float:
    """Maximum accepted load over a sweep (the 'saturation' headline number)."""
    return max((p["throughput"] for p in points), default=0.0)
