"""Sweep runners: one steady-state point, load sweeps, mixed sweeps, bursts.

Every runner drives the :mod:`repro.facade` Session API and returns
plain dict records (JSON-serialisable) so that the CLI, the benchmarks
and EXPERIMENTS.md share one source of numbers.  Records carry the
:class:`~repro.facade.RunResult` fields plus the sweep coordinates
(routing, pattern, load, ...).
"""

from __future__ import annotations

from repro.facade import session
from repro.network.config import SimConfig
from repro.traffic.patterns import MixedGlobalLocal
from repro.traffic.processes import BernoulliTraffic, BurstTraffic


def _record(result, config: SimConfig, **coords) -> dict:
    rec = result.to_dict()
    rec.update(flow_control=config.flow_control, h=config.h, **coords)
    return rec


def run_point(config: SimConfig, pattern_spec: str, load: float,
              warmup: int, measure: int) -> dict:
    """One steady-state measurement: warm up, reset stats, measure."""
    result = (session(config, pattern=pattern_spec, load=load)
              .warmup(warmup).measure(measure))
    return _record(result, config, routing=config.routing,
                   pattern=pattern_spec, load=load)


def load_sweep(config: SimConfig, pattern_spec: str, loads, warmup: int,
               measure: int) -> list[dict]:
    """Offered-load sweep (one latency/throughput curve of Figs 4/5/7/8)."""
    return [run_point(config, pattern_spec, load, warmup, measure) for load in loads]


def mixed_sweep(config: SimConfig, percentages, load: float, warmup: int,
                measure: int, *, global_offset: int | None = None) -> list[dict]:
    """ADVG+h / ADVL+1 mix sweep at fixed offered load (Figs 6a/9a)."""
    out = []
    for pct in percentages:
        s = session(config)
        off = s.sim.topo.h if global_offset is None else global_offset
        s.with_traffic(BernoulliTraffic(MixedGlobalLocal(pct / 100.0, off), load))
        result = s.warmup(warmup).measure(measure)
        out.append(_record(result, config, routing=config.routing,
                           pattern=f"mixed:{pct}", load=load, global_pct=pct))
    return out


def burst_drain(config: SimConfig, percentages, packets_per_node: int,
                max_cycles: int, *, global_offset: int | None = None) -> list[dict]:
    """Burst-consumption experiment (Figs 6b/9b): cycles to drain a burst."""
    out = []
    for pct in percentages:
        s = session(config)
        off = s.sim.topo.h if global_offset is None else global_offset
        s.with_traffic(BurstTraffic(MixedGlobalLocal(pct / 100.0, off),
                                    packets_per_node))
        result = s.drain(max_cycles)
        out.append({
            "routing": config.routing,
            "global_pct": pct,
            "packets_per_node": packets_per_node,
            "drain_cycles": result.drain_cycles,
            "delivered": result.delivered,
            "mean_latency": result.mean_latency,
            "latency_p99": result.latency_p99,
            "flow_control": config.flow_control,
            "h": config.h,
        })
    return out


def threshold_sweep(config: SimConfig, thresholds, pattern_spec: str, loads,
                    warmup: int, measure: int) -> dict[float, list[dict]]:
    """Misrouting-threshold sweep (Figs 10/11): one load sweep per threshold."""
    return {
        th: load_sweep(config.with_(threshold=th), pattern_spec, loads, warmup, measure)
        for th in thresholds
    }


def saturation_throughput(points: list[dict]) -> float:
    """Maximum accepted load over a sweep (the 'saturation' headline number)."""
    return max((p["throughput"] for p in points), default=0.0)
