"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.presets import SCALES, Scale
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.sweeps import (
    burst_drain,
    load_sweep,
    mixed_sweep,
    run_point,
    threshold_sweep,
)

__all__ = [
    "Scale",
    "SCALES",
    "EXPERIMENTS",
    "run_experiment",
    "run_point",
    "load_sweep",
    "mixed_sweep",
    "burst_drain",
    "threshold_sweep",
]
