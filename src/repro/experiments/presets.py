"""Scale presets.

The paper simulates the maximum well-balanced Dragonfly with ``h = 8``
(2 064 routers, 16 512 nodes).  A pure-Python cycle simulator cannot
sweep that in reasonable time, so experiments default to reduced scales
with identical router architecture and per-link parameters; DESIGN.md
§3 records the substitution.  ``paper`` is provided for completeness
(expect hours per point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import SimConfig, paper_vct_config, paper_wh_config
from repro.runplan import RunSpec, replica_seeds


@dataclass(frozen=True)
class Scale:
    """One experiment scale: network size and measurement windows."""

    name: str
    h: int
    warmup: int
    measure: int
    #: offered loads for uniform-traffic sweeps
    loads_uniform: tuple[float, ...]
    #: offered loads for adversarial sweeps
    loads_adversarial: tuple[float, ...]
    #: packets per node in the VCT burst experiment (paper: 1000)
    burst_vct: int
    #: packets per node in the WH burst experiment (paper: 89)
    burst_wh: int
    #: cap for drain experiments
    max_drain_cycles: int = 2_000_000
    #: base offered load of the transient burst-response figure
    trans_load: float = 0.3
    #: burst sizes (packets/node) stepped onto the base load
    trans_bursts: tuple[int, ...] = (5, 10, 20, 40)
    #: post-step observation window in cycles
    trans_measure: int = 6000
    #: series bucket width (cycles) for transient figures
    trans_bucket: int = 250


SCALES: dict[str, Scale] = {
    "tiny": Scale(
        name="tiny", h=2, warmup=2500, measure=2500,
        loads_uniform=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        loads_adversarial=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6),
        burst_vct=120, burst_wh=12,
    ),
    "smoke": Scale(
        name="smoke", h=2, warmup=800, measure=800,
        loads_uniform=(0.2, 0.5, 0.8),
        loads_adversarial=(0.1, 0.3, 0.5),
        burst_vct=20, burst_wh=3,
        trans_bursts=(4, 12), trans_measure=2500,
    ),
    "small": Scale(
        name="small", h=3, warmup=4000, measure=4000,
        loads_uniform=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        loads_adversarial=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5),
        burst_vct=60, burst_wh=8,
    ),
    "paper": Scale(
        name="paper", h=8, warmup=20000, measure=20000,
        loads_uniform=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
        loads_adversarial=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4),
        burst_vct=1000, burst_wh=89,
        max_drain_cycles=50_000_000,
        trans_bursts=(100, 250, 500, 1000), trans_measure=60_000,
        trans_bucket=1000,
    ),
}


def get_scale(name_or_scale) -> Scale:
    """Resolve a scale by name or pass an explicit :class:`Scale` through."""
    if isinstance(name_or_scale, Scale):
        return name_or_scale
    try:
        return SCALES[name_or_scale]
    except KeyError:
        raise ValueError(f"unknown scale {name_or_scale!r}; known: {sorted(SCALES)}") from None


#: flow-control regime -> paper-faithful config builder (§IV-A / §IV-B)
PRESET_CONFIGS = {
    "vct": paper_vct_config,
    "wh": paper_wh_config,
}


def preset_config(flow_control: str, *, scale, routing: str, seed: int = 1,
                  **over) -> "SimConfig":
    """Paper-faithful :class:`SimConfig` for one figure series.

    Combines a flow-control regime preset with a :class:`Scale` (which
    fixes ``h``), e.g. ``preset_config("vct", scale="tiny",
    routing="olm")``.
    """
    try:
        builder = PRESET_CONFIGS[flow_control]
    except KeyError:
        raise ValueError(
            f"unknown preset {flow_control!r}; known: {sorted(PRESET_CONFIGS)}"
        ) from None
    return builder(h=get_scale(scale).h, routing=routing, seed=seed, **over)


#: fabrics compared by the cross-topology figure (xtopo1)
XTOPO_TOPOLOGIES = ("dragonfly", "flattened_butterfly", "torus")


def _torus_dims(routers: int) -> tuple[int, int]:
    """Most-square ``rows x cols == routers`` factorisation, both >= 3."""
    best = None
    for rows in range(3, int(routers**0.5) + 1):
        if routers % rows == 0 and routers // rows >= 3:
            best = (rows, routers // rows)
    if best is None:
        raise ValueError(
            f"cannot factor {routers} routers into a rows x cols torus "
            "with both dimensions >= 3"
        )
    return best


def cross_topology_config(topology: str, *, scale, routing: str, seed: int = 1,
                          flow_control: str = "vct", **over) -> SimConfig:
    """Config for one fabric of the cross-topology comparison (xtopo1).

    All fabrics are sized to the *same node count* as the scale's
    canonical Dragonfly (``(2h^2+1) * 2h`` routers with ``p = h`` nodes
    each): the flattened butterfly gets that router count as one
    complete graph, the torus the most-square ``rows x cols``
    factorisation of it.  Link latencies, buffers and per-node load
    definitions are shared, so accepted-load curves are comparable.
    """
    scale = get_scale(scale)
    cfg = preset_config(flow_control, scale=scale, routing=routing, seed=seed,
                        **over)
    if topology == "dragonfly":
        return cfg
    routers = (2 * scale.h * scale.h + 1) * 2 * scale.h
    if topology == "flattened_butterfly":
        return cfg.with_(topology="flattened_butterfly", fb_routers=routers,
                         p=scale.h)
    if topology == "torus":
        rows, cols = _torus_dims(routers)
        return cfg.with_(topology="torus", torus_rows=rows, torus_cols=cols,
                         p=scale.h)
    # any other registered fabric: selected as-is, sized by its own
    # from_config defaults (raises UnknownComponentError when unknown)
    return cfg.with_(topology=topology)


def preset_runspec(flow_control: str, *, scale, routing: str, pattern: str,
                   loads=None, seed: int = 1, seeds: int = 1,
                   series: str | None = None, **over) -> RunSpec:
    """Declarative :class:`~repro.runplan.RunSpec` for one figure series.

    Combines :func:`preset_config` with the scale's measurement windows
    and load grid; ``seeds`` > 1 adds replica seeds ``seed .. seed+K-1``
    (aggregated into mean ± CI by the run-plan layer).
    """
    scale = get_scale(scale)
    if loads is None:
        loads = (scale.loads_uniform if pattern == "uniform"
                 else scale.loads_adversarial)
    return RunSpec(
        config=preset_config(flow_control, scale=scale, routing=routing,
                             seed=seed, **over),
        pattern=pattern, loads=tuple(loads),
        warmup=scale.warmup, measure=scale.measure,
        seeds=replica_seeds(seed, seeds),
        series=routing if series is None else series,
    )
