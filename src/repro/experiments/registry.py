"""Experiment registry: figure/table id -> runner + projection.

Latency and throughput figures that share a sweep point at the same
runner; the ``metric`` field says which column the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import figures


@dataclass(frozen=True)
class ExperimentSpec:
    """A reproducible element of the paper's evaluation."""

    id: str
    runner: Callable[..., dict]
    metric: str
    description: str


_SPECS = [
    ExperimentSpec("fig4a", figures.sweep_vct_uniform, "mean_latency",
                   "Latency vs offered load, UN, VCT (Fig 4a)"),
    ExperimentSpec("fig4b", figures.sweep_vct_advg1, "mean_latency",
                   "Latency vs offered load, ADVG+1, VCT (Fig 4b)"),
    ExperimentSpec("fig4c", figures.sweep_vct_advgh, "mean_latency",
                   "Latency vs offered load, ADVG+h, VCT (Fig 4c)"),
    ExperimentSpec("fig5a", figures.sweep_vct_uniform, "throughput",
                   "Accepted vs offered load, UN, VCT (Fig 5a)"),
    ExperimentSpec("fig5b", figures.sweep_vct_advg1, "throughput",
                   "Accepted vs offered load, ADVG+1, VCT (Fig 5b)"),
    ExperimentSpec("fig5c", figures.sweep_vct_advgh, "throughput",
                   "Accepted vs offered load, ADVG+h, VCT (Fig 5c)"),
    ExperimentSpec("fig6a", figures.mixed_vct, "throughput",
                   "Throughput vs %global (ADVG+h/ADVL+1), VCT (Fig 6a)"),
    ExperimentSpec("fig6b", figures.burst_vct, "drain_cycles",
                   "Burst consumption time vs %global, VCT (Fig 6b)"),
    ExperimentSpec("fig7a", figures.sweep_wh_uniform, "mean_latency",
                   "Latency vs offered load, UN, WH (Fig 7a)"),
    ExperimentSpec("fig7b", figures.sweep_wh_advg1, "mean_latency",
                   "Latency vs offered load, ADVG+1, WH (Fig 7b)"),
    ExperimentSpec("fig7c", figures.sweep_wh_advgh, "mean_latency",
                   "Latency vs offered load, ADVG+h, WH (Fig 7c)"),
    ExperimentSpec("fig8a", figures.sweep_wh_uniform, "throughput",
                   "Accepted vs offered load, UN, WH (Fig 8a)"),
    ExperimentSpec("fig8b", figures.sweep_wh_advg1, "throughput",
                   "Accepted vs offered load, ADVG+1, WH (Fig 8b)"),
    ExperimentSpec("fig8c", figures.sweep_wh_advgh, "throughput",
                   "Accepted vs offered load, ADVG+h, WH (Fig 8c)"),
    ExperimentSpec("fig9a", figures.mixed_wh, "throughput",
                   "Throughput vs %global (ADVG+h/ADVL+1), WH (Fig 9a)"),
    ExperimentSpec("fig9b", figures.burst_wh, "drain_cycles",
                   "Burst consumption time vs %global, WH (Fig 9b)"),
    ExperimentSpec("fig10", figures.threshold_uniform, "throughput",
                   "RLM threshold sweep, UN, VCT (Figs 10a/10b)"),
    ExperimentSpec("fig11", figures.threshold_advg1, "throughput",
                   "RLM threshold sweep, ADVG+1, VCT (Figs 11a/11b)"),
    ExperimentSpec("tab1", figures.table1, "allowed",
                   "Parity-sign hop combination table (Table I)"),
    ExperimentSpec("xtopo1", figures.cross_topology, "throughput",
                   "Accepted vs offered load per fabric (Dragonfly / "
                   "flattened butterfly / 2-D torus), minimal & Valiant "
                   "at matched node counts, UN, VCT"),
    ExperimentSpec("trans1", figures.burst_response, "recovery_cycles",
                   "Transient burst response: recovery time vs burst size "
                   "(load step, VCT; §II congestion dynamics)"),
]

EXPERIMENTS: dict[str, ExperimentSpec] = {s.id: s for s in _SPECS}

# Latency and throughput figures (4a/5a, 7b/8b, ...) share one runner; cache
# runner outputs per (runner, scale, seed) so `run all` simulates each sweep
# once.  Process-local and keyed on everything that affects the records.
_RUNNER_CACHE: dict[tuple, dict] = {}


def clear_cache() -> None:
    """Drop memoized runner results (tests and long-lived processes)."""
    _RUNNER_CACHE.clear()


def run_experiment(exp_id: str, scale="tiny", seed: int = 1, **kwargs) -> dict:
    """Run one registered experiment; returns its records plus metadata."""
    try:
        spec = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    if exp_id == "tab1":
        result = dict(spec.runner())
    else:
        scale_key = scale if isinstance(scale, str) else getattr(scale, "name", str(scale))
        # `on_result` is a live callback, not part of what the records
        # depend on — exclude it from the memo key (a `shard` stays in:
        # different shards really do produce different record sets).
        memo_kwargs = {k: v for k, v in kwargs.items() if k != "on_result"}
        key = (spec.runner.__name__, scale_key, seed,
               tuple(sorted(memo_kwargs.items())))
        if key not in _RUNNER_CACHE:
            _RUNNER_CACHE[key] = spec.runner(scale=scale, seed=seed, **kwargs)
        result = dict(_RUNNER_CACHE[key])
    result.update(id=exp_id, metric=spec.metric, description=spec.description)
    return result
