"""Minimal, dependency-free SVG line charts for experiment results.

matplotlib is deliberately not required (offline/cluster environments);
this renders the paper-style "metric vs offered load / %global" figures
as standalone SVG files.  It is intentionally small: line series,
markers, axes with tick labels, a legend — nothing more.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.experiments.reporting import _x_key

#: line colours per series, recycled when more series than colours
PALETTE = (
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#17becf", "#7f7f7f",
)
MARKERS = ("circle", "square", "diamond", "triangle", "cross")

WIDTH, HEIGHT = 640, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 160, 30, 55


def _finite(points):
    return [(x, y) for x, y in points
            if x is not None and y is not None
            and not (isinstance(y, float) and math.isnan(y))]


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] (a tiny Wilkinson-lite)."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(1, n)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12:
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _marker_svg(shape: str, x: float, y: float, color: str) -> str:
    s = 3.5
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{s}" fill="{color}"/>'
    if shape == "square":
        return (f'<rect x="{x - s:.1f}" y="{y - s:.1f}" width="{2 * s}" '
                f'height="{2 * s}" fill="{color}"/>')
    if shape == "diamond":
        return (f'<polygon points="{x},{y - s} {x + s},{y} {x},{y + s} {x - s},{y}" '
                f'fill="{color}"/>')
    if shape == "triangle":
        return (f'<polygon points="{x},{y - s} {x + s},{y + s} {x - s},{y + s}" '
                f'fill="{color}"/>')
    return (f'<path d="M{x - s},{y - s} L{x + s},{y + s} M{x - s},{y + s} '
            f'L{x + s},{y - s}" stroke="{color}" stroke-width="1.5"/>')


class LineChart:
    """Build and serialise one line chart."""

    def __init__(self, title: str, xlabel: str, ylabel: str) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.series: list[tuple[str, list[tuple[float, float]]]] = []

    def add_series(self, name: str, points) -> None:
        pts = _finite(points)
        if pts:
            self.series.append((name, sorted(pts)))

    # ------------------------------------------------------------ rendering
    def to_svg(self) -> str:
        if not self.series:
            raise ValueError("chart has no plottable series")
        xs = [x for _, pts in self.series for x, _ in pts]
        ys = [y for _, pts in self.series for _, y in pts]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1
        pad = 0.05 * (y_hi - y_lo or 1.0)
        y_lo, y_hi = y_lo - pad, y_hi + pad
        plot_w = WIDTH - MARGIN_L - MARGIN_R
        plot_h = HEIGHT - MARGIN_T - MARGIN_B

        def sx(x):
            return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y):
            return MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        out = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
            f'height="{HEIGHT}" font-family="Helvetica,Arial,sans-serif" '
            f'font-size="12">',
            f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
            f'<text x="{WIDTH / 2}" y="18" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{self.title}</text>',
        ]
        # axes box + grid + ticks
        out.append(
            f'<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="#333"/>'
        )
        for t in _nice_ticks(x_lo, x_hi):
            if not x_lo <= t <= x_hi:
                continue
            x = sx(t)
            out.append(f'<line x1="{x:.1f}" y1="{MARGIN_T}" x2="{x:.1f}" '
                       f'y2="{MARGIN_T + plot_h}" stroke="#ddd"/>')
            out.append(f'<text x="{x:.1f}" y="{MARGIN_T + plot_h + 16}" '
                       f'text-anchor="middle">{t:g}</text>')
        for t in _nice_ticks(y_lo, y_hi):
            if not y_lo <= t <= y_hi:
                continue
            y = sy(t)
            out.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
                       f'x2="{MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#ddd"/>')
            out.append(f'<text x="{MARGIN_L - 6}" y="{y + 4:.1f}" '
                       f'text-anchor="end">{t:g}</text>')
        out.append(
            f'<text x="{MARGIN_L + plot_w / 2}" y="{HEIGHT - 12}" '
            f'text-anchor="middle">{self.xlabel}</text>'
        )
        out.append(
            f'<text x="16" y="{MARGIN_T + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 16 {MARGIN_T + plot_h / 2})">{self.ylabel}</text>'
        )
        # series
        for i, (name, pts) in enumerate(self.series):
            color = PALETTE[i % len(PALETTE)]
            marker = MARKERS[i % len(MARKERS)]
            path = " ".join(
                f"{'M' if j == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
                for j, (x, y) in enumerate(pts)
            )
            out.append(f'<path d="{path}" fill="none" stroke="{color}" '
                       f'stroke-width="1.8"/>')
            for x, y in pts:
                out.append(_marker_svg(marker, sx(x), sy(y), color))
            ly = MARGIN_T + 14 + 18 * i
            lx = MARGIN_L + plot_w + 12
            out.append(f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 22}" '
                       f'y2="{ly - 4}" stroke="{color}" stroke-width="1.8"/>')
            out.append(_marker_svg(marker, lx + 11, ly - 4, color))
            out.append(f'<text x="{lx + 28}" y="{ly}">{name}</text>')
        out.append("</svg>")
        return "\n".join(out)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_svg())
        return path


def chart_from_result(result: dict) -> LineChart:
    """Turn a registry experiment result into a paper-style chart."""
    metric = result.get("metric", "throughput")
    ylabels = {
        "mean_latency": "Average latency (cycles)",
        "throughput": "Accepted load (phits/(node*cycle))",
        "drain_cycles": "Burst consumption time (cycles)",
        "recovery_cycles": "Recovery time after load step (cycles)",
    }
    first_series = next(iter(result["series"].values()))
    x_key = _x_key(first_series[0]) if first_series else "load"
    xlabels = {"load": "Offered load (phits/(node*cycle))",
               "global_pct": "Global traffic percentage (%)",
               "burst": "Burst size (packets/node)"}
    chart = LineChart(
        title=f"{result.get('id', '')}: {result.get('description', '')}",
        xlabel=xlabels.get(x_key, x_key),
        ylabel=ylabels.get(metric, metric),
    )
    for name, pts in result["series"].items():
        chart.add_series(name, [(p.get(x_key), p.get(metric)) for p in pts])
    return chart
