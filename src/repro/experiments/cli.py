"""Command-line interface.

Examples::

    dragonfly-repro list
    dragonfly-repro list-components
    dragonfly-repro run fig5c --scale tiny --seed 2
    dragonfly-repro run all --scale smoke --json-dir results/
    dragonfly-repro run fig5a --jobs 4 --seeds 3 --cache .runcache
    dragonfly-repro point --pattern advg+h --load 0.3 --config cfg.json
    dragonfly-repro sweep --routing olm --pattern uniform --loads 0.1,0.3,0.5 \\
        --jobs 4 --seeds 3 --cache .runcache
    dragonfly-repro verify-results results/
    dragonfly-repro verify-results --live --report verify.md
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_result, save_result


def _loads_list(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(tok) for tok in text.split(",") if tok.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--loads wants comma-separated floats, got {text!r}") from None


def _shard_arg(text: str) -> str:
    from repro.runplan import parse_shard

    try:
        parse_shard(text)
    except ValueError as e:
        raise argparse.ArgumentTypeError(str(e)) from None
    return text


def _add_plan_arguments(cmd: argparse.ArgumentParser) -> None:
    """Run-plan execution knobs shared by ``run`` and ``sweep``."""
    cmd.add_argument("--jobs", "--workers", type=int, default=1, dest="jobs",
                     help="process-pool size (1 = serial executor)")
    cmd.add_argument("--seeds", type=int, default=1,
                     help="seed replicas per point; >1 reports mean ± 95%% CI")
    cmd.add_argument("--cache", metavar="DIR",
                     help="content-addressed result cache directory "
                          "(hits are replayed instead of re-simulated)")
    cmd.add_argument("--shard", type=_shard_arg, metavar="I/N",
                     help="execute only shard I of N (deterministic partition "
                          "of the plan by content hash; run every shard with "
                          "a shared --cache, then merge — the cache union is "
                          "byte-identical to a serial run)")
    cmd.add_argument("--progress", action="store_true",
                     help="print one line per completed point to stderr "
                          "(status, content-hash prefix, seed, ETA)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="dragonfly-repro",
        description="Regenerate the tables and figures of García et al., ICPP 2013.",
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("list-components",
                   help="list every registered component (topologies, routings, "
                        "flow controls, arbiters, traffic) with descriptions")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--scale", default="tiny",
                     help="tiny (h=2, default) | smoke | small (h=3) | paper (h=8, slow)")
    run.add_argument("--seed", type=int, default=1)
    _add_plan_arguments(run)
    run.add_argument("--json", help="write the result to this JSON file")
    run.add_argument("--json-dir", help="write one JSON per experiment into this directory")
    run.add_argument("--svg-dir", help="render one SVG figure per experiment into this directory")
    run.add_argument("--verify", action="store_true",
                     help="run the physical-invariant verifier "
                          "(repro.analysis.invariants) over every generated "
                          "figure; exit 1 if any check fails")
    point = sub.add_parser(
        "point", help="run one steady-state point through the Session API")
    point.add_argument("--config",
                       help="SimConfig JSON file (see SimConfig.to_dict); "
                            "defaults apply when omitted")
    point.add_argument("--pattern", default="uniform",
                       help="traffic pattern spec (uniform, advg+h, mixed:40, "
                            "or any registered pattern name)")
    point.add_argument("--load", type=float, default=0.5,
                       help="offered load in phits/(node*cycle)")
    point.add_argument("--engine", default=None,
                       help="engine backend (wheel, array, auto, reference; "
                            "see list-components); default: the --config "
                            "file's engine, else wheel")
    point.add_argument("--warmup", type=int, default=2000)
    point.add_argument("--measure", type=int, default=2000)
    point.add_argument("--auto-warmup", action="store_true",
                       help="replace the blind warm-up with the auto "
                            "steady-state rule (--warmup becomes the cap)")
    point.add_argument("--series", type=int, metavar="BUCKET", default=None,
                       help="collect BUCKET-cycle time series over the "
                            "measurement window (throughput, latency "
                            "percentiles, occupancy, misroute rates)")
    point.add_argument("--probe", action="store_true",
                       help="include end-of-run occupancy and "
                            "injection-backlog snapshots in the payload")
    point.add_argument("--jsonl", metavar="FILE",
                       help="write the series record stream (meta/bucket/"
                            "summary rows) as JSONL; implies --series 250 "
                            "unless --series is given")
    point.add_argument("--json", help="write config + result JSON to this file")
    sweep = sub.add_parser(
        "sweep", help="run a declarative load sweep through the run-plan layer")
    sweep.add_argument("--config",
                       help="SimConfig JSON file; overrides --preset/--routing")
    sweep.add_argument("--preset", default="vct", choices=("vct", "wh"),
                       help="paper flow-control preset (default vct)")
    sweep.add_argument("--topology", default=None,
                       help="fabric (dragonfly default | flattened_butterfly "
                            "| torus | any registered topology), sized to "
                            "the scale's node count like the xtopo1 figure; "
                            "incompatible with --config")
    sweep.add_argument("--routing", default="olm",
                       help="routing mechanism (see list-components)")
    sweep.add_argument("--engine", default="auto",
                       help="engine backend for every point (default auto: "
                            "the numpy array core when the point qualifies, "
                            "the timing wheel otherwise — records and cache "
                            "keys are engine-invariant; overrides the "
                            "--config file's engine)")
    sweep.add_argument("--pattern", default="uniform",
                       help="traffic pattern spec (uniform, advg+h, mixed:40, ...)")
    sweep.add_argument("--loads", type=_loads_list,
                       help="comma-separated offered loads "
                            "(default: the scale's load grid)")
    sweep.add_argument("--scale", default="tiny",
                       help="scale preset fixing h and the measurement windows")
    sweep.add_argument("--warmup", type=int, help="override the scale's warm-up cycles")
    sweep.add_argument("--measure", type=int, help="override the scale's measure cycles")
    sweep.add_argument("--auto-warmup", action="store_true",
                       help="auto-detect steady state per point instead of "
                            "a blind warm-up (the warm-up cycles become a cap)")
    sweep.add_argument("--seed", type=int, default=None,
                       help="base seed (default: the --config file's seed, else 1)")
    _add_plan_arguments(sweep)
    sweep.add_argument("--executor",
                       help="executor name (default: 'process' when --jobs > 1, "
                            "else 'serial'; see repro.runplan.EXECUTOR_REGISTRY)")
    sweep.add_argument("--raw", action="store_true",
                       help="emit one record per seed instead of mean ± CI")
    sweep.add_argument("--json", help="write the sweep payload to this JSON file")
    serve = sub.add_parser(
        "serve", help="run the simulation service (HTTP API over the run-plan layer)",
        description="Serve simulations over HTTP: POST /v1/jobs submits a "
                    "point or RunSpec grid, GET /v1/jobs/{id}/stream follows "
                    "the live metrics rows as JSONL, and identical concurrent "
                    "submissions coalesce onto one execution (content-hash "
                    "dedupe).  Uses uvicorn when installed, else a bundled "
                    "stdlib server.  See docs/SERVICE.md.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000, help="bind port")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent content-addressed result cache, "
                            "shareable with offline 'run'/'sweep' --cache runs "
                            "(default: in-memory, lost on restart)")
    serve.add_argument("--workers", type=int, default=2,
                       help="simulation worker threads (jobs running at once)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="jobs allowed to wait; submissions beyond it are "
                            "rejected with HTTP 429")
    serve.add_argument("--job-timeout", type=float, default=300.0, metavar="SECONDS",
                       help="wall-clock budget per job before it is cancelled")
    serve.add_argument("--retry-after", type=int, default=2, metavar="SECONDS",
                       help="Retry-After header value on 429 responses")
    serve.add_argument("--bucket", type=int, default=250, metavar="CYCLES",
                       help="stream resolution for points without their own bucket")
    serve.add_argument("--max-points", type=int, default=512,
                       help="max run points one submission may expand to")
    serve.add_argument("--keep-jobs", type=int, default=256,
                       help="finished jobs retained for status/stream replay")
    serve.add_argument("--point-retries", type=int, default=1,
                       help="extra attempts per failing point before it is "
                            "quarantined into the job's point_errors")
    serve.add_argument("--verify", default="flow", choices=("flow", "full"),
                       help="per-point verification gate: 'flow' checks "
                            "flow conservation only, 'full' enforces the "
                            "whole physical-invariant set (Little's law, "
                            "bounds, occupancy); record bytes are identical "
                            "either way")
    vr = sub.add_parser(
        "verify-results",
        help="verify physical invariants over result JSON files (or live runs)",
        description="Prove result numbers are physically possible: flow "
                    "conservation, Little's law, capacity/bisection bounds, "
                    "latency floors, monotone counters and CI sanity over "
                    "every record of each figure payload (see "
                    "docs/VERIFICATION.md).  Prints a per-figure ✅/❌ "
                    "Markdown report; exits 0 when every check passes, 1 on "
                    "any failure, 2 on usage errors.")
    vr.add_argument("paths", nargs="*", default=["results"],
                    help="result JSON files or directories of them "
                         "(default: results/)")
    vr.add_argument("--tolerance", type=float, default=None,
                    help="relative tolerance for bound checks (default 0.05)")
    vr.add_argument("--fail-fast", action="store_true",
                    help="stop at the first result file with failures")
    vr.add_argument("--report", metavar="FILE",
                    help="also write the Markdown report to this file")
    vr.add_argument("--live", action="store_true",
                    help="additionally re-run a live engine × fabric matrix: "
                         "each combination runs twice (plain and instrumented "
                         "with the full invariant gate) and the two records "
                         "must be byte-identical")
    vr.add_argument("--engines", default="wheel,array,auto", metavar="LIST",
                    help="comma-separated engines for --live")
    vr.add_argument("--topologies", metavar="LIST",
                    default="dragonfly,flattened_butterfly,torus",
                    help="comma-separated fabrics for --live")
    vr.add_argument("--scale", default="smoke",
                    help="scale preset for --live runs (default smoke)")
    vr.add_argument("--load", type=float, default=0.3,
                    help="offered load for --live runs")
    cache = sub.add_parser(
        "cache", help="inspect or prune a result cache directory",
        description="Operate on the content-addressed result cache shared by "
                    "run/sweep --cache and serve --cache-dir: 'stats' reports "
                    "entry counts, bytes on disk and the last plan's hit "
                    "rate; 'prune' garbage-collects old entries while "
                    "protecting every key of a live plan.")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry count, bytes, last-run hit rate")
    stats.add_argument("dir", help="cache directory")
    prune = cache_sub.add_parser("prune", help="remove stale cache entries")
    prune.add_argument("dir", help="cache directory")
    prune.add_argument("--older-than", metavar="AGE",
                       help="remove entries older than AGE (e.g. 45s, 30m, "
                            "12h, 7d; a bare number means seconds)")
    prune.add_argument("--keep-keys", metavar="PLAN.json",
                       help="never remove a key this plan would replay "
                            "(a submission JSON: {\"points\": [...]} or "
                            "{\"spec\"/\"specs\": ...}, same schema as the "
                            "serve API)")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be removed without deleting")
    return p


def _list_components() -> None:
    from repro.registry import all_registries

    for kind, registry in all_registries().items():
        print(f"{kind}:")
        described = registry.describe()
        if not described:
            print("  (none registered)")
        for name, description in described.items():
            print(f"  {name:12} {description}")
        print()


def _sanitize(obj):
    """NaN (empty measurement window) is not valid strict JSON: emit null."""
    if isinstance(obj, float) and math.isnan(obj):
        return None
    if isinstance(obj, dict):
        return {k: _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_sanitize(v) for v in obj]
    return obj


def _run_point(args) -> int:
    from repro.facade import session
    from repro.network.config import SimConfig

    try:
        if args.config:
            config = SimConfig.from_dict(json.loads(Path(args.config).read_text()))
        else:
            config = SimConfig()
        if args.engine is not None:
            config = config.with_(engine=args.engine)
    except ValueError as e:  # unknown engine etc. — did-you-mean included
        print(f"error: {e}", file=sys.stderr)
        return 2
    s = session(config, pattern=args.pattern, load=args.load)
    if args.auto_warmup:
        s.warmup_until_steady(max_cycles=args.warmup)
    else:
        s.warmup(args.warmup)
    bucket = args.series if args.series is not None else (250 if args.jsonl else None)
    if bucket is not None:
        sr = s.measure_series(args.measure, bucket=bucket)
        result = sr.result
    else:
        sr = None
        result = s.measure(args.measure)
    payload = {
        "config": config.to_dict(),
        "pattern": args.pattern,
        "load": args.load,
        "result": _sanitize(result.to_dict()),
    }
    if args.auto_warmup:
        payload["auto_warmup"] = _sanitize(dict(s.auto_warmup))
    if sr is not None:
        payload["series"] = _sanitize({"bucket": sr.bucket,
                                       "start_cycle": sr.start_cycle,
                                       **sr.series})
    if args.probe:
        from repro.metrics.probes import injection_backlog, occupancy_snapshot

        payload["probe"] = _sanitize({
            "occupancy": occupancy_snapshot(s.sim),
            "injection_backlog": injection_backlog(s.sim),
        })
    if args.jsonl and sr is not None:
        from repro.metrics.hub import jsonl_line

        path = Path(args.jsonl)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {"pattern": args.pattern, "load": args.load,
                "config_hash": config.content_hash()}
        rows = [dict(sr.records[0], **meta)] + [dict(r) for r in sr.records[1:]]
        path.write_text("\n".join(jsonl_line(r) for r in rows) + "\n")
        payload["jsonl"] = str(path)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.json:
        save_result(payload, args.json)
    return 0


def _progress_callback(args):
    """The ``on_result`` hook the plan commands share (``--progress``)."""
    if not getattr(args, "progress", False):
        return None
    from repro.experiments.reporting import ProgressPrinter

    return ProgressPrinter()


def _print_plan_errors(exc) -> None:
    """Render a :class:`PlanExecutionError`'s quarantined points."""
    print(f"error: {exc}", file=sys.stderr)
    for err in exc.errors:
        detail = err.describe()
        print(f"  point {detail['index']} ({detail.get('key', '?')!s:.12}…): "
              f"{detail['error']}: {detail['message']} "
              f"[attempts={detail['attempts']}"
              f"{', worker death' if detail['worker_death'] else ''}]",
              file=sys.stderr)


def _run_sweep(args) -> int:
    from repro.experiments.presets import cross_topology_config, get_scale
    from repro.network.config import SimConfig
    from repro.runplan import (
        PlanExecutionError,
        RunSpec,
        aggregate_replicas,
        execute,
        executor_for_jobs,
        replica_seeds,
    )

    scale = get_scale(args.scale)
    try:
        if args.config:
            if args.topology is not None:
                raise ValueError(
                    "--config carries its own topology; pass one of "
                    "--config/--topology, not both"
                )
            config = SimConfig.from_dict(json.loads(Path(args.config).read_text()))
            if args.seed is not None:
                config = config.with_(seed=args.seed)
        else:
            config = cross_topology_config(
                args.topology or "dragonfly", scale=scale, routing=args.routing,
                seed=1 if args.seed is None else args.seed,
                flow_control=args.preset)
        config = config.with_(engine=args.engine)
    except ValueError as e:  # unknown engine etc. — did-you-mean included
        print(f"error: {e}", file=sys.stderr)
        return 2
    loads = args.loads or (scale.loads_uniform if args.pattern == "uniform"
                           else scale.loads_adversarial)
    spec = RunSpec(
        config=config, pattern=args.pattern, loads=tuple(loads),
        warmup=scale.warmup if args.warmup is None else args.warmup,
        measure=scale.measure if args.measure is None else args.measure,
        seeds=replica_seeds(config.seed, args.seeds),
        steady=args.auto_warmup,
        series=config.routing,
    )
    executor = args.executor or executor_for_jobs(args.jobs)
    aggregate = not args.raw and args.seeds > 1
    progress = _progress_callback(args)
    landed: list[dict] = []

    def collect(outcome) -> None:
        if outcome.record is not None:
            landed.append(outcome.record)
        if progress is not None:
            progress(outcome)

    def payload_for(records, *, partial: bool = False) -> dict:
        body = {
            "config": config.to_dict(),
            "pattern": spec.pattern,
            "loads": list(spec.loads),
            "warmup": spec.warmup,
            "measure": spec.measure,
            "seeds": list(spec.seeds),
            "auto_warmup": spec.steady,
            "executor": executor,
            "jobs": args.jobs,
            "records": records,
        }
        if args.shard is not None:
            body["shard"] = args.shard
        if partial:
            body["partial"] = True
        return _sanitize(body)

    try:
        records = execute(spec, executor=executor, jobs=args.jobs,
                          cache=args.cache, aggregate=aggregate,
                          shard=args.shard, on_result=collect)
    except KeyboardInterrupt:
        payload = payload_for(aggregate_replicas(landed) if aggregate
                              else list(landed), partial=True)
        print(json.dumps(payload, indent=2, sort_keys=True))
        if args.json:
            save_result(payload, args.json)
        print(f"interrupted: {len(landed)} point(s) completed and cached; "
              "rerun with the same --cache to resume", file=sys.stderr)
        return 130
    except PlanExecutionError as e:
        _print_plan_errors(e)
        return 1
    payload = payload_for(records)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.json:
        save_result(payload, args.json)
    return 0


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_age(text: str) -> float:
    """``45s`` / ``30m`` / ``12h`` / ``7d`` (bare numbers are seconds)."""
    text = text.strip()
    unit = 1.0
    if text and text[-1].lower() in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1].lower()]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise ValueError(
            f"bad --older-than value {text!r}: want AGE like 45s, 30m, "
            "12h, 7d or a bare number of seconds") from None
    if seconds < 0:
        raise ValueError("--older-than must be >= 0")
    return seconds


def _run_cache(args) -> int:
    from repro.runplan import ResultCache, plan_keys

    cache = ResultCache(args.dir)
    if args.cache_command == "stats":
        payload = {
            "root": str(cache.root),
            "entries": len(cache),
            "total_bytes": cache.total_bytes(),
            "last_run": cache.last_run_stats(),
        }
        print(json.dumps(_sanitize(payload), indent=2, sort_keys=True))
        return 0
    # prune
    try:
        older_than = (None if args.older_than is None
                      else _parse_age(args.older_than))
        keep = None
        if args.keep_keys:
            from repro.serve.protocol import parse_submission

            plan = json.loads(Path(args.keep_keys).read_text())
            keep = plan_keys(parse_submission(plan, max_points=1_000_000).points)
        summary = cache.prune(older_than=older_than, keep=keep,
                              dry_run=args.dry_run)
    except (ValueError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _run_serve(args) -> int:
    from repro.serve import ServeSettings, create_app

    try:
        if not 1 <= args.port <= 65535:
            raise ValueError(f"--port must be between 1 and 65535 (got {args.port})")
        settings = ServeSettings(
            cache_dir=args.cache_dir, workers=args.workers,
            queue_limit=args.queue_limit, job_timeout=args.job_timeout,
            retry_after=args.retry_after, bucket=args.bucket,
            max_points=args.max_points, keep_jobs=args.keep_jobs,
            point_retries=args.point_retries, verify=args.verify)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    app = create_app(settings)
    try:
        import uvicorn
    except ImportError:
        from repro.serve.httpd import run

        run(app, args.host, args.port)
    else:  # pragma: no cover - uvicorn not in the pinned environment
        uvicorn.run(app, host=args.host, port=args.port)
    return 0


def _result_files(paths: list[str]) -> list[Path]:
    """Expand verify-results path arguments to result JSON files.

    Raises ``ValueError`` with an actionable message (exit 2 material)
    for a missing path or a directory with nothing to verify.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.glob("*.json"))
            if not found:
                raise ValueError(
                    f"no *.json result files in directory {path}; "
                    "generate some with 'run all --json-dir' first")
            files.extend(found)
        elif path.is_file():
            files.append(path)
        else:
            raise ValueError(
                f"no such file or directory: {path} — pass result JSON "
                "files or a directory of them (default: results/)")
    return files


def _load_result(path: Path) -> dict:
    """One figure payload from disk, validated enough to verify.

    Unknown figure ids are rejected (exit 2): an id outside the
    experiment registry means the file is not a result this tool knows
    how to interpret, not a failing result.
    """
    try:
        result = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        raise ValueError(f"{path} is not valid JSON ({e}); was the file "
                         "truncated by an interrupted run?") from None
    if not isinstance(result, dict):
        raise ValueError(f"{path} does not hold a result object "
                         "(got a JSON " + type(result).__name__ + ")")
    figure = result.get("id")
    if figure not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(
            f"{path}: unknown figure id {figure!r}; known ids: {known} "
            "(is this a sweep/point payload rather than a figure result?)")
    return result


def _verify_live_matrix(engines, topologies, *, scale_name: str, load: float,
                        tolerance: float) -> list:
    """Re-run an engine × fabric matrix under the live invariant gate.

    Each combination runs the same steady point twice — plain, and
    instrumented with the full invariant set enforced — and the two
    records must be byte-identical (the observation-only guarantee the
    whole shared cache rests on).  Returns one
    :class:`~repro.analysis.invariants.ResultReport` per combination.
    """
    from repro.analysis.invariants import InvariantViolation, verify_result
    from repro.experiments.presets import cross_topology_config, get_scale
    from repro.facade import run_point
    from repro.runplan.cache import canonical_record_json

    scale = get_scale(scale_name)
    # ≥4 completed default-width buckets so Little's law actually applies
    measure = max(scale.measure, 1000)
    reports = []
    for topo in topologies:
        for engine in engines:
            label = f"{topo}/{engine}"
            config = cross_topology_config(
                topo, scale=scale, routing="minimal").with_(engine=engine)
            plain = run_point(config, "uniform", load, scale.warmup, measure)
            gate_failures: list[dict] = []
            checked = None
            try:
                checked = run_point(config, "uniform", load, scale.warmup,
                                    measure, verify=True)
            except InvariantViolation as e:
                gate_failures = [
                    {"record": label, **c}
                    for c in e.report.get("checks", ())
                    if not c.get("ok", True)]
            payload = {
                "id": f"live:{label}",
                "description": (f"live re-run, scale {scale_name}, uniform "
                                f"load {load:g}, engine {engine}"),
                "series": {label: [plain]},
            }
            report = verify_result(payload, tolerance=tolerance)
            report.failures.extend(gate_failures)
            if checked is not None and (canonical_record_json(plain)
                                        != canonical_record_json(checked)):
                report.failures.append({
                    "record": label, "check": "record_identity", "ok": False,
                    "lhs": None, "rhs": None,
                    "detail": "instrumented (verified) record differs from "
                              "the plain run — observation changed the "
                              "measurement"})
            reports.append(report)
    return reports


def _run_verify_results(args) -> int:
    from repro.analysis.invariants import (
        DEFAULT_TOLERANCE,
        render_markdown,
        verify_result,
    )

    tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    if tolerance < 0:
        print(f"error: --tolerance must be >= 0 (got {tolerance})",
              file=sys.stderr)
        return 2
    reports = []
    try:
        for path in _result_files(args.paths):
            report = verify_result(_load_result(path), tolerance=tolerance)
            reports.append(report)
            if args.fail_fast and not report.ok:
                break
        if args.live and not (args.fail_fast
                              and any(not r.ok for r in reports)):
            engines = [t for t in args.engines.split(",") if t.strip()]
            topologies = [t for t in args.topologies.split(",") if t.strip()]
            reports.extend(_verify_live_matrix(
                engines, topologies, scale_name=args.scale, load=args.load,
                tolerance=tolerance))
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    markdown = render_markdown(reports, tolerance=tolerance)
    print(markdown, end="")
    if args.report:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(markdown)
    failures = sum(len(r.failures) for r in reports)
    if failures:
        print(f"verify-results: {failures} invariant check(s) failed",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.id:8} {spec.description}")
        return 0
    if args.command == "list-components":
        _list_components()
        return 0
    if args.command == "point":
        return _run_point(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "verify-results":
        return _run_verify_results(args)
    from repro.experiments.figures import FigureInterrupted
    from repro.runplan import PlanExecutionError

    progress = _progress_callback(args)
    kwargs = {}
    if args.shard is not None:
        kwargs["shard"] = args.shard
    if progress is not None:
        kwargs["on_result"] = progress
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    verify_reports = []
    for exp_id in ids:
        try:
            result = run_experiment(exp_id, scale=args.scale, seed=args.seed,
                                    workers=args.jobs, seeds=args.seeds,
                                    cache=args.cache, **kwargs)
        except FigureInterrupted as e:
            result = dict(e.partial, id=exp_id)
            target = (args.json if args.json and len(ids) == 1
                      else (f"{args.json_dir.rstrip('/')}/{exp_id}.partial.json"
                            if args.json_dir else None))
            if target:
                save_result(result, target)
                print(f"interrupted: partial figure saved to {target}; "
                      "completed points are cached", file=sys.stderr)
            else:
                print("interrupted: completed points are cached — rerun "
                      "with the same --cache to resume", file=sys.stderr)
            return 130
        except PlanExecutionError as e:
            _print_plan_errors(e)
            return 1
        print(format_result(result))
        print()
        if args.verify:
            from repro.analysis.invariants import verify_result

            verify_reports.append(verify_result(result))
        if args.json and len(ids) == 1:
            save_result(result, args.json)
        if args.json_dir:
            save_result(result, f"{args.json_dir.rstrip('/')}/{exp_id}.json")
        if args.svg_dir and exp_id != "tab1":
            from repro.experiments.svgplot import chart_from_result

            chart_from_result(result).save(f"{args.svg_dir.rstrip('/')}/{exp_id}.svg")
    if verify_reports:
        from repro.analysis.invariants import render_markdown

        print(render_markdown(verify_reports,
                              title="Invariant verification (run --verify)"),
              end="", file=sys.stderr)
        if any(not r.ok for r in verify_reports):
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
