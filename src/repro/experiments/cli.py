"""Command-line interface.

Examples::

    dragonfly-repro list
    dragonfly-repro list-components
    dragonfly-repro run fig5c --scale tiny --seed 2
    dragonfly-repro run tab1
    dragonfly-repro run all --scale smoke --json-dir results/
    dragonfly-repro point --pattern advg+h --load 0.3 --config cfg.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_result, save_result


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="dragonfly-repro",
        description="Regenerate the tables and figures of García et al., ICPP 2013.",
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("list-components",
                   help="list every registered component (topologies, routings, "
                        "flow controls, arbiters, traffic) with descriptions")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--scale", default="tiny",
                     help="tiny (h=2, default) | smoke | small (h=3) | paper (h=8, slow)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool size for load sweeps (1 = serial)")
    run.add_argument("--json", help="write the result to this JSON file")
    run.add_argument("--json-dir", help="write one JSON per experiment into this directory")
    run.add_argument("--svg-dir", help="render one SVG figure per experiment into this directory")
    point = sub.add_parser(
        "point", help="run one steady-state point through the Session API")
    point.add_argument("--config",
                       help="SimConfig JSON file (see SimConfig.to_dict); "
                            "defaults apply when omitted")
    point.add_argument("--pattern", default="uniform",
                       help="traffic pattern spec (uniform, advg+h, mixed:40, "
                            "or any registered pattern name)")
    point.add_argument("--load", type=float, default=0.5,
                       help="offered load in phits/(node*cycle)")
    point.add_argument("--warmup", type=int, default=2000)
    point.add_argument("--measure", type=int, default=2000)
    point.add_argument("--json", help="write config + result JSON to this file")
    return p


def _list_components() -> None:
    from repro.registry import all_registries

    for kind, registry in all_registries().items():
        print(f"{kind}:")
        described = registry.describe()
        if not described:
            print("  (none registered)")
        for name, description in described.items():
            print(f"  {name:12} {description}")
        print()


def _run_point(args) -> None:
    import math

    from repro.facade import session
    from repro.network.config import SimConfig

    if args.config:
        config = SimConfig.from_dict(json.loads(Path(args.config).read_text()))
    else:
        config = SimConfig()
    result = (session(config, pattern=args.pattern, load=args.load)
              .warmup(args.warmup).measure(args.measure))
    payload = {
        "config": config.to_dict(),
        "pattern": args.pattern,
        "load": args.load,
        # NaN (empty measurement window) is not valid JSON: emit null
        "result": {k: None if isinstance(v, float) and math.isnan(v) else v
                   for k, v in result.to_dict().items()},
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.json:
        save_result(payload, args.json)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.id:8} {spec.description}")
        return 0
    if args.command == "list-components":
        _list_components()
        return 0
    if args.command == "point":
        _run_point(args)
        return 0
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        result = run_experiment(exp_id, scale=args.scale, seed=args.seed,
                                workers=args.workers)
        print(format_result(result))
        print()
        if args.json and len(ids) == 1:
            save_result(result, args.json)
        if args.json_dir:
            save_result(result, f"{args.json_dir.rstrip('/')}/{exp_id}.json")
        if args.svg_dir and exp_id != "tab1":
            from repro.experiments.svgplot import chart_from_result

            chart_from_result(result).save(f"{args.svg_dir.rstrip('/')}/{exp_id}.svg")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
