"""Command-line interface.

Examples::

    dragonfly-repro list
    dragonfly-repro run fig5c --scale tiny --seed 2
    dragonfly-repro run tab1
    dragonfly-repro run all --scale smoke --json-dir results/
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_result, save_result


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="dragonfly-repro",
        description="Regenerate the tables and figures of García et al., ICPP 2013.",
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--scale", default="tiny",
                     help="tiny (h=2, default) | smoke | small (h=3) | paper (h=8, slow)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool size for load sweeps (1 = serial)")
    run.add_argument("--json", help="write the result to this JSON file")
    run.add_argument("--json-dir", help="write one JSON per experiment into this directory")
    run.add_argument("--svg-dir", help="render one SVG figure per experiment into this directory")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.id:8} {spec.description}")
        return 0
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        result = run_experiment(exp_id, scale=args.scale, seed=args.seed,
                                workers=args.workers)
        print(format_result(result))
        print()
        if args.json and len(ids) == 1:
            save_result(result, args.json)
        if args.json_dir:
            save_result(result, f"{args.json_dir.rstrip('/')}/{exp_id}.json")
        if args.svg_dir and exp_id != "tab1":
            from repro.experiments.svgplot import chart_from_result

            chart_from_result(result).save(f"{args.svg_dir.rstrip('/')}/{exp_id}.svg")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
