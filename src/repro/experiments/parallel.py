"""Parallel execution of independent simulation points (compat surface).

Thin wrappers over the :mod:`repro.runplan` subsystem, kept for callers
written against the original tuple-based API.  New code should build
:class:`~repro.runplan.RunSpec` plans and call
:func:`repro.runplan.execute` directly — that adds caching and seed
replication on top of the same executors.

Determinism is preserved: a point's result depends only on its
``(config, pattern, load)`` tuple, never on which worker ran it —
tested in ``tests/test_parallel.py`` and ``tests/test_runplan.py``.
"""

from __future__ import annotations

from repro.network.config import SimConfig
from repro.runplan import RunPoint, execute_points
from repro.runplan.executors import default_workers, executor_for_jobs

__all__ = ["default_workers", "run_points", "parallel_load_sweep",
           "parallel_multi_sweep"]


def run_points(tasks, workers: int | None = None) -> list[dict]:
    """Run ``(config, pattern, load, warmup, measure)`` tasks, possibly in parallel.

    Results come back in task order.  ``workers=1`` (or a single task)
    runs inline — handy under profilers and in tests.
    """
    points = [
        RunPoint(config=config, pattern=pattern, load=load,
                 warmup=warmup, measure=measure)
        for config, pattern, load, warmup, measure in tasks
    ]
    workers = default_workers() if workers is None else workers
    return execute_points(points, executor=executor_for_jobs(workers),
                          jobs=workers)


def parallel_load_sweep(config: SimConfig, pattern_spec: str, loads,
                        warmup: int, measure: int,
                        workers: int | None = None) -> list[dict]:
    """Drop-in parallel replacement for :func:`repro.experiments.sweeps.load_sweep`."""
    tasks = [(config, pattern_spec, load, warmup, measure) for load in loads]
    return run_points(tasks, workers)


def parallel_multi_sweep(configs_and_patterns, loads, warmup: int, measure: int,
                         workers: int | None = None) -> dict[str, list[dict]]:
    """Sweep several (name, config, pattern) series at once over one pool."""
    series = list(configs_and_patterns)
    loads = list(loads)
    tasks = [
        (cfg, pattern, load, warmup, measure)
        for _, cfg, pattern in series
        for load in loads
    ]
    flat = run_points(tasks, workers)
    out: dict[str, list[dict]] = {}
    i = 0
    for name, _, _ in series:
        out[name] = flat[i:i + len(loads)]
        i += len(loads)
    return out
