"""Parallel execution of independent simulation points.

Every sweep point is a self-contained simulation (own topology, own
RNGs), so sweeps are embarrassingly parallel; this module fans them out
over a process pool.  Determinism is preserved: a point's result
depends only on its ``(config, pattern, load)`` tuple, never on which
worker ran it — tested in ``tests/test_parallel.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.sweeps import run_point
from repro.network.config import SimConfig


def default_workers() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


def _run_point_task(task) -> dict:
    config, pattern_spec, load, warmup, measure = task
    return run_point(config, pattern_spec, load, warmup, measure)


def run_points(tasks, workers: int | None = None) -> list[dict]:
    """Run ``(config, pattern, load, warmup, measure)`` tasks, possibly in parallel.

    Results come back in task order.  ``workers=1`` (or a single task)
    runs inline — handy under profilers and in tests.
    """
    tasks = list(tasks)
    workers = default_workers() if workers is None else workers
    if workers <= 1 or len(tasks) <= 1:
        return [_run_point_task(t) for t in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as ex:
        return list(ex.map(_run_point_task, tasks))


def parallel_load_sweep(config: SimConfig, pattern_spec: str, loads,
                        warmup: int, measure: int,
                        workers: int | None = None) -> list[dict]:
    """Drop-in parallel replacement for :func:`repro.experiments.sweeps.load_sweep`."""
    tasks = [(config, pattern_spec, load, warmup, measure) for load in loads]
    return run_points(tasks, workers)


def parallel_multi_sweep(configs_and_patterns, loads, warmup: int, measure: int,
                         workers: int | None = None) -> dict[str, list[dict]]:
    """Sweep several (name, config, pattern) series at once over one pool."""
    series = list(configs_and_patterns)
    tasks = [
        (cfg, pattern, load, warmup, measure)
        for _, cfg, pattern in series
        for load in loads
    ]
    flat = run_points(tasks, workers)
    out: dict[str, list[dict]] = {}
    i = 0
    for name, _, _ in series:
        out[name] = flat[i:i + len(list(loads))]
        i += len(list(loads))
    return out
