"""Packets and flits.

A packet carries its routing state (Valiant commitment, hop counters,
per-group misrouting bookkeeping) so that *on-the-fly* adaptive
mechanisms can revisit the routing decision at every hop, as in the
paper.  ``valiant_group`` holds the fabric-defined Valiant
intermediate token (a group id on the Dragonfly, a router id on the
flat fabrics — see ``Topology.pick_via``).  Under VCT a packet is a
single flit of ``size_phits`` phits; under Wormhole it is split into
fixed-size flits.
"""

from __future__ import annotations


class Packet:
    """A network packet plus its in-flight routing state."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size_phits",
        "birth",
        "dst_router",
        "dst_group",
        "src_router",
        "src_group",
        # routing state
        "valiant_group",
        "via_done",
        "committed",
        "g_hops",
        "local_hops_group",
        "local_hops_total",
        "misrouted_group",
        "prev_local_type",
        "last_local_vc",
        "mode",
        # instrumentation
        "hops_log",
        "delivered_cycle",
        "local_misroutes",
        "global_misrouted",
    )

    def __init__(self, pid: int, src: int, dst: int, size_phits: int, birth: int,
                 src_router: int, src_group: int, dst_router: int, dst_group: int) -> None:
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size_phits = size_phits
        self.birth = birth
        self.src_router = src_router
        self.src_group = src_group
        self.dst_router = dst_router
        self.dst_group = dst_group
        self.valiant_group: int | None = None
        # whether a router-granular Valiant intermediate has been reached
        # (flipped by the fabric's min_hop oracle; unused on the Dragonfly,
        # whose group-granular token resolves through g_hops instead)
        self.via_done = False
        self.committed = False
        self.g_hops = 0
        self.local_hops_group = 0
        self.local_hops_total = 0
        self.misrouted_group = False
        self.prev_local_type: int | None = None
        self.last_local_vc = 0
        self.mode: str | None = None
        self.hops_log: list | None = None
        self.delivered_cycle: int | None = None
        self.local_misroutes = 0
        self.global_misrouted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet({self.pid}, {self.src}->{self.dst}, g_hops={self.g_hops})"


class Flit:
    """A flow-control unit of a packet.

    ``is_head`` flits carry the routing decision; ``is_tail`` flits
    release virtual-channel ownership.  A single-flit packet (VCT) is
    both head and tail.
    """

    __slots__ = ("packet", "index", "size", "is_head", "is_tail")

    def __init__(self, packet: Packet, index: int, size: int, is_head: bool, is_tail: bool) -> None:
        self.packet = packet
        self.index = index
        self.size = size
        self.is_head = is_head
        self.is_tail = is_tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit(p{self.packet.pid}#{self.index}{kind},{self.size}ph)"


def flitize(packet: Packet, flit_size: int) -> list[Flit]:
    """Split ``packet`` into flits of at most ``flit_size`` phits.

    The final flit absorbs any remainder so that flit sizes sum to the
    packet size exactly.
    """
    if flit_size <= 0:
        raise ValueError("flit_size must be positive")
    if flit_size >= packet.size_phits:  # VCT fast path: the packet is one flit
        return [Flit(packet, 0, packet.size_phits, True, True)]
    n = max(1, -(-packet.size_phits // flit_size))
    sizes = [flit_size] * (n - 1) + [packet.size_phits - flit_size * (n - 1)]
    flits = [
        Flit(packet, i, size, i == 0, i == n - 1)
        for i, size in enumerate(sizes)
    ]
    assert sum(f.size for f in flits) == packet.size_phits
    return flits
