"""Output-port arbitration strategies.

When several input ports request the same output port in one cycle,
the router's :class:`Arbiter` picks the winner.  Strategies are
registered in ``repro.registry.ARBITER_REGISTRY`` and selected with
``SimConfig(arbitration=...)``; third parties register their own.

A request is the allocation tuple built by the engine:
``(input_port, vc_buffer, flit, out_idx, out_vc, decision)``.
"""

from __future__ import annotations

import abc

from repro.registry import ARBITER_REGISTRY


class Arbiter(abc.ABC):
    """Strategy object choosing one winner among competing requests."""

    name: str = "abstract"

    @abc.abstractmethod
    def pick(self, requests: list, out, num_inputs: int, rng):
        """Return the winning request tuple (``requests`` has >= 2 entries).

        ``out`` is the contended :class:`OutputUnit` (its ``rr`` pointer
        holds round-robin state); ``rng`` is the simulator's routing RNG
        so randomized policies stay deterministic per seed.
        """


@ARBITER_REGISTRY.register(
    "rr", description="round-robin over input ports (default, starvation-free)")
class RoundRobinArbiter(Arbiter):
    """Rotating priority: the port after the last winner goes first."""

    name = "rr"

    def pick(self, requests: list, out, num_inputs: int, rng):
        base = out.rr
        return min(requests, key=lambda s: (s[0].index - base) % num_inputs)


@ARBITER_REGISTRY.register(
    "random", description="uniformly random winner among the requesters")
class RandomArbiter(Arbiter):
    """Uniform random choice (seeded by the simulator's routing RNG)."""

    name = "random"

    def pick(self, requests: list, out, num_inputs: int, rng):
        return requests[rng.randrange(len(requests))]


@ARBITER_REGISTRY.register(
    "age", description="oldest packet first (global age-based priority)")
class AgeArbiter(Arbiter):
    """Oldest packet wins; ties broken by input-port index."""

    name = "age"

    def pick(self, requests: list, out, num_inputs: int, rng):
        return min(requests, key=lambda s: (s[2].packet.birth, s[0].index))


__all__ = ["Arbiter", "RoundRobinArbiter", "RandomArbiter", "AgeArbiter",
           "ARBITER_REGISTRY"]
