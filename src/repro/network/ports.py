"""Output-side state: credits, serialization, wormhole VC ownership."""

from __future__ import annotations

from repro.topology.base import PortKind


class OutputUnit:
    """One router output port with per-VC credit counters.

    For LOCAL/GLOBAL ports, ``credits[v]`` tracks the free phits of the
    downstream VC buffer ``v`` (decremented on send, incremented when
    the downstream router drains the flit, after the reverse link
    latency).  ``owner[v]`` implements wormhole channel ownership: a VC
    is allocated to one packet from head grant to tail grant.

    EJECT ports model the per-node consumption interface: no credits
    (infinite sink), serialization only.
    """

    __slots__ = (
        "kind",
        "index",
        "busy_until",
        "credits",
        "capacity",
        "owner",
        "latency",
        "dest_router",
        "dest_port",
        "rr",
    )

    def __init__(self, kind: PortKind, index: int, num_vcs: int, capacity: int,
                 latency: int, dest_router: int | None, dest_port: int | None) -> None:
        self.kind = kind
        self.index = index
        self.busy_until = 0
        self.capacity = capacity
        self.credits = [capacity] * num_vcs
        self.owner: list[int | None] = [None] * num_vcs
        self.latency = latency
        self.dest_router = dest_router
        self.dest_port = dest_port
        self.rr = 0  # round-robin pointer over requesting inputs

    def occupancy(self, vc: int) -> int:
        """Phits believed to occupy (or be in flight to) downstream VC ``vc``."""
        return self.capacity - self.credits[vc]

    def occupancy_fraction(self, vc: int) -> float:
        return (self.capacity - self.credits[vc]) / self.capacity if self.capacity else 0.0

    def mean_occupancy_fraction(self) -> float:
        """Mean occupancy over this port's VCs (used by Piggybacking flags)."""
        if not self.credits or not self.capacity:
            return 0.0
        used = sum(self.capacity - c for c in self.credits)
        return used / (self.capacity * len(self.credits))
