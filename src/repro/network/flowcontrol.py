"""Link-level flow control: Virtual Cut-Through and Wormhole.

The two policies share a unified flit engine.  Under VCT a packet is a
single flit, so the per-flit downstream-space requirement *is* the
whole-packet requirement Kermani & Kleinrock demand; the head can be
forwarded ``latency + 1`` cycles after it starts on the wire
(cut-through).  Under Wormhole the packet is split into small flits
which are store-and-forwarded per flit and a downstream VC only needs
room for one flit — blocked packets then sprawl over several routers,
creating the extended dependencies the paper discusses.
"""

from __future__ import annotations

import abc

from repro.network.packet import Flit, Packet, flitize
from repro.registry import FLOW_CONTROL_REGISTRY


class FlowControl(abc.ABC):
    """Strategy object for flitization and per-hop timing."""

    name: str = "abstract"
    #: whether whole-packet downstream space is guaranteed before a hop
    whole_packet_reservation: bool = False

    @classmethod
    def from_config(cls, config) -> "FlowControl":
        """Build the policy from a :class:`SimConfig` (registry hook)."""
        return cls()

    @abc.abstractmethod
    def flits_of(self, packet: Packet) -> list[Flit]:
        """Split a freshly injected packet into flits."""

    @abc.abstractmethod
    def arrival_delay(self, link_latency: int, flit: Flit) -> int:
        """Cycles after the send grant until the flit is routable downstream."""

    @abc.abstractmethod
    def required_space(self, flit: Flit) -> int:
        """Downstream free phits needed to grant this flit."""


@FLOW_CONTROL_REGISTRY.register(
    "vct", description="Virtual Cut-Through: whole-packet buffer reservation")
class VirtualCutThrough(FlowControl):
    """VCT: one flit per packet, whole-packet buffer check, cut-through timing."""

    name = "vct"
    whole_packet_reservation = True

    def flits_of(self, packet: Packet) -> list[Flit]:
        return flitize(packet, packet.size_phits)

    def arrival_delay(self, link_latency: int, flit: Flit) -> int:
        # head is routable one cycle after it lands; the body streams behind
        return link_latency + 1

    def required_space(self, flit: Flit) -> int:
        return flit.size  # the flit is the whole packet


@FLOW_CONTROL_REGISTRY.register(
    "wh", description="Wormhole: per-flit buffering, blocked packets sprawl")
class Wormhole(FlowControl):
    """WH: fixed-size flits, per-flit buffer check, store-and-forward flits."""

    name = "wh"
    whole_packet_reservation = False

    def __init__(self, flit_size: int) -> None:
        if flit_size <= 0:
            raise ValueError("flit_size must be positive")
        self.flit_size = flit_size

    @classmethod
    def from_config(cls, config) -> "Wormhole":
        return cls(config.flit_phits)

    def flits_of(self, packet: Packet) -> list[Flit]:
        return flitize(packet, self.flit_size)

    def arrival_delay(self, link_latency: int, flit: Flit) -> int:
        return link_latency + flit.size

    def required_space(self, flit: Flit) -> int:
        return flit.size


def flow_control_by_name(name: str, *, flit_size: int | None = None) -> FlowControl:
    """Build a registered flow-control policy (legacy shim).

    Prefer ``FLOW_CONTROL_REGISTRY.get(name).from_config(config)``; this
    wrapper survives for callers that only have a flit size at hand.
    Wormhole has no meaningful default flit size, so ``"wh"`` requires
    an explicit ``flit_size`` (the old implicit default of 0 crashed
    inside ``Wormhole.__init__`` with a message that never mentioned
    this function's missing argument).
    """
    cls = FLOW_CONTROL_REGISTRY.get(name)
    if cls is Wormhole:
        if flit_size is None:
            raise ValueError(
                "flow_control_by_name('wh') needs an explicit flit size, "
                "e.g. flow_control_by_name('wh', flit_size=10) — or build "
                "from a config: FLOW_CONTROL_REGISTRY.get('wh').from_config(cfg)"
            )
        return Wormhole(flit_size)
    return cls()
