"""The cycle engine: arrivals, allocation, grants, credits, statistics.

One :class:`Simulator` owns the topology, the routers, the routing
algorithm instance and the traffic process.  Each cycle it

1. delivers flits whose link traversal completes this cycle,
2. applies returned credits,
3. lets the traffic process inject packets,
4. runs the per-cycle routing hook (Piggybacking broadcasts),
5. performs routing + switch allocation at every router with buffered
   flits (round-robin over the VCs of an input port, round-robin over
   the input ports requesting an output port).

Hot-path design (PR 3) — the engine emits *byte-identical* records to
the seed engine (see ``tests/test_engine_equivalence.py``) while doing
strictly less work per cycle:

* **timing wheel** — in-flight flits and returning credits live in a
  cycle-indexed ring of reusable buckets (``when % horizon``) instead
  of dict-of-lists event maps: O(1) pop, no hashing, no ``setdefault``
  churn, no list allocation in steady state.  The horizon covers the
  maximum schedulable delay (link latency + flit serialization +
  router pipeline), so slots never collide.
* **active-router set** — ``step()`` visits only routers with buffered
  flits (tracked by router id, iterated in ascending id order so the
  arbitration RNG stream is unchanged) instead of scanning all
  ``num_routers`` every cycle.
* **idle fast-forward** — ``run``/``run_until_drained`` jump ``now``
  straight to the next scheduled event when no router holds a flit and
  the traffic process cannot inject (exhausted burst, zero load).
  Skipped cycles are provably no-ops, so records are unchanged; the
  win is huge on burst-drain tails (paper Figs 6b/9b).  Fast-forward
  is disabled when the routing algorithm has a per-cycle hook
  (Piggybacking broadcasts must observe every cycle).

The pre-rewrite hot path survives verbatim as
:class:`repro.network.reference.ReferenceSimulator` for benchmarking
(``tools/bench_engine.py``) and golden-record fidelity checks.
"""

from __future__ import annotations

import random

from repro.core import MisroutingTrigger, routing_by_name
from repro.core.base import RoutingAlgorithm
from repro.metrics.collector import StatsCollector
from repro.network import arbitration as _arbitration  # noqa: F401 (registers arbiters)
from repro.network.config import SimConfig
from repro.network.flowcontrol import FlowControl  # noqa: F401 (registers policies)
from repro.network.packet import Flit, Packet
from repro.network.router import Router
from repro.registry import (
    ARBITER_REGISTRY,
    ENGINE_REGISTRY,
    FLOW_CONTROL_REGISTRY,
    TOPOLOGY_REGISTRY,
)
from repro.topology import PortKind

_EJECT = PortKind.EJECT


class DeadlockError(RuntimeError):
    """Raised when no flit moves for ``deadlock_window`` cycles with traffic in flight."""


@ENGINE_REGISTRY.register(
    "wheel", description="object-graph engine with a cycle-indexed timing wheel")
class Simulator:
    """Cycle-level simulator over any registered topology.

    Components are resolved by name through the unified registries:
    ``config.topology`` -> fabric, ``config.routing`` -> mechanism,
    ``config.flow_control`` -> link policy, ``config.arbitration`` ->
    output arbiter.  The engine itself is topology-agnostic; it only
    uses the :class:`~repro.topology.base.Topology` protocol surface.
    """

    def __init__(self, config: SimConfig, traffic=None) -> None:
        self.config = config
        self.topo = TOPOLOGY_REGISTRY.get(config.topology).from_config(config)
        algo_cls = routing_by_name(config.routing)
        self.fc = FLOW_CONTROL_REGISTRY.get(config.flow_control).from_config(config)
        if algo_cls.requires_vct and not self.fc.whole_packet_reservation:
            raise ValueError(
                f"routing {config.routing!r} requires VCT flow control "
                "(it relies on whole-packet reservation)"
            )
        unit = config.packet_phits if self.fc.whole_packet_reservation else config.flit_phits
        if unit > min(config.local_buffer_phits, config.global_buffer_phits):
            raise ValueError(
                f"flow-control unit of {unit} phits does not fit the smallest "
                f"buffer ({min(config.local_buffer_phits, config.global_buffer_phits)} phits)"
            )
        # VC allocation: whatever the config asks for, but never fewer
        # than the routing mechanism or the fabric's own minimal-route
        # discipline can address (e.g. the torus date-line scheme needs
        # 3 global VCs for Valiant paths; the paper fabric's floor
        # equals the config defaults, so nothing changes there)
        self.local_vcs = max(config.local_vcs, algo_cls.local_vcs,
                             getattr(self.topo, "route_local_vcs", 1))
        self.global_vcs = max(config.global_vcs, algo_cls.global_vcs,
                              getattr(self.topo, "route_global_vcs", 1))
        self.rng_traffic = random.Random(config.seed)
        self.rng_route = random.Random(config.seed ^ 0x9E3779B9)
        self.trigger = MisroutingTrigger(config.threshold)
        self.algo = algo_cls(self.topo, config, self.trigger, self.rng_route)
        self.routers = [
            Router(
                rid, self.topo,
                local_vcs=self.local_vcs, global_vcs=self.global_vcs,
                local_capacity=config.local_buffer_phits,
                global_capacity=config.global_buffer_phits,
                local_latency=config.local_latency,
                global_latency=config.global_latency,
            )
            for rid in range(self.topo.num_routers)
        ]
        self._wire_credit_upstreams()
        self.traffic = traffic
        self.stats = StatsCollector()
        #: hooks ``(packet, cycle) -> None`` fired at tail ejection, in
        #: registration order, legacy hook last (see :meth:`add_delivery_observer`)
        self._delivery_observers: list = []
        self._legacy_observer = None
        # ---- instrumentation taps (repro.network.taps): ``None`` when no
        # tap is registered for an event, so the hot path pays exactly one
        # ``is None`` check per event site and nothing polls per cycle
        self._tap_inject: tuple | None = None
        self._tap_grant: tuple | None = None
        self._tap_credit: tuple | None = None
        self._tap_ring: tuple | None = None
        self._is_escape = self.algo.is_escape_hop
        self.now = 0
        self.packets_in_flight = 0
        self._next_pid = 0
        self._last_progress = 0
        self.arbiter = ARBITER_REGISTRY.get(config.arbitration)()
        self._router_latency = config.router_latency

        # ---- timing wheel: one slot per cycle of the scheduling horizon.
        # The horizon bounds every schedulable delay: flow-control arrival
        # delay on the slowest link for the largest flit, plus the router
        # pipeline, plus credit return (= link latency <= arrival delay).
        max_latency = max(config.local_latency, config.global_latency)
        probe = Flit(Packet(0, 0, 1, config.packet_phits, 0, 0, 0, 0, 0), 0,
                     max(config.packet_phits, config.flit_phits), True, True)
        self._horizon = (max(self.fc.arrival_delay(max_latency, probe), max_latency)
                         + config.router_latency + 2)
        self._arr_wheel: list[list] = [[] for _ in range(self._horizon)]
        self._cr_wheel: list[list] = [[] for _ in range(self._horizon)]
        self._pending_events = 0
        #: router ids with at least one buffered flit (``router.pending > 0``)
        self._active: set[int] = set()
        # per-cycle routing hook, resolved once: ``None`` when the
        # mechanism never overrode the base no-op (every mechanism but
        # Piggybacking), which also licenses idle fast-forwarding
        overridden = type(self.algo).per_cycle is not RoutingAlgorithm.per_cycle
        self._per_cycle = self.algo.per_cycle if overridden else None
        self._fc_arrival_delay = self.fc.arrival_delay

    # ------------------------------------------------------------- observers
    def add_delivery_observer(self, fn):
        """Register ``fn(packet, cycle)`` to fire at every tail ejection.

        Returns ``fn`` so the method can be used as a decorator.  Any
        number of observers may be attached (metrics probes, trace
        writers, the Session latency recorder, ...).  Observers fire in
        registration order; the legacy ``on_packet_delivered`` hook —
        if assigned — always fires last, regardless of whether it was
        assigned before or after the observers.
        """
        observers = list(self._delivery_observers)
        legacy = self._legacy_observer
        if legacy is not None and observers and observers[-1] is legacy:
            observers.insert(len(observers) - 1, fn)
        else:
            observers.append(fn)
        self._delivery_observers = observers
        return fn

    def remove_delivery_observer(self, fn) -> None:
        """Detach a previously added delivery observer.

        Rebinds the list copy-on-write so the delivery hot path can
        iterate it without snapshotting, even when an observer detaches
        itself (or a peer) mid-callback.
        """
        observers = list(self._delivery_observers)
        observers.remove(fn)  # equality match, as bound methods require
        self._delivery_observers = observers

    @property
    def on_packet_delivered(self):
        """Legacy single-observer hook (shim over the observer list).

        The hook is kept at the end of the observer list: it fires
        *after* every observer added via :meth:`add_delivery_observer`,
        and re-assigning it keeps it last.
        """
        return self._legacy_observer

    @on_packet_delivered.setter
    def on_packet_delivered(self, fn) -> None:
        # tolerate a legacy hook already detached via remove_delivery_observer;
        # rebind (copy-on-write) like the other observer mutators
        prev = self._legacy_observer
        observers = list(self._delivery_observers)
        if prev is not None and prev in observers:
            observers.remove(prev)
        self._legacy_observer = fn
        if fn is not None:
            observers.append(fn)
        self._delivery_observers = observers

    # ------------------------------------------------------------------ taps
    def add_tap(self, tap):
        """Attach an instrumentation tap (see :mod:`repro.network.taps`).

        Every ``on_inject`` / ``on_grant`` / ``on_eject`` / ``on_credit``
        / ``on_ring_entry`` method defined on ``tap`` is wired onto the
        matching engine event point; at least one must be present.
        ``on_eject`` joins the delivery-observer list (so it fires in
        registration order, before the legacy ``on_packet_delivered``
        hook, and before ``on_grant`` for the same delivering tail
        flit).  Returns ``tap`` for chaining.
        """
        wired = False
        for attr, fn in (("_tap_inject", getattr(tap, "on_inject", None)),
                         ("_tap_grant", getattr(tap, "on_grant", None)),
                         ("_tap_credit", getattr(tap, "on_credit", None)),
                         ("_tap_ring", getattr(tap, "on_ring_entry", None))):
            if fn is not None:
                current = getattr(self, attr)
                setattr(self, attr, (fn,) if current is None else (*current, fn))
                wired = True
        eject = getattr(tap, "on_eject", None)
        if eject is not None:
            self.add_delivery_observer(eject)
            wired = True
        if not wired:
            raise TypeError(
                f"{tap!r} defines none of the tap event methods "
                "(on_inject/on_grant/on_eject/on_credit/on_ring_entry)")
        return tap

    def remove_tap(self, tap) -> None:
        """Detach a previously added tap from every event point (idempotent)."""
        for attr, fn in (("_tap_inject", getattr(tap, "on_inject", None)),
                         ("_tap_grant", getattr(tap, "on_grant", None)),
                         ("_tap_credit", getattr(tap, "on_credit", None)),
                         ("_tap_ring", getattr(tap, "on_ring_entry", None))):
            current = getattr(self, attr)
            if fn is None or current is None or fn not in current:
                continue
            remaining = tuple(f for f in current if f != fn)
            setattr(self, attr, remaining or None)
        eject = getattr(tap, "on_eject", None)
        if eject is not None and eject in self._delivery_observers:
            self.remove_delivery_observer(eject)

    def _wire_credit_upstreams(self) -> None:
        """Point every input VC buffer at the output unit feeding it."""
        for router in self.routers:
            for out in router.outputs:
                if out.kind == PortKind.EJECT:
                    continue
                dest = self.routers[out.dest_router]
                port = dest.inputs[out.dest_port]
                for vcb in port.vcs:
                    vcb.upstream_output = out

    # ------------------------------------------------------------ injection
    def inject_packet(self, src: int, dst: int, now: int | None = None) -> Packet:
        """Create a packet at node ``src`` bound for node ``dst`` and queue it."""
        if src == dst:
            raise ValueError("source and destination nodes must differ")
        t = self.now if now is None else now
        topo = self.topo
        sr = topo.router_of_node(src)
        dr = topo.router_of_node(dst)
        pkt = Packet(self._next_pid, src, dst, self.config.packet_phits, t,
                     sr, topo.group_of(sr), dr, topo.group_of(dr))
        self._next_pid += 1
        if self.config.record_hops:
            pkt.hops_log = []
        flits = self.fc.flits_of(pkt)
        router = self.routers[sr]
        port = router.inputs[topo.node_index(src)]
        vcb = port.vcs[0]
        for f in flits:
            vcb.push(f)
        n = len(flits)
        port.buffered += n
        router.pending += n
        self._active.add(sr)
        self.stats.on_generated(pkt)
        self.packets_in_flight += 1
        taps = self._tap_inject
        if taps is not None:
            for tap in taps:
                tap(pkt, t)
        return pkt

    # ------------------------------------------------------------ main loop
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        t = self.now
        slot = t % self._horizon
        bucket = self._arr_wheel[slot]
        if bucket:
            active_add = self._active.add
            for router, port_idx, vc_idx, flit in bucket:
                port = router.inputs[port_idx]
                port.vcs[vc_idx].push(flit)
                port.buffered += 1
                router.pending += 1
                active_add(router.rid)
            self._pending_events -= len(bucket)
            bucket.clear()
            # a scheduled arrival landing is forward progress: without
            # this, packets whose flits are all in flight on links longer
            # than ``deadlock_window`` would trip the deadlock detector
            self._last_progress = t
        bucket = self._cr_wheel[slot]
        if bucket:
            for out, vc, amount in bucket:
                out.credits[vc] += amount
            ctaps = self._tap_credit
            if ctaps is not None:
                for out, vc, amount in bucket:
                    for tap in ctaps:
                        tap(out, vc, amount, t)
            self._pending_events -= len(bucket)
            bucket.clear()
            self._last_progress = t
        traffic = self.traffic
        if traffic is not None:
            # batched-injection protocol: a traffic process may hand over
            # one cycle's (srcs, dsts) in bulk; the per-packet injection
            # below preserves pid order, tap firing and routing exactly
            inject_batch = getattr(traffic, "inject_batch", None)
            batch = None if inject_batch is None else inject_batch(self, t)
            if batch is None:
                traffic.inject(self, t)
            elif len(batch[0]):
                inject_packet = self.inject_packet
                for src, dst in zip(batch[0].tolist(), batch[1].tolist()):
                    inject_packet(src, dst, t)
        per_cycle = self._per_cycle
        if per_cycle is not None:
            per_cycle(self, t)
        active = self._active
        if active:
            routers = self.routers
            process = self._process_router
            # ascending router id, as the seed engine scanned: the order
            # feeds the arbitration RNG stream and must not change
            rids = sorted(active) if len(active) > 1 else tuple(active)
            for rid in rids:
                router = routers[rid]
                if router.pending:
                    process(router, t)
                    if not router.pending:
                        active.discard(rid)
                else:  # defensively drop stale members
                    active.discard(rid)
        self.now = t + 1

    def _next_event_cycle(self) -> int | None:
        """Earliest cycle >= ``now`` with a scheduled arrival or credit.

        Offsets ``0..horizon-1`` cover every live slot: an event due at
        ``now`` itself (offset 0, not yet popped) must map to ``now``,
        never alias to ``now + horizon``.
        """
        if not self._pending_events:
            return None
        horizon = self._horizon
        now = self.now
        arr, cr = self._arr_wheel, self._cr_wheel
        for off in range(horizon):
            slot = (now + off) % horizon
            if arr[slot] or cr[slot]:
                return now + off
        return None  # unreachable while _pending_events is consistent

    def _fast_forward_target(self, limit: int) -> int | None:
        """Latest cycle <= ``limit`` the engine may jump to, or ``None``.

        A jump is sound only when every skipped cycle is provably a
        no-op: no router holds a flit, the routing mechanism has no
        per-cycle hook (Piggybacking must observe every cycle), and the
        traffic process either cannot inject any more (``exhausted``,
        burst spent, zero load) or knows its next injection cycle
        (``next_injection_cycle``, implemented by trace/burst
        processes).  The target is the earliest of the next scheduled
        arrival/credit, the next possible injection, and ``limit``.
        """
        if self._active or self._per_cycle is not None:
            return None
        traffic = self.traffic
        if traffic is None or getattr(traffic, "exhausted", False):
            tin = None
        else:
            nic = getattr(traffic, "next_injection_cycle", None)
            if nic is None:
                return None  # opaque open-loop source: every cycle may inject
            tin = nic(self.now)
        nxt = self._next_event_cycle()
        target = min(t for t in (tin, nxt, limit) if t is not None)
        return target if target > self.now else None

    def run(self, cycles: int) -> None:
        """Run ``cycles`` cycles, watching for deadlock.

        Cycles in which provably nothing can happen (no buffered flit,
        no possible injection) are skipped by jumping straight to the
        next scheduled arrival/credit/injection event.
        """
        end = self.now + cycles
        window = self.config.deadlock_window
        while self.now < end:
            self.step()
            if (
                self.packets_in_flight
                and not self._pending_events
                and self.now - self._last_progress > window
            ):
                raise DeadlockError(
                    f"no flit moved for {window} cycles at t={self.now} "
                    f"with {self.packets_in_flight} packets in flight"
                )
            if self.now < end:
                target = self._fast_forward_target(end)
                if target is not None:
                    self.now = target

    def run_until_drained(self, max_cycles: int) -> int:
        """Run until all traffic is injected and delivered; return the cycle count.

        A traffic process may advertise pending future injections via an
        ``exhausted`` attribute (burst and trace processes do); open-loop
        Bernoulli sources are never exhausted, so draining them raises
        after ``max_cycles`` — detach the traffic first.
        """
        window = self.config.deadlock_window
        start = self.now
        while True:
            self.step()  # step first: traffic may inject on the first cycle
            if not self.packets_in_flight and (
                self.traffic is None
                or getattr(self.traffic, "exhausted", True)
            ):
                break  # nothing in flight and no future injections pending
            if self.now - start >= max_cycles:
                raise DeadlockError(
                    f"not drained after {max_cycles} cycles "
                    f"({self.packets_in_flight} packets left)"
                )
            if (
                not self._pending_events
                and self.now - self._last_progress > window
            ):
                raise DeadlockError(
                    f"no flit moved for {window} cycles at t={self.now} "
                    f"with {self.packets_in_flight} packets in flight"
                )
            # never jump past the drain budget: the timeout check above
            # must fire exactly as it would cycle-by-cycle
            target = self._fast_forward_target(start + max_cycles)
            if target is not None:
                self.now = target
        return self.now - start

    # ------------------------------------------------------------ allocation
    def _process_router(self, router: Router, t: int) -> None:
        sels = None
        algo_decide = self.algo.decide
        remaining = router.pending  # stop scanning once every flit is seen
        for ip in router.inputs:
            buffered = ip.buffered
            if not buffered:
                continue
            if ip.busy_until <= t:
                vcs = ip.vcs
                nv = len(vcs)
                rr = ip.rr
                sel = None
                for off in range(nv):
                    vi = rr + off
                    if vi >= nv:
                        vi -= nv
                    vcb = vcs[vi]
                    fifo = vcb.fifo
                    if not fifo:
                        continue
                    flit = fifo[0]
                    oidx = vcb.route_out
                    if oidx is None:
                        # a head flit awaiting (or re-evaluating) its routing decision
                        dec = algo_decide(router, flit.packet, t, flit)
                        if dec is None:
                            continue
                        sel = (ip, vcb, flit, dec.out, dec.vc, dec)
                    else:
                        # body/tail flit following its head: Router.can_accept_body,
                        # inlined (hot under Wormhole: one check per flit per cycle)
                        ovc = vcb.route_vc
                        o = router.outputs[oidx]
                        if o.busy_until > t:
                            continue
                        if o.kind is not _EJECT and (
                            o.credits[ovc] < flit.size
                            or o.owner[ovc] != flit.packet.pid
                        ):
                            continue
                        sel = (ip, vcb, flit, oidx, ovc, None)
                    break
                if sel is not None:
                    if sels is None:
                        sels = [sel]
                    else:
                        sels.append(sel)
            remaining -= buffered
            if not remaining:
                break
        if sels is None:
            return
        outputs = router.outputs
        nin = len(router.inputs)
        grant = self._grant
        if len(sels) == 1:  # uncontested cycle: skip the grouping pass
            sel = sels[0]
            out = outputs[sel[3]]
            out.rr = (sel[0].index + 1) % nin
            grant(router, out, sel, t)
            return
        # group by requested output, insertion-ordered like the seed
        # engine's dict-of-lists; bare tuples dodge the per-output list
        # allocation in the common uncontested case
        requests: dict = {}
        requests_get = requests.get
        for sel in sels:
            o = sel[3]
            prev = requests_get(o)
            if prev is None:
                requests[o] = sel
            elif type(prev) is list:
                prev.append(sel)
            else:
                requests[o] = [prev, sel]
        arbiter = self.arbiter
        rng = self.rng_route
        for o, entry in requests.items():
            out = outputs[o]
            if type(entry) is list:
                win = arbiter.pick(entry, out, nin, rng)
            else:
                win = entry
            out.rr = (win[0].index + 1) % nin
            grant(router, out, win, t)

    def _grant(self, router: Router, out, sel, t: int) -> None:
        ip, vcb, flit, oidx, ovc, dec = sel
        size = flit.size
        vcb.fifo.popleft()
        vcb.occupancy -= size
        router.pending -= 1
        ip.buffered -= 1
        busy = t + size
        ip.busy_until = busy
        ip.rr = (vcb.vc_index + 1) % len(ip.vcs)
        out.busy_until = busy
        pkt = flit.packet
        is_eject = out.kind is _EJECT
        if dec is not None:
            self.algo.on_hop(router, pkt, dec)
            if pkt.hops_log is not None:
                pkt.hops_log.append((int(out.kind), out.index, ovc))
            if not flit.is_tail:
                vcb.route_out = oidx
                vcb.route_vc = ovc
                if not is_eject:
                    out.owner[ovc] = pkt.pid
        elif flit.is_tail:
            vcb.route_out = None
            vcb.route_vc = None
            if not is_eject:
                out.owner[ovc] = None
        if self._tap_ring is not None and dec is not None and \
                self._is_escape(out.kind, ovc):
            for tap in self._tap_ring:
                tap(router, out, ovc, flit, t)
        if is_eject:
            if flit.is_tail:
                done = busy
                pkt.delivered_cycle = done
                self.stats.on_delivered(pkt, done)
                self.packets_in_flight -= 1
                if self._delivery_observers:
                    # safe without a snapshot: removal rebinds the list
                    for observer in self._delivery_observers:
                        observer(pkt, done)
        else:
            out.credits[ovc] -= size
            when = t + self._fc_arrival_delay(out.latency, flit) + self._router_latency
            if when - t >= self._horizon:
                raise ValueError(
                    f"arrival delay {when - t} exceeds the timing-wheel "
                    f"horizon {self._horizon}; the flow-control policy "
                    "reported a larger delay at grant time than at setup"
                )
            self._arr_wheel[when % self._horizon].append(
                (self.routers[out.dest_router], out.dest_port, ovc, flit)
            )
            self._pending_events += 1
        up = vcb.upstream_output
        if up is not None:
            self._cr_wheel[(t + up.latency) % self._horizon].append(
                (up, vcb.vc_index, size)
            )
            self._pending_events += 1
        self._last_progress = t
        gtaps = self._tap_grant
        if gtaps is not None:
            for tap in gtaps:
                tap(router, out, ovc, flit, dec, t)

    # ------------------------------------------------------------ utilities
    def total_buffered_flits(self) -> int:
        return sum(r.buffered_flits() for r in self.routers)

    def arrivals_due(self, when: int) -> list:
        """Flit arrivals scheduled for cycle ``when`` (introspection/tests).

        Entries are ``(router, port_idx, vc_idx, flit)`` tuples; the
        list is only meaningful for ``now <= when < now + horizon``.
        """
        return list(self._arr_wheel[when % self._horizon]) if self._horizon else []


def build_simulator(config: SimConfig, traffic=None) -> Simulator:
    """Build the engine backend selected by ``config.engine``.

    Resolved through :data:`~repro.registry.ENGINE_REGISTRY`, so
    third-party engines registered before the call are selectable like
    built-ins.  All backends share the :class:`Simulator` interface and
    emit byte-identical records (the golden-matrix contract).
    """
    if config.engine not in ENGINE_REGISTRY:
        import repro.network  # noqa: F401  (registers array/reference engines)
    return ENGINE_REGISTRY.get(config.engine)(config, traffic)
