"""The cycle engine: arrivals, allocation, grants, credits, statistics.

One :class:`Simulator` owns the topology, the routers, the routing
algorithm instance and the traffic process.  Each cycle it

1. delivers flits whose link traversal completes this cycle,
2. applies returned credits,
3. lets the traffic process inject packets,
4. runs the per-cycle routing hook (Piggybacking broadcasts),
5. performs routing + switch allocation at every router with buffered
   flits (round-robin over the VCs of an input port, round-robin over
   the input ports requesting an output port).
"""

from __future__ import annotations

import random

from repro.core import MisroutingTrigger, routing_by_name
from repro.metrics.collector import StatsCollector
from repro.network import arbitration as _arbitration  # noqa: F401 (registers arbiters)
from repro.network.config import SimConfig
from repro.network.flowcontrol import FlowControl  # noqa: F401 (registers policies)
from repro.network.packet import Packet
from repro.network.router import Router
from repro.registry import ARBITER_REGISTRY, FLOW_CONTROL_REGISTRY, TOPOLOGY_REGISTRY
from repro.topology import PortKind


class DeadlockError(RuntimeError):
    """Raised when no flit moves for ``deadlock_window`` cycles with traffic in flight."""


class Simulator:
    """Cycle-level simulator over any registered topology.

    Components are resolved by name through the unified registries:
    ``config.topology`` -> fabric, ``config.routing`` -> mechanism,
    ``config.flow_control`` -> link policy, ``config.arbitration`` ->
    output arbiter.  The engine itself is topology-agnostic; it only
    uses the :class:`~repro.topology.base.Topology` protocol surface.
    """

    def __init__(self, config: SimConfig, traffic=None) -> None:
        self.config = config
        self.topo = TOPOLOGY_REGISTRY.get(config.topology).from_config(config)
        algo_cls = routing_by_name(config.routing)
        self.fc = FLOW_CONTROL_REGISTRY.get(config.flow_control).from_config(config)
        if algo_cls.requires_vct and not self.fc.whole_packet_reservation:
            raise ValueError(
                f"routing {config.routing!r} requires VCT flow control "
                "(it relies on whole-packet reservation)"
            )
        unit = config.packet_phits if self.fc.whole_packet_reservation else config.flit_phits
        if unit > min(config.local_buffer_phits, config.global_buffer_phits):
            raise ValueError(
                f"flow-control unit of {unit} phits does not fit the smallest "
                f"buffer ({min(config.local_buffer_phits, config.global_buffer_phits)} phits)"
            )
        self.local_vcs = max(config.local_vcs, algo_cls.local_vcs)
        self.global_vcs = max(config.global_vcs, algo_cls.global_vcs)
        self.rng_traffic = random.Random(config.seed)
        self.rng_route = random.Random(config.seed ^ 0x9E3779B9)
        self.trigger = MisroutingTrigger(config.threshold)
        self.algo = algo_cls(self.topo, config, self.trigger, self.rng_route)
        self.routers = [
            Router(
                rid, self.topo,
                local_vcs=self.local_vcs, global_vcs=self.global_vcs,
                local_capacity=config.local_buffer_phits,
                global_capacity=config.global_buffer_phits,
                local_latency=config.local_latency,
                global_latency=config.global_latency,
            )
            for rid in range(self.topo.num_routers)
        ]
        self._wire_credit_upstreams()
        self.traffic = traffic
        self.stats = StatsCollector()
        #: hooks ``(packet, cycle) -> None`` fired at tail ejection, in
        #: registration order (see :meth:`add_delivery_observer`)
        self._delivery_observers: list = []
        self._legacy_observer = None
        self.now = 0
        self.packets_in_flight = 0
        self._next_pid = 0
        self._arrivals: dict[int, list] = {}
        self._credit_events: dict[int, list] = {}
        self._last_progress = 0
        self.arbiter = ARBITER_REGISTRY.get(config.arbitration)()
        self._router_latency = config.router_latency

    # ------------------------------------------------------------- observers
    def add_delivery_observer(self, fn):
        """Register ``fn(packet, cycle)`` to fire at every tail ejection.

        Returns ``fn`` so the method can be used as a decorator.  Any
        number of observers may be attached (metrics probes, trace
        writers, the Session latency recorder, ...).
        """
        self._delivery_observers = [*self._delivery_observers, fn]
        return fn

    def remove_delivery_observer(self, fn) -> None:
        """Detach a previously added delivery observer.

        Rebinds the list copy-on-write so the delivery hot path can
        iterate it without snapshotting, even when an observer detaches
        itself (or a peer) mid-callback.
        """
        observers = list(self._delivery_observers)
        observers.remove(fn)  # equality match, as bound methods require
        self._delivery_observers = observers

    @property
    def on_packet_delivered(self):
        """Legacy single-observer hook (shim over the observer list)."""
        return self._legacy_observer

    @on_packet_delivered.setter
    def on_packet_delivered(self, fn) -> None:
        # tolerate a legacy hook already detached via remove_delivery_observer;
        # rebind (copy-on-write) like the other observer mutators
        prev = self._legacy_observer
        observers = list(self._delivery_observers)
        if prev is not None and prev in observers:
            observers.remove(prev)
        self._legacy_observer = fn
        if fn is not None:
            observers.append(fn)
        self._delivery_observers = observers

    def _wire_credit_upstreams(self) -> None:
        """Point every input VC buffer at the output unit feeding it."""
        for router in self.routers:
            for out in router.outputs:
                if out.kind == PortKind.EJECT:
                    continue
                dest = self.routers[out.dest_router]
                port = dest.inputs[out.dest_port]
                for vcb in port.vcs:
                    vcb.upstream_output = out

    # ------------------------------------------------------------ injection
    def inject_packet(self, src: int, dst: int, now: int | None = None) -> Packet:
        """Create a packet at node ``src`` bound for node ``dst`` and queue it."""
        if src == dst:
            raise ValueError("source and destination nodes must differ")
        t = self.now if now is None else now
        topo = self.topo
        sr = topo.router_of_node(src)
        dr = topo.router_of_node(dst)
        pkt = Packet(self._next_pid, src, dst, self.config.packet_phits, t,
                     sr, topo.group_of(sr), dr, topo.group_of(dr))
        self._next_pid += 1
        if self.config.record_hops:
            pkt.hops_log = []
        flits = self.fc.flits_of(pkt)
        router = self.routers[sr]
        vcb = router.inputs[topo.node_index(src)].vcs[0]
        for f in flits:
            vcb.push(f)
        router.pending += len(flits)
        self.stats.on_generated(pkt)
        self.packets_in_flight += 1
        return pkt

    # ------------------------------------------------------------ main loop
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        t = self.now
        arrivals = self._arrivals.pop(t, None)
        if arrivals:
            for router, port_idx, vc_idx, flit in arrivals:
                router.inputs[port_idx].vcs[vc_idx].push(flit)
                router.pending += 1
        credits = self._credit_events.pop(t, None)
        if credits:
            for out, vc, amount in credits:
                out.credits[vc] += amount
        if self.traffic is not None:
            self.traffic.inject(self, t)
        self.algo.per_cycle(self, t)
        for router in self.routers:
            if router.pending:
                self._process_router(router, t)
        self.now = t + 1

    def run(self, cycles: int) -> None:
        """Run ``cycles`` cycles, watching for deadlock."""
        end = self.now + cycles
        window = self.config.deadlock_window
        while self.now < end:
            self.step()
            if (
                self.packets_in_flight
                and self.now - self._last_progress > window
            ):
                raise DeadlockError(
                    f"no flit moved for {window} cycles at t={self.now} "
                    f"with {self.packets_in_flight} packets in flight"
                )

    def run_until_drained(self, max_cycles: int) -> int:
        """Run until all traffic is injected and delivered; return the cycle count.

        A traffic process may advertise pending future injections via an
        ``exhausted`` attribute (burst and trace processes do); open-loop
        Bernoulli sources are never exhausted, so draining them raises
        after ``max_cycles`` — detach the traffic first.
        """
        window = self.config.deadlock_window
        start = self.now
        while True:
            self.step()  # step first: traffic may inject on the first cycle
            if not self.packets_in_flight and (
                self.traffic is None
                or getattr(self.traffic, "exhausted", True)
            ):
                break  # nothing in flight and no future injections pending
            if self.now - start >= max_cycles:
                raise DeadlockError(
                    f"not drained after {max_cycles} cycles "
                    f"({self.packets_in_flight} packets left)"
                )
            if self.now - self._last_progress > window:
                raise DeadlockError(
                    f"no flit moved for {window} cycles at t={self.now} "
                    f"with {self.packets_in_flight} packets in flight"
                )
        return self.now - start

    # ------------------------------------------------------------ allocation
    def _process_router(self, router: Router, t: int) -> None:
        requests: dict[int, list] | None = None
        algo = self.algo
        for ip in router.inputs:
            if ip.busy_until > t:
                continue
            vcs = ip.vcs
            nv = len(vcs)
            rr = ip.rr
            sel = None
            for off in range(nv):
                vi = rr + off
                if vi >= nv:
                    vi -= nv
                vcb = vcs[vi]
                if not vcb.fifo:
                    continue
                flit = vcb.fifo[0]
                if vcb.route_out is None:
                    # a head flit awaiting (or re-evaluating) its routing decision
                    dec = algo.decide(router, flit.packet, t, flit)
                    if dec is None:
                        continue
                    sel = (ip, vcb, flit, dec.out, dec.vc, dec)
                else:
                    oidx, ovc = vcb.route_out, vcb.route_vc
                    if not router.can_accept_body(oidx, ovc, flit, t):
                        continue
                    sel = (ip, vcb, flit, oidx, ovc, None)
                break
            if sel is not None:
                if requests is None:
                    requests = {}
                requests.setdefault(sel[3], []).append(sel)
        if not requests:
            return
        nin = len(router.inputs)
        arbiter = self.arbiter
        for oidx, reqs in requests.items():
            out = router.outputs[oidx]
            if len(reqs) == 1:
                win = reqs[0]
            else:
                win = arbiter.pick(reqs, out, nin, self.rng_route)
            out.rr = (win[0].index + 1) % nin
            self._grant(router, out, win, t)

    def _grant(self, router: Router, out, sel, t: int) -> None:
        ip, vcb, flit, oidx, ovc, dec = sel
        vcb.pop()
        router.pending -= 1
        ip.busy_until = t + flit.size
        ip.rr = (vcb.vc_index + 1) % len(ip.vcs)
        out.busy_until = t + flit.size
        pkt = flit.packet
        is_eject = out.kind == PortKind.EJECT
        if dec is not None:
            self.algo.on_hop(router, pkt, dec)
            if pkt.hops_log is not None:
                pkt.hops_log.append((int(out.kind), out.index, ovc))
            if not flit.is_tail:
                vcb.route_out = oidx
                vcb.route_vc = ovc
                if not is_eject:
                    out.owner[ovc] = pkt.pid
        elif flit.is_tail:
            vcb.route_out = None
            vcb.route_vc = None
            if not is_eject:
                out.owner[ovc] = None
        if is_eject:
            if flit.is_tail:
                done = t + flit.size
                pkt.delivered_cycle = done
                self.stats.on_delivered(pkt, done)
                self.packets_in_flight -= 1
                if self._delivery_observers:
                    # safe without a snapshot: removal rebinds the list
                    for observer in self._delivery_observers:
                        observer(pkt, done)
        else:
            out.credits[ovc] -= flit.size
            when = t + self.fc.arrival_delay(out.latency, flit) + self._router_latency
            self._arrivals.setdefault(when, []).append(
                (self.routers[out.dest_router], out.dest_port, ovc, flit)
            )
        up = vcb.upstream_output
        if up is not None:
            self._credit_events.setdefault(t + up.latency, []).append(
                (up, vcb.vc_index, flit.size)
            )
        self._last_progress = t

    # ------------------------------------------------------------ utilities
    def total_buffered_flits(self) -> int:
        return sum(r.buffered_flits() for r in self.routers)


def build_simulator(config: SimConfig, traffic=None) -> Simulator:
    """Factory mirroring the public API (`repro.build_simulator`)."""
    return Simulator(config, traffic)
