"""Simulation configuration.

Defaults follow the paper's methodology section: local links 10 cycles,
global links 100 cycles, local FIFOs 32 phits, global FIFOs 256 phits,
3 local / 2 global VCs (6 local for PAR-6/2), VCT packets of 8 phits,
WH packets of 80 phits in 8 flits of 10 phits.  The network size
defaults to ``h = 2`` so that pure-Python sweeps finish quickly; the
paper's machine is ``h = 8`` and can be built by passing ``h=8``.
Non-Dragonfly fabrics are sized by their own knobs (``fb_routers``
for the flattened butterfly, ``torus_rows``/``torus_cols`` for the
torus, shared ``p`` concentration); unused knobs still participate in
:meth:`SimConfig.canonical_json`, keeping cache keys total functions
of the dataclass.

Component names (``topology``, ``routing``, ``flow_control``,
``arbitration``) are validated against the unified registries in
:mod:`repro.registry`, so third-party components registered before a
config is created are accepted like built-ins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace

from repro.registry import (
    ARBITER_REGISTRY,
    ENGINE_REGISTRY,
    FLOW_CONTROL_REGISTRY,
    ROUTING_REGISTRY,
    TOPOLOGY_REGISTRY,
)


@dataclass
class SimConfig:
    """All knobs of one simulation run."""

    # ---- topology
    topology: str = "dragonfly"
    #: Dragonfly size knobs: global ports per router (h), nodes per
    #: router (p, also the concentration of the other fabrics) and
    #: routers per group (a); ``None`` means the canonical well-balanced
    #: derivation from h
    h: int = 2
    p: int | None = None
    a: int | None = None
    arrangement: str = "palmtree"
    #: flattened-butterfly size: routers in the single complete graph
    fb_routers: int = 8
    #: torus size: Y-ring (rows = groups) and X-ring (cols) lengths
    torus_rows: int = 4
    torus_cols: int = 4

    # ---- routing
    routing: str = "olm"
    #: misrouting trigger threshold (fraction of minimal-queue occupancy)
    threshold: float = 0.45
    #: how many random non-minimal candidates the trigger samples per cycle
    misroute_candidates: int = 4
    #: UGAL-style hop weighting for *global* misroute candidates: a Valiant
    #: detour roughly doubles the path, so its queue is compared at this
    #: multiple.  1.0 reproduces the paper's unweighted trigger verbatim;
    #: at the reduced default scale the unweighted trigger over-misroutes
    #: under uniform traffic (see DESIGN.md §3).
    trigger_global_hop_weight: float = 2.0
    #: allow adaptive mechanisms to take a Valiant detour for intra-group traffic
    allow_global_misroute_local_traffic: bool = True

    # ---- flow control
    flow_control: str = "vct"  # "vct" | "wh"
    packet_phits: int = 8
    flit_phits: int = 10  # WH only

    # ---- router microarchitecture
    #: output arbitration among competing inputs: "rr" | "random" | "age"
    arbitration: str = "rr"
    #: extra pipeline cycles added to every hop (router traversal delay)
    router_latency: int = 0

    # ---- link/buffer parameters (paper defaults)
    local_latency: int = 10
    global_latency: int = 100
    local_buffer_phits: int = 32
    global_buffer_phits: int = 256
    local_vcs: int = 3
    global_vcs: int = 2

    # ---- piggybacking
    pb_threshold: float = 0.30
    pb_update_period: int | None = None  # default: local link latency
    #: source-queue depth (in packets) that marks intra-group traffic congested
    pb_inj_backlog_packets: int = 4

    # ---- execution backend
    #: simulation engine backend: "wheel" (object timing wheel), "array"
    #: (numpy structure-of-arrays core) or "reference" (frozen seed
    #: engine).  Engines are an *execution* choice, not a physics knob:
    #: every engine emits byte-identical records, so this field is
    #: excluded from :meth:`canonical_json` and cache keys.
    engine: str = "wheel"

    # ---- misc
    seed: int = 1
    record_hops: bool = False
    #: cycles without any flit movement (while packets are in flight) that
    #: trigger a DeadlockError; generous because global links are 100 cycles
    deadlock_window: int = 5000

    def __post_init__(self) -> None:
        # registry lookups raise UnknownComponentError (a ValueError) with
        # the known names and a did-you-mean suggestion
        TOPOLOGY_REGISTRY.get(self.topology)
        ROUTING_REGISTRY.get(self.routing)
        FLOW_CONTROL_REGISTRY.get(self.flow_control)
        ARBITER_REGISTRY.get(self.arbitration)
        if self.engine not in ENGINE_REGISTRY:
            # engines register on repro.network import; this module is
            # imported *by* repro.network, so pull the package in lazily
            # before deciding the name really is unknown
            import repro.network  # noqa: F401
            ENGINE_REGISTRY.get(self.engine)
        if self.packet_phits <= 0:
            raise ValueError("packet_phits must be positive")
        if self.topology == "flattened_butterfly":
            if self.fb_routers < 2:
                raise ValueError(
                    f"fb_routers must be >= 2 for a flattened butterfly, got "
                    f"{self.fb_routers}"
                )
            if self.fb_routers < 3 and self.routing == "valiant":
                raise ValueError(
                    "valiant routing on a flattened butterfly needs "
                    f"fb_routers >= 3 (got {self.fb_routers}): no "
                    "intermediate router exists"
                )
        if self.topology == "torus" and min(self.torus_rows, self.torus_cols) < 3:
            raise ValueError(
                f"torus_rows/torus_cols must be >= 3, got "
                f"{self.torus_rows}x{self.torus_cols}: a ring of fewer than "
                "3 routers folds both link directions onto one neighbour"
            )
        if not 0.0 <= self.threshold:
            raise ValueError("threshold must be non-negative")
        if self.router_latency < 0:
            raise ValueError("router_latency must be non-negative")
        if self.local_latency < 1 or self.global_latency < 1:
            # a 0-cycle link would return credits within the granting
            # cycle, which no credit-based router can model faithfully
            raise ValueError("link latencies must be at least 1 cycle")
        # Derived defaults: remember which fields were left unset (``None``
        # sentinel) so :meth:`with_` recomputes them against the new base
        # values instead of freezing the stale resolved number.
        self._pb_update_period_auto = self.pb_update_period is None
        if self.pb_update_period is None:
            self.pb_update_period = self.local_latency

    def with_(self, **kwargs) -> "SimConfig":
        """Return a copy with fields replaced (convenience for sweeps).

        Derived defaults that were never set explicitly (currently
        ``pb_update_period``, which tracks ``local_latency``) are
        re-derived on the copy rather than carried over as stale values.
        """
        if self._pb_update_period_auto and "pb_update_period" not in kwargs:
            kwargs.setdefault("pb_update_period", None)
        return replace(self, **kwargs)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """JSON-safe mapping of every field (round-trips via :meth:`from_dict`).

        Auto-derived fields are serialized as ``None`` so that the
        round-tripped config keeps re-deriving them.
        """
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        if self._pb_update_period_auto:
            d["pb_update_period"] = None
        return d

    def canonical_json(self) -> str:
        """Deterministic JSON encoding of :meth:`to_dict`, minus ``engine``.

        Keys are sorted and separators fixed, so two equal configs always
        encode to the same byte string — the basis of result-cache keys
        and run-plan identity (:func:`config_hash`).  ``engine`` is
        dropped: every backend is record-identical by contract (enforced
        by the golden matrix), so the same physics must hash to the same
        key no matter which engine computed it — a cache entry written
        under one engine is a hit for all of them.
        """
        d = self.to_dict()
        del d["engine"]
        return json.dumps(d, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` (stable across runs)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Build a validated config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` (catches typos in sweep
        manifests and CLI config files early).
        """
        if not isinstance(data, dict):
            raise ValueError(f"SimConfig.from_dict needs a dict, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SimConfig field(s): {unknown}; known: {sorted(known)}")
        return cls(**data)


#: Paper-faithful configuration for the VCT experiments (§IV-A), h reduced.
def paper_vct_config(h: int = 2, routing: str = "olm", **over) -> SimConfig:
    return SimConfig(h=h, routing=routing, flow_control="vct", packet_phits=8, **over)


#: Paper-faithful configuration for the WH experiments (§IV-B), h reduced.
def paper_wh_config(h: int = 2, routing: str = "rlm", **over) -> SimConfig:
    return SimConfig(h=h, routing=routing, flow_control="wh",
                     packet_phits=80, flit_phits=10, **over)
