"""Input-side buffering: virtual-channel FIFOs grouped into physical ports."""

from __future__ import annotations

from collections import deque

from repro.network.packet import Flit


class VCBuffer:
    """One virtual-channel FIFO at a router input.

    Tracks phit occupancy and the output route allocated to the packet
    currently being forwarded (body flits follow the head's grant).
    ``upstream_output`` is the :class:`~repro.network.ports.OutputUnit`
    feeding this buffer (``None`` for injection queues); credits are
    returned to it when a flit leaves.
    """

    __slots__ = (
        "fifo",
        "occupancy",
        "capacity",
        "vc_index",
        "upstream_output",
        "route_out",
        "route_vc",
    )

    def __init__(self, capacity: int, vc_index: int) -> None:
        self.fifo: deque[Flit] = deque()
        self.occupancy = 0
        self.capacity = capacity
        self.vc_index = vc_index
        self.upstream_output = None  # set during wiring
        self.route_out: int | None = None
        self.route_vc: int | None = None

    def head(self) -> Flit | None:
        return self.fifo[0] if self.fifo else None

    def push(self, flit: Flit) -> None:
        self.fifo.append(flit)
        self.occupancy += flit.size

    def pop(self) -> Flit:
        flit = self.fifo.popleft()
        self.occupancy -= flit.size
        return flit

    def __len__(self) -> int:
        return len(self.fifo)


class InputPort:
    """A physical input port: one or more VC buffers sharing read bandwidth.

    Only one flit per cycle can be read out of a physical port; a flit
    read keeps the port busy for its serialization time.

    ``buffered`` counts the flits across this port's VCs.  It is
    maintained by the engine (push on arrival/injection, pop on grant)
    so the allocation loop can skip empty ports without touching their
    VC lists.
    """

    __slots__ = ("vcs", "busy_until", "rr", "index", "is_injection", "buffered")

    def __init__(self, num_vcs: int, capacity: int, index: int, is_injection: bool = False) -> None:
        self.vcs = [VCBuffer(capacity, v) for v in range(num_vcs)]
        self.busy_until = 0
        self.rr = 0  # round-robin pointer over VCs
        self.index = index
        self.is_injection = is_injection
        self.buffered = 0

    def total_flits(self) -> int:
        return sum(len(vc) for vc in self.vcs)
