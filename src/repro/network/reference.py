"""The seed engine's hot path, frozen verbatim for comparison runs.

:class:`ReferenceSimulator` overrides every hot-path method of
:class:`~repro.network.simulator.Simulator` with the pre-timing-wheel
(PR 2) implementation: dict-of-lists event maps keyed by cycle, a full
scan over all routers every cycle, no idle fast-forward and no
per-port occupancy counters.  Construction, component resolution,
wiring, observers and statistics are shared with the live engine.

It exists for two jobs:

* ``tools/bench_engine.py`` measures the timing-wheel engine's
  cycles/sec against it (the committed ``BENCH_engine.json``);
* ``tests/test_engine_equivalence.py`` replays golden-record scenarios
  through it to prove the frozen copy still *is* the seed engine, so
  the live-vs-reference comparison keeps meaning something.

Do not "fix" or optimise this module — behaviour drift here silently
devalues both jobs.  The only intended divergence from the live engine
is the seed's known deadlock-detector false positive (flits in flight
on links longer than ``deadlock_window`` trip it); the regression test
for the fix exercises the live engine only.
"""

from __future__ import annotations

from repro.network.config import SimConfig
from repro.network.packet import Packet
from repro.network.router import Router
from repro.network.simulator import DeadlockError, Simulator
from repro.topology import PortKind


class ReferenceSimulator(Simulator):
    """Cycle engine with the seed (PR 2) hot path, for benchmarks/goldens."""

    def __init__(self, config: SimConfig, traffic=None) -> None:
        super().__init__(config, traffic)
        self._arrivals: dict[int, list] = {}
        self._credit_events: dict[int, list] = {}

    # ------------------------------------------------------------ injection
    def inject_packet(self, src: int, dst: int, now: int | None = None):
        if src == dst:
            raise ValueError("source and destination nodes must differ")
        t = self.now if now is None else now
        topo = self.topo
        sr = topo.router_of_node(src)
        dr = topo.router_of_node(dst)
        pkt = Packet(self._next_pid, src, dst, self.config.packet_phits, t,
                     sr, topo.group_of(sr), dr, topo.group_of(dr))
        self._next_pid += 1
        if self.config.record_hops:
            pkt.hops_log = []
        flits = self.fc.flits_of(pkt)
        router = self.routers[sr]
        vcb = router.inputs[topo.node_index(src)].vcs[0]
        for f in flits:
            vcb.push(f)
        router.pending += len(flits)
        self.stats.on_generated(pkt)
        self.packets_in_flight += 1
        return pkt

    # ------------------------------------------------------------ main loop
    def step(self) -> None:
        """One cycle, seed style: dict event pop + full router scan."""
        t = self.now
        arrivals = self._arrivals.pop(t, None)
        if arrivals:
            for router, port_idx, vc_idx, flit in arrivals:
                router.inputs[port_idx].vcs[vc_idx].push(flit)
                router.pending += 1
        credits = self._credit_events.pop(t, None)
        if credits:
            for out, vc, amount in credits:
                out.credits[vc] += amount
        if self.traffic is not None:
            self.traffic.inject(self, t)
        self.algo.per_cycle(self, t)
        for router in self.routers:
            if router.pending:
                self._process_router(router, t)
        self.now = t + 1

    def run(self, cycles: int) -> None:
        end = self.now + cycles
        window = self.config.deadlock_window
        while self.now < end:
            self.step()
            if (
                self.packets_in_flight
                and self.now - self._last_progress > window
            ):
                raise DeadlockError(
                    f"no flit moved for {window} cycles at t={self.now} "
                    f"with {self.packets_in_flight} packets in flight"
                )

    def run_until_drained(self, max_cycles: int) -> int:
        window = self.config.deadlock_window
        start = self.now
        while True:
            self.step()
            if not self.packets_in_flight and (
                self.traffic is None
                or getattr(self.traffic, "exhausted", True)
            ):
                break
            if self.now - start >= max_cycles:
                raise DeadlockError(
                    f"not drained after {max_cycles} cycles "
                    f"({self.packets_in_flight} packets left)"
                )
            if self.now - self._last_progress > window:
                raise DeadlockError(
                    f"no flit moved for {window} cycles at t={self.now} "
                    f"with {self.packets_in_flight} packets in flight"
                )
        return self.now - start

    # ------------------------------------------------------------ allocation
    def _process_router(self, router: Router, t: int) -> None:
        requests: dict[int, list] | None = None
        algo = self.algo
        for ip in router.inputs:
            if ip.busy_until > t:
                continue
            vcs = ip.vcs
            nv = len(vcs)
            rr = ip.rr
            sel = None
            for off in range(nv):
                vi = rr + off
                if vi >= nv:
                    vi -= nv
                vcb = vcs[vi]
                if not vcb.fifo:
                    continue
                flit = vcb.fifo[0]
                if vcb.route_out is None:
                    dec = algo.decide(router, flit.packet, t, flit)
                    if dec is None:
                        continue
                    sel = (ip, vcb, flit, dec.out, dec.vc, dec)
                else:
                    oidx, ovc = vcb.route_out, vcb.route_vc
                    if not router.can_accept_body(oidx, ovc, flit, t):
                        continue
                    sel = (ip, vcb, flit, oidx, ovc, None)
                break
            if sel is not None:
                if requests is None:
                    requests = {}
                requests.setdefault(sel[3], []).append(sel)
        if not requests:
            return
        nin = len(router.inputs)
        arbiter = self.arbiter
        for oidx, reqs in requests.items():
            out = router.outputs[oidx]
            if len(reqs) == 1:
                win = reqs[0]
            else:
                win = arbiter.pick(reqs, out, nin, self.rng_route)
            out.rr = (win[0].index + 1) % nin
            self._grant(router, out, win, t)

    def _grant(self, router: Router, out, sel, t: int) -> None:
        ip, vcb, flit, oidx, ovc, dec = sel
        vcb.pop()
        router.pending -= 1
        ip.busy_until = t + flit.size
        ip.rr = (vcb.vc_index + 1) % len(ip.vcs)
        out.busy_until = t + flit.size
        pkt = flit.packet
        is_eject = out.kind == PortKind.EJECT
        if dec is not None:
            self.algo.on_hop(router, pkt, dec)
            if pkt.hops_log is not None:
                pkt.hops_log.append((int(out.kind), out.index, ovc))
            if not flit.is_tail:
                vcb.route_out = oidx
                vcb.route_vc = ovc
                if not is_eject:
                    out.owner[ovc] = pkt.pid
        elif flit.is_tail:
            vcb.route_out = None
            vcb.route_vc = None
            if not is_eject:
                out.owner[ovc] = None
        if is_eject:
            if flit.is_tail:
                done = t + flit.size
                pkt.delivered_cycle = done
                self.stats.on_delivered(pkt, done)
                self.packets_in_flight -= 1
                if self._delivery_observers:
                    for observer in self._delivery_observers:
                        observer(pkt, done)
        else:
            out.credits[ovc] -= flit.size
            when = t + self.fc.arrival_delay(out.latency, flit) + self._router_latency
            self._arrivals.setdefault(when, []).append(
                (self.routers[out.dest_router], out.dest_port, ovc, flit)
            )
        up = vcb.upstream_output
        if up is not None:
            self._credit_events.setdefault(t + up.latency, []).append(
                (up, vcb.vc_index, flit.size)
            )
        self._last_progress = t


__all__ = ["ReferenceSimulator"]
