"""Array-core engine: numpy structure-of-arrays cycle simulator.

The wheel engine (:class:`~repro.network.simulator.Simulator`) spends
its saturated-traffic cycles in per-flit Python object traversal:
every buffered input port is visited, every candidate VC scanned, and
every grant mutates a half-dozen heap objects.  This backend flattens
all router/port/VC state into numpy structure-of-arrays and runs each
cycle's arrival/credit/allocation/grant phases as batched vectorized
passes over *all* routers at once — the per-cycle cost becomes a fixed
number of array kernels instead of O(buffered flits) interpreter work.

**Determinism contract** — records are byte-identical to the wheel
engine (and hence to the frozen seed engine), enforced over the golden
matrix in ``tests/test_engine_equivalence.py``.  The equivalence rests
on three facts about the wheel engine's cycle:

1. *Allocation is a pure function of pre-cycle state.*  Within one
   cycle the wheel computes every router's candidate selections before
   applying that router's grants, and a grant at one router only
   mutates its own ports and future wheel slots — never another
   router's same-cycle candidates.  The whole cycle's winner set is
   therefore order-free and can be computed in one batch.
2. *Per-cycle event uniqueness.*  Link serialization separates sends
   on one output by at least the flit size and the arrival delay is
   monotone in it, so at most one flit arrives per (router, input
   port) per cycle; each downstream input VC pops at most one flit per
   cycle and maps to exactly one upstream output VC, so at most one
   credit returns per output VC per cycle.  Batched FIFO pushes and
   credit adds are therefore race-free.
3. *Grant order is reproducible.*  The wheel grants in ascending
   router id, then in requests-dict insertion order — i.e. by the flat
   input-port id of each output's *first* requester.  The array engine
   sorts its winners by exactly that key, so the few order-sensitive
   effects (delivery-observer firing order, wheel-bucket append order
   carried into a later :meth:`_materialize`) are preserved verbatim.

**Eligibility** — the pure-array hot path needs routes that are a
function of injection state alone: the routing class must declare
``array_core = True`` (minimal routing does; adaptive mechanisms
re-decide per cycle and consume RNG), arbitration must be ``rr`` or
``age`` (``random`` draws from the routing RNG per conflict), flow
control must be the built-in VCT/WH pair, and no per-cycle routing
hook may exist.  Ineligible configurations silently run the inherited
wheel path — same records, wheel speed.

**Tap fallback** — eject-only taps (the Session's ``LatencyTap``) are
delivery observers and keep the array path.  Attaching any tap with
``on_inject``/``on_grant``/``on_credit``/``on_ring_entry`` (e.g. a
:class:`~repro.metrics.hub.MetricsHub`) triggers a one-way
:meth:`_materialize`: the array state is written back into the object
routers mid-run and the simulation continues byte-identically on the
inherited wheel path.  External reads of ``sim.routers`` materialize
the same way, so introspection code sees ordinary object state.

With ``record_hops`` the whole hop log is prefilled at injection (the
route is known then); the delivered log is byte-identical, it just
exists earlier than the wheel engine's grant-time appends.

**Batched injection** — when the traffic process offers the
``inject_batch(sim, now) -> (srcs, dsts)`` protocol (Bernoulli sources
do), each cycle's injections arrive as two index arrays and
:meth:`_array_inject_batch` applies them without creating a single
Packet object: identity lives in the packet SoA (*lazy packets*), the
route comes from a dense ``(src_router, dst_router)`` table, and the
Packet is only reconstructed (:meth:`_ensure_pkt`) if something needs
the object — a non-batch delivery observer or a materialization.
Deliveries of all-lazy grants are batched too, through
``StatsCollector.on_delivered_batch`` and the observers' optional
``on_eject_batch``.

**Sparse activity** — a set of flat input ports with buffered flits is
maintained across all mutation sites, so the per-cycle allocator scans
O(active ports) instead of O(all ports), and whenever a pass proves no
grant can happen before a *known* busy-timer expiry, allocation is
skipped entirely until that cycle (any arrival, credit or injection
resets the skip).  Sparse backlogged scenarios no longer pay the full
kernel sequence on empty cycles.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

from repro.core.base import RoutingAlgorithm
from repro.core.paritysign import link_type
from repro.network.flowcontrol import VirtualCutThrough, Wormhole
from repro.network.packet import Flit, Packet
from repro.network.simulator import Simulator
from repro.registry import ENGINE_REGISTRY
from repro.topology import PortKind

_EJECT = PortKind.EJECT
_LOCAL = PortKind.LOCAL
_GLOBAL = PortKind.GLOBAL


#: alloc-skip sentinel: "no time-driven unblock — wait for an event"
_ALLOC_IDLE = 1 << 62


#: per-class cache of wheel-bound companion classes (see _wheel_bound_class)
_WHEEL_BOUND: dict = {}


def _wheel_bound_class(cls):
    """A cached companion subclass of ``cls`` pinned to the wheel path.

    Two costs disappear at once.  ``ArraySimulator.routers`` is a data
    descriptor (the property that materializes array state on external
    reads), so it intercepts every read even after the mode is
    irreversibly "wheel" — and the wheel hot path reads ``self.routers``
    on every scheduled arrival; the companion shadows it with a plain
    class attribute.  And the dispatch overrides (``step`` & co.) are
    shadowed with the parent's functions *at the class level* — binding
    them as instance attributes would dodge the per-call mode test but
    defeats CPython's adaptive call-site specialization, which is
    measurably worse than the test it removes.
    """
    sub = _WHEEL_BOUND.get(cls)
    if sub is None:
        ns = {"routers": None, "_wheel_bound": True}
        for name in ("step", "inject_packet", "total_buffered_flits",
                     "arrivals_due", "_next_event_cycle",
                     "_fast_forward_target"):
            ns[name] = getattr(Simulator, name)
        sub = type(cls.__name__, (cls,), ns)
        _WHEEL_BOUND[cls] = sub
    return sub


def _grow(arr, needed: int, fill: int = 0):
    """Return ``arr`` grown (amortized doubling) to hold ``needed`` items."""
    cap = len(arr)
    if needed <= cap:
        return arr
    new_cap = max(needed, cap * 2, 64)
    out = _np.full(new_cap, fill, dtype=arr.dtype)
    out[:cap] = arr
    return out


@ENGINE_REGISTRY.register(
    "array", description="numpy structure-of-arrays core (fastest when saturated)")
class ArraySimulator(Simulator):
    """Structure-of-arrays engine backend (see module docstring).

    Construction builds the ordinary object routers (they are the
    fallback path and the materialization target); the array state is
    built lazily at the first injection or step, once eligibility can
    be judged against the fully-wired configuration and taps.
    """

    def __init__(self, config, traffic=None) -> None:
        #: "undecided" until the first inject/step, then "array" (SoA hot
        #: path live) or "wheel" (inherited object path, byte-identical)
        self._mode = "undecided"
        self._routers_list = []
        super().__init__(config, traffic)

    # --------------------------------------------------------- mode plumbing
    @property
    def routers(self):
        """The object routers; an external read materializes array state."""
        if self._mode == "array":
            self._materialize()
        return self._routers_list

    @routers.setter
    def routers(self, value) -> None:
        self._routers_list = value

    def _decide_mode(self) -> None:
        algo_t = type(self.algo)
        eligible = (
            _np is not None
            and getattr(algo_t, "array_core", False)
            and self._per_cycle is None
            and algo_t.is_escape_hop is RoutingAlgorithm.is_escape_hop
            and self.config.arbitration in ("rr", "age")
            and type(self.fc) in (VirtualCutThrough, Wormhole)
            and self._tap_inject is None
            and self._tap_grant is None
            and self._tap_credit is None
            and self._tap_ring is None
        )
        if eligible:
            self._build_arrays()
            self._mode = "array"
        else:
            self._mode = "wheel"
            self._bind_wheel_dispatch()

    def _bind_wheel_dispatch(self) -> None:
        """Pin the dispatch to the wheel path (mode is final).

        Once the mode is irreversibly "wheel", the per-call mode test in
        every override is pure overhead — the fallback would run a few
        percent slower than a plain wheel :class:`Simulator` for no
        reason.  Flip the instance onto the wheel-bound companion class
        (see :func:`_wheel_bound_class`): the overrides and the
        ``routers`` property are shadowed there at the class level, so
        dispatch costs exactly what it does on the plain wheel engine.
        """
        if "_wheel_bound" not in type(self).__dict__:
            routers = self._routers_list
            self.__class__ = _wheel_bound_class(type(self))
            self.routers = routers

    def add_tap(self, tap):
        """Attach a tap; non-eject-only taps end the array fast path.

        Eject-only taps join the delivery observers and keep the array
        path.  A tap with inject/grant/credit/ring events needs the
        object engine's event sites, so a live array state is written
        back first (one-way; the run continues on the wheel path).
        """
        if self._mode == "array" and any(
            getattr(tap, name, None) is not None
            for name in ("on_inject", "on_grant", "on_credit", "on_ring_entry")
        ):
            self._materialize()
        return super().add_tap(tap)

    # ------------------------------------------------------------ dispatch
    def step(self) -> None:
        mode = self._mode
        if mode == "array":
            self._array_step()
        elif mode == "wheel":
            super().step()
        else:
            self._decide_mode()
            self.step()

    def inject_packet(self, src: int, dst: int, now: int | None = None) -> Packet:
        mode = self._mode
        if mode == "array":
            return self._array_inject(src, dst, now)
        if mode == "wheel":
            return super().inject_packet(src, dst, now)
        self._decide_mode()
        return self.inject_packet(src, dst, now)

    def total_buffered_flits(self) -> int:
        if self._mode == "array":
            return int(self._buf_total)
        return super().total_buffered_flits()

    def arrivals_due(self, when: int) -> list:
        if self._mode == "array":
            self._materialize()  # introspection wants object tuples
        return super().arrivals_due(when)

    def _next_event_cycle(self) -> int | None:
        if self._mode != "array":
            return super()._next_event_cycle()
        if not self._pending_events:
            return None
        horizon = self._horizon
        now = self.now
        arr, cr = self._a_arr_ring, self._a_cr_ring
        for off in range(horizon):
            slot = (now + off) % horizon
            if arr[slot] or cr[slot]:
                return now + off
        return None  # unreachable while _pending_events is consistent

    def _fast_forward_target(self, limit: int) -> int | None:
        if self._mode != "array":
            return super()._fast_forward_target(limit)
        if self._buf_total or self._per_cycle is not None:
            return None
        traffic = self.traffic
        if traffic is None or getattr(traffic, "exhausted", False):
            tin = None
        else:
            nic = getattr(traffic, "next_injection_cycle", None)
            if nic is None:
                return None  # opaque open-loop source: every cycle may inject
            tin = nic(self.now)
        nxt = self._next_event_cycle()
        target = min(t for t in (tin, nxt, limit) if t is not None)
        return target if target > self.now else None

    # -------------------------------------------------------- array building
    def _build_arrays(self) -> None:
        routers = self._routers_list
        i64 = _np.int64
        nr = len(routers)
        nin = len(routers[0].inputs)
        nout = len(routers[0].outputs)
        self._nr, self._nin, self._nout = nr, nin, nout
        np_ports = nr * nin

        # ---- input ports + input VCs
        ip_nvc = _np.empty(np_ports, i64)
        ip_vcbase = _np.empty(np_ports, i64)
        vc_count = 0
        vb_port_l: list[int] = []
        vb_vcidx_l: list[int] = []
        for r, router in enumerate(routers):
            for i, ip in enumerate(router.inputs):
                fp = r * nin + i
                nv = len(ip.vcs)
                ip_nvc[fp] = nv
                ip_vcbase[fp] = vc_count
                vc_count += nv
                vb_port_l.extend([fp] * nv)
                vb_vcidx_l.extend(range(nv))
        self._ip_nvc = ip_nvc
        self._ip_vcbase = ip_vcbase
        self._ip_busy = _np.zeros(np_ports, i64)
        self._ip_rr = _np.zeros(np_ports, i64)
        self._ip_buffered = _np.zeros(np_ports, i64)
        self._ip_lidx = _np.tile(_np.arange(nin, dtype=i64), nr)
        self._vb_port = _np.asarray(vb_port_l, i64)
        self._vb_vcidx = _np.asarray(vb_vcidx_l, i64)
        self._vb_head = _np.full(vc_count, -1, i64)
        self._vb_tail = _np.full(vc_count, -1, i64)
        self._vb_occ = _np.zeros(vc_count, i64)
        self._vb_route_op = _np.full(vc_count, -1, i64)
        self._vb_route_fovc = _np.full(vc_count, -1, i64)
        self._vb_up_ovc = _np.full(vc_count, -1, i64)
        self._vb_up_lat = _np.zeros(vc_count, i64)

        # ---- output ports + output VCs
        no_ports = nr * nout
        op_eject = _np.zeros(no_ports, bool)
        op_lat = _np.zeros(no_ports, i64)
        ovc_base = _np.empty(no_ports, i64)
        ov_count = 0
        ov_credits_l: list[int] = []
        ovc_out_l: list[int] = []
        for r, router in enumerate(routers):
            for o, out in enumerate(router.outputs):
                fo = r * nout + o
                nv = len(out.credits)
                ovc_base[fo] = ov_count
                ov_count += nv
                ov_credits_l.extend(out.credits)
                ovc_out_l.extend([fo] * nv)
                op_lat[fo] = out.latency
                op_eject[fo] = out.kind is _EJECT
        self._op_eject = op_eject
        self._op_lat = op_lat
        self._op_busy = _np.zeros(no_ports, i64)
        self._op_rr = _np.zeros(no_ports, i64)
        self._ovc_base = ovc_base
        self._ovc_out = _np.asarray(ovc_out_l, i64)
        self._ov_credits = _np.asarray(ov_credits_l, i64)
        self._ov_owner = _np.full(ov_count, -1, i64)
        self._ov_dest_ivc = _np.full(ov_count, -1, i64)
        # wire each output VC to the downstream input VC it feeds, and
        # the reverse map for credit returns
        for r, router in enumerate(routers):
            for o, out in enumerate(router.outputs):
                if out.kind is _EJECT:
                    continue
                fo = r * nout + o
                dfp = out.dest_router * nin + out.dest_port
                dbase = ip_vcbase[dfp]
                obase = ovc_base[fo]
                for v in range(len(out.credits)):
                    self._ov_dest_ivc[obase + v] = dbase + v
                    self._vb_up_ovc[dbase + v] = obase + v
                    self._vb_up_lat[dbase + v] = out.latency

        # ---- growable flit / packet / route pools (free-list recycled;
        # the route pool only grows — int hops, a few bytes per packet)
        self._fl_pkt = _np.zeros(0, i64)
        self._fl_size = _np.zeros(0, i64)
        self._fl_idx = _np.zeros(0, i64)
        self._fl_head = _np.zeros(0, bool)
        self._fl_tail = _np.zeros(0, bool)
        self._fl_next = _np.zeros(0, i64)
        # cached next-hop decision per flit: the (output, VC) this flit
        # requests at the router it currently sits in.  Minimal routing
        # makes this a pure function of (packet route, hop), so it is
        # written once at injection and refreshed at each grant instead
        # of being re-derived from the route pool on every alloc scan.
        self._fl_eff_op = _np.zeros(0, i64)
        self._fl_eff_fovc = _np.zeros(0, i64)
        self._fl_free: list[int] = []
        self._fl_used = 0
        self._pk_birth = _np.zeros(0, i64)
        self._pk_off = _np.zeros(0, i64)
        self._pk_hop = _np.zeros(0, i64)
        self._pk_nh = _np.zeros(0, i64)
        self._pk_ej_op = _np.zeros(0, i64)
        self._pk_ej_ovc = _np.zeros(0, i64)
        self._pk_free: list[int] = []
        self._pk_used = 0
        self._pkt_obj: list = []
        self._rt_op = _np.zeros(0, i64)
        self._rt_fovc = _np.zeros(0, i64)
        self._rt_len = 0
        #: (src_router, dst_router) -> shared route-pool entry (_walk_route)
        self._route_cache: dict = {}
        # plain-list mirrors for O(30ns) scalar lookups on the inject path
        self._ovc_base_l = ovc_base.tolist()
        self._ip_vcbase_l = ip_vcbase.tolist()
        # per-cycle injection staging (see _flush_injections):
        # packet fields, flit fields + FIFO chain links, per-VC aggregates
        self._stage: tuple = ([], [], [], [], [], [])
        self._stage_fl: tuple = ([], [], [], [], [], [], [], [])
        self._stage_ivc: dict = {}
        self._stage_n = 0

        # ---- wheels: ring of chunk lists, one (ids, payload) pair per
        # batched append; a slot only ever holds one target cycle
        self._a_arr_ring: list[list] = [[] for _ in range(self._horizon)]
        self._a_cr_ring: list[list] = [[] for _ in range(self._horizon)]
        self._buf_total = 0
        self._max_nvc = int(ip_nvc.max())
        self._is_vct = self.fc.whole_packet_reservation
        self._age_arb = self.config.arbitration == "age"
        config = self.config
        self._packet_phits = config.packet_phits
        self._record_hops = config.record_hops
        self._int_eject = int(_EJECT)
        # every packet has the same phit size, so the flit split is fixed
        size = config.packet_phits
        fs = config.flit_phits
        if self._is_vct or fs >= size:
            self._flit_sizes: tuple = (size,)
        else:
            n = -(-size // fs)
            self._flit_sizes = (fs,) * (n - 1) + (size - fs * (n - 1),)
        # single-flit packets (VCT, or WH with flit >= packet): every
        # flit is head and tail, so routes are never held and output-VC
        # ownership never engages — the allocator skips that machinery
        self._sf = len(self._flit_sizes) == 1
        # per-output arrival delay for whole-packet (VCT) sends; WH delay
        # depends on the flit size and is computed at grant time
        self._op_delay_vct = op_lat + 1 + self._router_latency

        # ---- batched-injection support: node-level lookup tables (src
        # node -> injection port/VC, dst node -> eject port/VC) and a
        # dense (src_router, dst_router) -> route-table id so a whole
        # cycle's batch resolves its routes with two gathers
        topo = self.topo
        nn = topo.num_nodes
        node_rt = _np.empty(nn, i64)
        node_k = _np.empty(nn, i64)
        for node in range(nn):
            node_rt[node] = topo.router_of_node(node)
            node_k[node] = topo.node_index(node)
        self._node_rt = node_rt
        self._node_kidx = node_k
        self._node_fp = node_rt * nin + node_k
        self._node_ivc = ip_vcbase[self._node_fp]  # injection ports: one VC
        node_ej_op = node_rt * nout + node_k
        self._node_ej_op = node_ej_op
        self._node_ej_ovc = ovc_base[node_ej_op]
        self._pair_rid = _np.full(nr * nr, -1, i64)
        self._pr_off = _np.zeros(0, i64)
        self._pr_nh = _np.zeros(0, i64)
        self._pr_hops = _np.zeros(0, i64)
        self._pr_ent: list = []
        # lazy-packet SoA: identity fields for batch-injected packets;
        # the Packet object is reconstructed on demand (_ensure_pkt)
        self._pk_pid = _np.zeros(0, i64)
        self._pk_src = _np.zeros(0, i64)
        self._pk_dst = _np.zeros(0, i64)
        self._pk_rid = _np.zeros(0, i64)
        self._pk_lazy = _np.zeros(0, bool)
        #: flat input ports with ip_buffered > 0 (sparse-activity index)
        self._act_set: set = set()
        #: earliest cycle the allocator could grant (alloc-skip gate);
        #: every arrival/credit/injection resets it to 0
        self._next_alloc_t = 0
        #: candidate build reused across no-grant retries (_array_alloc);
        #: every buffer-mutating event drops it
        self._alloc_cache = None
        #: scan structure (ports, pair layout) keyed on _act_epoch —
        #: reused while the set of active ports is membership-stable
        self._alloc_struct = None
        self._act_epoch = 0
        self._np_ports = np_ports
        #: full-fabric pair layout (key None): used when most ports are
        #: active, so membership churn never forces a rebuild — the
        #: buffered-head filter does the activity cut instead
        self._static_struct = None
        #: output VCs whose credits could unlock a grant (None = any)
        self._credit_watch = None
        #: (traffic identity, its inject_batch) — per-cycle getattr saved
        self._tb_cache: tuple = (None, None)
        #: (observer-list identity, batch forms) cache, see
        #: _delivery_batch_observers
        self._obs_batch: tuple = (None, None)

    def _alloc_pkt_slot(self) -> int:
        if self._pk_free:
            return self._pk_free.pop()
        s = self._pk_used
        self._pk_used += 1
        if s >= len(self._pk_birth):
            self._grow_pkt_pool(s + 1)
        return s

    _PK_ARRAYS = ("_pk_birth", "_pk_off", "_pk_hop", "_pk_nh", "_pk_ej_op",
                  "_pk_ej_ovc", "_pk_pid", "_pk_src", "_pk_dst", "_pk_rid",
                  "_pk_lazy")

    def _grow_pkt_pool(self, need: int) -> None:
        for name in self._PK_ARRAYS:
            setattr(self, name, _grow(getattr(self, name), need))
        self._pkt_obj.extend([None] * (len(self._pk_birth) - len(self._pkt_obj)))

    def _alloc_fl_slots(self, n: int) -> list[int]:
        free = self._fl_free
        take = min(n, len(free))
        slots = [free.pop() for _ in range(take)]
        while len(slots) < n:
            s = self._fl_used
            self._fl_used += 1
            if s >= len(self._fl_pkt):
                self._grow_fl_pool(s + 1)
            slots.append(s)
        return slots

    def _grow_fl_pool(self, need: int) -> None:
        self._fl_pkt = _grow(self._fl_pkt, need)
        self._fl_size = _grow(self._fl_size, need)
        self._fl_idx = _grow(self._fl_idx, need)
        self._fl_head = _grow(self._fl_head, need)
        self._fl_tail = _grow(self._fl_tail, need)
        self._fl_next = _grow(self._fl_next, need, fill=-1)
        self._fl_eff_op = _grow(self._fl_eff_op, need)
        self._fl_eff_fovc = _grow(self._fl_eff_fovc, need)

    # ------------------------------------------------------------ injection
    def _walk_route(self, sr: int, dr: int, pkt: Packet) -> tuple:
        """Walk the router path ``sr -> dr``, cache it, return the entry.

        Minimal routing is a pure function of injection state, so the
        whole hop sequence (and the packet-counter state the wheel
        engine would accumulate through its per-grant ``on_hop`` calls)
        is computed here once per ``(src_router, dst_router)`` pair and
        shared by every later packet on that pair.  The hops land in
        the append-only route pool; the eject hop is *not* stored — it
        is reconstructed per packet from ``_pk_ej_op``/``_pk_ej_ovc``
        (it depends on the destination node, not just the router).

        The walk mutates ``pkt``'s counters in hop order because the
        oracle reads them mid-path (dragonfly VC selection uses
        ``g_hops``); the final values are cached for cache-hit packets.
        """
        topo = self.topo
        nout = self._nout
        lbase = topo.p
        gbase = lbase + topo.local_ports
        ovc_base = self._ovc_base_l
        hops: list[int] = []
        fovcs: list[int] = []
        log: list[tuple] = []
        cur = sr
        while cur != dr:
            kind, port, target, vc = topo.min_hop(cur, pkt)
            oidx = (lbase + port) if kind is _LOCAL else (gbase + port)
            fop = cur * nout + oidx
            hops.append(fop)
            fovcs.append(ovc_base[fop] + vc)
            log.append((int(kind), port, vc))
            if kind is _GLOBAL:
                pkt.g_hops += 1
                pkt.local_hops_group = 0
                pkt.misrouted_group = False
                pkt.prev_local_type = None
                cur = topo.global_neighbor(cur, port)[0]
            else:
                pkt.local_hops_group += 1
                pkt.local_hops_total += 1
                pkt.last_local_vc = vc
                pkt.prev_local_type = link_type(topo.index_in_group(cur), target)
                cur = topo.router_id(topo.group_of(cur), target)
        nh = len(hops)
        start = self._rt_len
        if start + nh + 1 > len(self._rt_op):  # +1: clamp-gather headroom
            self._rt_op = _grow(self._rt_op, start + nh + 1)
            self._rt_fovc = _grow(self._rt_fovc, start + nh + 1)
        self._rt_op[start:start + nh] = hops
        self._rt_fovc[start:start + nh] = fovcs
        self._rt_len = start + nh
        ent = (start, nh, pkt.g_hops, pkt.local_hops_group,
               pkt.local_hops_total, pkt.prev_local_type, pkt.last_local_vc,
               tuple(log))
        self._route_cache[(sr, dr)] = ent
        return ent

    def _array_inject(self, src: int, dst: int, now: int | None) -> Packet:
        if src == dst:
            raise ValueError("source and destination nodes must differ")
        t = self.now if now is None else now
        topo = self.topo
        sr = topo.router_of_node(src)
        dr = topo.router_of_node(dst)
        pkt = Packet(self._next_pid, src, dst, self._packet_phits, t,
                     sr, topo.group_of(sr), dr, topo.group_of(dr))
        self._next_pid += 1
        ent = self._route_cache.get((sr, dr))
        if ent is None:
            ent = self._walk_route(sr, dr, pkt)
        else:
            pkt.g_hops = ent[2]
            pkt.local_hops_group = ent[3]
            pkt.local_hops_total = ent[4]
            pkt.prev_local_type = ent[5]
            pkt.last_local_vc = ent[6]
        k = topo.node_index(dst)
        ej_op = dr * self._nout + k
        if self._record_hops:
            pkt.hops_log = [*ent[7], (self._int_eject, k, 0)]

        # ---- stage the SoA writes: pure list appends here, one batch of
        # vectorized array writes per cycle in _flush_injections (scalar
        # numpy stores are ~100x a list append; injection is the hot path
        # of every saturated scenario)
        ps = self._alloc_pkt_slot()
        self._pkt_obj[ps] = pkt
        st = self._stage
        st[0].append(ps)
        st[1].append(t)
        st[2].append(ent[0])
        st[3].append(ent[1])
        st[4].append(ej_op)
        st[5].append(self._ovc_base_l[ej_op])

        sizes = self._flit_sizes  # all packets share one size: precomputed
        n = len(sizes)
        slots = self._alloc_fl_slots(n)
        fl_slot, fl_pkt, fl_size, fl_idx, fl_hd, fl_tl, ln_src, ln_dst = \
            self._stage_fl
        last = n - 1
        for i in range(n):
            s = slots[i]
            fl_slot.append(s)
            fl_pkt.append(ps)
            fl_size.append(sizes[i])
            fl_idx.append(i)
            fl_hd.append(i == 0)
            fl_tl.append(i == last)
            if i:
                ln_src.append(slots[i - 1])
                ln_dst.append(s)

        fp = sr * self._nin + topo.node_index(src)
        ivc = self._ip_vcbase_l[fp]  # injection ports have exactly one VC
        entry = self._stage_ivc.get(ivc)
        if entry is None:
            self._stage_ivc[ivc] = [slots[0], slots[last], n,
                                    self._packet_phits, fp]
        else:  # second packet on this node this cycle: chain the FIFOs
            ln_src.append(entry[1])
            ln_dst.append(slots[0])
            entry[1] = slots[last]
            entry[2] += n
            entry[3] += self._packet_phits
        self._stage_n += n
        self._buf_total += n
        self.stats.on_generated(pkt)
        self.packets_in_flight += 1
        return pkt

    def _flush_injections(self) -> None:
        """Apply this cycle's staged injections to the SoA state in batch."""
        if not self._stage_n:
            return
        asarray = _np.asarray
        i64 = _np.int64
        st = self._stage
        ps = asarray(st[0], i64)
        self._pk_birth[ps] = st[1]
        self._pk_hop[ps] = 0
        self._pk_off[ps] = st[2]
        self._pk_nh[ps] = st[3]
        self._pk_ej_op[ps] = st[4]
        self._pk_ej_ovc[ps] = st[5]
        fl_slot, fl_pkt, fl_size, fl_idx, fl_hd, fl_tl, ln_src, ln_dst = \
            self._stage_fl
        fs = asarray(fl_slot, i64)
        self._fl_pkt[fs] = fl_pkt
        self._fl_size[fs] = fl_size
        self._fl_idx[fs] = fl_idx
        self._fl_head[fs] = fl_hd
        self._fl_tail[fs] = fl_tl
        self._fl_next[fs] = -1
        fps_of_flit = asarray(fl_pkt, i64)
        off = self._pk_off[fps_of_flit]
        in_rt = self._pk_nh[fps_of_flit] > 0
        self._fl_eff_op[fs] = _np.where(in_rt, self._rt_op[off],
                                        self._pk_ej_op[fps_of_flit])
        self._fl_eff_fovc[fs] = _np.where(in_rt, self._rt_fovc[off],
                                          self._pk_ej_ovc[fps_of_flit])
        if ln_src:
            self._fl_next[asarray(ln_src, i64)] = ln_dst
        # per-VC FIFO appends: one aggregated chain per injection VC
        items = self._stage_ivc
        ivcs = asarray(list(items.keys()), i64)
        agg = list(items.values())
        firsts = asarray([e[0] for e in agg], i64)
        tails = self._vb_tail[ivcs]
        em = tails < 0
        self._vb_head[ivcs[em]] = firsts[em]
        self._fl_next[tails[~em]] = firsts[~em]
        self._vb_tail[ivcs] = [e[1] for e in agg]
        self._vb_occ[ivcs] += asarray([e[3] for e in agg], i64)
        fps = [e[4] for e in agg]
        self._ip_buffered[asarray(fps, i64)] += \
            asarray([e[2] for e in agg], i64)
        # injection ports have one VC each, so a new head (em) and a
        # newly active port are the same condition; appends behind an
        # existing tail leave the candidate matrix intact
        act = self._act_set
        if not act.issuperset(fps):
            act.update(fps)
            self._act_epoch += 1
            self._alloc_cache = None
        self._next_alloc_t = 0
        self._stage = ([], [], [], [], [], [])
        self._stage_fl = ([], [], [], [], [], [], [], [])
        self._stage_ivc = {}
        self._stage_n = 0

    def _pair_entry(self, src: int, dst: int, sr: int, dr: int, t: int) -> int:
        """Route-table id for ``(sr, dr)``, walking the route on a miss.

        Shares the scalar path's ``_route_cache`` entries (and its route
        pool) — a pair walked by either path serves both.  The walk
        needs a Packet for the routing oracle's counter reads; a
        throwaway one (pid -1) stands in, since minimal routes depend
        only on the router pair.
        """
        ent = self._route_cache.get((sr, dr))
        if ent is None:
            topo = self.topo
            pkt = Packet(-1, src, dst, self._packet_phits, t,
                         sr, topo.group_of(sr), dr, topo.group_of(dr))
            ent = self._walk_route(sr, dr, pkt)
        rid = len(self._pr_ent)
        self._pr_ent.append(ent)
        self._pr_off = _grow(self._pr_off, rid + 1)
        self._pr_nh = _grow(self._pr_nh, rid + 1)
        self._pr_hops = _grow(self._pr_hops, rid + 1)
        self._pr_off[rid] = ent[0]
        self._pr_nh[rid] = ent[1]
        self._pr_hops[rid] = ent[2] + ent[4]  # g_hops + local_hops_total
        self._pair_rid[sr * self._nr + dr] = rid
        return rid

    def _array_inject_batch(self, srcs, dsts, t: int) -> None:
        """Consume one cycle's batched injections without Packet objects.

        The vectorized path covers the case that matters: single-flit
        packets (VCT, or WH with flit >= packet), strictly ascending
        sources (what ``inject_batch`` emits — at most one packet per
        node per cycle), and a stats sink that understands batch counts.
        Packets land *lazy*: identity lives in the SoA and the object is
        only reconstructed if something needs it.  Anything else falls
        through to the scalar injection loop — same records either way.
        """
        if (len(self._flit_sizes) != 1
                or bool((srcs[1:] <= srcs[:-1]).any())
                or not hasattr(self.stats, "on_generated_batch")):
            inject = self._array_inject
            for s, d in zip(srcs.tolist(), dsts.tolist()):
                inject(s, d, t)
            return
        i64 = _np.int64
        nb = int(srcs.size)
        node_rt = self._node_rt
        sr = node_rt[srcs]
        dr = node_rt[dsts]
        pair = sr * self._nr + dr
        rid = self._pair_rid[pair]
        miss = rid < 0
        if miss.any():
            pair_rid = self._pair_rid
            pair_entry = self._pair_entry
            for i in miss.nonzero()[0].tolist():
                if pair_rid[pair[i]] < 0:
                    pair_entry(int(srcs[i]), int(dsts[i]),
                               int(sr[i]), int(dr[i]), t)
            rid = pair_rid[pair]

        # ---- slot allocation: recycled free-list slots first, then a
        # contiguous block off the end of each pool
        ps = _np.empty(nb, i64)
        free = self._pk_free
        take = min(nb, len(free))
        if take:  # bulk pop, preserving pop-from-the-end order
            ps[:take] = free[:-take - 1:-1]
            del free[-take:]
        rest = nb - take
        if rest:
            s0 = self._pk_used
            self._pk_used = s0 + rest
            if self._pk_used > len(self._pk_birth):
                self._grow_pkt_pool(self._pk_used)
            ps[take:] = _np.arange(s0, s0 + rest)
        fs = _np.empty(nb, i64)
        ffree = self._fl_free
        take = min(nb, len(ffree))
        if take:
            fs[:take] = ffree[:-take - 1:-1]
            del ffree[-take:]
        rest = nb - take
        if rest:
            s0 = self._fl_used
            need = s0 + rest
            self._fl_used = need
            if need > len(self._fl_pkt):
                self._grow_fl_pool(need)
            fs[take:] = _np.arange(s0, need)

        pid0 = self._next_pid
        self._next_pid = pid0 + nb
        self._pk_pid[ps] = _np.arange(pid0, pid0 + nb)
        self._pk_src[ps] = srcs
        self._pk_dst[ps] = dsts
        self._pk_rid[ps] = rid
        self._pk_lazy[ps] = True
        self._pk_birth[ps] = t
        self._pk_hop[ps] = 0
        off = self._pr_off[rid]
        ej_op = self._node_ej_op[dsts]
        ej_ovc = self._node_ej_ovc[dsts]
        self._pk_off[ps] = off
        self._pk_nh[ps] = self._pr_nh[rid]
        self._pk_ej_op[ps] = ej_op
        self._pk_ej_ovc[ps] = ej_ovc
        size = self._packet_phits
        self._fl_pkt[fs] = ps
        self._fl_size[fs] = size
        self._fl_idx[fs] = 0
        self._fl_head[fs] = True
        self._fl_tail[fs] = True
        self._fl_next[fs] = -1
        # next-hop at the injection router (hop 0): first stored hop,
        # or straight to eject when src and dst share a router
        in_rt = self._pr_nh[rid] > 0
        self._fl_eff_op[fs] = _np.where(in_rt, self._rt_op[off], ej_op)
        self._fl_eff_fovc[fs] = _np.where(in_rt, self._rt_fovc[off], ej_ovc)
        # FIFO appends: sources are unique, so every injection VC gains
        # exactly one tail flit — one scatter per field
        ivcs = self._node_ivc[srcs]
        tails = self._vb_tail[ivcs]
        em = tails < 0
        self._vb_head[ivcs[em]] = fs[em]
        self._fl_next[tails[~em]] = fs[~em]
        self._vb_tail[ivcs] = fs
        self._vb_occ[ivcs] += size
        fps = self._node_fp[srcs]
        self._ip_buffered[fps] += 1
        # injection ports have one VC each: a new head and a newly
        # active port coincide, and appends behind existing backlog
        # (the saturated steady state) leave the candidate matrix valid
        fpl = fps.tolist()
        act = self._act_set
        if not act.issuperset(fpl):
            act.update(fpl)
            self._act_epoch += 1
            self._alloc_cache = None
        self._buf_total += nb
        self.packets_in_flight += nb
        self.stats.on_generated_batch(nb)
        self._next_alloc_t = 0

    def _ensure_pkt(self, ps: int) -> Packet:
        """The Packet object of slot ``ps``, reconstructing a lazy one.

        The reconstruction is exactly what the scalar inject would have
        built: final route-walk counters (a later rewind rolls them
        back to the granted prefix when needed) and, with record_hops,
        the prefilled hop log.
        """
        pkt = self._pkt_obj[ps]
        if pkt is not None:
            return pkt
        topo = self.topo
        src = int(self._pk_src[ps])
        dst = int(self._pk_dst[ps])
        sr = int(self._node_rt[src])
        dr = int(self._node_rt[dst])
        pkt = Packet(int(self._pk_pid[ps]), src, dst, self._packet_phits,
                     int(self._pk_birth[ps]), sr, topo.group_of(sr), dr,
                     topo.group_of(dr))
        ent = self._pr_ent[int(self._pk_rid[ps])]
        pkt.g_hops = ent[2]
        pkt.local_hops_group = ent[3]
        pkt.local_hops_total = ent[4]
        pkt.prev_local_type = ent[5]
        pkt.last_local_vc = ent[6]
        if self._record_hops:
            pkt.hops_log = [*ent[7],
                            (self._int_eject, int(self._node_kidx[dst]), 0)]
        self._pk_lazy[ps] = False
        self._pkt_obj[ps] = pkt
        return pkt

    def _delivery_batch_observers(self):
        """Batch forms of the delivery observers, or ``False``.

        ``False`` means at least one observer has no ``on_eject_batch``
        — deliveries must materialize the Packet and fire scalar.  The
        result is cached on the observer list's identity (the list is
        rebound copy-on-write by every attach/detach).
        """
        obs = self._delivery_observers
        key, val = self._obs_batch
        if key is obs:
            return val
        fns = []
        for fn in obs:
            bf = getattr(getattr(fn, "__self__", None), "on_eject_batch", None)
            if bf is None:
                fns = False
                break
            fns.append(bf)
        self._obs_batch = (obs, fns)
        return fns

    # ------------------------------------------------------------ main loop
    def _array_step(self) -> None:
        t = self.now
        slot = t % self._horizon
        chunks = self._a_arr_ring[slot]
        if chunks:
            vb_tail = self._vb_tail
            act = self._act_set
            popped = 0
            for ivcs, flits in chunks:
                tails = vb_tail[ivcs]
                em = tails < 0
                wp = self._vb_port[ivcs]
                wpl = wp.tolist()
                if not act.issuperset(wpl):
                    # a previously idle port activates: new scan layout
                    act.update(wpl)
                    self._act_epoch += 1
                    self._alloc_cache = None
                elif self._alloc_cache is not None and bool(em.any()):
                    # an arrival into an empty VC of an active port is a
                    # new head — same layout, different candidates;
                    # appends behind existing flits change neither
                    self._alloc_cache = None
                self._vb_head[ivcs[em]] = flits[em]
                self._fl_next[tails[~em]] = flits[~em]
                vb_tail[ivcs] = flits
                self._vb_occ[ivcs] += self._fl_size[flits]
                self._ip_buffered[wp] += 1
                popped += len(ivcs)
            self._a_arr_ring[slot] = []
            self._pending_events -= popped
            self._buf_total += popped
            self._last_progress = t
            self._next_alloc_t = 0
        cchunks = self._a_cr_ring[slot]
        if cchunks:
            # credits wake the allocator only when a watched VC (an
            # op-free pair short on exactly these credits) is topped up;
            # a stale watch can only over-wake, never oversleep, because
            # the gate is beyond ``t`` only right after a no-grant score
            watch = self._credit_watch
            wake = watch is None
            for ovcs, amounts in cchunks:
                self._ov_credits[ovcs] += amounts
                self._pending_events -= len(ovcs)
                if not wake and watch and not watch.isdisjoint(
                        ovcs.tolist()):
                    wake = True
            self._a_cr_ring[slot] = []
            self._last_progress = t
            if wake:
                self._next_alloc_t = 0
                self._credit_watch = None
        traffic = self.traffic
        if traffic is not None:
            # batched-injection protocol (see processes.BernoulliTraffic):
            # one cycle's (srcs, dsts) in bulk when the process offers
            # it, the scalar per-packet loop otherwise.  Out-of-step
            # injections staged before this cycle flush first so FIFO
            # order within each injection VC is preserved.
            tb = self._tb_cache
            if tb[0] is not traffic:
                tb = (traffic, getattr(traffic, "inject_batch", None))
                self._tb_cache = tb
            inject_batch = tb[1]
            batch = None if inject_batch is None else inject_batch(self, t)
            if batch is None:
                traffic.inject(self, t)
            elif len(batch[0]):
                if self._stage_n:
                    self._flush_injections()
                self._array_inject_batch(batch[0], batch[1], t)
        if self._stage_n:
            self._flush_injections()
        if self._buf_total and t >= self._next_alloc_t:
            self._array_alloc(t)
        self.now = t + 1

    def _build_pair_struct(self, ports, key):
        """Flattened (port, VC-offset) scan layout over ``ports``.

        Pure membership function: reusable until the port list changes
        (``key`` is the act-epoch it was built for, or None for the
        full-fabric layout, which never goes stale).
        """
        nvc = self._ip_nvc[ports]
        n = len(ports)
        starts = _np.zeros(n, _np.int64)
        _np.cumsum(nvc[:-1], out=starts[1:])
        total = int(starts[-1] + nvc[-1]) if n else 0
        reps = _np.repeat(_np.arange(n), nvc)  # port position per pair
        off = _np.arange(total) - starts[reps]
        return (key, ports, reps, off, nvc[reps],
                self._ip_vcbase[ports][reps], ports[reps])

    def _array_alloc(self, t: int) -> None:
        # Retry fast path: between events the candidate-pair matrix is
        # invariant — credits, owners and busy-vs-now are the only
        # moving parts — so a build from an earlier no-grant cycle is
        # re-scored with a handful of gathers.  Every event-driven way
        # the candidate set can change invalidates the cache at the
        # event site; port/output busy expiries are pure functions of
        # ``t`` and live in the score.
        c = self._alloc_cache
        if c is not None:
            self._alloc_score(t, c)
            return
        # sparse-activity compaction: scan only the ports that hold
        # flits (sorted — ascending flat port id is the wheel scan
        # order).  The flattened (port, offset) layout depends only on
        # the membership of the active set, so it is cached and reused
        # across builds until a port activates or drains (_act_epoch).
        # A saturated fabric churns membership at the transit-port
        # margin every cycle; there the full-fabric layout (key None,
        # built once) wins — the buffered-head filter cuts idle VCs
        # anyway — with hysteresis so drains fall back to compaction.
        s = self._alloc_struct
        act = self._act_set
        np_p = self._np_ports
        if (s is None
                or (s[0] is None and 16 * len(act) < np_p)
                or (s[0] is not None and s[0] != self._act_epoch)):
            if 8 * len(act) >= np_p:
                s = self._static_struct
                if s is None:
                    s = self._build_pair_struct(_np.arange(np_p), None)
                    self._static_struct = s
            else:
                ports = _np.fromiter(act, _np.int64, len(act))
                ports.sort()
                s = self._build_pair_struct(ports, self._act_epoch)
            self._alloc_struct = s
        _, ports, reps, off, nvp, vcb, spp = s
        if not len(ports):
            return
        # flatten the round-robin VC scan into one (port, offset) pair
        # matrix, port-major / offset-minor: for each candidate port,
        # offset o visits VC (rr + o) mod nvc.  The first *sendable*
        # pair per port wins — exactly the wheel's scan-and-break —
        # and port-major order makes "first" a plain first-occurrence.
        vi = self._ip_rr[ports][reps] + off
        vi -= (vi >= nvp) * nvp
        ivc = vcb + vi
        head = self._vb_head[ivc]
        pi = (head >= 0).nonzero()[0]  # pairs with a buffered flit
        if not len(pi):
            self._credit_watch = None  # defensive: wake on any credit
            return
        reps = reps[pi]
        ivc = ivc[pi]
        vi = vi[pi]
        head = head[pi]
        pslot = self._fl_pkt[head]
        if self._sf:
            # single-flit: routes are never held, the cached per-flit
            # next-hop is always the live one
            alloc = None
            eff_op = self._fl_eff_op[head]
            eff_fovc = self._fl_eff_fovc[head]
        else:
            rop = self._vb_route_op[ivc]
            alloc = rop >= 0
            eff_op = _np.where(alloc, rop, self._fl_eff_op[head])
            eff_fovc = _np.where(alloc, self._vb_route_fovc[ivc],
                                 self._fl_eff_fovc[head])
        spp = spp[pi]
        ob = self._op_busy[eff_op]
        pb = self._ip_busy[spp]
        c = (spp, reps, ivc, vi, head, pslot, alloc,
             eff_op, eff_fovc, self._fl_size[head], self._fl_tail[head],
             self._op_eject[eff_op], ob, pb, _np.maximum(ob, pb))
        self._alloc_cache = c
        self._alloc_score(t, c)

    def _alloc_score(self, t: int, c) -> None:
        """Score a candidate build against live credit/owner state.

        Everything in ``c`` is event-invariant (see :meth:`_array_alloc`);
        the credit/owner gathers here are the only state that moves
        between events, and the cached busy-timers only move against
        ``t``.
        """
        (sp, reps, ivc, vi, head, pslot, alloc,
         eff_op, eff_fovc, size, tail, ej, ob, pb, bmax) = c
        cr_ok = self._ov_credits[eff_fovc] >= size
        busy_ok = bmax <= t  # fused input-port and output readiness
        if alloc is None:  # single-flit: ownership never engages
            sendable = busy_ok & (ej | cr_ok)
        else:
            owner = self._ov_owner[eff_fovc]
            own_ok = _np.where(alloc, owner == pslot, tail | (owner < 0))
            sendable = busy_ok & (ej | (cr_ok & own_ok))
        si = sendable.nonzero()[0]
        if not len(si):
            # every blocked pair waits on a busy-timer (known future
            # cycle) or on credits/owner state (pure event); nothing
            # can change before min(wake) without an event, and events
            # reset the gate.  The watch-set narrows the credit case:
            # only credits for a ready, op-free, credit-short pair's VC
            # can produce a grant before the wake cycle.
            wake = _ALLOC_IDLE
            fut = pb[pb > t]
            if len(fut):
                wake = int(fut.min())
            fut = ob[ob > t]
            if len(fut):
                w2 = int(fut.min())
                if w2 < wake:
                    wake = w2
            self._credit_watch = set(
                eff_fovc[busy_ok & ~ej & ~cr_ok].tolist())
            self._next_alloc_t = wake
            return
        # first sendable pair per port: pairs are in (port, offset)
        # order, so reps[si] is sorted and a neighbour-diff flags each
        # port's first occurrence — the wheel's winning VC
        rsi = reps[si]
        first = _np.empty(len(rsi), bool)
        first[0] = True
        first[1:] = rsi[1:] != rsi[:-1]
        w = si[first]
        sp = sp[w]
        sflit = head[w]
        sivc = ivc[w]
        svi = vi[w]
        sop = eff_op[w]
        sfovc = eff_fovc[w]

        # ---- per-output arbitration (rr: distance past the pointer;
        # age: oldest birth, then lowest input index — wheel keys verbatim)
        lidx = self._ip_lidx[sp]
        nin = self._nin
        if self._age_arb:
            order = _np.lexsort((lidx, self._pk_birth[pslot[w]], sop))
        else:
            order = _np.lexsort(((lidx - self._op_rr[sop]) % nin, sop))
        ssop = sop[order]
        firsts = _np.empty(len(order), bool)
        firsts[0] = True
        firsts[1:] = ssop[1:] != ssop[:-1]
        winners = order[firsts]  # one per requested output, by ascending output
        # wheel grant order: ascending flat port id of each output's
        # *first requester* (requests-dict insertion order per router,
        # routers in ascending id)
        by_port = _np.lexsort((sp, sop))
        bp_sop = sop[by_port]
        bp_first = _np.empty(len(by_port), bool)
        bp_first[0] = True
        bp_first[1:] = bp_sop[1:] != bp_sop[:-1]
        first_sp = sp[by_port[bp_first]]  # aligned: unique outputs ascending
        winners = winners[_np.argsort(first_sp, kind="stable")]

        self._apply_grants(t, sp[winners], sivc[winners], svi[winners],
                           sflit[winners], sop[winners], sfovc[winners])

    def _apply_grants(self, t, wp, wivc, wvi, wflit, wop, wfovc) -> None:
        self._alloc_cache = None  # grants move heads, busies and pointers
        fl_next = self._fl_next
        sf = self._sf
        size = self._fl_size[wflit]
        pslot = self._fl_pkt[wflit]
        if not sf:
            tail = self._fl_tail[wflit]
            head = self._fl_head[wflit]
        # FIFO pop + port/output bookkeeping
        nxt = fl_next[wflit]
        self._vb_head[wivc] = nxt
        drained = nxt < 0
        if drained.any():  # rare at saturation: VC emptied by this pop
            self._vb_tail[wivc[drained]] = -1
        fl_next[wflit] = -1
        self._vb_occ[wivc] -= size
        ip_buffered = self._ip_buffered
        ip_buffered[wp] -= 1
        emptied = wp[ip_buffered[wp] == 0]
        if len(emptied):
            self._act_set.difference_update(emptied.tolist())
            self._act_epoch += 1
        self._buf_total -= len(wp)
        busy = t + size
        self._ip_busy[wp] = busy
        self._op_busy[wop] = busy
        self._ip_rr[wp] = (wvi + 1) % self._ip_nvc[wp]
        self._op_rr[wop] = (self._ip_lidx[wp] + 1) % self._nin
        eject = self._op_eject[wop]
        if sf:
            # single-flit: every winner is its packet's only flit (a
            # packet appears at most once per grant batch), and routes
            # are never held — skip the hold/release machinery
            self._pk_hop[pslot] += 1
        else:
            self._pk_hop[pslot[head]] += 1  # one head per packet per cycle
            # route hold (head, more flits follow) / release (tail of a
            # multi-flit packet)
            hold = head & ~tail
            self._vb_route_op[wivc[hold]] = wop[hold]
            self._vb_route_fovc[wivc[hold]] = wfovc[hold]
            own = hold & ~eject
            self._ov_owner[wfovc[own]] = pslot[own]
            rel = tail & ~head
            self._vb_route_op[wivc[rel]] = -1
            self._vb_route_fovc[wivc[rel]] = -1
            free = rel & ~eject
            self._ov_owner[wfovc[free]] = -1

        # ---- link sends: debit credits, schedule arrivals by delay class
        ne = ~eject
        if ne.any():
            ne_fovc = wfovc[ne]
            ne_size = size[ne]
            self._ov_credits[ne_fovc] -= ne_size
            if self._is_vct:
                delay = self._op_delay_vct[wop[ne]]
            else:
                delay = self._op_lat[wop[ne]] + ne_size + self._router_latency
            dest = self._ov_dest_ivc[ne_fovc]
            ne_flit = wflit[ne]
            # refresh the sent flits' next-hop decision for the router
            # they are entering (pk_hop already advanced for heads)
            ne_ps = pslot[ne]
            hop = self._pk_hop[ne_ps]
            in_rt = hop < self._pk_nh[ne_ps]
            ridx = _np.minimum(self._pk_off[ne_ps] + hop,
                               len(self._rt_op) - 1)
            self._fl_eff_op[ne_flit] = _np.where(
                in_rt, self._rt_op[ridx], self._pk_ej_op[ne_ps])
            self._fl_eff_fovc[ne_flit] = _np.where(
                in_rt, self._rt_fovc[ridx], self._pk_ej_ovc[ne_ps])
            ring = self._a_arr_ring
            horizon = self._horizon
            dl = delay.tolist()
            classes = set(dl)
            if len(classes) == 1:  # common: one delay class
                ring[(t + dl[0]) % horizon].append((dest, ne_flit))
            else:
                # distinct delays land in distinct ring slots (horizon
                # exceeds any delay), so class order is irrelevant
                for d in classes:
                    m = delay == d
                    ring[(t + d) % horizon].append((dest[m], ne_flit[m]))
            self._pending_events += len(ne_flit)

        # ---- upstream credit returns, grouped by link latency
        up = self._vb_up_ovc[wivc]
        um = up >= 0
        if um.any():
            u_ovc = up[um]
            u_lat = self._vb_up_lat[wivc[um]]
            u_size = size[um]
            cring = self._a_cr_ring
            horizon = self._horizon
            ll = u_lat.tolist()
            classes = set(ll)
            if len(classes) == 1:
                cring[(t + ll[0]) % horizon].append((u_ovc, u_size))
            else:
                for lv in classes:
                    m = u_lat == lv
                    cring[(t + lv) % horizon].append((u_ovc[m], u_size[m]))
            self._pending_events += len(u_ovc)
        self._last_progress = t

        # ---- ejected flits leave the pool; tails deliver (in grant order)
        if eject.any():
            self._fl_free.extend(wflit[eject].tolist())
            deliver = eject if sf else (eject & tail)
            if deliver.any():
                stats = self.stats
                dslots = pslot[deliver]
                dones = busy[deliver]
                # all-lazy deliveries with batch-capable sinks never
                # materialize a Packet: counters and latency samples are
                # computed straight from the SoA, in grant order
                batch_obs = self._delivery_batch_observers()
                if (batch_obs is not False
                        and bool(self._pk_lazy[dslots].all())
                        and hasattr(stats, "on_delivered_batch")):
                    nd = len(dslots)
                    lats = dones - self._pk_birth[dslots]
                    stats.on_delivered_batch(
                        nd, nd * self._packet_phits, int(lats.sum()),
                        int(lats.max()),
                        int(self._pr_hops[self._pk_rid[dslots]].sum()))
                    self.packets_in_flight -= nd
                    for fn in batch_obs:
                        fn(lats, dones)
                    self._pk_lazy[dslots] = False
                    self._pk_free.extend(dslots.tolist())
                else:
                    pobj = self._pkt_obj
                    pk_free = self._pk_free
                    ensure = self._ensure_pkt
                    for slot_, done in zip(dslots.tolist(), dones.tolist()):
                        pkt = ensure(slot_)
                        pkt.delivered_cycle = done
                        stats.on_delivered(pkt, done)
                        self.packets_in_flight -= 1
                        observers = self._delivery_observers
                        if observers:
                            for observer in observers:
                                observer(pkt, done)
                        pobj[slot_] = None
                        pk_free.append(slot_)

    # -------------------------------------------------------- materialization
    def _rewind_in_flight_packets(self) -> None:
        """Roll live packets' hop counters back to their granted prefix.

        The array path applies every ``on_hop`` update at injection
        (the walk needs them: dragonfly VC selection reads ``g_hops``
        mid-path) and never reads them again until delivery.  The wheel
        path re-applies ``on_hop`` per remaining grant, so handing over
        a packet with final-state counters would double-count — and
        mis-route, since ``min_hop`` picks VCs from ``g_hops``.  Replay
        each live packet's stored route prefix (``pk_hop`` grants) to
        reconstruct exactly the wheel's mid-flight state; prefilled hop
        logs are truncated to the granted prefix for the same reason.
        """
        topo = self.topo
        nout = self._nout
        lbase = topo.p
        gbase = lbase + topo.local_ports
        rt_op, rt_fovc = self._rt_op, self._rt_fovc
        ovc_base = self._ovc_base
        lazy = self._pk_lazy
        for ps in range(self._pk_used):
            pkt = self._pkt_obj[ps]
            if pkt is None:
                if not lazy[ps]:
                    continue
                pkt = self._ensure_pkt(ps)  # live lazy packet: reify it
            done = int(self._pk_hop[ps])
            if pkt.hops_log is not None:
                del pkt.hops_log[done:]
            pkt.g_hops = 0
            pkt.local_hops_group = 0
            pkt.local_hops_total = 0
            pkt.misrouted_group = False
            pkt.prev_local_type = None
            pkt.last_local_vc = 0
            off = int(self._pk_off[ps])
            # the stored route excludes the (counter-neutral) eject hop;
            # done == nh+1 for a WH packet whose head already ejected
            nh = int(self._pk_nh[ps])
            for i in range(min(done, nh)):
                fop = int(rt_op[off + i])
                oidx = fop % nout
                if oidx >= gbase:
                    pkt.g_hops += 1
                    pkt.local_hops_group = 0
                    pkt.misrouted_group = False
                    pkt.prev_local_type = None
                else:  # stored hops are LOCAL or GLOBAL, never EJECT
                    pkt.local_hops_group += 1
                    pkt.local_hops_total += 1
                    pkt.last_local_vc = int(rt_fovc[off + i]) - int(ovc_base[fop])
                    # next router: where the following hop is taken, or the
                    # destination router when this is the last stored hop
                    nxt = (int(rt_op[off + i + 1]) // nout if i + 1 < nh
                           else pkt.dst_router)
                    pkt.prev_local_type = link_type(
                        topo.index_in_group(fop // nout), topo.index_in_group(nxt))

    def _materialize(self) -> None:
        """Write the array state back into the object routers (one-way).

        After this the simulation continues on the inherited wheel
        path, byte-identically: every piece of engine state — FIFOs,
        occupancies, allocated routes, credit/owner/busy/rr state, the
        timing wheels, progress counters — is reconstructed exactly as
        the wheel engine would have built it.
        """
        if self._mode != "array":
            return
        if self._stage_n:
            self._flush_injections()
        self._mode = "wheel"
        self._rewind_in_flight_packets()
        routers = self._routers_list
        nin, nout = self._nin, self._nout
        fl_pkt, fl_size = self._fl_pkt, self._fl_size
        fl_idx, fl_head, fl_tail = self._fl_idx, self._fl_head, self._fl_tail
        pkt_obj = self._pkt_obj
        flit_cache: dict[int, Flit] = {}

        def fobj(s: int) -> Flit:
            f = flit_cache.get(s)
            if f is None:
                f = Flit(pkt_obj[fl_pkt[s]], int(fl_idx[s]), int(fl_size[s]),
                         bool(fl_head[s]), bool(fl_tail[s]))
                flit_cache[s] = f
            return f

        for r, router in enumerate(routers):
            pending = 0
            for i, ip in enumerate(router.inputs):
                fp = r * nin + i
                ip.busy_until = int(self._ip_busy[fp])
                ip.rr = int(self._ip_rr[fp])
                ip.buffered = int(self._ip_buffered[fp])
                pending += ip.buffered
                base = int(self._ip_vcbase[fp])
                for v, vcb in enumerate(ip.vcs):
                    ivc = base + v
                    vcb.fifo.clear()
                    s = int(self._vb_head[ivc])
                    while s >= 0:
                        vcb.fifo.append(fobj(s))
                        s = int(self._fl_next[s])
                    vcb.occupancy = int(self._vb_occ[ivc])
                    rop = int(self._vb_route_op[ivc])
                    if rop >= 0:
                        vcb.route_out = rop % nout
                        vcb.route_vc = int(self._vb_route_fovc[ivc]
                                           - self._ovc_base[rop])
                    else:
                        vcb.route_out = None
                        vcb.route_vc = None
            router.pending = pending
            for o, out in enumerate(router.outputs):
                fo = r * nout + o
                out.busy_until = int(self._op_busy[fo])
                out.rr = int(self._op_rr[fo])
                b = int(self._ovc_base[fo])
                for v in range(len(out.credits)):
                    out.credits[v] = int(self._ov_credits[b + v])
                    owner = int(self._ov_owner[b + v])
                    out.owner[v] = None if owner < 0 else pkt_obj[owner].pid
        self._active = {r.rid for r in routers if r.pending}

        # wheels: expand chunks into the wheel engine's tuple format,
        # preserving append order (chunks were pushed in grant order)
        vb_port, vb_vcidx = self._vb_port, self._vb_vcidx
        for s in range(self._horizon):
            bucket = self._arr_wheel[s]
            bucket.clear()
            for ivcs, flits in self._a_arr_ring[s]:
                for ivc, fs in zip(ivcs.tolist(), flits.tolist()):
                    fp = int(vb_port[ivc])
                    bucket.append((routers[fp // nin], fp % nin,
                                   int(vb_vcidx[ivc]), fobj(fs)))
            cbucket = self._cr_wheel[s]
            cbucket.clear()
            for ovcs, amounts in self._a_cr_ring[s]:
                for fovc, amount in zip(ovcs.tolist(), amounts.tolist()):
                    fo = int(self._ovc_out[fovc])
                    out = routers[fo // nout].outputs[fo % nout]
                    cbucket.append((out, int(fovc - self._ovc_base[fo]),
                                    int(amount)))
        # drop the array state: the object graph is authoritative now
        self._a_arr_ring = self._a_cr_ring = None
        self._pkt_obj = []
        self._pr_ent = None
        self._act_set = None
        self._alloc_cache = None
        self._alloc_struct = None
        self._static_struct = None
        self._credit_watch = None
        self._obs_batch = (None, None)
        self._tb_cache = (None, None)
        for name in ("_ip_nvc", "_ip_vcbase", "_ip_busy", "_ip_rr",
                     "_ip_buffered", "_ip_lidx", "_vb_port", "_vb_vcidx",
                     "_vb_head", "_vb_tail", "_vb_occ", "_vb_route_op",
                     "_vb_route_fovc", "_vb_up_ovc", "_vb_up_lat",
                     "_op_eject", "_op_lat", "_op_busy", "_op_rr",
                     "_ovc_base", "_ovc_out", "_ov_credits", "_ov_owner",
                     "_ov_dest_ivc", "_fl_pkt", "_fl_size", "_fl_idx",
                     "_fl_head", "_fl_tail", "_fl_next", "_fl_eff_op",
                     "_fl_eff_fovc", "_pk_birth",
                     "_pk_off", "_pk_hop", "_pk_nh", "_pk_ej_op",
                     "_pk_ej_ovc", "_pk_pid", "_pk_src", "_pk_dst",
                     "_pk_rid", "_pk_lazy", "_pr_off", "_pr_nh", "_pr_hops",
                     "_pair_rid", "_node_rt", "_node_kidx", "_node_fp",
                     "_node_ivc", "_node_ej_op", "_node_ej_ovc",
                     "_rt_op", "_rt_fovc", "_route_cache",
                     "_ovc_base_l", "_ip_vcbase_l", "_op_delay_vct"):
            setattr(self, name, None)
        # the mode is final: pin dispatch to the wheel path
        self._bind_wheel_dispatch()


@ENGINE_REGISTRY.register(
    "auto", description="array core when the point is eligible, wheel otherwise")
class AutoSimulator(ArraySimulator):
    """Per-point engine selection, as an engine.

    :class:`ArraySimulator` already embeds the exact eligibility test —
    it runs the SoA core when the configuration qualifies (array-core
    routing, VCT/WH flow control, rr/age arbitration, no event taps)
    and the byte-identical wheel path otherwise, with dispatch pinned
    so the fallback costs nothing over a plain wheel run.  ``auto`` is
    that behaviour under a name the sweep runner can default to: each
    point in a sweep independently gets the fastest engine that
    preserves the record bytes.
    """


__all__ = ["ArraySimulator", "AutoSimulator"]
