"""Array-core engine: numpy structure-of-arrays cycle simulator.

The wheel engine (:class:`~repro.network.simulator.Simulator`) spends
its saturated-traffic cycles in per-flit Python object traversal:
every buffered input port is visited, every candidate VC scanned, and
every grant mutates a half-dozen heap objects.  This backend flattens
all router/port/VC state into numpy structure-of-arrays and runs each
cycle's arrival/credit/allocation/grant phases as batched vectorized
passes over *all* routers at once — the per-cycle cost becomes a fixed
number of array kernels instead of O(buffered flits) interpreter work.

**Determinism contract** — records are byte-identical to the wheel
engine (and hence to the frozen seed engine), enforced over the golden
matrix in ``tests/test_engine_equivalence.py``.  The equivalence rests
on three facts about the wheel engine's cycle:

1. *Allocation is a pure function of pre-cycle state.*  Within one
   cycle the wheel computes every router's candidate selections before
   applying that router's grants, and a grant at one router only
   mutates its own ports and future wheel slots — never another
   router's same-cycle candidates.  The whole cycle's winner set is
   therefore order-free and can be computed in one batch.
2. *Per-cycle event uniqueness.*  Link serialization separates sends
   on one output by at least the flit size and the arrival delay is
   monotone in it, so at most one flit arrives per (router, input
   port) per cycle; each downstream input VC pops at most one flit per
   cycle and maps to exactly one upstream output VC, so at most one
   credit returns per output VC per cycle.  Batched FIFO pushes and
   credit adds are therefore race-free.
3. *Grant order is reproducible.*  The wheel grants in ascending
   router id, then in requests-dict insertion order — i.e. by the flat
   input-port id of each output's *first* requester.  The array engine
   sorts its winners by exactly that key, so the few order-sensitive
   effects (delivery-observer firing order, wheel-bucket append order
   carried into a later :meth:`_materialize`) are preserved verbatim.

**Eligibility** — the pure-array hot path needs routes that are a
function of injection state alone: the routing class must declare
``array_core = True`` (minimal routing does; adaptive mechanisms
re-decide per cycle and consume RNG), arbitration must be ``rr`` or
``age`` (``random`` draws from the routing RNG per conflict), flow
control must be the built-in VCT/WH pair, and no per-cycle routing
hook may exist.  Ineligible configurations silently run the inherited
wheel path — same records, wheel speed.

**Tap fallback** — eject-only taps (the Session's ``LatencyTap``) are
delivery observers and keep the array path.  Attaching any tap with
``on_inject``/``on_grant``/``on_credit``/``on_ring_entry`` (e.g. a
:class:`~repro.metrics.hub.MetricsHub`) triggers a one-way
:meth:`_materialize`: the array state is written back into the object
routers mid-run and the simulation continues byte-identically on the
inherited wheel path.  External reads of ``sim.routers`` materialize
the same way, so introspection code sees ordinary object state.

With ``record_hops`` the whole hop log is prefilled at injection (the
route is known then); the delivered log is byte-identical, it just
exists earlier than the wheel engine's grant-time appends.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

from repro.core.base import RoutingAlgorithm
from repro.core.paritysign import link_type
from repro.network.flowcontrol import VirtualCutThrough, Wormhole
from repro.network.packet import Flit, Packet
from repro.network.simulator import Simulator
from repro.registry import ENGINE_REGISTRY
from repro.topology import PortKind

_EJECT = PortKind.EJECT
_LOCAL = PortKind.LOCAL
_GLOBAL = PortKind.GLOBAL


def _grow(arr, needed: int, fill: int = 0):
    """Return ``arr`` grown (amortized doubling) to hold ``needed`` items."""
    cap = len(arr)
    if needed <= cap:
        return arr
    new_cap = max(needed, cap * 2, 64)
    out = _np.full(new_cap, fill, dtype=arr.dtype)
    out[:cap] = arr
    return out


@ENGINE_REGISTRY.register(
    "array", description="numpy structure-of-arrays core (fastest when saturated)")
class ArraySimulator(Simulator):
    """Structure-of-arrays engine backend (see module docstring).

    Construction builds the ordinary object routers (they are the
    fallback path and the materialization target); the array state is
    built lazily at the first injection or step, once eligibility can
    be judged against the fully-wired configuration and taps.
    """

    def __init__(self, config, traffic=None) -> None:
        #: "undecided" until the first inject/step, then "array" (SoA hot
        #: path live) or "wheel" (inherited object path, byte-identical)
        self._mode = "undecided"
        self._routers_list = []
        super().__init__(config, traffic)

    # --------------------------------------------------------- mode plumbing
    @property
    def routers(self):
        """The object routers; an external read materializes array state."""
        if self._mode == "array":
            self._materialize()
        return self._routers_list

    @routers.setter
    def routers(self, value) -> None:
        self._routers_list = value

    def _decide_mode(self) -> None:
        algo_t = type(self.algo)
        eligible = (
            _np is not None
            and getattr(algo_t, "array_core", False)
            and self._per_cycle is None
            and algo_t.is_escape_hop is RoutingAlgorithm.is_escape_hop
            and self.config.arbitration in ("rr", "age")
            and type(self.fc) in (VirtualCutThrough, Wormhole)
            and self._tap_inject is None
            and self._tap_grant is None
            and self._tap_credit is None
            and self._tap_ring is None
        )
        if eligible:
            self._build_arrays()
            self._mode = "array"
        else:
            self._mode = "wheel"

    def add_tap(self, tap):
        """Attach a tap; non-eject-only taps end the array fast path.

        Eject-only taps join the delivery observers and keep the array
        path.  A tap with inject/grant/credit/ring events needs the
        object engine's event sites, so a live array state is written
        back first (one-way; the run continues on the wheel path).
        """
        if self._mode == "array" and any(
            getattr(tap, name, None) is not None
            for name in ("on_inject", "on_grant", "on_credit", "on_ring_entry")
        ):
            self._materialize()
        return super().add_tap(tap)

    # ------------------------------------------------------------ dispatch
    def step(self) -> None:
        mode = self._mode
        if mode == "array":
            self._array_step()
        elif mode == "wheel":
            super().step()
        else:
            self._decide_mode()
            self.step()

    def inject_packet(self, src: int, dst: int, now: int | None = None) -> Packet:
        mode = self._mode
        if mode == "array":
            return self._array_inject(src, dst, now)
        if mode == "wheel":
            return super().inject_packet(src, dst, now)
        self._decide_mode()
        return self.inject_packet(src, dst, now)

    def total_buffered_flits(self) -> int:
        if self._mode == "array":
            return int(self._buf_total)
        return super().total_buffered_flits()

    def arrivals_due(self, when: int) -> list:
        if self._mode == "array":
            self._materialize()  # introspection wants object tuples
        return super().arrivals_due(when)

    def _next_event_cycle(self) -> int | None:
        if self._mode != "array":
            return super()._next_event_cycle()
        if not self._pending_events:
            return None
        horizon = self._horizon
        now = self.now
        arr, cr = self._a_arr_ring, self._a_cr_ring
        for off in range(horizon):
            slot = (now + off) % horizon
            if arr[slot] or cr[slot]:
                return now + off
        return None  # unreachable while _pending_events is consistent

    def _fast_forward_target(self, limit: int) -> int | None:
        if self._mode != "array":
            return super()._fast_forward_target(limit)
        if self._buf_total or self._per_cycle is not None:
            return None
        traffic = self.traffic
        if traffic is None or getattr(traffic, "exhausted", False):
            tin = None
        else:
            nic = getattr(traffic, "next_injection_cycle", None)
            if nic is None:
                return None  # opaque open-loop source: every cycle may inject
            tin = nic(self.now)
        nxt = self._next_event_cycle()
        target = min(t for t in (tin, nxt, limit) if t is not None)
        return target if target > self.now else None

    # -------------------------------------------------------- array building
    def _build_arrays(self) -> None:
        routers = self._routers_list
        i64 = _np.int64
        nr = len(routers)
        nin = len(routers[0].inputs)
        nout = len(routers[0].outputs)
        self._nr, self._nin, self._nout = nr, nin, nout
        np_ports = nr * nin

        # ---- input ports + input VCs
        ip_nvc = _np.empty(np_ports, i64)
        ip_vcbase = _np.empty(np_ports, i64)
        vc_count = 0
        vb_port_l: list[int] = []
        vb_vcidx_l: list[int] = []
        for r, router in enumerate(routers):
            for i, ip in enumerate(router.inputs):
                fp = r * nin + i
                nv = len(ip.vcs)
                ip_nvc[fp] = nv
                ip_vcbase[fp] = vc_count
                vc_count += nv
                vb_port_l.extend([fp] * nv)
                vb_vcidx_l.extend(range(nv))
        self._ip_nvc = ip_nvc
        self._ip_vcbase = ip_vcbase
        self._ip_busy = _np.zeros(np_ports, i64)
        self._ip_rr = _np.zeros(np_ports, i64)
        self._ip_buffered = _np.zeros(np_ports, i64)
        self._ip_lidx = _np.tile(_np.arange(nin, dtype=i64), nr)
        self._vb_port = _np.asarray(vb_port_l, i64)
        self._vb_vcidx = _np.asarray(vb_vcidx_l, i64)
        self._vb_head = _np.full(vc_count, -1, i64)
        self._vb_tail = _np.full(vc_count, -1, i64)
        self._vb_occ = _np.zeros(vc_count, i64)
        self._vb_route_op = _np.full(vc_count, -1, i64)
        self._vb_route_fovc = _np.full(vc_count, -1, i64)
        self._vb_up_ovc = _np.full(vc_count, -1, i64)
        self._vb_up_lat = _np.zeros(vc_count, i64)

        # ---- output ports + output VCs
        no_ports = nr * nout
        op_eject = _np.zeros(no_ports, bool)
        op_lat = _np.zeros(no_ports, i64)
        ovc_base = _np.empty(no_ports, i64)
        ov_count = 0
        ov_credits_l: list[int] = []
        ovc_out_l: list[int] = []
        for r, router in enumerate(routers):
            for o, out in enumerate(router.outputs):
                fo = r * nout + o
                nv = len(out.credits)
                ovc_base[fo] = ov_count
                ov_count += nv
                ov_credits_l.extend(out.credits)
                ovc_out_l.extend([fo] * nv)
                op_lat[fo] = out.latency
                op_eject[fo] = out.kind is _EJECT
        self._op_eject = op_eject
        self._op_lat = op_lat
        self._op_busy = _np.zeros(no_ports, i64)
        self._op_rr = _np.zeros(no_ports, i64)
        self._ovc_base = ovc_base
        self._ovc_out = _np.asarray(ovc_out_l, i64)
        self._ov_credits = _np.asarray(ov_credits_l, i64)
        self._ov_owner = _np.full(ov_count, -1, i64)
        self._ov_dest_ivc = _np.full(ov_count, -1, i64)
        # wire each output VC to the downstream input VC it feeds, and
        # the reverse map for credit returns
        for r, router in enumerate(routers):
            for o, out in enumerate(router.outputs):
                if out.kind is _EJECT:
                    continue
                fo = r * nout + o
                dfp = out.dest_router * nin + out.dest_port
                dbase = ip_vcbase[dfp]
                obase = ovc_base[fo]
                for v in range(len(out.credits)):
                    self._ov_dest_ivc[obase + v] = dbase + v
                    self._vb_up_ovc[dbase + v] = obase + v
                    self._vb_up_lat[dbase + v] = out.latency

        # ---- growable flit / packet / route pools (free-list recycled;
        # the route pool only grows — int hops, a few bytes per packet)
        self._fl_pkt = _np.zeros(0, i64)
        self._fl_size = _np.zeros(0, i64)
        self._fl_idx = _np.zeros(0, i64)
        self._fl_head = _np.zeros(0, bool)
        self._fl_tail = _np.zeros(0, bool)
        self._fl_next = _np.zeros(0, i64)
        self._fl_free: list[int] = []
        self._fl_used = 0
        self._pk_birth = _np.zeros(0, i64)
        self._pk_off = _np.zeros(0, i64)
        self._pk_hop = _np.zeros(0, i64)
        self._pk_nh = _np.zeros(0, i64)
        self._pk_ej_op = _np.zeros(0, i64)
        self._pk_ej_ovc = _np.zeros(0, i64)
        self._pk_free: list[int] = []
        self._pk_used = 0
        self._pkt_obj: list = []
        self._rt_op = _np.zeros(0, i64)
        self._rt_fovc = _np.zeros(0, i64)
        self._rt_len = 0
        #: (src_router, dst_router) -> shared route-pool entry (_walk_route)
        self._route_cache: dict = {}
        # plain-list mirrors for O(30ns) scalar lookups on the inject path
        self._ovc_base_l = ovc_base.tolist()
        self._ip_vcbase_l = ip_vcbase.tolist()
        # per-cycle injection staging (see _flush_injections):
        # packet fields, flit fields + FIFO chain links, per-VC aggregates
        self._stage: tuple = ([], [], [], [], [], [])
        self._stage_fl: tuple = ([], [], [], [], [], [], [], [])
        self._stage_ivc: dict = {}
        self._stage_n = 0

        # ---- wheels: ring of chunk lists, one (ids, payload) pair per
        # batched append; a slot only ever holds one target cycle
        self._a_arr_ring: list[list] = [[] for _ in range(self._horizon)]
        self._a_cr_ring: list[list] = [[] for _ in range(self._horizon)]
        self._buf_total = 0
        self._max_nvc = int(ip_nvc.max())
        self._is_vct = self.fc.whole_packet_reservation
        self._age_arb = self.config.arbitration == "age"
        config = self.config
        self._packet_phits = config.packet_phits
        self._record_hops = config.record_hops
        self._int_eject = int(_EJECT)
        # every packet has the same phit size, so the flit split is fixed
        size = config.packet_phits
        fs = config.flit_phits
        if self._is_vct or fs >= size:
            self._flit_sizes: tuple = (size,)
        else:
            n = -(-size // fs)
            self._flit_sizes = (fs,) * (n - 1) + (size - fs * (n - 1),)
        # per-output arrival delay for whole-packet (VCT) sends; WH delay
        # depends on the flit size and is computed at grant time
        self._op_delay_vct = op_lat + 1 + self._router_latency

    def _alloc_pkt_slot(self) -> int:
        if self._pk_free:
            return self._pk_free.pop()
        s = self._pk_used
        self._pk_used += 1
        if s >= len(self._pk_birth):
            self._pk_birth = _grow(self._pk_birth, s + 1)
            self._pk_off = _grow(self._pk_off, s + 1)
            self._pk_hop = _grow(self._pk_hop, s + 1)
            self._pk_nh = _grow(self._pk_nh, s + 1)
            self._pk_ej_op = _grow(self._pk_ej_op, s + 1)
            self._pk_ej_ovc = _grow(self._pk_ej_ovc, s + 1)
            self._pkt_obj.extend([None] * (len(self._pk_birth) - len(self._pkt_obj)))
        return s

    def _alloc_fl_slots(self, n: int) -> list[int]:
        free = self._fl_free
        take = min(n, len(free))
        slots = [free.pop() for _ in range(take)]
        while len(slots) < n:
            s = self._fl_used
            self._fl_used += 1
            if s >= len(self._fl_pkt):
                self._fl_pkt = _grow(self._fl_pkt, s + 1)
                self._fl_size = _grow(self._fl_size, s + 1)
                self._fl_idx = _grow(self._fl_idx, s + 1)
                self._fl_head = _grow(self._fl_head, s + 1)
                self._fl_tail = _grow(self._fl_tail, s + 1)
                self._fl_next = _grow(self._fl_next, s + 1, fill=-1)
            slots.append(s)
        return slots

    # ------------------------------------------------------------ injection
    def _walk_route(self, sr: int, dr: int, pkt: Packet) -> tuple:
        """Walk the router path ``sr -> dr``, cache it, return the entry.

        Minimal routing is a pure function of injection state, so the
        whole hop sequence (and the packet-counter state the wheel
        engine would accumulate through its per-grant ``on_hop`` calls)
        is computed here once per ``(src_router, dst_router)`` pair and
        shared by every later packet on that pair.  The hops land in
        the append-only route pool; the eject hop is *not* stored — it
        is reconstructed per packet from ``_pk_ej_op``/``_pk_ej_ovc``
        (it depends on the destination node, not just the router).

        The walk mutates ``pkt``'s counters in hop order because the
        oracle reads them mid-path (dragonfly VC selection uses
        ``g_hops``); the final values are cached for cache-hit packets.
        """
        topo = self.topo
        nout = self._nout
        lbase = topo.p
        gbase = lbase + topo.local_ports
        ovc_base = self._ovc_base_l
        hops: list[int] = []
        fovcs: list[int] = []
        log: list[tuple] = []
        cur = sr
        while cur != dr:
            kind, port, target, vc = topo.min_hop(cur, pkt)
            oidx = (lbase + port) if kind is _LOCAL else (gbase + port)
            fop = cur * nout + oidx
            hops.append(fop)
            fovcs.append(ovc_base[fop] + vc)
            log.append((int(kind), port, vc))
            if kind is _GLOBAL:
                pkt.g_hops += 1
                pkt.local_hops_group = 0
                pkt.misrouted_group = False
                pkt.prev_local_type = None
                cur = topo.global_neighbor(cur, port)[0]
            else:
                pkt.local_hops_group += 1
                pkt.local_hops_total += 1
                pkt.last_local_vc = vc
                pkt.prev_local_type = link_type(topo.index_in_group(cur), target)
                cur = topo.router_id(topo.group_of(cur), target)
        nh = len(hops)
        start = self._rt_len
        if start + nh + 1 > len(self._rt_op):  # +1: clamp-gather headroom
            self._rt_op = _grow(self._rt_op, start + nh + 1)
            self._rt_fovc = _grow(self._rt_fovc, start + nh + 1)
        self._rt_op[start:start + nh] = hops
        self._rt_fovc[start:start + nh] = fovcs
        self._rt_len = start + nh
        ent = (start, nh, pkt.g_hops, pkt.local_hops_group,
               pkt.local_hops_total, pkt.prev_local_type, pkt.last_local_vc,
               tuple(log))
        self._route_cache[(sr, dr)] = ent
        return ent

    def _array_inject(self, src: int, dst: int, now: int | None) -> Packet:
        if src == dst:
            raise ValueError("source and destination nodes must differ")
        t = self.now if now is None else now
        topo = self.topo
        sr = topo.router_of_node(src)
        dr = topo.router_of_node(dst)
        pkt = Packet(self._next_pid, src, dst, self._packet_phits, t,
                     sr, topo.group_of(sr), dr, topo.group_of(dr))
        self._next_pid += 1
        ent = self._route_cache.get((sr, dr))
        if ent is None:
            ent = self._walk_route(sr, dr, pkt)
        else:
            pkt.g_hops = ent[2]
            pkt.local_hops_group = ent[3]
            pkt.local_hops_total = ent[4]
            pkt.prev_local_type = ent[5]
            pkt.last_local_vc = ent[6]
        k = topo.node_index(dst)
        ej_op = dr * self._nout + k
        if self._record_hops:
            pkt.hops_log = [*ent[7], (self._int_eject, k, 0)]

        # ---- stage the SoA writes: pure list appends here, one batch of
        # vectorized array writes per cycle in _flush_injections (scalar
        # numpy stores are ~100x a list append; injection is the hot path
        # of every saturated scenario)
        ps = self._alloc_pkt_slot()
        self._pkt_obj[ps] = pkt
        st = self._stage
        st[0].append(ps)
        st[1].append(t)
        st[2].append(ent[0])
        st[3].append(ent[1])
        st[4].append(ej_op)
        st[5].append(self._ovc_base_l[ej_op])

        sizes = self._flit_sizes  # all packets share one size: precomputed
        n = len(sizes)
        slots = self._alloc_fl_slots(n)
        fl_slot, fl_pkt, fl_size, fl_idx, fl_hd, fl_tl, ln_src, ln_dst = \
            self._stage_fl
        last = n - 1
        for i in range(n):
            s = slots[i]
            fl_slot.append(s)
            fl_pkt.append(ps)
            fl_size.append(sizes[i])
            fl_idx.append(i)
            fl_hd.append(i == 0)
            fl_tl.append(i == last)
            if i:
                ln_src.append(slots[i - 1])
                ln_dst.append(s)

        fp = sr * self._nin + topo.node_index(src)
        ivc = self._ip_vcbase_l[fp]  # injection ports have exactly one VC
        entry = self._stage_ivc.get(ivc)
        if entry is None:
            self._stage_ivc[ivc] = [slots[0], slots[last], n,
                                    self._packet_phits, fp]
        else:  # second packet on this node this cycle: chain the FIFOs
            ln_src.append(entry[1])
            ln_dst.append(slots[0])
            entry[1] = slots[last]
            entry[2] += n
            entry[3] += self._packet_phits
        self._stage_n += n
        self._buf_total += n
        self.stats.on_generated(pkt)
        self.packets_in_flight += 1
        return pkt

    def _flush_injections(self) -> None:
        """Apply this cycle's staged injections to the SoA state in batch."""
        if not self._stage_n:
            return
        asarray = _np.asarray
        i64 = _np.int64
        st = self._stage
        ps = asarray(st[0], i64)
        self._pk_birth[ps] = st[1]
        self._pk_hop[ps] = 0
        self._pk_off[ps] = st[2]
        self._pk_nh[ps] = st[3]
        self._pk_ej_op[ps] = st[4]
        self._pk_ej_ovc[ps] = st[5]
        fl_slot, fl_pkt, fl_size, fl_idx, fl_hd, fl_tl, ln_src, ln_dst = \
            self._stage_fl
        fs = asarray(fl_slot, i64)
        self._fl_pkt[fs] = fl_pkt
        self._fl_size[fs] = fl_size
        self._fl_idx[fs] = fl_idx
        self._fl_head[fs] = fl_hd
        self._fl_tail[fs] = fl_tl
        self._fl_next[fs] = -1
        if ln_src:
            self._fl_next[asarray(ln_src, i64)] = ln_dst
        # per-VC FIFO appends: one aggregated chain per injection VC
        items = self._stage_ivc
        ivcs = asarray(list(items.keys()), i64)
        agg = list(items.values())
        firsts = asarray([e[0] for e in agg], i64)
        tails = self._vb_tail[ivcs]
        em = tails < 0
        self._vb_head[ivcs[em]] = firsts[em]
        self._fl_next[tails[~em]] = firsts[~em]
        self._vb_tail[ivcs] = [e[1] for e in agg]
        self._vb_occ[ivcs] += asarray([e[3] for e in agg], i64)
        self._ip_buffered[asarray([e[4] for e in agg], i64)] += \
            asarray([e[2] for e in agg], i64)
        self._stage = ([], [], [], [], [], [])
        self._stage_fl = ([], [], [], [], [], [], [], [])
        self._stage_ivc = {}
        self._stage_n = 0

    # ------------------------------------------------------------ main loop
    def _array_step(self) -> None:
        t = self.now
        slot = t % self._horizon
        chunks = self._a_arr_ring[slot]
        if chunks:
            vb_tail = self._vb_tail
            popped = 0
            for ivcs, flits in chunks:
                tails = vb_tail[ivcs]
                em = tails < 0
                self._vb_head[ivcs[em]] = flits[em]
                self._fl_next[tails[~em]] = flits[~em]
                vb_tail[ivcs] = flits
                self._vb_occ[ivcs] += self._fl_size[flits]
                self._ip_buffered[self._vb_port[ivcs]] += 1
                popped += len(ivcs)
            self._a_arr_ring[slot] = []
            self._pending_events -= popped
            self._buf_total += popped
            self._last_progress = t
        cchunks = self._a_cr_ring[slot]
        if cchunks:
            for ovcs, amounts in cchunks:
                self._ov_credits[ovcs] += amounts
                self._pending_events -= len(ovcs)
            self._a_cr_ring[slot] = []
            self._last_progress = t
        if self.traffic is not None:
            self.traffic.inject(self, t)
        if self._stage_n:
            self._flush_injections()
        if self._buf_total:
            self._array_alloc(t)
        self.now = t + 1

    def _array_alloc(self, t: int) -> None:
        ip_buffered = self._ip_buffered
        cand = (ip_buffered > 0) & (self._ip_busy <= t)
        if not cand.any():
            return
        ports = cand.nonzero()[0]  # ascending flat port id == wheel scan order
        nvc = self._ip_nvc[ports]
        rr = self._ip_rr[ports]
        vb_head = self._vb_head
        fl_pkt, fl_size, fl_tail = self._fl_pkt, self._fl_size, self._fl_tail
        ov_credits, ov_owner = self._ov_credits, self._ov_owner
        rt_cap = len(self._rt_op) - 1

        # flatten the round-robin VC scan into one (port, offset) pair
        # matrix, port-major / offset-minor: for each candidate port,
        # offset o visits VC (rr + o) mod nvc.  The first *sendable*
        # pair per port wins — exactly the wheel's scan-and-break —
        # and port-major order makes "first" a plain first-occurrence.
        starts = _np.zeros(len(ports), _np.int64)
        _np.cumsum(nvc[:-1], out=starts[1:])
        total = starts[-1] + nvc[-1] if len(ports) else 0
        reps = _np.repeat(_np.arange(len(ports)), nvc)  # port position per pair
        off = _np.arange(total) - starts[reps]
        vi = rr[reps] + off
        nvp = nvc[reps]
        vi -= (vi >= nvp) * nvp
        ivc = self._ip_vcbase[ports][reps] + vi
        head = vb_head[ivc]
        pi = (head >= 0).nonzero()[0]  # pairs with a buffered flit
        if not len(pi):
            return
        reps = reps[pi]
        ivc = ivc[pi]
        vi = vi[pi]
        head = head[pi]
        rop = self._vb_route_op[ivc]
        alloc = rop >= 0
        pslot = fl_pkt[head]
        hop = self._pk_hop[pslot]
        # heads past their stored hops are at the destination router:
        # the eject hop is implicit (per-packet, not in the shared route)
        in_rt = hop < self._pk_nh[pslot]
        ridx = _np.minimum(self._pk_off[pslot] + hop, rt_cap)
        eff_op = _np.where(alloc, rop,
                           _np.where(in_rt, self._rt_op[ridx],
                                     self._pk_ej_op[pslot]))
        eff_fovc = _np.where(alloc, self._vb_route_fovc[ivc],
                             _np.where(in_rt, self._rt_fovc[ridx],
                                       self._pk_ej_ovc[pslot]))
        size = fl_size[head]
        tail = fl_tail[head]
        owner = ov_owner[eff_fovc]
        own_ok = _np.where(alloc, owner == pslot, tail | (owner < 0))
        sendable = (self._op_busy[eff_op] <= t) & (
            self._op_eject[eff_op] | ((ov_credits[eff_fovc] >= size) & own_ok))
        si = sendable.nonzero()[0]
        if not len(si):
            return
        # first sendable pair per port: pairs are in (port, offset) order,
        # so unique's first-occurrence index is the wheel's winning VC
        _, first = _np.unique(reps[si], return_index=True)
        w = si[first]
        sp = ports[reps[w]]
        sflit = head[w]
        sivc = ivc[w]
        svi = vi[w]
        sop = eff_op[w]
        sfovc = eff_fovc[w]

        # ---- per-output arbitration (rr: distance past the pointer;
        # age: oldest birth, then lowest input index — wheel keys verbatim)
        lidx = self._ip_lidx[sp]
        nin = self._nin
        if self._age_arb:
            order = _np.lexsort((lidx, self._pk_birth[fl_pkt[sflit]], sop))
        else:
            order = _np.lexsort(((lidx - self._op_rr[sop]) % nin, sop))
        ssop = sop[order]
        firsts = _np.ones(len(order), bool)
        firsts[1:] = ssop[1:] != ssop[:-1]
        winners = order[firsts]  # one per requested output, by ascending output
        # wheel grant order: ascending flat port id of each output's
        # *first requester* (requests-dict insertion order per router,
        # routers in ascending id)
        by_port = _np.lexsort((sp, sop))
        bp_sop = sop[by_port]
        bp_first = _np.ones(len(by_port), bool)
        bp_first[1:] = bp_sop[1:] != bp_sop[:-1]
        first_sp = sp[by_port[bp_first]]  # aligned: unique outputs ascending
        winners = winners[_np.argsort(first_sp, kind="stable")]

        self._apply_grants(t, sp[winners], sivc[winners], svi[winners],
                           sflit[winners], sop[winners], sfovc[winners])

    def _apply_grants(self, t, wp, wivc, wvi, wflit, wop, wfovc) -> None:
        fl_next = self._fl_next
        size = self._fl_size[wflit]
        tail = self._fl_tail[wflit]
        head = self._fl_head[wflit]
        pslot = self._fl_pkt[wflit]
        # FIFO pop + port/output bookkeeping
        nxt = fl_next[wflit]
        self._vb_head[wivc] = nxt
        self._vb_tail[wivc] = _np.where(nxt < 0, -1, self._vb_tail[wivc])
        fl_next[wflit] = -1
        self._vb_occ[wivc] -= size
        self._ip_buffered[wp] -= 1
        self._buf_total -= len(wp)
        busy = t + size
        self._ip_busy[wp] = busy
        self._op_busy[wop] = busy
        self._ip_rr[wp] = (wvi + 1) % self._ip_nvc[wp]
        self._op_rr[wop] = (self._ip_lidx[wp] + 1) % self._nin
        self._pk_hop[pslot[head]] += 1  # one head per packet per cycle
        eject = self._op_eject[wop]
        # route hold (head, more flits follow) / release (tail of a
        # multi-flit packet); single-flit packets never store a route
        hold = head & ~tail
        self._vb_route_op[wivc[hold]] = wop[hold]
        self._vb_route_fovc[wivc[hold]] = wfovc[hold]
        own = hold & ~eject
        self._ov_owner[wfovc[own]] = pslot[own]
        rel = tail & ~head
        self._vb_route_op[wivc[rel]] = -1
        self._vb_route_fovc[wivc[rel]] = -1
        free = rel & ~eject
        self._ov_owner[wfovc[free]] = -1

        # ---- link sends: debit credits, schedule arrivals by delay class
        ne = ~eject
        if ne.any():
            ne_fovc = wfovc[ne]
            ne_size = size[ne]
            self._ov_credits[ne_fovc] -= ne_size
            if self._is_vct:
                delay = self._op_delay_vct[wop[ne]]
            else:
                delay = self._op_lat[wop[ne]] + ne_size + self._router_latency
            dest = self._ov_dest_ivc[ne_fovc]
            ne_flit = wflit[ne]
            ring = self._a_arr_ring
            horizon = self._horizon
            for d in _np.unique(delay):
                m = delay == d
                ring[(t + int(d)) % horizon].append((dest[m], ne_flit[m]))
            self._pending_events += len(ne_flit)

        # ---- upstream credit returns, grouped by link latency
        up = self._vb_up_ovc[wivc]
        um = up >= 0
        if um.any():
            u_ovc = up[um]
            u_lat = self._vb_up_lat[wivc[um]]
            u_size = size[um]
            cring = self._a_cr_ring
            horizon = self._horizon
            for lv in _np.unique(u_lat):
                m = u_lat == lv
                cring[(t + int(lv)) % horizon].append((u_ovc[m], u_size[m]))
            self._pending_events += len(u_ovc)
        self._last_progress = t

        # ---- ejected flits leave the pool; tails deliver (in grant order)
        if eject.any():
            self._fl_free.extend(wflit[eject].tolist())
            deliver = eject & tail
            if deliver.any():
                stats = self.stats
                pobj = self._pkt_obj
                pk_free = self._pk_free
                for slot_, done in zip(pslot[deliver].tolist(),
                                       busy[deliver].tolist()):
                    pkt = pobj[slot_]
                    pkt.delivered_cycle = done
                    stats.on_delivered(pkt, done)
                    self.packets_in_flight -= 1
                    observers = self._delivery_observers
                    if observers:
                        for observer in observers:
                            observer(pkt, done)
                    pobj[slot_] = None
                    pk_free.append(slot_)

    # -------------------------------------------------------- materialization
    def _rewind_in_flight_packets(self) -> None:
        """Roll live packets' hop counters back to their granted prefix.

        The array path applies every ``on_hop`` update at injection
        (the walk needs them: dragonfly VC selection reads ``g_hops``
        mid-path) and never reads them again until delivery.  The wheel
        path re-applies ``on_hop`` per remaining grant, so handing over
        a packet with final-state counters would double-count — and
        mis-route, since ``min_hop`` picks VCs from ``g_hops``.  Replay
        each live packet's stored route prefix (``pk_hop`` grants) to
        reconstruct exactly the wheel's mid-flight state; prefilled hop
        logs are truncated to the granted prefix for the same reason.
        """
        topo = self.topo
        nout = self._nout
        lbase = topo.p
        gbase = lbase + topo.local_ports
        rt_op, rt_fovc = self._rt_op, self._rt_fovc
        ovc_base = self._ovc_base
        for ps in range(self._pk_used):
            pkt = self._pkt_obj[ps]
            if pkt is None:
                continue
            done = int(self._pk_hop[ps])
            if pkt.hops_log is not None:
                del pkt.hops_log[done:]
            pkt.g_hops = 0
            pkt.local_hops_group = 0
            pkt.local_hops_total = 0
            pkt.misrouted_group = False
            pkt.prev_local_type = None
            pkt.last_local_vc = 0
            off = int(self._pk_off[ps])
            # the stored route excludes the (counter-neutral) eject hop;
            # done == nh+1 for a WH packet whose head already ejected
            nh = int(self._pk_nh[ps])
            for i in range(min(done, nh)):
                fop = int(rt_op[off + i])
                oidx = fop % nout
                if oidx >= gbase:
                    pkt.g_hops += 1
                    pkt.local_hops_group = 0
                    pkt.misrouted_group = False
                    pkt.prev_local_type = None
                else:  # stored hops are LOCAL or GLOBAL, never EJECT
                    pkt.local_hops_group += 1
                    pkt.local_hops_total += 1
                    pkt.last_local_vc = int(rt_fovc[off + i]) - int(ovc_base[fop])
                    # next router: where the following hop is taken, or the
                    # destination router when this is the last stored hop
                    nxt = (int(rt_op[off + i + 1]) // nout if i + 1 < nh
                           else pkt.dst_router)
                    pkt.prev_local_type = link_type(
                        topo.index_in_group(fop // nout), topo.index_in_group(nxt))

    def _materialize(self) -> None:
        """Write the array state back into the object routers (one-way).

        After this the simulation continues on the inherited wheel
        path, byte-identically: every piece of engine state — FIFOs,
        occupancies, allocated routes, credit/owner/busy/rr state, the
        timing wheels, progress counters — is reconstructed exactly as
        the wheel engine would have built it.
        """
        if self._mode != "array":
            return
        if self._stage_n:
            self._flush_injections()
        self._mode = "wheel"
        self._rewind_in_flight_packets()
        routers = self._routers_list
        nin, nout = self._nin, self._nout
        fl_pkt, fl_size = self._fl_pkt, self._fl_size
        fl_idx, fl_head, fl_tail = self._fl_idx, self._fl_head, self._fl_tail
        pkt_obj = self._pkt_obj
        flit_cache: dict[int, Flit] = {}

        def fobj(s: int) -> Flit:
            f = flit_cache.get(s)
            if f is None:
                f = Flit(pkt_obj[fl_pkt[s]], int(fl_idx[s]), int(fl_size[s]),
                         bool(fl_head[s]), bool(fl_tail[s]))
                flit_cache[s] = f
            return f

        for r, router in enumerate(routers):
            pending = 0
            for i, ip in enumerate(router.inputs):
                fp = r * nin + i
                ip.busy_until = int(self._ip_busy[fp])
                ip.rr = int(self._ip_rr[fp])
                ip.buffered = int(self._ip_buffered[fp])
                pending += ip.buffered
                base = int(self._ip_vcbase[fp])
                for v, vcb in enumerate(ip.vcs):
                    ivc = base + v
                    vcb.fifo.clear()
                    s = int(self._vb_head[ivc])
                    while s >= 0:
                        vcb.fifo.append(fobj(s))
                        s = int(self._fl_next[s])
                    vcb.occupancy = int(self._vb_occ[ivc])
                    rop = int(self._vb_route_op[ivc])
                    if rop >= 0:
                        vcb.route_out = rop % nout
                        vcb.route_vc = int(self._vb_route_fovc[ivc]
                                           - self._ovc_base[rop])
                    else:
                        vcb.route_out = None
                        vcb.route_vc = None
            router.pending = pending
            for o, out in enumerate(router.outputs):
                fo = r * nout + o
                out.busy_until = int(self._op_busy[fo])
                out.rr = int(self._op_rr[fo])
                b = int(self._ovc_base[fo])
                for v in range(len(out.credits)):
                    out.credits[v] = int(self._ov_credits[b + v])
                    owner = int(self._ov_owner[b + v])
                    out.owner[v] = None if owner < 0 else pkt_obj[owner].pid
        self._active = {r.rid for r in routers if r.pending}

        # wheels: expand chunks into the wheel engine's tuple format,
        # preserving append order (chunks were pushed in grant order)
        vb_port, vb_vcidx = self._vb_port, self._vb_vcidx
        for s in range(self._horizon):
            bucket = self._arr_wheel[s]
            bucket.clear()
            for ivcs, flits in self._a_arr_ring[s]:
                for ivc, fs in zip(ivcs.tolist(), flits.tolist()):
                    fp = int(vb_port[ivc])
                    bucket.append((routers[fp // nin], fp % nin,
                                   int(vb_vcidx[ivc]), fobj(fs)))
            cbucket = self._cr_wheel[s]
            cbucket.clear()
            for ovcs, amounts in self._a_cr_ring[s]:
                for fovc, amount in zip(ovcs.tolist(), amounts.tolist()):
                    fo = int(self._ovc_out[fovc])
                    out = routers[fo // nout].outputs[fo % nout]
                    cbucket.append((out, int(fovc - self._ovc_base[fo]),
                                    int(amount)))
        # drop the array state: the object graph is authoritative now
        self._a_arr_ring = self._a_cr_ring = None
        self._pkt_obj = []
        for name in ("_ip_nvc", "_ip_vcbase", "_ip_busy", "_ip_rr",
                     "_ip_buffered", "_ip_lidx", "_vb_port", "_vb_vcidx",
                     "_vb_head", "_vb_tail", "_vb_occ", "_vb_route_op",
                     "_vb_route_fovc", "_vb_up_ovc", "_vb_up_lat",
                     "_op_eject", "_op_lat", "_op_busy", "_op_rr",
                     "_ovc_base", "_ovc_out", "_ov_credits", "_ov_owner",
                     "_ov_dest_ivc", "_fl_pkt", "_fl_size", "_fl_idx",
                     "_fl_head", "_fl_tail", "_fl_next", "_pk_birth",
                     "_pk_off", "_pk_hop", "_pk_nh", "_pk_ej_op",
                     "_pk_ej_ovc", "_rt_op", "_rt_fovc", "_route_cache",
                     "_ovc_base_l", "_ip_vcbase_l", "_op_delay_vct"):
            setattr(self, name, None)


__all__ = ["ArraySimulator"]
