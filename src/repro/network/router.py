"""Input-buffered virtual-channel router.

Port layout of a router with ``p`` nodes, ``L = topo.local_ports``
local and ``G = topo.global_ports`` global ports:

* outputs: ``0..p-1`` ejection (one per node), ``p..p+L-1`` local,
  ``p+L..p+L+G-1`` global;
* inputs: ``0..p-1`` injection queues (one per node, single unbounded
  FIFO), then local and global input ports mirroring the outputs.

Each physical input reads at most one flit per cycle (serialization =
flit phits); each output transmits at most one flit at a time.  The
allocation itself lives in :mod:`repro.network.simulator`.

The router is topology-agnostic: the port layout above is derived from
the :class:`~repro.topology.base.Topology` protocol port counts
(``p``, ``local_ports``, ``global_ports`` — ``a-1``/``h`` on the
Dragonfly, ``2``/``2`` on the torus, ``R-1``/``0`` on the flattened
butterfly) and wired through the protocol's neighbour maps, so any
registered fabric rides the same engine fast path.
"""

from __future__ import annotations

from repro.network.buffers import InputPort
from repro.network.ports import OutputUnit
from repro.topology.base import PortKind, Topology

#: practically-infinite capacity for injection queues (open-loop sources)
INJECTION_CAPACITY = 1 << 60


class Router:
    """One router: input VC buffers + output credit state."""

    __slots__ = ("rid", "group", "idx", "inputs", "outputs", "pending",
                 "_local_base", "_global_base")

    def __init__(self, rid: int, topo: Topology, *, local_vcs: int, global_vcs: int,
                 local_capacity: int, global_capacity: int,
                 local_latency: int, global_latency: int) -> None:
        self.rid = rid
        self.group = topo.group_of(rid)
        self.idx = topo.index_in_group(rid)
        self.pending = 0  # flits buffered across all inputs (fast skip)
        p = topo.p
        nl, ng = topo.local_ports, topo.global_ports
        self._local_base = p
        self._global_base = p + nl

        inputs: list[InputPort] = []
        for k in range(p):
            inputs.append(InputPort(1, INJECTION_CAPACITY, k, is_injection=True))
        for q in range(nl):
            inputs.append(InputPort(local_vcs, local_capacity, p + q))
        for k in range(ng):
            inputs.append(InputPort(global_vcs, global_capacity, p + nl + k))
        self.inputs = inputs

        outputs: list[OutputUnit] = []
        for k in range(p):
            outputs.append(OutputUnit(PortKind.EJECT, k, 1, 0, 0, None, None))
        for q in range(nl):
            nbr_idx = topo.local_neighbor_index(self.idx, q)
            nbr = topo.router_id(self.group, nbr_idx)
            nbr_port = p + topo.local_port_to(nbr_idx, self.idx)
            outputs.append(OutputUnit(PortKind.LOCAL, q, local_vcs, local_capacity,
                                      local_latency, nbr, nbr_port))
        for k in range(ng):
            peer, pport = topo.global_neighbor(rid, k)
            peer_port = p + nl + pport
            outputs.append(OutputUnit(PortKind.GLOBAL, k, global_vcs, global_capacity,
                                      global_latency, peer, peer_port))
        self.outputs = outputs

    # ------------------------------------------------------------ port maps
    def out_eject(self, node_index: int) -> int:
        return node_index

    def out_local(self, port: int) -> int:
        return self._local_base + port

    def out_global(self, gport: int) -> int:
        return self._global_base + gport

    # --------------------------------------------------------- availability
    def can_accept(self, out_idx: int, vc: int, flit, now: int) -> bool:
        """Whether a *head* flit can be granted to ``(out_idx, vc)`` now."""
        o = self.outputs[out_idx]
        if o.busy_until > now:
            return False
        if o.kind == PortKind.EJECT:
            return True
        if o.credits[vc] < flit.size:
            return False
        if not flit.is_tail and o.owner[vc] is not None:
            return False  # wormhole: the downstream VC is held by another packet
        return True

    def can_accept_body(self, out_idx: int, vc: int, flit, now: int) -> bool:
        """Whether a body/tail flit following its head can be granted."""
        o = self.outputs[out_idx]
        if o.busy_until > now:
            return False
        if o.kind == PortKind.EJECT:
            return True
        if o.credits[vc] < flit.size:
            return False
        return o.owner[vc] == flit.packet.pid

    def occupancy(self, out_idx: int, vc: int) -> int:
        """Downstream occupancy in phits of output ``out_idx`` VC ``vc``."""
        return self.outputs[out_idx].occupancy(vc)

    def buffered_flits(self) -> int:
        return sum(ip.total_flits() for ip in self.inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router(rid={self.rid}, group={self.group}, idx={self.idx})"
