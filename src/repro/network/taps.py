"""Instrumentation taps: event hooks on the engine's existing event points.

A *tap* is any object exposing one or more of the event methods below;
:meth:`~repro.network.simulator.Simulator.add_tap` inspects the object
and wires each implemented method straight onto the matching engine
event point.  The design contract is **rich when attached, free when
not**: with no tap registered the hot path pays a single ``is None``
check per event site, and — crucially — nothing polls per cycle, so
time-series collection composes with the timing wheel's idle
fast-forward instead of disabling it (skipped cycles are provably
event-free, hence observation-free).

Event points (all cycle-stamped):

``on_inject(packet, cycle)``
    A packet was created and queued at its source injection FIFO.
``on_grant(router, out, vc, flit, decision, cycle)``
    A flit won switch allocation and started crossing ``out``.
    ``decision`` is the routing :class:`~repro.core.base.Decision` for
    head flits (carrying misroute flags) and ``None`` for body/tail
    flits following their head.
``on_eject(packet, cycle)``
    A tail flit left the network (fires once per delivered packet, at
    the same point as the delivery observers — before the legacy
    ``on_packet_delivered`` hook).
``on_credit(out, vc, amount, cycle)``
    A credit returned to output unit ``out`` for downstream VC ``vc``.
``on_ring_entry(router, out, vc, flit, cycle)``
    A head flit was granted onto an escape-ring VC (OFAR's bubble
    ring; see :meth:`~repro.core.base.RoutingAlgorithm.is_escape_hop`).
    Fires for every escape-ring hop; consumers that want entries
    rather than hops de-duplicate per packet (the
    :class:`~repro.metrics.hub.MetricsHub` does).

Taps observe only — they must not mutate simulator, router or packet
state, and they consume no RNG, so an attached tap never perturbs the
simulated records (enforced by ``tools/bench_engine.py --tap`` and the
golden-with-tap test in ``tests/test_observability.py``).
"""

from __future__ import annotations

#: the recognised tap event method names, in firing-site order
TAP_EVENTS = ("on_inject", "on_grant", "on_eject", "on_credit", "on_ring_entry")


class Tap:
    """Optional convenience base class for taps.

    Purely documentary — taps are duck-typed; :meth:`Simulator.add_tap`
    only wires the ``on_*`` methods actually defined on the object, so
    subclasses override exactly the events they care about.  Deriving
    from this base is never required.
    """

    __slots__ = ()


__all__ = ["Tap", "TAP_EVENTS"]
