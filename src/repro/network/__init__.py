"""Cycle-level network simulator substrate.

Models FIFO input-buffered virtual-channel routers with credit-based
flow control, link latency pipelines and per-port serialization — the
same router architecture as the paper's in-house simulator.
"""

from repro.network.arbitration import Arbiter, RoundRobinArbiter, RandomArbiter, AgeArbiter
from repro.network.arraysim import ArraySimulator
from repro.network.config import SimConfig
from repro.network.flowcontrol import FlowControl, VirtualCutThrough, Wormhole, flow_control_by_name
from repro.network.packet import Packet, Flit
from repro.network.simulator import Simulator, DeadlockError, build_simulator
from repro.network.taps import TAP_EVENTS, Tap
from repro.registry import ARBITER_REGISTRY, ENGINE_REGISTRY, FLOW_CONTROL_REGISTRY

# the frozen seed engine registers here (its module must stay untouched)
if "reference" not in ENGINE_REGISTRY:
    from repro.network.reference import ReferenceSimulator

    ENGINE_REGISTRY.register(
        "reference", ReferenceSimulator,
        description="frozen seed engine (fidelity baseline, slow)")

__all__ = [
    "SimConfig",
    "FlowControl",
    "VirtualCutThrough",
    "Wormhole",
    "flow_control_by_name",
    "FLOW_CONTROL_REGISTRY",
    "Arbiter",
    "RoundRobinArbiter",
    "RandomArbiter",
    "AgeArbiter",
    "ARBITER_REGISTRY",
    "Packet",
    "Flit",
    "Simulator",
    "ArraySimulator",
    "DeadlockError",
    "build_simulator",
    "ENGINE_REGISTRY",
    "Tap",
    "TAP_EVENTS",
]
