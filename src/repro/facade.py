"""High-level `Session` / `RunResult` facade over the cycle engine.

The canonical way to run a simulation::

    import repro

    cfg = repro.SimConfig(h=2, routing="olm")
    result = repro.session(cfg, pattern="uniform", load=0.5).warmup(2000).measure(2000)
    print(result.mean_latency, result.latency_p99, result.throughput)

A :class:`Session` owns one live :class:`~repro.network.simulator.Simulator`
and exposes the warm-up / measure / drain workflow; every measurement
returns an immutable :class:`RunResult` snapshot (latency mean and
percentiles, throughput, misroute fractions, drain cycles) so callers
never poke ``sim.stats`` directly.  The raw simulator stays reachable
through ``session.sim`` for low-level work.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

from repro.metrics.hub import LatencyTap, MetricsHub
from repro.metrics.statistics import recovery_time, steady_state_reached
from repro.network.config import SimConfig
from repro.network.simulator import Simulator, build_simulator
from repro.traffic.patterns import pattern_by_name
from repro.traffic.processes import BernoulliTraffic, BurstTraffic


def _percentile(sorted_values: list[int], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return float(sorted_values[rank - 1])


@dataclass(frozen=True)
class RunResult:
    """Immutable snapshot of one measurement window.

    ``kind`` is ``"measure"`` (fixed-length steady-state window) or
    ``"drain"`` (run-until-empty); ``drain_cycles`` is only set for the
    latter.  Latency percentiles are computed over every packet
    delivered inside the window.

    Units: ``start_cycle``/``end_cycle``/``max_latency``/``drain_cycles``
    and every latency field are in *cycles*; ``generated``/``delivered``
    count packets, ``delivered_phits`` counts phits; ``throughput`` is
    accepted load in phits/(node·cycle) — 1.0 means every node sinks
    one phit per cycle; misroute fields are fractions of delivered
    packets.  Equal configs (same ``SimConfig.canonical_json()``),
    traffic and windows always reproduce the same result, bit for bit.
    """

    kind: str
    start_cycle: int
    end_cycle: int
    generated: int
    delivered: int
    delivered_phits: int
    mean_latency: float
    max_latency: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    mean_hops: float
    throughput: float
    local_misroute_rate: float
    global_misroute_fraction: float
    drain_cycles: int | None = None

    @property
    def window_cycles(self) -> int:
        """Length of the measurement window in cycles."""
        return self.end_cycle - self.start_cycle

    def to_dict(self) -> dict:
        """Plain mapping of every field (sweep/record interchange).

        Ratio fields are ``float('nan')`` when the window delivered no
        packets — map them to ``None`` before strict-JSON serialization
        (the ``point`` CLI command does).
        """
        return asdict(self)


@dataclass(frozen=True)
class SeriesResult:
    """A measurement window plus its cycle-bucketed time series.

    ``result`` is the window's :class:`RunResult`; ``series`` maps
    metric name to one value per ``bucket`` cycles (see
    :meth:`repro.metrics.hub.MetricsHub.series`); ``records`` is the
    structured meta/bucket/summary row stream of the JSONL schema;
    ``verify`` is the window's flow-conservation report
    (:meth:`repro.metrics.hub.MetricsHub.verify`), captured before the
    hub detaches.
    """

    result: RunResult
    bucket: int
    start_cycle: int
    series: dict = field(compare=False)
    records: tuple = field(compare=False)
    verify: dict | None = field(default=None, compare=False)

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "bucket": self.bucket,
            "start_cycle": self.start_cycle,
            "series": self.series,
        }


class Session:
    """A live simulation with the warm-up / measure / drain workflow.

    Chainable: ``session(cfg, pattern="uniform", load=0.5)
    .warmup(2000).measure(2000)``.  All durations are in cycles and
    offered loads in phits/(node·cycle).  The session attaches a
    delivery observer to record per-packet latencies for the percentile
    fields of :class:`RunResult`; further observers can be added freely
    through ``session.sim.add_delivery_observer``.

    Determinism: a session is a pure function of its config (seeded RNG
    streams for traffic and routing) and its call sequence — replaying
    the same calls on the same config yields byte-identical results on
    any fabric, executor or host (see ``docs/ARCHITECTURE.md``).
    """

    def __init__(self, config: SimConfig | None = None, *, traffic=None,
                 sim: Simulator | None = None) -> None:
        if sim is None:
            if config is None:
                raise ValueError("Session needs a SimConfig (or a prebuilt sim)")
            sim = build_simulator(config, traffic)
        else:
            if config is not None and config != sim.config:
                raise ValueError(
                    "got both a config and a prebuilt sim with a different "
                    "config; pass one or the other"
                )
            if traffic is not None:
                sim.traffic = traffic
        self._sim = sim
        self._probe = LatencyTap(sim)
        #: metadata of the last :meth:`warmup_until_steady` call (or None)
        self.auto_warmup: dict | None = None

    def close(self) -> None:
        """Detach the session's latency observer from the simulator.

        Call when wrapping a long-lived prebuilt simulator in several
        short-lived sessions; otherwise each session would keep
        recording deliveries forever.
        """
        self._probe.detach()

    # ------------------------------------------------------------- accessors
    @property
    def sim(self) -> Simulator:
        """The underlying simulator (escape hatch for low-level access)."""
        return self._sim

    @property
    def config(self) -> SimConfig:
        return self._sim.config

    @property
    def now(self) -> int:
        return self._sim.now

    # -------------------------------------------------------------- traffic
    def with_traffic(self, traffic) -> "Session":
        """Attach (or replace) the traffic process; chainable."""
        self._sim.traffic = traffic
        return self

    def bernoulli(self, pattern_spec: str, load: float) -> "Session":
        """Attach open-loop Bernoulli sources over a pattern spec; chainable."""
        pattern = pattern_by_name(pattern_spec, self._sim.topo)
        return self.with_traffic(BernoulliTraffic(pattern, load))

    # ------------------------------------------------------------- workflow
    def run(self, cycles: int) -> "Session":
        """Advance without touching the measurement window; chainable."""
        self._sim.run(cycles)
        return self

    def warmup(self, cycles: int) -> "Session":
        """Run ``cycles`` cycles, then reset the measurement window; chainable."""
        self._sim.run(cycles)
        return self.reset()

    def warmup_until_steady(self, *, bucket: int = 250, window: int = 8,
                            rel_tolerance: float = 0.05,
                            max_cycles: int = 50_000) -> "Session":
        """Warm up until throughput is steady, then reset; chainable.

        Replaces blind ``warmup(N)`` with the moving-window
        relative-precision rule: the simulation advances in ``bucket``
        -cycle blocks and stops as soon as the last ``window`` block
        throughputs all lie within ``rel_tolerance`` of their own mean
        (:func:`repro.metrics.statistics.steady_state_reached`), or
        after ``max_cycles``.  Throughput is read from the block deltas
        of the running counters — no per-cycle polling, so idle
        fast-forward stays active throughout.

        The detection outcome is exposed as ``session.auto_warmup``:
        ``cycles`` spent, ``steady`` (whether the rule fired before the
        cap), ``samples`` (block throughputs) and
        ``steady_throughput`` (mean of the final window — the baseline
        the transient workers measure recovery against).
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        sim = self._sim
        stats = sim.stats
        nodes = sim.topo.num_nodes
        start = sim.now
        samples: list[float] = []
        last = stats.delivered_phits
        steady = False
        while sim.now - start < max_cycles:
            step = min(bucket, start + max_cycles - sim.now)
            sim.run(step)
            if step < bucket:
                break  # truncated final block: not a comparable sample
            cur = stats.delivered_phits
            samples.append((cur - last) / (nodes * bucket))
            last = cur
            if len(samples) >= window and steady_state_reached(
                    samples, window=window, rel_tolerance=rel_tolerance):
                steady = True
                break
        tail = samples[-window:] if samples else []
        self.auto_warmup = {
            "cycles": sim.now - start,
            "steady": steady,
            "bucket": bucket,
            "window": window,
            "rel_tolerance": rel_tolerance,
            "samples": samples,
            "steady_throughput": (sum(tail) / len(tail)) if tail else 0.0,
        }
        return self.reset()

    def reset(self) -> "Session":
        """Restart the measurement window at the current cycle; chainable."""
        self._sim.stats.reset(self._sim.now)
        self._probe.clear()
        return self

    def measure(self, cycles: int) -> RunResult:
        """Run ``cycles`` more cycles and snapshot the window."""
        self._sim.run(cycles)
        return self._snapshot("measure")

    def measure_series(self, cycles: int, *, bucket: int = 250,
                       latencies: bool = True, emit=None,
                       meta: dict | None = None,
                       full_verify: bool = False) -> "SeriesResult":
        """Run ``cycles`` cycles with a metrics hub attached: a transient
        window.

        Returns a :class:`SeriesResult` pairing the window
        :class:`RunResult` with the hub's cycle-bucketed series and
        structured records (JSONL-exportable).  The hub attaches for
        exactly this call's cycles and detaches afterwards, so the
        *series* covers only this call; the embedded ``RunResult`` —
        exactly like :meth:`measure` — still spans the whole window
        since the last :meth:`reset`/:meth:`warmup`, so call
        :meth:`reset` between back-to-back series measurements when
        each result should cover its own series.

        ``emit`` — when given, the structured record stream is pushed
        row by row *while the window runs*: the meta header first (the
        window's end cycle is known up front), each bucket row as soon
        as the simulator passes the bucket's closing cycle (the run is
        advanced in ``bucket``-cycle chunks; chunked runs are
        cycle-for-cycle identical to one long run), and the summary row
        last.  The emitted rows equal ``SeriesResult.records`` exactly —
        the serve layer streams them as live JSONL.  ``meta`` merges
        extra fields into the meta row (emitted and in ``records``
        alike).  An ``emit`` that raises aborts the measurement; the
        serve layer uses this for cancellation.

        ``full_verify`` upgrades the captured ``verify`` report from
        the always-on flow-conservation check to the complete live
        invariant set (Little's law, occupancy, capacity and latency
        floors — :func:`repro.analysis.invariants.live_checks`); the
        measured result bytes are identical either way.
        """
        sim = self._sim
        hub = MetricsHub(sim, bucket=bucket, latencies=latencies)
        try:
            end = sim.now + cycles
            if emit is None:
                sim.run(cycles)
            else:
                emit(hub.meta_row(end, meta))
                emitted = 0
                while sim.now < end:
                    sim.run(min(bucket, end - sim.now))
                    closed = (sim.now - hub.start_cycle) // bucket
                    while emitted < closed:
                        emit(hub.bucket_row(emitted))
                        emitted += 1
            sr = SeriesResult(
                result=self._snapshot("measure"),
                bucket=bucket,
                start_cycle=hub.start_cycle,
                series=hub.series(end),
                records=tuple(hub.records(end, meta)),
                # argless when flow-only: the call shape test doubles
                # monkeypatching verify(self) rely on stays the default
                verify=hub.verify(full=True) if full_verify
                       else hub.verify(),
            )
            if emit is not None:
                emit(hub.summary_row(end))
            return sr
        finally:
            hub.detach()

    def drain(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run until all injected traffic is delivered; snapshot with drain time.

        ``max_cycles`` caps the run (a ``DeadlockError`` is raised past
        it); the result's ``drain_cycles`` is the cycles actually spent.
        """
        cycles = self._sim.run_until_drained(max_cycles)
        return self._snapshot("drain", drain_cycles=cycles)

    # -------------------------------------------------------------- snapshot
    def _snapshot(self, kind: str, *, drain_cycles: int | None = None) -> RunResult:
        sim = self._sim
        stats = sim.stats
        lat = sorted(self._probe.latencies)
        return RunResult(
            kind=kind,
            start_cycle=stats.window_start,
            end_cycle=sim.now,
            generated=stats.generated,
            delivered=stats.delivered,
            delivered_phits=stats.delivered_phits,
            mean_latency=stats.mean_latency(),
            max_latency=stats.latency_max,
            latency_p50=_percentile(lat, 0.50),
            latency_p95=_percentile(lat, 0.95),
            latency_p99=_percentile(lat, 0.99),
            mean_hops=stats.mean_hops(),
            throughput=stats.throughput(sim.topo.num_nodes, sim.now),
            local_misroute_rate=stats.local_misroute_rate(),
            global_misroute_fraction=stats.global_misroute_fraction(),
            drain_cycles=drain_cycles,
        )


def session(config: SimConfig | None = None, *, traffic=None,
            pattern: str | None = None, load: float | None = None,
            sim: Simulator | None = None) -> Session:
    """Open a :class:`Session` (the public entry point, ``repro.session``).

    ``traffic`` attaches an explicit traffic process; alternatively
    ``pattern``/``load`` is shorthand for open-loop Bernoulli sources
    over a pattern spec (``"uniform"``, ``"advg+h"``, ``"mixed:40"``, a
    registered pattern name, ...).
    """
    if traffic is not None and (pattern is not None or load is not None):
        raise ValueError("pass either traffic or pattern/load, not both")
    s = Session(config, traffic=traffic, sim=sim)
    if pattern is not None:
        if load is None:
            raise ValueError("pattern requires an offered load")
        s.bernoulli(pattern, load)
    elif load is not None:
        raise ValueError("load requires a pattern")
    return s


# --------------------------------------------------------------- worker entries
#
# Module-level functions (picklable, importable by name) so process-pool
# executors can ship one simulation point to a worker.  They return plain
# dict records: the RunResult fields plus the point's coordinates, the
# interchange format of the sweeps / run-plan / reporting layers.


def point_record(result: RunResult, config: SimConfig, **coords) -> dict:
    """The interchange record: ``RunResult`` fields + sweep coordinates.

    The single place that defines which coordinates every record carries
    (routing, flow control, h, seed) — sweeps, run plans and reporting
    all consume this shape.
    """
    rec = result.to_dict()
    rec.update(routing=config.routing, flow_control=config.flow_control,
               h=config.h, seed=config.seed, **coords)
    return rec


def _enforce_verify(report: dict | None) -> None:
    """Raise :class:`~repro.analysis.invariants.InvariantViolation` on a
    failed verify report (lazy import: verification is opt-in)."""
    if report is not None and not report["ok"]:
        from repro.analysis.invariants import InvariantViolation

        raise InvariantViolation(report)


def run_point(config: SimConfig, pattern_spec: str, load: float,
              warmup: int, measure: int, steady: bool = False,
              verify: bool = False) -> dict:
    """One steady-state record: warm up, reset stats, measure.

    Picklable worker entry — the unit of work of the run-plan executors
    (:mod:`repro.runplan`).  With ``steady=True`` the blind warm-up is
    replaced by :meth:`Session.warmup_until_steady` with ``warmup`` as
    the cycle cap; the record then carries ``warmup_cycles`` (spent)
    and ``warmup_steady`` (whether the rule fired before the cap).

    ``verify=True`` runs the window instrumented and enforces the full
    live invariant set (flow conservation, Little's law, occupancy,
    capacity and latency floors), raising
    :class:`~repro.analysis.invariants.InvariantViolation` on the
    first violated check.  The record stays byte-identical — attaching
    a hub never changes what a simulation measures (PR-4 guarantee).
    """
    s = session(config, pattern=pattern_spec, load=load)
    if steady:
        s.warmup_until_steady(max_cycles=warmup)
    else:
        s.warmup(warmup)
    if verify:
        sr = s.measure_series(measure, full_verify=True)
        _enforce_verify(sr.verify)
        result = sr.result
    else:
        result = s.measure(measure)
    rec = point_record(result, config, pattern=pattern_spec, load=load)
    if steady:
        rec["warmup_cycles"] = s.auto_warmup["cycles"]
        rec["warmup_steady"] = s.auto_warmup["steady"]
    return rec


def run_drain(config: SimConfig, pattern_spec: str, packets_per_node: int,
              max_cycles: int, verify: bool = False) -> dict:
    """One burst-consumption record: inject a burst, run until drained.

    Picklable worker entry for ``kind="drain"`` run-plan points.
    ``verify=True`` attaches a hub before the first injection (so flow
    conservation reduces to ``injected == delivered`` at drain) and
    enforces the full live invariant set.
    """
    s = session(config)
    pattern = pattern_by_name(pattern_spec, s.sim.topo)
    s.with_traffic(BurstTraffic(pattern, packets_per_node))
    if verify:
        hub = MetricsHub(s.sim, bucket=250, latencies=True)
        try:
            result = s.drain(max_cycles)
            _enforce_verify(hub.verify(full=True))
        finally:
            hub.detach()
    else:
        result = s.drain(max_cycles)
    return point_record(result, config, pattern=pattern_spec,
                        packets_per_node=packets_per_node)


def run_transient(config: SimConfig, pattern_spec: str, load: float,
                  packets_per_node: int, warmup: int, measure: int,
                  bucket: int = 250, rel_tolerance: float = 0.15,
                  hold: int = 3, verify: bool = False) -> dict:
    """One transient burst-response record: load step onto steady traffic.

    Picklable worker entry for ``kind="transient"`` run-plan points —
    the congestion story of the paper's §II told as a time series:

    1. open-loop Bernoulli sources at ``load`` warm up to auto-detected
       steady state (cap ``warmup`` cycles); the steady window mean is
       the recovery baseline;
    2. every node enqueues a ``packets_per_node`` burst on top (the
       load step), drawn from the same traffic pattern;
    3. a metrics hub records the next ``measure`` cycles in ``bucket``
       -cycle buckets; ``recovery_cycles`` is when the throughput
       series settles back within ``rel_tolerance`` of the baseline
       for ``hold`` consecutive buckets
       (:func:`repro.metrics.statistics.recovery_time`), clamped to
       ``measure`` with ``recovered=False`` when it never does.

    ``verify=True`` enforces the full live invariant set over the
    measured window (see :func:`run_point`).
    """
    s = session(config, pattern=pattern_spec, load=load)
    s.warmup_until_steady(bucket=bucket, max_cycles=warmup)
    baseline = s.auto_warmup["steady_throughput"]
    sim = s.sim
    burst_pattern = pattern_by_name(pattern_spec, sim.topo)
    BurstTraffic(burst_pattern, packets_per_node).inject(sim, sim.now)
    sr = s.measure_series(measure, bucket=bucket, latencies=True,
                          full_verify=verify)
    if verify:
        _enforce_verify(sr.verify)
    recovery = recovery_time(sr.series["throughput"], baseline,
                             bucket=bucket, rel_tolerance=rel_tolerance,
                             hold=hold)
    rec = point_record(sr.result, config, pattern=pattern_spec, load=load,
                       packets_per_node=packets_per_node)
    rec.update(
        kind="transient",
        bucket=bucket,
        warmup_cycles=s.auto_warmup["cycles"],
        warmup_steady=s.auto_warmup["steady"],
        baseline_throughput=baseline,
        recovered=recovery is not None,
        recovery_cycles=measure if recovery is None else recovery,
        throughput_series=sr.series["throughput"],
        latency_series=sr.series["latency_mean"],
    )
    return rec


__all__ = ["Session", "RunResult", "SeriesResult", "session", "run_point",
           "run_drain", "run_transient", "point_record"]
