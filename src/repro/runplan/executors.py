"""Pluggable executors: how a flat list of run points gets computed.

Executors are registered in the unified :class:`~repro.registry.Registry`
(``EXECUTOR_REGISTRY``) like every other component, so third parties can
plug in their own (an MPI pool, a job-queue client, ...) and select it
by name wherever the experiments layer accepts ``executor=``.

The contract is one method::

    executor.map(fn, items) -> list   # results in item order

``fn`` is always a module-level picklable function (the run-plan worker
entry), so process-based executors can ship it to workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.registry import Registry

#: run-plan executors (serial, process, third-party pools)
EXECUTOR_REGISTRY = Registry("executor")


def default_workers() -> int:
    """Pool size leaving one core for the parent (never below 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


@EXECUTOR_REGISTRY.register(
    "serial", description="run every point inline in this process")
class SerialExecutor:
    """In-process execution: simple, profiler-friendly, zero overhead."""

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = 1

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]


@EXECUTOR_REGISTRY.register(
    "process", description="fan points out over a multiprocessing pool")
class ProcessExecutor:
    """Process-pool execution over :class:`~concurrent.futures.ProcessPoolExecutor`.

    Every point is a self-contained simulation, so results are identical
    to serial execution regardless of pool size or scheduling order
    (results come back in submission order).  ``jobs=None`` sizes the
    pool to :func:`default_workers`.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = default_workers() if jobs is None else max(1, jobs)

    def map(self, fn, items) -> list:
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))


def executor_for_jobs(jobs: int | None) -> str:
    """The conventional executor name for a ``--jobs`` value.

    ``None`` or 1 means serial; anything larger selects the process
    pool.  The one policy shared by the CLI, the figure runners and the
    compat ``parallel`` module.
    """
    return "process" if jobs and jobs > 1 else "serial"


def resolve_executor(executor, jobs: int | None = None):
    """Resolve an executor name (or pass an instance through).

    Names go through :data:`EXECUTOR_REGISTRY` and are constructed with
    ``jobs``; anything with a ``map`` attribute is accepted as-is.
    """
    if isinstance(executor, str):
        return EXECUTOR_REGISTRY.get(executor)(jobs=jobs)
    if hasattr(executor, "map"):
        return executor
    raise TypeError(f"executor must be a registered name or have .map, "
                    f"got {executor!r}")
