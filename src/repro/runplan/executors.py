"""Pluggable executors: how a flat list of run points gets computed.

Executors are registered in the unified :class:`~repro.registry.Registry`
(``EXECUTOR_REGISTRY``) like every other component, so third parties can
plug in their own (an MPI pool, a job-queue client, ...) and select it
by name wherever the experiments layer accepts ``executor=``.

The contract is the streaming scheduler interface::

    executor.run(fn, items) -> iterator of (index, result | PointError)

Results are yielded as they complete (see :mod:`repro.runplan.scheduler`
for the retry/quarantine semantics); ``fn`` is always a module-level
picklable function (the run-plan worker entry), so process-based
executors can ship it to workers.  The historic all-or-nothing
``map(fn, items) -> list`` survives as a thin compatibility shim over
``run`` — it collects the stream in item order and re-raises the first
quarantined point's exception — so third-party executors that only
implement ``map`` still work everywhere (they just cannot stream or
quarantine).
"""

from __future__ import annotations

import os
import warnings

from repro.registry import Registry
from repro.runplan.scheduler import (
    PlanExecutionError,
    PointError,
    PoolScheduler,
    SerialScheduler,
)

#: run-plan executors (serial, process, third-party pools)
EXECUTOR_REGISTRY = Registry("executor")


def default_workers() -> int:
    """Pool size leaving one core for the parent (never below 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


def _collect_map(stream, n: int) -> list:
    """``map`` compat: order the stream, surface the first quarantine."""
    results: list = [None] * n
    errors: list[PointError] = []
    for index, result in stream:
        if isinstance(result, PointError):
            errors.append(result)
        else:
            results[index] = result
    if errors:
        first = min(errors, key=lambda e: e.index)
        if first.exception is not None:
            raise first.exception
        raise PlanExecutionError(sorted(errors, key=lambda e: e.index))
    return results


@EXECUTOR_REGISTRY.register(
    "serial", description="run every point inline in this process")
class SerialExecutor:
    """In-process execution: simple, profiler-friendly, zero overhead.

    ``jobs`` is accepted for signature compatibility but cannot buy
    parallelism here; asking for more than one worker warns instead of
    being silently swallowed (use ``executor="process"`` for a pool).
    """

    def __init__(self, jobs: int | None = None, *, max_retries: int = 0,
                 backoff: float = 0.0, fatal: tuple = ()) -> None:
        if jobs is not None and jobs > 1:
            warnings.warn(
                f"SerialExecutor runs points inline in this process; "
                f"jobs={jobs} has no effect — pass executor='process' "
                f"(or --jobs through the CLI, which selects it) for a pool",
                RuntimeWarning, stacklevel=2)
        self.jobs = 1
        self._scheduler = SerialScheduler(
            max_retries=max_retries, backoff=backoff, fatal=fatal)

    @property
    def attempt_counts(self) -> dict[int, int]:
        """Attempts used per item index during the last :meth:`run`."""
        return self._scheduler.attempt_counts

    def run(self, fn, items):
        """Stream ``(index, result | PointError)`` in item order."""
        return self._scheduler.run(fn, items)

    def map(self, fn, items) -> list:
        items = list(items)
        return _collect_map(self.run(fn, items), len(items))


@EXECUTOR_REGISTRY.register(
    "process", description="fan points out over a multiprocessing pool")
class ProcessExecutor:
    """Process-pool execution over :class:`~repro.runplan.scheduler.PoolScheduler`.

    Every point is a self-contained simulation, so results are identical
    to serial execution regardless of pool size or scheduling order.
    ``jobs=None`` sizes the pool to :func:`default_workers`; ``jobs < 1``
    is an error (there is no meaningful zero-worker pool — use the
    serial executor for inline runs).  Worker death is survived by
    respawning the pool and retrying only the lost points; a point that
    fails ``max_retries + 1`` times is quarantined as a
    :class:`~repro.runplan.scheduler.PointError` in the stream.
    """

    def __init__(self, jobs: int | None = None, *, max_retries: int = 2,
                 backoff: float = 0.25, fatal: tuple = ()) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(
                f"process executor needs jobs >= 1, got {jobs}; pass "
                "jobs=None to size the pool to the machine "
                f"({default_workers()} here) or use executor='serial' "
                "for inline execution")
        self.jobs = default_workers() if jobs is None else jobs
        self.max_retries = max_retries
        self.backoff = backoff
        self.fatal = tuple(fatal)
        self._scheduler: PoolScheduler | None = None

    @property
    def attempt_counts(self) -> dict[int, int]:
        """Attempts used per item index during the last :meth:`run`."""
        return {} if self._scheduler is None else self._scheduler.attempt_counts

    def run(self, fn, items):
        """Stream ``(index, result | PointError)`` as points complete."""
        self._scheduler = PoolScheduler(
            self.jobs, max_retries=self.max_retries, backoff=self.backoff,
            fatal=self.fatal)
        return self._scheduler.run(fn, items)

    def map(self, fn, items) -> list:
        items = list(items)
        return _collect_map(self.run(fn, items), len(items))


def executor_for_jobs(jobs: int | None) -> str:
    """The conventional executor name for a ``--jobs`` value.

    ``None`` or 1 means serial; anything larger selects the process
    pool.  The one policy shared by the CLI, the figure runners and the
    compat ``parallel`` module.
    """
    return "process" if jobs and jobs > 1 else "serial"


def resolve_executor(executor, jobs: int | None = None):
    """Resolve an executor name (or pass an instance through).

    Names go through :data:`EXECUTOR_REGISTRY` and are constructed with
    ``jobs``; anything with a ``run`` or ``map`` attribute is accepted
    as-is.
    """
    if isinstance(executor, str):
        return EXECUTOR_REGISTRY.get(executor)(jobs=jobs)
    if hasattr(executor, "run") or hasattr(executor, "map"):
        return executor
    raise TypeError(f"executor must be a registered name or have .run/.map, "
                    f"got {executor!r}")


def run_stream(executor, fn, items):
    """The streaming view of any executor (legacy ``map``-only included).

    Native ``run`` executors stream incrementally; a ``map``-only
    executor is adapted by materialising its list — no streaming, no
    quarantine, but every call site keeps working.
    """
    if hasattr(executor, "run"):
        return executor.run(fn, items)
    return iter(enumerate(executor.map(fn, items)))
