"""Declarative run plans: what to simulate, not how.

A :class:`RunSpec` describes one experiment series — a base
:class:`~repro.network.config.SimConfig`, a traffic-pattern spec, a
load grid and a tuple of seed replicas — and :meth:`RunSpec.expand`
flattens it into self-contained :class:`RunPoint` jobs.  Points are
mutually independent (each owns its config and RNG seed), which is what
lets the executors fan them out over a process pool and the cache
address results by point content alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.network.config import SimConfig

#: bump when the record schema produced by the workers changes, so stale
#: cache entries from an older layout are never replayed
#: (v2: transient kind, auto-steady warm-up flag, series bucket width)
POINT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunPoint:
    """One self-contained simulation job (the unit of execution/caching).

    ``kind`` selects the worker: ``"steady"`` runs the warm-up/measure
    workflow (needs ``load``/``warmup``/``measure``), ``"drain"`` runs a
    burst-consumption experiment (needs ``packets_per_node``/
    ``max_cycles``), ``"transient"`` runs the burst-response load step
    (needs ``load`` + ``packets_per_node``; ``bucket`` sets the series
    resolution).  ``steady=True`` replaces the blind warm-up of steady
    points with the auto-detected steady-state rule (``warmup`` becomes
    the cycle cap).  ``series`` labels the curve the record belongs to
    (e.g. the routing mechanism); ``coords`` are extra coordinate pairs
    merged verbatim into the record (e.g. ``(("global_pct", 40),)``).
    """

    config: SimConfig
    pattern: str
    kind: str = "steady"
    load: float | None = None
    warmup: int = 0
    measure: int = 0
    packets_per_node: int | None = None
    max_cycles: int | None = None
    bucket: int | None = None
    steady: bool = False
    series: str = ""
    coords: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("steady", "drain", "transient"):
            raise ValueError(f"unknown RunPoint kind {self.kind!r}; "
                             "expected 'steady', 'drain' or 'transient'")
        if self.kind in ("steady", "transient") and self.load is None:
            raise ValueError(f"{self.kind} RunPoint needs an offered load")
        if self.kind in ("drain", "transient") and self.packets_per_node is None:
            raise ValueError(f"{self.kind} RunPoint needs packets_per_node")

    def describe(self) -> dict:
        """JSON-safe mapping of everything that determines the measurement.

        Display labels (``series``, ``coords``) are deliberately absent:
        they don't influence the simulation, and keeping them out of the
        cache key lets differently-labelled plans share cached results.
        ``config.engine`` is stripped for the same reason: every engine
        backend is record-identical by contract, so a point computed on
        the array core must hit the cache entry the wheel engine wrote.
        """
        config = self.config.to_dict()
        del config["engine"]
        return {
            "schema": POINT_SCHEMA_VERSION,
            "config": config,
            "pattern": self.pattern,
            "kind": self.kind,
            "load": self.load,
            "warmup": self.warmup,
            "measure": self.measure,
            "packets_per_node": self.packets_per_node,
            "max_cycles": self.max_cycles,
            "bucket": self.bucket,
            "steady": self.steady,
        }

    def key(self) -> str:
        """Content hash of the point — the result-cache address.

        Two points with equal configs, traffic and windows share a key
        regardless of which spec produced them, how their records are
        labelled, or when they ran.
        """
        blob = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def replica_seeds(base_seed: int, replicas: int) -> tuple[int, ...]:
    """The seed tuple for ``replicas`` independent runs starting at ``base_seed``."""
    if replicas < 1:
        raise ValueError("need at least one seed replica")
    return tuple(base_seed + i for i in range(replicas))


@dataclass(frozen=True)
class RunSpec:
    """A declarative experiment series: config x pattern x loads x seeds.

    Units: ``loads`` are offered loads in phits/(node·cycle);
    ``warmup``/``measure``/``max_cycles``/``bucket`` are cycles;
    ``packets_per_node`` counts whole packets.  Expansion
    (:meth:`expand`) is deterministic — seeds outer, loads inner, in
    declaration order — and each point's record depends only on the
    point's content, never on the executor that computes it.

    ``seeds`` holds the explicit replica seeds (see :func:`replica_seeds`);
    each expands to its own point with ``config.with_(seed=s)``, so a
    multi-seed spec yields ``len(loads) * len(seeds)`` independent jobs.
    For ``kind="drain"`` specs, ``loads`` is ignored and one point per
    seed is produced from ``packets_per_node``/``max_cycles``; for
    ``kind="transient"`` (burst-response load step) one point per
    (load, seed) pair combines ``loads`` with ``packets_per_node`` /
    ``bucket``.  ``steady=True`` switches steady points to the
    auto-detected warm-up (``warmup`` = cycle cap).
    """

    config: SimConfig
    pattern: str
    loads: tuple[float, ...] = ()
    warmup: int = 0
    measure: int = 0
    seeds: tuple[int, ...] = ()
    kind: str = "steady"
    packets_per_node: int | None = None
    max_cycles: int | None = None
    bucket: int | None = None
    steady: bool = False
    series: str = ""
    coords: tuple[tuple[str, object], ...] = field(default=())

    def expand(self) -> list[RunPoint]:
        """Flatten into independent :class:`RunPoint` jobs (loads x seeds)."""
        seeds = self.seeds or (self.config.seed,)
        points = []
        for seed in seeds:
            cfg = self.config if seed == self.config.seed else self.config.with_(seed=seed)
            if self.kind == "drain":
                points.append(RunPoint(
                    config=cfg, pattern=self.pattern, kind="drain",
                    packets_per_node=self.packets_per_node,
                    max_cycles=self.max_cycles,
                    series=self.series, coords=self.coords))
            elif self.kind == "transient":
                points.extend(
                    RunPoint(config=cfg, pattern=self.pattern, kind="transient",
                             load=load, warmup=self.warmup,
                             measure=self.measure,
                             packets_per_node=self.packets_per_node,
                             bucket=self.bucket,
                             series=self.series, coords=self.coords)
                    for load in self.loads
                )
            else:
                points.extend(
                    RunPoint(config=cfg, pattern=self.pattern, load=load,
                             warmup=self.warmup, measure=self.measure,
                             steady=self.steady,
                             series=self.series, coords=self.coords)
                    for load in self.loads
                )
        return points

    def with_(self, **kwargs) -> "RunSpec":
        """Copy with fields replaced (mirrors ``SimConfig.with_``)."""
        return replace(self, **kwargs)


def expand_specs(specs) -> list[RunPoint]:
    """Expand several specs into one flat job list (one executor pass)."""
    points: list[RunPoint] = []
    for spec in specs:
        points.extend(spec.expand())
    return points


def parse_shard(shard: str) -> tuple[int, int]:
    """Parse a CLI-style ``"i/n"`` shard selector into ``(index, count)``.

    ``index`` is zero-based: ``"0/2"`` and ``"1/2"`` together cover a
    plan.  Raises ``ValueError`` with the expected grammar on anything
    else.
    """
    try:
        index_text, count_text = shard.split("/", 1)
        index, count = int(index_text), int(count_text)
    except (ValueError, AttributeError):
        raise ValueError(
            f"shard selector must look like 'i/n' (e.g. '0/2'), got "
            f"{shard!r}") from None
    _check_shard(index, count)
    return index, count


def _check_shard(index: int, count: int) -> None:
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index} "
            f"(indices are zero-based: the shards of /2 are 0/2 and 1/2)")


def in_shard(point: RunPoint, index: int, count: int) -> bool:
    """Deterministic shard membership by the point's content hash.

    The partition depends only on :meth:`RunPoint.key` — never on list
    order, spec grouping or labels — so any decomposition of a plan
    into shards covers exactly the same points, and the union of shard
    caches is byte-identical to a serial run's cache.
    """
    return int(point.key()[:16], 16) % count == index


def shard_points(points, index: int, count: int) -> list[RunPoint]:
    """The sub-list of ``points`` belonging to shard ``index`` of ``count``.

    Shards are disjoint and their union (over ``index = 0..count-1``)
    is the whole plan, in plan order.  ``count=1`` returns every point.
    """
    _check_shard(index, count)
    if count == 1:
        return list(points)
    return [p for p in points if in_shard(p, index, count)]
