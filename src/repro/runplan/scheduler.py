"""Streaming point scheduler: incremental results, retry, quarantine.

The executor contract used to be all-or-nothing — ``map(fn, items) ->
list`` either returns every result or aborts the whole plan on the
first exception (and loses every in-flight result when a pool worker
dies).  This module provides the incremental replacement::

    scheduler.run(fn, items) -> iterator of (index, result | PointError)

* results are yielded **as they complete** (out of submission order on
  a pool), so consumers can checkpoint, aggregate and render
  progressively instead of waiting for the slowest point;
* a point whose computation fails — an exception from ``fn`` *or* the
  death of the worker process running it — is retried up to
  ``max_retries`` extra times; a point that keeps failing is
  **quarantined** as a structured :class:`PointError` yielded in its
  slot, and every other point still completes;
* worker death (a ``SIGKILL``-ed or crashed pool process breaks the
  whole :class:`~concurrent.futures.ProcessPoolExecutor`) is survived
  by respawning the pool and re-submitting only the attempts that were
  lost with it, with exponential backoff between consecutive respawns.

Two implementations share the contract: :class:`SerialScheduler` runs
inline (``fn`` need not be picklable; results arrive in order) and
:class:`PoolScheduler` fans out over a process pool with *wave*
dispatch — at most ``jobs`` attempts are in flight at a time, so free
workers steal the next pending point and the blame set for a pool
break is bounded by the wave, never the whole plan.

Exception types listed in ``fatal`` are never retried or quarantined;
they propagate immediately and abort the run (the serve layer uses
this for cooperative cancellation and the flow-conservation gate).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass, field

__all__ = [
    "PointError",
    "PlanExecutionError",
    "SerialScheduler",
    "PoolScheduler",
]


@dataclass(frozen=True)
class PointError:
    """Structured quarantine record for one uncomputable point.

    ``index`` is the position of the item in the scheduler's input (the
    run-plan layer remaps it to the plan index and fills ``key`` with
    the point's content hash).  ``worker_death`` distinguishes a worker
    process dying under the point (``error == "WorkerDeath"``, no
    exception object survives) from ``fn`` raising.  ``exception``
    holds the last raised exception when there was one — excluded from
    equality so records compare by content.
    """

    index: int
    attempts: int
    error: str
    message: str
    worker_death: bool = False
    key: str | None = None
    exception: BaseException | None = field(
        default=None, compare=False, repr=False)

    def describe(self) -> dict:
        """JSON-safe summary (what the serve layer and CLI report)."""
        return {
            "index": self.index,
            "key": self.key,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "worker_death": self.worker_death,
        }


class PlanExecutionError(RuntimeError):
    """Some points of a plan were quarantined after exhausting retries.

    Raised by the run-plan layer *after* every other point completed
    and was checkpointed to the cache, so a re-run only recomputes the
    quarantined points.  ``errors`` holds the :class:`PointError`
    records.
    """

    def __init__(self, errors: list[PointError]) -> None:
        self.errors = list(errors)
        first = self.errors[0]
        more = f" (+{len(self.errors) - 1} more)" if len(self.errors) > 1 else ""
        super().__init__(
            f"{len(self.errors)} of the plan's points failed after "
            f"{first.attempts} attempt(s){more}; first: "
            f"[{first.error}] {first.message}")


def _point_error(index: int, attempts: int,
                 exc: BaseException | None) -> PointError:
    if exc is None:
        return PointError(
            index=index, attempts=attempts, error="WorkerDeath",
            message=("worker process died while computing this point "
                     f"({attempts} attempt(s), pool respawned each time)"),
            worker_death=True)
    return PointError(index=index, attempts=attempts,
                      error=type(exc).__name__, message=str(exc),
                      exception=exc)


class SerialScheduler:
    """Inline implementation of the streaming contract (in order).

    Retry still applies — an exception from ``fn`` is retried with
    ``backoff * 2**(attempt-1)`` seconds of sleep between attempts —
    but worker death cannot be survived here: a point that kills the
    process kills the plan (use :class:`PoolScheduler` for isolation).
    """

    def __init__(self, jobs: int | None = None, *, max_retries: int = 0,
                 backoff: float = 0.0, fatal: tuple = ()) -> None:
        self.jobs = 1
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.fatal = tuple(fatal)
        #: attempts used per input index, updated while :meth:`run` drains
        self.attempt_counts: dict[int, int] = {}

    def run(self, fn, items):
        """Yield ``(index, result | PointError)`` for every item, in order."""
        self.attempt_counts = {}
        for index, item in enumerate(items):
            yield self._attempt(fn, index, item)

    def _attempt(self, fn, index: int, item):
        attempts = 0
        while True:
            attempts += 1
            self.attempt_counts[index] = attempts
            try:
                return index, fn(item)
            except self.fatal:
                raise
            except Exception as e:
                if attempts > self.max_retries:
                    return index, _point_error(index, attempts, e)
                if self.backoff:
                    time.sleep(self.backoff * (2 ** (attempts - 1)))


class PoolScheduler:
    """Process-pool implementation: wave dispatch, respawn, quarantine.

    At most ``jobs`` attempts are in flight at once; completed slots are
    refilled from the pending deque (work stealing: whichever worker
    frees up takes the next point).  When the pool breaks (a worker
    died), every in-flight attempt is charged one failure — the wave
    bounds that blame set to ``jobs`` points — the pool is shut down and
    respawned, and the charged points re-enter the queue unless they
    exhausted ``max_retries``, in which case they are yielded as
    :class:`PointError` quarantine records.  ``backoff`` sleeps
    ``backoff * 2**(n-1)`` seconds before the *n*-th consecutive respawn
    (capped at 5 s) so a crash-looping plan cannot hot-spin fork().

    ``jobs <= 1`` or a single item falls back to inline execution (no
    pool, no worker-death isolation) — same short-circuit the old
    ``ProcessExecutor.map`` had.
    """

    #: hard ceiling on one backoff sleep, seconds
    MAX_BACKOFF = 5.0

    def __init__(self, jobs: int, *, max_retries: int = 2,
                 backoff: float = 0.25, fatal: tuple = ()) -> None:
        if jobs < 1:
            raise ValueError(f"PoolScheduler needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.fatal = tuple(fatal)
        self.attempt_counts: dict[int, int] = {}
        #: pools respawned after worker death during the last :meth:`run`
        self.respawns = 0

    def run(self, fn, items):
        """Yield ``(index, result | PointError)`` as attempts complete."""
        items = list(items)
        self.attempt_counts = {}
        self.respawns = 0
        if not items:
            return iter(())
        if self.jobs <= 1 or len(items) <= 1:
            serial = SerialScheduler(max_retries=self.max_retries,
                                     backoff=self.backoff, fatal=self.fatal)
            serial.attempt_counts = self.attempt_counts
            return serial.run(fn, items)
        return self._run_pool(fn, items)

    def _spawn(self, n_items: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=min(self.jobs, n_items))

    def _settle(self, index: int, item, attempts: int,
                exc: BaseException | None, pending: deque):
        """Requeue a failed attempt, or build its quarantine record."""
        if attempts > self.max_retries:
            return _point_error(index, attempts, exc)
        pending.append((index, item, attempts))
        return None

    def _run_pool(self, fn, items):
        pending: deque = deque((i, item, 0) for i, item in enumerate(items))
        in_flight: dict = {}
        pool = self._spawn(len(items))
        consecutive_respawns = 0
        try:
            while pending or in_flight:
                broken = False
                while pending and len(in_flight) < self.jobs:
                    index, item, attempts = pending[0]
                    try:
                        future = pool.submit(fn, item)
                    except BrokenExecutor:
                        broken = True
                        break
                    pending.popleft()
                    in_flight[future] = (index, item, attempts + 1)
                    self.attempt_counts[index] = attempts + 1
                if in_flight and not broken:
                    done, _ = _wait_futures(set(in_flight),
                                            return_when=FIRST_COMPLETED)
                    for future in done:
                        index, item, attempts = in_flight.pop(future)
                        try:
                            result = future.result()
                        except self.fatal:
                            raise
                        except BrokenExecutor:
                            broken = True
                            error = self._settle(index, item, attempts,
                                                 None, pending)
                            if error is not None:
                                yield index, error
                        except Exception as e:
                            error = self._settle(index, item, attempts,
                                                 e, pending)
                            if error is not None:
                                yield index, error
                        else:
                            consecutive_respawns = 0
                            yield index, result
                if broken:
                    # the pool died under us: every attempt still in
                    # flight was lost with it — charge each one failure
                    for index, item, attempts in in_flight.values():
                        error = self._settle(index, item, attempts,
                                             None, pending)
                        if error is not None:
                            yield index, error
                    in_flight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.respawns += 1
                    consecutive_respawns += 1
                    if self.backoff and (pending or in_flight):
                        time.sleep(min(
                            self.backoff * (2 ** (consecutive_respawns - 1)),
                            self.MAX_BACKOFF))
                    pool = self._spawn(len(items))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
