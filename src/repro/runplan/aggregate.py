"""Merging seed replicas into mean ± confidence records.

Multi-seed run plans produce one record per (point, seed); downstream
consumers (figures, verify checks, reporting) want one record per sweep
coordinate.  :func:`aggregate_replicas` groups records that differ only
in ``seed``, averages every numeric metric across the group and attaches
a 95% confidence half-width (``<metric>_ci``, Student-t over the
replicas — :func:`repro.metrics.statistics.mean_ci`).  Aggregated
records keep the plain metric names, so a mean-of-3-seeds sweep drops
into every consumer that understands single-seed records.
"""

from __future__ import annotations

from repro.metrics.statistics import mean_ci

#: record keys that identify a sweep coordinate rather than a measurement
COORD_KEYS = frozenset({
    "kind", "routing", "pattern", "load", "flow_control", "h",
    "global_pct", "packets_per_node", "threshold", "series",
    "burst", "bucket",
})

#: record keys never aggregated nor used for grouping
_DROPPED_KEYS = frozenset({"seed"})


def _group_key(record: dict) -> tuple:
    return tuple(sorted(
        (k, v) for k, v in record.items() if k in COORD_KEYS
    ))


def aggregate_replicas(records) -> list[dict]:
    """Collapse seed replicas: one record per coordinate, mean ± CI.

    Records are grouped by their coordinate keys (:data:`COORD_KEYS`);
    within a group every numeric field that is not a coordinate is
    replaced by its replica mean plus a ``<field>_ci`` half-width.
    Non-numeric fields and fields present in only some replicas (e.g.
    ``drain_cycles`` on steady points, where it is ``None``) keep the
    first replica's value when all replicas agree, else are dropped.
    The output also carries ``replicas`` (count) and ``seeds`` (sorted).
    Group order follows first appearance, so sweep ordering survives.
    """
    groups: dict[tuple, list[dict]] = {}
    for rec in records:
        groups.setdefault(_group_key(rec), []).append(rec)

    out = []
    for group in groups.values():
        first = group[0]
        agg: dict = {}
        for key, value in first.items():
            if key in _DROPPED_KEYS:
                continue
            if key in COORD_KEYS:
                agg[key] = value
                continue
            values = [rec.get(key) for rec in group]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in values):
                mean, half = mean_ci(values)
                agg[key] = mean
                agg[f"{key}_ci"] = half
            elif all(v == value for v in values):
                agg[key] = value
        agg["replicas"] = len(group)
        agg["seeds"] = sorted(rec.get("seed") for rec in group)
        out.append(agg)
    return out
