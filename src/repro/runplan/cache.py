"""Content-addressed result cache.

Records are stored one JSON file per run point under
``<root>/<key[:2]>/<key>.json``, where ``key`` is the point's content
hash (:meth:`RunPoint.key` — a SHA-256 over the canonical config dict,
traffic spec and measurement windows).  Because the key covers
everything that determines the record, a hit can be replayed verbatim:
cached records are byte-identical (canonical JSON) to a fresh run with
the same seed.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import time
from pathlib import Path

from repro.runplan.spec import RunPoint

#: per-process counter making temp names unique across threads (the
#: serve worker pool writes from several threads of one pid; ``next``
#: on an ``itertools.count`` is atomic under the GIL)
_TMP_SEQ = itertools.count()


def canonical_record_json(record: dict) -> str:
    """Deterministic JSON for a record (sorted keys, fixed separators).

    The determinism contract ("serial == process == cache replay") is
    checked over this encoding, so dict insertion order never matters.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Filesystem cache of run-point records, addressed by content hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, point: RunPoint) -> dict | None:
        """The cached record for ``point``, or ``None`` on a miss."""
        record = self.get_record(point.key())
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def get_record(self, key: str) -> dict | None:
        """Look a record up by its raw content hash (no stats counted).

        The serve layer's ``GET /v1/results/{content_hash}`` endpoint
        reads the cache this way — straight by hash, without a
        :class:`RunPoint` in hand and without touching the job queue.
        """
        try:
            payload = json.loads(self._path(key).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return payload["record"]

    def put(self, point: RunPoint, record: dict) -> None:
        """Store ``record`` atomically: temp file in the cache dir + rename.

        The temp name carries this process's pid *and* a per-process
        sequence number, so concurrent writers — pool processes sharing
        a cache directory, or serve worker threads sharing this object —
        never write the same temp file.  ``os.replace`` then publishes
        the complete file in one atomic step: a reader racing the write
        sees either nothing (a miss) or the full record, never a torn
        JSON (``tests/test_cache_atomic.py``).  Whichever rename lands
        last wins with a complete file (both writers computed the same
        deterministic record anyway).
        """
        path = self._path(point.key())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"point": point.describe(), "record": record}
        tmp = path.with_suffix(f".{os.getpid()}.{next(_TMP_SEQ)}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(path)

    def __len__(self) -> int:
        """Number of cached records on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def iter_entries(self):
        """Yield ``(key, path)`` for every stored record, sorted by key.

        Only finished entries are visible — in-progress atomic writes
        live under ``.tmp`` names the glob never matches.
        """
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem, path

    def total_bytes(self) -> int:
        """Bytes of record payload on disk (the ``cache stats`` number)."""
        return sum(path.stat().st_size for _, path in self.iter_entries())

    def prune(self, *, older_than: float | None = None,
              keep: set[str] | None = None, now: float | None = None,
              dry_run: bool = False) -> dict:
        """Garbage-collect entries; returns a JSON-safe summary.

        ``older_than`` removes only entries whose file mtime is more
        than that many seconds before ``now`` (wall clock by default).
        ``keep`` is a *protection set* of content-hash keys — typically
        every key of a live plan via :func:`plan_keys` — that are never
        removed, whatever their age.  At least one criterion is
        required: calling with neither would silently wipe the cache.
        ``dry_run`` reports what would be removed without touching disk.
        """
        if older_than is None and keep is None:
            raise ValueError(
                "refusing to prune without a criterion: pass older_than "
                "(age in seconds) and/or keep (a set of plan keys to "
                "protect) — prune(older_than=0) removes everything "
                "unprotected")
        cutoff = None
        if older_than is not None:
            cutoff = (time.time() if now is None else now) - older_than
        removed, kept, protected = [], 0, 0
        for key, path in list(self.iter_entries()):
            if keep is not None and key in keep:
                protected += 1
                continue
            if cutoff is not None and path.stat().st_mtime > cutoff:
                kept += 1
                continue
            removed.append(key)
            if not dry_run:
                path.unlink(missing_ok=True)
        return {"removed": len(removed), "removed_keys": removed,
                "kept": kept, "protected": protected, "dry_run": dry_run}

    #: sidecar (cache-root level, outside the ``xx/`` key shards) holding
    #: the hit/miss counters of the most recent plan execution
    RUN_STATS_NAME = "last_run.json"

    def save_run_stats(self) -> None:
        """Persist this object's counters as the cache's last-run stats.

        :func:`~repro.runplan.runner.execute_points` calls this once per
        plan; since CLI invocations build a fresh :class:`ResultCache`,
        the sidecar holds exactly the last plan's hit-rate, which is
        what ``repro cache stats`` reports.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        stats = {"hits": self.hits, "misses": self.misses,
                 "saved_at": time.time()}
        tmp = self.root / f".{self.RUN_STATS_NAME}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
        tmp.write_text(json.dumps(stats, sort_keys=True, indent=1))
        tmp.replace(self.root / self.RUN_STATS_NAME)

    def last_run_stats(self) -> dict | None:
        """The persisted counters of the most recent plan, if any."""
        try:
            return json.loads((self.root / self.RUN_STATS_NAME).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def stats(self) -> dict:
        """Hit/miss counters for this cache object's lifetime."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else math.nan,
            "entries": len(self),
        }


def resolve_cache(cache) -> ResultCache | None:
    """``None`` passes through; strings/paths become a :class:`ResultCache`."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def plan_keys(points) -> set[str]:
    """The content-hash keys of a plan — the protection set for
    :meth:`ResultCache.prune`: pruning with ``keep=plan_keys(points)``
    can never delete a record the plan would replay."""
    return {point.key() for point in points}
