"""Run-plan execution: expand, check the cache, fan out, aggregate.

The module-level :func:`execute_point` is the worker entry shipped to
pool processes; it dispatches a :class:`RunPoint` to the matching
picklable facade worker and merges the point's coordinate labels into
the record.  :func:`execute` is the one call the experiments layer
uses: specs in, records out, with executor / cache / replica
aggregation handled behind the arguments.
"""

from __future__ import annotations

from repro.facade import run_drain, run_point, run_transient
from repro.runplan.aggregate import aggregate_replicas
from repro.runplan.cache import resolve_cache
from repro.runplan.executors import resolve_executor
from repro.runplan.spec import RunPoint, RunSpec, expand_specs


def execute_point(point: RunPoint) -> dict:
    """Compute one point's raw record (picklable process-pool worker).

    Display labels (``series``/``coords``) are merged by the caller
    (:func:`execute_points`), never here, so the record is pure
    measurement content — cacheable under the point's content hash and
    shareable between differently-labelled plans.
    """
    if point.kind == "drain":
        return run_drain(point.config, point.pattern,
                         point.packets_per_node,
                         point.max_cycles or 1_000_000)
    if point.kind == "transient":
        return run_transient(point.config, point.pattern, point.load,
                             point.packets_per_node,
                             point.warmup, point.measure,
                             bucket=point.bucket or 250)
    return run_point(point.config, point.pattern, point.load,
                     point.warmup, point.measure, steady=point.steady)


def labeled_record(point: RunPoint, record: dict) -> dict:
    """Merge a point's display labels (``series``/``coords``) into a copy
    of its raw record — the step between cache-addressable measurement
    content and the labelled records downstream consumers (figures,
    the serve layer's job results) see."""
    rec = dict(record)
    if point.series:
        rec["series"] = point.series
    rec.update(point.coords)
    return rec


_labeled = labeled_record


def execute_points(points, *, executor="serial", jobs: int | None = None,
                   cache=None) -> list[dict]:
    """Execute a flat point list; results come back in point order.

    ``cache`` (a directory path or :class:`ResultCache`) is consulted
    per point before any work is scheduled: hits are replayed verbatim,
    only misses reach the executor, and fresh records are stored on the
    way out.
    """
    points = list(points)
    cache = resolve_cache(cache)
    records: list[dict | None] = [None] * len(points)
    pending: list[tuple[int, RunPoint]] = []
    if cache is None:
        pending = list(enumerate(points))
    else:
        for i, point in enumerate(points):
            hit = cache.get(point)
            if hit is None:
                pending.append((i, point))
            else:
                records[i] = _labeled(point, hit)
    if pending:
        pool = resolve_executor(executor, jobs)
        fresh = pool.map(execute_point, [p for _, p in pending])
        for (i, point), record in zip(pending, fresh):
            if cache is not None:
                cache.put(point, record)
            records[i] = _labeled(point, record)
    return records  # type: ignore[return-value]


def execute(specs, *, executor="serial", jobs: int | None = None,
            cache=None, aggregate: bool | None = None) -> list[dict]:
    """Run one spec or a sequence of specs end to end.

    ``aggregate=None`` (the default) collapses seed replicas exactly
    when some spec carries more than one seed; pass ``False`` for the
    raw per-seed records or ``True`` to force aggregation.
    """
    if isinstance(specs, RunSpec):
        specs = [specs]
    specs = list(specs)
    records = execute_points(expand_specs(specs), executor=executor,
                             jobs=jobs, cache=cache)
    if aggregate is None:
        aggregate = any(len(spec.seeds) > 1 for spec in specs)
    return aggregate_replicas(records) if aggregate else records


def series_map(records, order=()) -> dict[str, list[dict]]:
    """Group records by their ``series`` label, preserving record order.

    ``order`` pre-seeds the series ordering (figures want legend order
    even when an empty series produced no records yet).
    """
    out: dict[str, list[dict]] = {name: [] for name in order}
    for rec in records:
        out.setdefault(rec.get("series", ""), []).append(rec)
    return out
