"""Run-plan execution: expand, check the cache, stream, aggregate.

The module-level :func:`execute_point` is the worker entry shipped to
pool processes; it dispatches a :class:`RunPoint` to the matching
picklable facade worker and merges the point's coordinate labels into
the record.  :func:`execute` is the one call the experiments layer
uses: specs in, records out, with executor / cache / replica
aggregation handled behind the arguments.

Execution is **streaming**: points flow through the scheduler contract
(:mod:`repro.runplan.scheduler`) and every completed point is
checkpointed to the cache *immediately* — a run killed halfway resumes
with zero recomputation — and reported through the optional
``on_result`` callback (a :class:`PointOutcome` per point: cache
hit/computed/retried/quarantined, attempts, progress counters), which
is what progressive figure rendering and the CLI ``--progress`` lines
are built on.  Quarantined points never abort the plan mid-flight: the
remaining points complete (and are cached) first, then the failures
surface as :class:`~repro.runplan.scheduler.PlanExecutionError`
(``errors="raise"``, the default) or are simply omitted from the
result list (``errors="skip"``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.facade import run_drain, run_point, run_transient
from repro.runplan.aggregate import aggregate_replicas
from repro.runplan.cache import resolve_cache
from repro.runplan.executors import resolve_executor, run_stream
from repro.runplan.scheduler import PlanExecutionError, PointError
from repro.runplan.spec import (
    RunPoint,
    RunSpec,
    expand_specs,
    parse_shard,
    shard_points,
)


def execute_point(point: RunPoint, verify: bool = False) -> dict:
    """Compute one point's raw record (picklable process-pool worker).

    Display labels (``series``/``coords``) are merged by the caller
    (:func:`execute_points`), never here, so the record is pure
    measurement content — cacheable under the point's content hash and
    shareable between differently-labelled plans.

    ``verify=True`` runs the point instrumented and enforces the full
    physical-invariant set (flow conservation, Little's law, occupancy
    and latency/capacity bounds) before the record is returned —
    :class:`~repro.analysis.invariants.InvariantViolation` quarantines
    the point instead of caching silently-wrong numbers.  Records are
    byte-identical with or without verification, so verified and
    unverified runs share cache entries.
    """
    if point.kind == "drain":
        return run_drain(point.config, point.pattern,
                         point.packets_per_node,
                         point.max_cycles or 1_000_000, verify=verify)
    if point.kind == "transient":
        return run_transient(point.config, point.pattern, point.load,
                             point.packets_per_node,
                             point.warmup, point.measure,
                             bucket=point.bucket or 250, verify=verify)
    return run_point(point.config, point.pattern, point.load,
                     point.warmup, point.measure, steady=point.steady,
                     verify=verify)


def labeled_record(point: RunPoint, record: dict) -> dict:
    """Merge a point's display labels (``series``/``coords``) into a copy
    of its raw record — the step between cache-addressable measurement
    content and the labelled records downstream consumers (figures,
    the serve layer's job results) see."""
    rec = dict(record)
    if point.series:
        rec["series"] = point.series
    rec.update(point.coords)
    return rec


_labeled = labeled_record


@dataclass(frozen=True)
class PointOutcome:
    """One completed point, as seen by an ``on_result`` callback.

    ``status`` is ``"cached"`` (replayed from the cache, no work),
    ``"computed"`` (fresh, first attempt), ``"retried"`` (fresh, needed
    more than one attempt) or ``"failed"`` (quarantined; ``record`` is
    ``None`` and ``error`` holds the structured
    :class:`~repro.runplan.scheduler.PointError`).  ``index`` is the
    point's position in the executed (post-shard) plan; ``completed`` /
    ``total`` are running progress counters — completion order, not
    plan order, on a process pool.
    """

    index: int
    point: RunPoint
    record: dict | None
    error: PointError | None
    status: str
    attempts: int
    completed: int
    total: int


def _resolve_shard(shard) -> tuple[int, int] | None:
    if shard is None:
        return None
    if isinstance(shard, str):
        return parse_shard(shard)
    index, count = shard
    return int(index), int(count)


def execute_points(points, *, executor="serial", jobs: int | None = None,
                   cache=None, on_result=None, errors: str = "raise",
                   shard=None, verify: bool = False) -> list[dict]:
    """Execute a flat point list; results come back in point order.

    ``cache`` (a directory path or :class:`ResultCache`) is consulted
    per point before any work is scheduled: hits are replayed verbatim,
    only misses reach the executor, and every fresh record is stored
    the moment it lands — the checkpoint that makes killed runs
    resumable.  ``shard`` (``"i/n"`` or ``(i, n)``) restricts execution
    to that deterministic partition of the plan (see
    :func:`~repro.runplan.spec.shard_points`); only the shard's records
    are returned.  ``on_result`` receives a :class:`PointOutcome` per
    completed point, in completion order.  ``errors`` controls
    quarantined points: ``"raise"`` finishes every other point first,
    then raises :class:`~repro.runplan.scheduler.PlanExecutionError`;
    ``"skip"`` drops them from the result list.  ``verify=True`` opts
    every *computed* point into the full physical-invariant set (see
    :func:`execute_point`); cache hits replay without re-verification —
    they were verified when first computed.
    """
    if errors not in ("raise", "skip"):
        raise ValueError(f"errors must be 'raise' or 'skip', got {errors!r}")
    points = list(points)
    resolved_shard = _resolve_shard(shard)
    if resolved_shard is not None:
        points = shard_points(points, *resolved_shard)
    cache = resolve_cache(cache)
    total = len(points)
    completed = 0
    records: list[dict | None] = [None] * total
    failures: list[PointError] = []
    pending: list[tuple[int, RunPoint]] = []

    def notify(**kw) -> None:
        if on_result is not None:
            on_result(PointOutcome(completed=completed, total=total, **kw))

    for i, point in enumerate(points):
        hit = None if cache is None else cache.get(point)
        if hit is None:
            pending.append((i, point))
        else:
            records[i] = _labeled(point, hit)
            completed += 1
            notify(index=i, point=point, record=records[i], error=None,
                   status="cached", attempts=0)
    if pending:
        pool = resolve_executor(executor, jobs)
        plan_index = {j: i for j, (i, _) in enumerate(pending)}
        worker = (partial(execute_point, verify=True) if verify
                  else execute_point)
        for j, result in run_stream(pool, worker,
                                    [p for _, p in pending]):
            i = plan_index[j]
            point = points[i]
            completed += 1
            if isinstance(result, PointError):
                error = replace(result, index=i, key=point.key())
                failures.append(error)
                notify(index=i, point=point, record=None, error=error,
                       status="failed", attempts=error.attempts)
                continue
            if cache is not None:
                cache.put(point, result)  # checkpoint before anything else
            records[i] = _labeled(point, result)
            attempts = getattr(pool, "attempt_counts", {}).get(j, 1)
            notify(index=i, point=point, record=records[i], error=None,
                   status="retried" if attempts > 1 else "computed",
                   attempts=attempts)
    if cache is not None:
        cache.save_run_stats()
    if failures:
        if errors == "raise":
            raise PlanExecutionError(
                sorted(failures, key=lambda e: e.index))
        return [r for r in records if r is not None]
    return records  # type: ignore[return-value]


def execute(specs, *, executor="serial", jobs: int | None = None,
            cache=None, aggregate: bool | None = None, on_result=None,
            errors: str = "raise", shard=None,
            verify: bool = False) -> list[dict]:
    """Run one spec or a sequence of specs end to end.

    ``aggregate=None`` (the default) collapses seed replicas exactly
    when some spec carries more than one seed; pass ``False`` for the
    raw per-seed records or ``True`` to force aggregation.  (When a
    ``shard`` is given, a shard may hold only part of a replica group —
    aggregate after merging shard caches, or pass ``aggregate=False``
    per shard.)  ``on_result`` / ``errors`` / ``shard`` pass through to
    :func:`execute_points`, as does ``verify`` (opt-in full
    physical-invariant enforcement on every computed point).
    """
    if isinstance(specs, RunSpec):
        specs = [specs]
    specs = list(specs)
    records = execute_points(expand_specs(specs), executor=executor,
                             jobs=jobs, cache=cache, on_result=on_result,
                             errors=errors, shard=shard, verify=verify)
    if aggregate is None:
        aggregate = any(len(spec.seeds) > 1 for spec in specs)
    return aggregate_replicas(records) if aggregate else records


def series_map(records, order=()) -> dict[str, list[dict]]:
    """Group records by their ``series`` label, preserving record order.

    ``order`` pre-seeds the series ordering (figures want legend order
    even when an empty series produced no records yet).
    """
    out: dict[str, list[dict]] = {name: [] for name in order}
    for rec in records:
        out.setdefault(rec.get("series", ""), []).append(rec)
    return out
