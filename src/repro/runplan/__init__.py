"""Parallel experiment execution: declarative plans, executors, caching.

The subsystem behind every sweep in the repo::

    from repro.runplan import RunSpec, execute, replica_seeds

    spec = RunSpec(config=cfg, pattern="uniform",
                   loads=(0.1, 0.3, 0.5), warmup=2000, measure=2000,
                   seeds=replica_seeds(1, 3), series="olm")
    records = execute(spec, executor="process", jobs=4, cache=".runcache")

A :class:`RunSpec` expands into independent :class:`RunPoint` jobs
(loads x seed replicas); a pluggable executor (``serial`` or
``process``, registered in :data:`EXECUTOR_REGISTRY`) computes them; a
content-addressed :class:`ResultCache` replays already-computed points
byte-identically; and multi-seed results are merged into mean ± 95%-CI
records by :func:`aggregate_replicas`.  Determinism is a contract:
the same plan yields identical records under any executor, pool size or
cache state (``tests/test_runplan.py``).
"""

from repro.runplan.aggregate import COORD_KEYS, aggregate_replicas
from repro.runplan.cache import (
    ResultCache,
    canonical_record_json,
    plan_keys,
    resolve_cache,
)
from repro.runplan.executors import (
    EXECUTOR_REGISTRY,
    ProcessExecutor,
    SerialExecutor,
    default_workers,
    executor_for_jobs,
    resolve_executor,
    run_stream,
)
from repro.runplan.runner import (
    PointOutcome,
    execute,
    execute_point,
    execute_points,
    labeled_record,
    series_map,
)
from repro.runplan.scheduler import (
    PlanExecutionError,
    PointError,
    PoolScheduler,
    SerialScheduler,
)
from repro.runplan.spec import (
    POINT_SCHEMA_VERSION,
    RunPoint,
    RunSpec,
    expand_specs,
    in_shard,
    parse_shard,
    replica_seeds,
    shard_points,
)

__all__ = [
    "RunSpec",
    "RunPoint",
    "expand_specs",
    "replica_seeds",
    "POINT_SCHEMA_VERSION",
    "parse_shard",
    "in_shard",
    "shard_points",
    "EXECUTOR_REGISTRY",
    "SerialExecutor",
    "ProcessExecutor",
    "default_workers",
    "executor_for_jobs",
    "resolve_executor",
    "run_stream",
    "SerialScheduler",
    "PoolScheduler",
    "PointError",
    "PlanExecutionError",
    "PointOutcome",
    "ResultCache",
    "resolve_cache",
    "plan_keys",
    "canonical_record_json",
    "COORD_KEYS",
    "aggregate_replicas",
    "execute",
    "execute_point",
    "execute_points",
    "labeled_record",
    "series_map",
]
