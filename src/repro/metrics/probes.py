"""Runtime probes: per-interval time series sampled from a live simulator.

Used to watch warm-up, detect steady state, and record buffer-occupancy
profiles (e.g. the pathological local link of ADVG+h becoming the
hotspot).
"""

from __future__ import annotations

from repro.topology.dragonfly import PortKind


class ThroughputProbe:
    """Samples delivered-phit deltas every ``interval`` cycles.

    Call :meth:`sample` once per cycle (or drive it from a loop); the
    ``series`` attribute holds phits/(node·cycle) per interval.
    """

    def __init__(self, sim, interval: int = 500) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.series: list[float] = []
        self._last_phits = sim.stats.delivered_phits
        self._next_sample = sim.now + interval

    def sample(self) -> None:
        if self.sim.now < self._next_sample:
            return
        delta = self.sim.stats.delivered_phits - self._last_phits
        self._last_phits = self.sim.stats.delivered_phits
        self.series.append(delta / (self.sim.topo.num_nodes * self.interval))
        self._next_sample += self.interval

    def run(self, cycles: int) -> list[float]:
        """Advance the simulation, sampling along the way."""
        end = self.sim.now + cycles
        while self.sim.now < end:
            self.sim.step()
            self.sample()
        return self.series


class LatencyProbe:
    """Per-packet latency recorder built on the delivery-observer hook.

    Attaches to a simulator via ``sim.add_delivery_observer``; collects
    one latency sample (bare int, delivery order) per ejected packet
    until detached.  This is the probe the Session facade uses for its
    percentile fields; standalone use::

        probe = LatencyProbe(sim)
        sim.run(5000)
        print(max(probe.latencies))
        probe.detach()

    Memory is O(packets delivered while attached); ``clear()`` after
    warm-up (the Session does) to keep only the measurement window.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.latencies: list[int] = []
        self._attached = True
        sim.add_delivery_observer(self._on_delivered)

    def _on_delivered(self, packet, now: int) -> None:
        self.latencies.append(now - packet.birth)

    def clear(self) -> None:
        self.latencies.clear()

    def detach(self) -> None:
        """Stop observing (idempotent)."""
        if self._attached:
            self._attached = False
            self.sim.remove_delivery_observer(self._on_delivered)


def occupancy_snapshot(sim) -> dict:
    """Mean downstream occupancy fraction per port kind, plus the hottest link."""
    sums = {PortKind.LOCAL: 0.0, PortKind.GLOBAL: 0.0}
    counts = {PortKind.LOCAL: 0, PortKind.GLOBAL: 0}
    hottest = (0.0, None)
    for router in sim.routers:
        for out in router.outputs:
            if out.kind == PortKind.EJECT:
                continue
            frac = out.mean_occupancy_fraction()
            sums[out.kind] += frac
            counts[out.kind] += 1
            if frac > hottest[0]:
                hottest = (frac, (router.rid, int(out.kind), out.index))
    return {
        "local_mean": sums[PortKind.LOCAL] / max(1, counts[PortKind.LOCAL]),
        "global_mean": sums[PortKind.GLOBAL] / max(1, counts[PortKind.GLOBAL]),
        "hottest_fraction": hottest[0],
        "hottest_link": hottest[1],
    }


def injection_backlog(sim) -> dict:
    """Total and maximum source-queue occupancy in phits (saturation signal)."""
    total = 0
    worst = 0
    for router in sim.routers:
        for ip in router.inputs:
            if not ip.is_injection:
                continue
            occ = ip.vcs[0].occupancy
            total += occ
            worst = max(worst, occ)
    return {"total_phits": total, "max_phits": worst}
