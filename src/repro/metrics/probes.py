"""Deprecated probe names + polling-free state snapshots.

The polling probes of the seed tree (`ThroughputProbe` sampled every
cycle, which silently disabled the timing wheel's idle fast-forward)
are kept as thin shims over the event-driven tap layer
(:mod:`repro.metrics.hub`) and emit a :class:`DeprecationWarning`.
New code attaches a :class:`~repro.metrics.hub.MetricsHub` (series,
counters, JSONL) or a :class:`~repro.metrics.hub.LatencyTap` directly.

`occupancy_snapshot` and `injection_backlog` are one-shot state reads
(no per-cycle cost) and remain first-class.
"""

from __future__ import annotations

import warnings

from repro.metrics.hub import LatencyTap, MetricsHub
from repro.topology.base import PortKind


class ThroughputProbe:
    """Deprecated shim: interval throughput series over the event taps.

    The historical polling API (``sample()`` once per cycle) is gone;
    the shim wraps a :class:`~repro.metrics.hub.MetricsHub` whose
    buckets are derived from delivery events, so an attached probe no
    longer suppresses idle fast-forward (pinned in
    ``tests/test_observability.py``).  ``series`` holds
    phits/(node·cycle) per completed ``interval``.

    Unlike the polling original (which only read ``sim.stats``), the
    shim registers engine taps: call :meth:`detach` when done watching
    a long-lived simulator, or the hub keeps observing — and buffering
    buckets — for the simulator's whole life.
    """

    def __init__(self, sim, interval: int = 500) -> None:
        warnings.warn(
            "ThroughputProbe is deprecated; attach a repro.metrics.hub."
            "MetricsHub (event-driven, fast-forward friendly) instead",
            DeprecationWarning, stacklevel=2)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self._hub = MetricsHub(sim, bucket=interval, latencies=False)

    @property
    def series(self) -> list[float]:
        return self._hub.throughput_series()

    def sample(self) -> None:
        """No-op (kept for API compatibility): buckets are event-driven."""

    def run(self, cycles: int) -> list[float]:
        """Advance the simulation; the series accrues from delivery events."""
        self.sim.run(cycles)
        return self.series

    def detach(self) -> None:
        """Stop observing (idempotent)."""
        self._hub.detach()


class LatencyProbe(LatencyTap):
    """Deprecated shim over :class:`~repro.metrics.hub.LatencyTap`."""

    def __init__(self, sim) -> None:
        warnings.warn(
            "LatencyProbe is deprecated; use repro.metrics.hub.LatencyTap",
            DeprecationWarning, stacklevel=2)
        super().__init__(sim)


def occupancy_snapshot(sim) -> dict:
    """Mean downstream occupancy fraction per port kind, plus the hottest link."""
    sums = {PortKind.LOCAL: 0.0, PortKind.GLOBAL: 0.0}
    counts = {PortKind.LOCAL: 0, PortKind.GLOBAL: 0}
    hottest = (0.0, None)
    for router in sim.routers:
        for out in router.outputs:
            if out.kind == PortKind.EJECT:
                continue
            frac = out.mean_occupancy_fraction()
            sums[out.kind] += frac
            counts[out.kind] += 1
            if frac > hottest[0]:
                hottest = (frac, (router.rid, int(out.kind), out.index))
    return {
        "local_mean": sums[PortKind.LOCAL] / max(1, counts[PortKind.LOCAL]),
        "global_mean": sums[PortKind.GLOBAL] / max(1, counts[PortKind.GLOBAL]),
        "hottest_fraction": hottest[0],
        "hottest_link": hottest[1],
    }


def injection_backlog(sim) -> dict:
    """Total and maximum source-queue occupancy in phits (saturation signal)."""
    total = 0
    worst = 0
    for router in sim.routers:
        for ip in router.inputs:
            if not ip.is_injection:
                continue
            occ = ip.vcs[0].occupancy
            total += occ
            worst = max(worst, occ)
    return {"total_phits": total, "max_phits": worst}
