"""Measurement: steady-state collection, probes and statistical tooling."""

from repro.metrics.collector import StatsCollector
from repro.metrics.probes import ThroughputProbe, injection_backlog, occupancy_snapshot
from repro.metrics.statistics import (
    BatchMeansResult,
    batch_means,
    compare_series,
    mean_ci,
    saturation_point,
    steady_state_reached,
)

__all__ = [
    "StatsCollector",
    "ThroughputProbe",
    "occupancy_snapshot",
    "injection_backlog",
    "BatchMeansResult",
    "batch_means",
    "compare_series",
    "mean_ci",
    "saturation_point",
    "steady_state_reached",
]
