"""Measurement: event-driven observability, steady state, statistics."""

from repro.metrics.collector import StatsCollector
from repro.metrics.hub import OBS_SCHEMA_VERSION, LatencyTap, MetricsHub
from repro.metrics.probes import ThroughputProbe, injection_backlog, occupancy_snapshot
from repro.metrics.statistics import (
    BatchMeansResult,
    batch_means,
    compare_series,
    mean_ci,
    recovery_time,
    saturation_point,
    steady_state_reached,
)

__all__ = [
    "StatsCollector",
    "MetricsHub",
    "LatencyTap",
    "OBS_SCHEMA_VERSION",
    "ThroughputProbe",
    "occupancy_snapshot",
    "injection_backlog",
    "BatchMeansResult",
    "batch_means",
    "compare_series",
    "mean_ci",
    "recovery_time",
    "saturation_point",
    "steady_state_reached",
]
