"""Statistical tooling for steady-state simulation output.

Cycle simulations produce autocorrelated samples; the standard remedy
is the batch-means method: split the measurement window into batches,
treat batch means as (approximately) independent, and build a
confidence interval from their spread.  This module also derives the
headline numbers of the paper's figures from sweep records: saturation
throughput and the saturation onset load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# two-sided Student-t 97.5% quantiles for df = 1..30 (95% CI)
_T975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_quantile_975(df: int) -> float:
    """Student-t 0.975 quantile (normal approximation beyond df=30)."""
    if df < 1:
        raise ValueError("df must be >= 1")
    return _T975[df - 1] if df <= 30 else 1.96


@dataclass(frozen=True)
class BatchMeansResult:
    """Mean with a 95% confidence half-width from batch means."""

    mean: float
    half_width: float
    batches: int

    @property
    def ci(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def relative_error(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else math.inf


def batch_means(samples, num_batches: int = 10) -> BatchMeansResult:
    """95% CI for the mean of an autocorrelated sample stream."""
    samples = list(samples)
    if num_batches < 2:
        raise ValueError("need at least 2 batches")
    if len(samples) < num_batches:
        raise ValueError("need at least one sample per batch")
    size = len(samples) // num_batches
    means = [
        sum(samples[i * size:(i + 1) * size]) / size
        for i in range(num_batches)
    ]
    grand = sum(means) / num_batches
    var = sum((m - grand) ** 2 for m in means) / (num_batches - 1)
    half = t_quantile_975(num_batches - 1) * math.sqrt(var / num_batches)
    return BatchMeansResult(mean=grand, half_width=half, batches=num_batches)


def mean_ci(values) -> tuple[float, float]:
    """Mean and 95% confidence half-width across independent replicas.

    Unlike :func:`batch_means` (which slices one autocorrelated stream),
    this treats each value as an already-independent observation — e.g.
    the same sweep point simulated under different RNG seeds.  A single
    replica yields a zero half-width (no spread information); any NaN
    value poisons both outputs.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("need at least one replica value")
    if any(math.isnan(v) for v in values):
        return (math.nan, math.nan)
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return (mean, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_quantile_975(n - 1) * math.sqrt(var / n)
    return (mean, half)


def saturation_point(points, *, rel_tolerance: float = 0.05) -> dict:
    """Locate the saturation of an offered-vs-accepted sweep.

    A sweep point is 'unsaturated' while accepted tracks offered within
    ``rel_tolerance``.  Returns the last unsaturated load (onset), the
    maximum accepted load, and the load achieving it.
    """
    pts = sorted(points, key=lambda p: p["load"])
    if not pts:
        raise ValueError("empty sweep")
    onset = None
    for p in pts:
        if p["throughput"] >= p["load"] * (1 - rel_tolerance):
            onset = p["load"]
    best = max(pts, key=lambda p: p["throughput"])
    return {
        "onset_load": onset,
        "max_throughput": best["throughput"],
        "max_throughput_load": best["load"],
    }


def compare_series(series_a, series_b) -> dict:
    """Ratio summary of two sweeps (e.g. OLM vs PB, the paper's +24.2%)."""
    sat_a = max(p["throughput"] for p in series_a)
    sat_b = max(p["throughput"] for p in series_b)
    return {
        "sat_a": sat_a,
        "sat_b": sat_b,
        "ratio": sat_a / sat_b if sat_b else math.inf,
        "improvement_pct": 100.0 * (sat_a / sat_b - 1.0) if sat_b else math.inf,
    }


def recovery_time(series, baseline: float, *, bucket: int,
                  rel_tolerance: float = 0.15, hold: int = 3) -> int | None:
    """Cycles until a bucketed series settles back onto ``baseline``.

    The transient burst-response metric: after a load step, the
    throughput series first spikes above the steady baseline (the
    network drains the backlog) and then returns to it.  Recovery is
    the offset of the first bucket from which every one of ``hold``
    consecutive buckets stays within ``rel_tolerance`` of ``baseline``
    (absolute tolerance when the baseline is zero).  Returns ``None``
    when the series never settles for ``hold`` buckets.
    """
    if hold < 1:
        raise ValueError("hold must be >= 1")
    tol = rel_tolerance * abs(baseline) if baseline else rel_tolerance
    series = list(series)
    run = 0
    for i, v in enumerate(series):
        run = run + 1 if abs(v - baseline) <= tol else 0
        if run >= hold:
            return (i - hold + 1) * bucket
    return None


def steady_state_reached(throughput_series, *, window: int = 5,
                         rel_tolerance: float = 0.1) -> bool:
    """Heuristic warm-up check: the last ``window`` samples are mutually
    within ``rel_tolerance`` of their own mean."""
    tail = list(throughput_series)[-window:]
    if len(tail) < window:
        return False
    mean = sum(tail) / len(tail)
    if mean == 0:
        return all(v == 0 for v in tail)
    return all(abs(v - mean) <= rel_tolerance * abs(mean) for v in tail)
