"""Event-driven metrics: taps multiplexed into counters and time series.

:class:`MetricsHub` attaches to a live simulator through the engine tap
interface (:mod:`repro.network.taps`) and turns the raw event stream —
inject, grant, eject, credit, ring-entry — into

* running totals (packets, phits, misroutes, ring hops, credits),
* cycle-bucketed series: throughput, latency mean/percentiles,
  per-port-kind/per-VC occupancy, local/global misroute rates and
  escape-ring utilisation, and
* structured records (one dict per bucket plus a summary) exportable
  as deterministic JSONL under ``results/``.

Nothing here polls the simulator: buckets are derived from event
timestamps, so cycles skipped by the timing wheel's idle fast-forward
simply show up as empty (zero) buckets.  A hub observes only — it
never mutates simulator state or consumes RNG, so the simulated
records are byte-identical with or without a hub attached
(``tests/test_observability.py``).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.topology.base import PortKind

#: bump when the bucket/summary record layout changes
OBS_SCHEMA_VERSION = 1

_KIND_NAMES = {int(PortKind.LOCAL): "local", int(PortKind.GLOBAL): "global"}

_EJECT = PortKind.EJECT


def _percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return float(sorted_values[rank - 1])


class _Bucket:
    """Per-interval accumulators (one per ``bucket`` cycles)."""

    __slots__ = ("injected", "delivered", "delivered_phits", "latency_sum",
                 "latency_max", "latencies", "grants", "local_misroutes",
                 "global_misroutes", "ring_hops", "credit_phits", "occupancy",
                 "inflight")

    def __init__(self, occupancy: dict, inflight: int = 0) -> None:
        self.injected = 0
        self.delivered = 0
        self.delivered_phits = 0
        self.latency_sum = 0
        self.latency_max = 0
        self.latencies: list[int] = []
        self.grants = 0
        self.local_misroutes = 0
        self.global_misroutes = 0
        self.ring_hops = 0
        self.credit_phits = 0
        #: downstream occupancy in phits per (kind, vc) at bucket open
        self.occupancy = occupancy
        #: engine packets in flight at bucket open (Little's-law sample)
        self.inflight = inflight


class LatencyTap:
    """Per-packet latency recorder on the eject tap.

    The canonical replacement for the polling-era ``LatencyProbe``:
    attaches through :meth:`Simulator.add_tap`, collects one latency
    sample (bare int, delivery order) per ejected packet until
    detached.  The Session facade uses it for its percentile fields.
    Memory is O(packets delivered while attached); ``clear()`` after
    warm-up to keep only the measurement window.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.latencies: list[int] = []
        self._attached = True
        sim.add_tap(self)

    def on_eject(self, packet, now: int) -> None:
        self.latencies.append(now - packet.birth)

    def on_eject_batch(self, latencies, dones) -> None:
        """Batched form of :meth:`on_eject`: whole-cycle latency arrays.

        The array engine delivers a cycle's packets as one call with the
        latency and completion-cycle arrays in delivery order, so the
        sample list stays element-for-element identical to the scalar
        tap while skipping per-packet Python work.
        """
        self.latencies.extend(latencies.tolist())

    def clear(self) -> None:
        self.latencies.clear()

    def detach(self) -> None:
        """Stop observing (idempotent)."""
        if self._attached:
            self._attached = False
            self.sim.remove_tap(self)


class MetricsHub:
    """Multiplexes the engine taps into counters and bucketed series.

    ``bucket`` is the series resolution in cycles; ``latencies=False``
    drops the per-bucket latency samples (and therefore the percentile
    series) for long headless runs.  The window starts at the cycle the
    hub is attached; :meth:`reset` restarts it.
    """

    def __init__(self, sim, bucket: int = 500, *, latencies: bool = True) -> None:
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.sim = sim
        self.bucket = int(bucket)
        self._keep_latencies = latencies
        #: downstream occupancy in phits per (kind, vc), seeded from the
        #: live credit state and tracked from grant/credit events after
        #: that (physical state: survives ``reset``)
        self._occ: dict[tuple[int, int], int] = {}
        for router in sim.routers:
            for out in router.outputs:
                if out.kind is _EJECT:
                    continue
                k = int(out.kind)
                for vc, credits in enumerate(out.credits):
                    key = (k, vc)
                    self._occ[key] = self._occ.get(key, 0) + (out.capacity - credits)
        self._on_ring: set[int] = set()
        self._attached = True
        self._zero_window(sim.now)
        sim.add_tap(self)

    def _zero_window(self, now: int) -> None:
        self.start_cycle = now
        #: packets in flight when the window opened (flow conservation
        #: baseline for :meth:`verify`)
        self._inflight_at_window_start = self.sim.packets_in_flight
        self._buckets: list[_Bucket] = []
        self.injected = 0
        self.delivered = 0
        self.delivered_phits = 0
        self.grants = 0
        self.local_misroutes = 0
        self.global_misroutes = 0
        self.ring_hops = 0
        self.ring_entries = 0
        self.credit_phits = 0
        #: total delivery latency (cycles) over the window — the λ·W
        #: side of the Little's-law identity in :meth:`verify(full=True)`
        self.latency_cycles = 0
        #: smallest single-packet latency seen (None until a delivery)
        self.latency_min: int | None = None
        #: total eject-stamp lead (cycles): deliveries are stamped at
        #: tail-ejection *completion* while the engine removes the
        #: packet from ``packets_in_flight`` at the current cycle, so
        #: each delivery's latency counts ``cycle - now`` packet-cycles
        #: the population never holds — subtracted from the λ·W side of
        #: the Little's-law identity
        self.eject_lead = 0

    # ------------------------------------------------------------ tap events
    def _bucket_at(self, cycle: int) -> _Bucket:
        idx = (cycle - self.start_cycle) // self.bucket
        buckets = self._buckets
        if idx < len(buckets):
            return buckets[idx]
        # open every bucket up to idx (fast-forward gaps stay empty but
        # still snapshot the — unchanged — occupancy at their open)
        occ = self._occ
        inflight = self.sim.packets_in_flight
        while len(buckets) <= idx:
            buckets.append(_Bucket(dict(occ), inflight))
        return buckets[idx]

    def on_inject(self, packet, cycle: int) -> None:
        self.injected += 1
        self._bucket_at(cycle).injected += 1
        self._refresh_future_snapshots(cycle)

    def _refresh_future_snapshots(self, cycle: int) -> None:
        """Re-snapshot buckets opened ahead of ``cycle``.

        Eject events are stamped at tail-ejection *completion*
        (``t + size``), so a delivery near a bucket boundary can open
        the next bucket before the current cycle's remaining grants and
        credits apply; those buckets' open cycle is still in the
        future, so their occupancy-at-open (and in-flight sample) must
        track every mutation until it is reached.  The common case (no
        future bucket) costs one index comparison.
        """
        idx = (cycle - self.start_cycle) // self.bucket
        buckets = self._buckets
        if idx + 1 >= len(buckets):
            return
        inflight = self.sim.packets_in_flight
        for j in range(idx + 1, len(buckets)):
            buckets[j].occupancy = dict(self._occ)
            buckets[j].inflight = inflight

    def on_grant(self, router, out, vc: int, flit, decision, cycle: int) -> None:
        self.grants += 1
        b = self._bucket_at(cycle)
        b.grants += 1
        if out.kind is not _EJECT:
            key = (int(out.kind), vc)
            self._occ[key] = self._occ.get(key, 0) + flit.size
            self._refresh_future_snapshots(cycle)
        if decision is not None:
            if decision.is_local_misroute:
                self.local_misroutes += 1
                b.local_misroutes += 1
            if decision.valiant_group is not None:
                self.global_misroutes += 1
                b.global_misroutes += 1

    def on_eject(self, packet, cycle: int) -> None:
        self.delivered += 1
        self.delivered_phits += packet.size_phits
        b = self._bucket_at(cycle)
        b.delivered += 1
        b.delivered_phits += packet.size_phits
        latency = cycle - packet.birth
        b.latency_sum += latency
        self.latency_cycles += latency
        if cycle > self.sim.now:
            self.eject_lead += cycle - self.sim.now
        if latency > b.latency_max:
            b.latency_max = latency
        if self.latency_min is None or latency < self.latency_min:
            self.latency_min = latency
        if self._keep_latencies:
            b.latencies.append(latency)
        self._on_ring.discard(packet.pid)
        self._refresh_future_snapshots(cycle)

    def on_credit(self, out, vc: int, amount: int, cycle: int) -> None:
        self.credit_phits += amount
        self._bucket_at(cycle).credit_phits += amount
        key = (int(out.kind), vc)
        self._occ[key] = self._occ.get(key, 0) - amount
        self._refresh_future_snapshots(cycle)

    def on_ring_entry(self, router, out, vc: int, flit, cycle: int) -> None:
        self.ring_hops += 1
        self._bucket_at(cycle).ring_hops += 1
        pid = flit.packet.pid
        if pid not in self._on_ring:
            self._on_ring.add(pid)
            self.ring_entries += 1

    # ------------------------------------------------------------- lifecycle
    def reset(self, now: int | None = None) -> None:
        """Restart the measurement window (counters and series) at ``now``."""
        self._zero_window(self.sim.now if now is None else now)

    def detach(self) -> None:
        """Stop observing (idempotent); collected data stays readable."""
        if self._attached:
            self._attached = False
            self.sim.remove_tap(self)

    # ----------------------------------------------------------- verification
    def verify(self, full: bool = False) -> dict:
        """Invariant verification over the hub's window (SNIPPETS.md §2).

        The always-on check is flow conservation: every packet injected
        inside the window must either have been delivered inside the
        window or still be in flight::

            injected == delivered + (in_flight_now - in_flight_at_window_start)

        At drain (``in_flight_now == 0``, hub attached before the first
        injection) this reduces to ``injected == delivered``.  Inject
        and eject taps mutate the counters at the same engine event
        that mutates ``packets_in_flight``, so the identity holds
        exactly at any point between cycles — a mismatch means lost or
        double-counted packets.

        ``full=True`` adds the complete live invariant set of
        :func:`repro.analysis.invariants.live_checks`: Little's law
        between the bucket-sampled in-flight level and ``λ·W``,
        occupancy non-negativity, the per-node throughput capacity and
        the topology-oracle latency floor.

        Returns a :class:`repro.analysis.invariants.VerifyReport` — a
        dict whose top level keeps the historical flow-conservation
        keys (``ok`` aggregates every check) and whose ``"checks"``
        list carries one structured entry (name, lhs/rhs, tolerance,
        verdict) per invariant.  Callers like the serve layer mark jobs
        failed on ``ok == False`` and render the terms.
        """
        from repro.analysis.invariants import Check, VerifyReport, live_checks

        in_flight = self.sim.packets_in_flight
        expected = self._inflight_at_window_start + self.injected - self.delivered
        flow_ok = in_flight == expected
        checks = [Check(
            "flow_conservation", flow_ok, lhs=in_flight, rhs=expected,
            detail=f"injected={self.injected} delivered={self.delivered} "
                   f"in_flight={in_flight} expected={expected}")]
        if full:
            checks.extend(live_checks(self))
        report = VerifyReport(
            check="flow_conservation",
            ok=flow_ok and all(c.ok for c in checks),
            injected=self.injected,
            delivered=self.delivered,
            in_flight=in_flight,
            in_flight_at_window_start=self._inflight_at_window_start,
            expected_in_flight=expected,
        )
        report["checks"] = [c.to_dict() for c in checks]
        return report

    # --------------------------------------------------------------- readout
    def completed_buckets(self, end: int | None = None) -> list[_Bucket]:
        """The buckets fully covered by ``[start_cycle, end)``.

        ``end`` defaults to the simulator's current cycle; trailing
        event-free (fast-forwarded) intervals materialise as empty
        buckets so series lengths always equal elapsed-time / bucket.
        """
        end = self.sim.now if end is None else end
        n = (end - self.start_cycle) // self.bucket
        if n > 0:
            self._bucket_at(self.start_cycle + (n - 1) * self.bucket)
        return self._buckets[:max(0, n)]

    def throughput_series(self, end: int | None = None) -> list[float]:
        """Accepted load in phits/(node·cycle) per completed bucket."""
        denom = self.sim.topo.num_nodes * self.bucket
        return [b.delivered_phits / denom for b in self.completed_buckets(end)]

    def latency_series(self, end: int | None = None) -> list[float]:
        """Mean delivery latency per completed bucket (NaN when empty)."""
        return [b.latency_sum / b.delivered if b.delivered else math.nan
                for b in self.completed_buckets(end)]

    def in_flight_series(self, end: int | None = None) -> list[int]:
        """Engine packets in flight, sampled at each bucket's open.

        The L side of Little's law: an event-derived level (refreshed
        while a bucket's open cycle is still in the future, exactly
        like the occupancy snapshots), not a per-cycle average.
        """
        return [b.inflight for b in self.completed_buckets(end)]

    def occupancy_series(self, kind: PortKind, end: int | None = None) -> list[int]:
        """Total downstream occupancy (phits) of ``kind`` ports per bucket.

        Sampled at each bucket's open — an event-derived level, not a
        per-cycle average, so it costs nothing between events.
        """
        k = int(kind)
        return [sum(v for (kk, _), v in b.occupancy.items() if kk == k)
                for b in self.completed_buckets(end)]

    def series(self, end: int | None = None) -> dict:
        """Every bucketed series as plain lists (JSON-safe)."""
        buckets = self.completed_buckets(end)
        nodes = self.sim.topo.num_nodes
        denom = nodes * self.bucket
        out = {
            "cycle": [self.start_cycle + i * self.bucket
                      for i in range(len(buckets))],
            "injected": [b.injected for b in buckets],
            "delivered": [b.delivered for b in buckets],
            "throughput": [b.delivered_phits / denom for b in buckets],
            "latency_mean": [b.latency_sum / b.delivered if b.delivered
                             else math.nan for b in buckets],
            "latency_max": [b.latency_max for b in buckets],
            "local_misroute_rate": [b.local_misroutes / b.delivered
                                    if b.delivered else math.nan
                                    for b in buckets],
            "global_misroute_fraction": [b.global_misroutes / b.delivered
                                         if b.delivered else math.nan
                                         for b in buckets],
            "ring_utilisation": [b.ring_hops / b.grants if b.grants else 0.0
                                 for b in buckets],
            "occupancy_local": self.occupancy_series(PortKind.LOCAL, end),
            "occupancy_global": self.occupancy_series(PortKind.GLOBAL, end),
        }
        if self._keep_latencies:
            p50, p95, p99 = [], [], []
            for b in buckets:
                lat = sorted(b.latencies)
                p50.append(_percentile(lat, 0.50))
                p95.append(_percentile(lat, 0.95))
                p99.append(_percentile(lat, 0.99))
            out["latency_p50"] = p50
            out["latency_p95"] = p95
            out["latency_p99"] = p99
        return out

    # --------------------------------------------------------------- records
    def _occupancy_record(self, occ: dict) -> dict:
        rec: dict = {}
        for (kind, vc), phits in sorted(occ.items()):
            rec.setdefault(_KIND_NAMES.get(kind, str(kind)), {})[str(vc)] = phits
        return rec

    def meta_row(self, end: int | None = None, meta: dict | None = None) -> dict:
        """The stream header row; ``meta`` merges extra identifying fields.

        ``end`` defaults to the simulator's current cycle — pass the
        planned window end instead to emit the header before the window
        has run (the serve layer streams it first, since fixed-length
        measurement windows know their end cycle up front).
        """
        end = self.sim.now if end is None else end
        return {
            "schema": OBS_SCHEMA_VERSION,
            "type": "meta",
            "start_cycle": self.start_cycle,
            "end_cycle": end,
            "bucket": self.bucket,
            "num_nodes": self.sim.topo.num_nodes,
            **(meta or {}),
        }

    def bucket_row(self, index: int) -> dict:
        """Row ``index`` of the bucket stream.

        A bucket's row is final as soon as the simulator has advanced
        past the bucket's closing cycle: every engine event is stamped
        at or after the cycle it is emitted, so closed buckets never
        change — which is what lets the serve layer stream rows live,
        byte-identical to a batch :meth:`records` export at the end.
        """
        b = self._bucket_at(self.start_cycle + index * self.bucket)
        denom = self.sim.topo.num_nodes * self.bucket
        row = {
            "schema": OBS_SCHEMA_VERSION,
            "type": "bucket",
            "index": index,
            "cycle": self.start_cycle + index * self.bucket,
            "injected": b.injected,
            "delivered": b.delivered,
            "delivered_phits": b.delivered_phits,
            "throughput": b.delivered_phits / denom,
            "latency_mean": (b.latency_sum / b.delivered
                             if b.delivered else None),
            "latency_max": b.latency_max,
            "grants": b.grants,
            "local_misroutes": b.local_misroutes,
            "global_misroutes": b.global_misroutes,
            "ring_hops": b.ring_hops,
            "credit_phits": b.credit_phits,
            "occupancy": self._occupancy_record(b.occupancy),
        }
        if self._keep_latencies:
            lat = sorted(b.latencies)
            row["latency_p50"] = _percentile(lat, 0.50) if lat else None
            row["latency_p95"] = _percentile(lat, 0.95) if lat else None
            row["latency_p99"] = _percentile(lat, 0.99) if lat else None
        return row

    def summary_row(self, end: int | None = None) -> dict:
        """The window-total trailer row of the record stream."""
        end = self.sim.now if end is None else end
        nodes = self.sim.topo.num_nodes
        return {
            "schema": OBS_SCHEMA_VERSION,
            "type": "summary",
            "injected": self.injected,
            "delivered": self.delivered,
            "delivered_phits": self.delivered_phits,
            "throughput": (self.delivered_phits / (nodes * (end - self.start_cycle))
                           if end > self.start_cycle else 0.0),
            "grants": self.grants,
            "local_misroutes": self.local_misroutes,
            "global_misroutes": self.global_misroutes,
            "ring_hops": self.ring_hops,
            "ring_entries": self.ring_entries,
            "ring_utilisation": (self.ring_hops / self.grants
                                 if self.grants else 0.0),
            "credit_phits": self.credit_phits,
        }

    def records(self, end: int | None = None, meta: dict | None = None) -> list[dict]:
        """Structured record stream: meta header, one row per bucket, summary.

        Every row carries ``schema``/``type``; bucket rows carry the
        bucket's open cycle and all per-bucket metrics, the summary row
        the window totals.  This is the JSONL interchange schema (see
        README §Observability).  The same rows can be obtained one at a
        time (:meth:`meta_row` / :meth:`bucket_row` / :meth:`summary_row`)
        — the serve layer streams them live as each bucket closes.
        """
        end = self.sim.now if end is None else end
        n = max(0, (end - self.start_cycle) // self.bucket)
        return [self.meta_row(end, meta),
                *(self.bucket_row(i) for i in range(n)),
                self.summary_row(end)]

    def write_jsonl(self, path, end: int | None = None,
                    meta: dict | None = None) -> Path:
        """Write the record stream as deterministic JSONL (one dict/line).

        Records are canonically encoded (sorted keys, fixed separators,
        NaN mapped to null), so identical runs produce byte-identical
        files regardless of executor or platform.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [jsonl_line(row) for row in self.records(end, meta)]
        path.write_text("\n".join(lines) + "\n")
        return path


def _strict(obj):
    """NaN is not valid strict JSON: map it to null, recursively."""
    if isinstance(obj, float) and math.isnan(obj):
        return None
    if isinstance(obj, dict):
        return {k: _strict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_strict(v) for v in obj]
    return obj


def strict_jsonable(obj):
    """Public alias of the NaN-to-null mapping (serve layer, reporting)."""
    return _strict(obj)


def jsonl_line(record: dict) -> str:
    """One canonical JSONL line (sorted keys, strict JSON, no spaces)."""
    return json.dumps(_strict(record), sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


__all__ = ["MetricsHub", "LatencyTap", "OBS_SCHEMA_VERSION", "jsonl_line",
           "strict_jsonable"]
