"""Statistics collection.

The collector counts since its last :meth:`reset`; sweep runners reset
it after warm-up so that measurements cover a steady-state window, as
the paper does ("throughput and latency values ... in steady state").
Latency is measured from packet generation (source-queue time included)
to tail ejection, so it diverges past saturation like Figures 4/7.
"""

from __future__ import annotations


class StatsCollector:
    """Accumulates delivery statistics over a measurement window."""

    __slots__ = (
        "window_start",
        "generated",
        "delivered",
        "delivered_phits",
        "latency_sum",
        "latency_max",
        "hops_sum",
        "local_misroutes",
        "global_misroutes",
    )

    def __init__(self) -> None:
        self.reset(0)

    def reset(self, now: int = 0) -> None:
        """Zero all counters; measurements restart at cycle ``now``."""
        self.window_start = now
        self.generated = 0
        self.delivered = 0
        self.delivered_phits = 0
        self.latency_sum = 0
        self.latency_max = 0
        self.hops_sum = 0
        self.local_misroutes = 0
        self.global_misroutes = 0

    # ------------------------------------------------------------- callbacks
    def on_generated(self, packet) -> None:
        self.generated += 1

    def on_generated_batch(self, count: int) -> None:
        """Batched form of :meth:`on_generated` (no per-packet objects)."""
        self.generated += count

    def on_delivered_batch(self, count: int, phits: int, latency_sum: int,
                           latency_max: int, hops_sum: int) -> None:
        """Batched form of :meth:`on_delivered` for misroute-free packets.

        Engines may fold a whole cycle's deliveries into one call when
        every packet in the batch took its minimal route (zero local and
        global misroutes), which is why the misroute counters are absent
        from the signature.
        """
        self.delivered += count
        self.delivered_phits += phits
        self.latency_sum += latency_sum
        if latency_max > self.latency_max:
            self.latency_max = latency_max
        self.hops_sum += hops_sum

    def on_delivered(self, packet, now: int) -> None:
        self.delivered += 1
        self.delivered_phits += packet.size_phits
        latency = now - packet.birth
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency
        self.hops_sum += packet.local_hops_total + packet.g_hops
        self.local_misroutes += packet.local_misroutes
        if packet.global_misrouted:
            self.global_misroutes += 1

    # ------------------------------------------------------------- readouts
    def mean_latency(self) -> float:
        """Mean cycles from generation to tail ejection (NaN when empty)."""
        return self.latency_sum / self.delivered if self.delivered else float("nan")

    def mean_hops(self) -> float:
        return self.hops_sum / self.delivered if self.delivered else float("nan")

    def throughput(self, num_nodes: int, now: int) -> float:
        """Accepted load in phits/(node*cycle) over the window ending at ``now``."""
        window = now - self.window_start
        if window <= 0 or num_nodes <= 0:
            return 0.0
        return self.delivered_phits / (num_nodes * window)

    def local_misroute_rate(self) -> float:
        """Mean local misroutes per delivered packet."""
        return self.local_misroutes / self.delivered if self.delivered else float("nan")

    def global_misroute_fraction(self) -> float:
        """Fraction of delivered packets that took a Valiant detour."""
        return self.global_misroutes / self.delivered if self.delivered else float("nan")

    def as_dict(self, num_nodes: int, now: int) -> dict:
        """Snapshot for experiment records."""
        return {
            "generated": self.generated,
            "delivered": self.delivered,
            "delivered_phits": self.delivered_phits,
            "mean_latency": self.mean_latency(),
            "max_latency": self.latency_max,
            "mean_hops": self.mean_hops(),
            "throughput": self.throughput(num_nodes, now),
            "local_misroute_rate": self.local_misroute_rate(),
            "global_misroute_fraction": self.global_misroute_fraction(),
        }
