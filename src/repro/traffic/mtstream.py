"""A bulk-prefetching word-stream view of CPython's Mersenne Twister.

``random.Random`` is a thin wrapper over MT19937: every ``random()``
call consumes exactly two tempered 32-bit words, every
``getrandbits(k)`` consumes ``ceil(k/32)`` words (zero for ``k == 0``)
packed little-endian, and the *values* of those words depend only on
their position in the stream — never on how earlier words were
interpreted.  That positional property is what makes byte-identical
vectorisation possible: :class:`StreamRandom` pulls thousands of
upcoming words out of a base generator in one C call
(``base.getrandbits(32 * k)``), keeps them in a numpy FIFO, and serves
every primitive draw — scalar or vectorised — from that FIFO in
stream order.

Because the wrapper *is* installed as the simulator's traffic RNG, all
consumers (batched Bernoulli gates, interleaved destination draws,
scalar fallbacks, burst pre-loads) read the same word sequence the
plain generator would have produced, so every draw matches the scalar
reference run draw-for-draw.  The base generator merely runs ahead by
the unconsumed prefetch; no ``getstate``/``setstate`` round-trips are
needed on the hot path.

Only the two primitive sources (``random``, ``getrandbits``) are
overridden.  Everything built on them — ``randrange``, ``randint``,
``choice``, ... — runs CPython's own pure-Python logic, so any traffic
pattern's destination draw consumes the stream exactly as it would on
the real generator.  The hot draws additionally have fused mirrors
that consume the identical words without the call layers:
``_randbelow`` (one rejection loop instead of three call levels per
attempt) and ``walk_gates_uniform`` (the UN pattern's whole
gate-plus-destination hit loop inside the gate walk).

The contract is checked end to end by ``tests/test_inject_batch.py``
and the engine golden matrix; the frozen reference engine never sees
this class.
"""

from __future__ import annotations

import random

try:  # numpy is optional repo-wide; callers decline to batch without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    _np = None

#: 2**53 as a float — ``random()`` is ``(a*2**26 + b) * 2**-53`` exactly
_TWO53 = 9007199254740992.0
#: minimum words fetched per refill; amortises the big-int round trip
_REFILL = 4096


class StreamRandom(random.Random):
    """Drop-in ``random.Random`` backed by a prefetched tempered-word FIFO.

    Construct with the generator to mirror and *replace* that generator
    with the wrapper everywhere it is visible — from then on all draws
    must go through the wrapper (the base generator has run ahead and
    would otherwise skip the buffered words).  ``getstate``/``setstate``
    are refused loudly for that reason.
    """

    def __init__(self, base: random.Random):
        # deliberately no super().__init__(): it would reseed the C-level
        # state, which the wrapper never reads
        self._base = base
        self._words = _np.empty(0, dtype=_np.uint32)
        self._pos = 0
        # Bernoulli gate-phase caches (built per refill, per threshold)
        self._thr = -1.0
        self._he: list = []
        self._ho: list = []
        self._pe = 0
        self._po = 0
        self._phase_ok = False
        self.gauss_next = None  # random.Random API (gauss() bookkeeping)

    # -- FIFO plumbing ----------------------------------------------------

    def _refill(self, need: int) -> None:
        """Append at least ``need`` more unconsumed words to the FIFO."""
        tail = self._words[self._pos:]
        k = max(need - tail.size, _REFILL)
        big = self._base.getrandbits(32 * k)  # consumes exactly k words
        fresh = _np.frombuffer(big.to_bytes(4 * k, "little"), dtype="<u4")
        self._words = _np.concatenate([tail, fresh]) if tail.size else fresh
        self._pos = 0
        self._phase_ok = False

    def _next_word(self) -> int:
        pos = self._pos
        if pos >= self._words.size:
            self._refill(1)
            pos = 0
        self._pos = pos + 1
        return int(self._words[pos])

    # -- random.Random primitives -----------------------------------------

    def seed(self, *args, **kwargs) -> None:
        """No-op: the stream position is the only state."""

    def getstate(self):
        raise RuntimeError(
            "StreamRandom does not expose generator state; it serves a "
            "prefetched window of its base generator's word stream")

    def setstate(self, state) -> None:
        raise RuntimeError(
            "StreamRandom does not accept generator state; reseed the "
            "simulation instead")

    def random(self) -> float:
        nw = self._next_word
        a = nw() >> 5
        b = nw() >> 6
        return (a * 67108864.0 + b) * (1.0 / _TWO53)

    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        nw = self._next_word
        if k <= 32:
            return nw() >> (32 - k)
        words = (k - 1) // 32 + 1
        result = 0
        shift = 0
        for i in range(words):
            w = nw()
            if i == words - 1:
                w >>= words * 32 - k
            result |= w << shift
            shift += 32
        return result

    def _randbelow(self, n):
        """Fused mirror of ``Random._randbelow_with_getrandbits``.

        Consumes the stream identically — one ``k``-bit draw per
        rejection attempt, ``k = n.bit_length()`` — but reads words
        straight out of the FIFO instead of threading three Python
        call levels per attempt (``randrange`` is the hottest pattern
        primitive).
        """
        if not n:
            return 0
        k = n.bit_length()
        if k > 32:
            r = self.getrandbits(k)
            while r >= n:
                r = self.getrandbits(k)
            return r
        shift = 32 - k
        pos = self._pos
        words = self._words
        size = words.size
        while True:
            if pos >= size:
                self._pos = pos
                self._refill(1)
                pos = 0
                words = self._words
                size = words.size
            r = int(words[pos]) >> shift
            pos += 1
            if r < n:
                self._pos = pos
                return r

    # -- vectorised access ------------------------------------------------

    def uniform_block(self, count: int):
        """The next ``count`` ``random()`` uniforms as a float64 array.

        Consumes ``2 * count`` words — exactly what ``count`` scalar
        ``random()`` calls would.  This is the deterministic-destination
        fast path: gate the whole fabric in one compare.
        """
        pos = self._pos
        if self._words.size < pos + 2 * count:
            self._refill(2 * count)
            pos = 0
        w = self._words[pos:pos + 2 * count].astype(_np.float64)
        vals = (_np.floor(w[0::2] / 32.0) * 67108864.0 +
                _np.floor(w[1::2] / 64.0)) * (1.0 / _TWO53)
        self._pos = pos + 2 * count
        return vals

    def _build_phases(self, thr: float) -> None:
        """Precompute gate-hit word offsets for both cursor parities.

        A gate draw at word cursor ``c`` reads words ``(c, c+1)``; an
        interleaved destination draw can flip the cursor's parity, so
        two hit lists are kept — ``_he[i]`` flags the gate starting at
        word ``2i``, ``_ho[i]`` the one starting at ``2i+1``.  Values
        compare as exact integers against ``thr * 2**53`` (both sides
        are exactly representable), matching ``random() < p`` bit for
        bit.
        """
        w = self._words.astype(_np.float64)
        hi = _np.floor(w / 32.0) * 67108864.0
        lo = _np.floor(w / 64.0)
        n = w.size
        scaled = thr * _TWO53
        if n >= 2:
            ve = hi[0:n - 1:2] + lo[1:n:2]
            self._he = _np.flatnonzero(ve < scaled).tolist()
        else:
            self._he = []
        if n >= 3:
            vo = hi[1:n - 1:2] + lo[2:n:2]
            self._ho = _np.flatnonzero(vo < scaled).tolist()
        else:
            self._ho = []
        self._pe = 0
        self._po = 0
        self._thr = thr
        self._phase_ok = True

    def walk_gates_uniform(self, count: int, p: float, nm1: int):
        """Fused gate scan + uniform destination draws.

        The UN pattern's hit body is a single ``_randbelow(nm1)`` (with
        ``nm1 = num_nodes - 1``), so the rejection loop can run inline
        in the gate walk — no Python call boundary per hit at all.
        Consumes the word stream exactly as :meth:`walk_gates` would
        with an ``on_hit`` that draws ``_randbelow(nm1)`` once: gates
        read word pairs, every destination attempt reads one ``k``-bit
        word (``k = nm1.bit_length()``), rejected attempts redraw.
        Requires ``0 < nm1 < 2**32``.  Returns ``(srcs, draws)`` lists —
        hit node ids and their raw ``_randbelow`` results; the caller
        maps draws onto destinations (``d if d < src else d + 1``).
        """
        srcs: list = []
        draws: list = []
        add_src = srcs.append
        add_draw = draws.append
        shift = 32 - nm1.bit_length()
        node = 0
        while node < count:
            remaining = count - node
            c = self._pos
            if self._words.size < c + 2 * remaining:
                self._refill(2 * remaining + 64)
                c = 0
            if not self._phase_ok or self._thr != p:
                self._build_phases(p)
            he, ho = self._he, self._ho
            pe, po = self._pe, self._po
            words = self._words
            size = words.size
            while node < count:
                remaining = count - node
                if c & 1:
                    hits, ptr, base = ho, po, (c - 1) >> 1
                else:
                    hits, ptr, base = he, pe, c >> 1
                n = len(hits)
                while ptr < n and hits[ptr] < base:
                    ptr += 1
                limit = base + remaining
                if ptr < n and hits[ptr] < limit:
                    j = hits[ptr] - base
                    ptr += 1
                    if c & 1:
                        po = ptr
                    else:
                        pe = ptr
                    c += 2 * (j + 1)
                    node += j + 1
                    while True:  # inline _randbelow(nm1) rejection loop
                        if c >= size:
                            self._pos = c
                            self._pe, self._po = pe, po
                            self._refill(1)
                            c = 0
                            words = self._words
                            size = words.size
                        r = int(words[c]) >> shift
                        c += 1
                        if r < nm1:
                            break
                    add_src(node - 1)
                    add_draw(r)
                    self._pos = c
                    if not self._phase_ok:
                        break  # a refill invalidated the phases; rescan
                    if size < c + 2 * (count - node):
                        break  # not enough window left; refill and rescan
                else:
                    if c & 1:
                        po = ptr
                    else:
                        pe = ptr
                    c += 2 * remaining
                    node = count
            self._pe, self._po = pe, po
            self._pos = c
        return srcs, draws

    def walk_gates(self, count: int, p: float, on_hit) -> None:
        """Scan ``count`` Bernoulli(``p``) gate draws, calling ``on_hit(i)``.

        ``i`` is the 0-based gate index (the node id for a whole-fabric
        scan).  ``on_hit`` may draw from this generator — the next gate
        resumes after whatever those draws consumed, exactly like the
        scalar ``for node: if random() < p: dest(...)`` loop.  One
        Python-level call per *hit*, not per node.
        """
        node = 0
        while node < count:
            remaining = count - node
            c = self._pos
            if self._words.size < c + 2 * remaining:
                self._refill(2 * remaining + 64)
                c = 0
            if not self._phase_ok or self._thr != p:
                self._build_phases(p)
            he, ho = self._he, self._ho
            pe, po = self._pe, self._po
            size = self._words.size
            while node < count:
                remaining = count - node
                if c & 1:
                    hits, ptr, base = ho, po, (c - 1) >> 1
                else:
                    hits, ptr, base = he, pe, c >> 1
                n = len(hits)
                while ptr < n and hits[ptr] < base:
                    ptr += 1
                limit = base + remaining
                if ptr < n and hits[ptr] < limit:
                    j = hits[ptr] - base
                    ptr += 1
                    if c & 1:
                        po = ptr
                    else:
                        pe = ptr
                    c += 2 * (j + 1)
                    node += j + 1
                    self._pos = c
                    self._pe, self._po = pe, po
                    on_hit(node - 1)
                    c = self._pos  # destination draws advanced it
                    if not self._phase_ok:
                        break  # a draw refilled the FIFO; rebuild and rescan
                    if size < c + 2 * (count - node):
                        break  # not enough window left; refill and rescan
                else:
                    if c & 1:
                        po = ptr
                    else:
                        pe = ptr
                    c += 2 * remaining
                    node = count
            self._pe, self._po = pe, po
            self._pos = c
