"""Additional traffic patterns beyond the paper's evaluation set.

These are the standard interconnect-benchmark patterns (Dally & Towles
ch. 3) plus a hotspot generator; useful for exploring the mechanisms
outside the paper's ADVG/ADVL envelope and for the ablation benches.
"""

from __future__ import annotations

import random

from repro.registry import PATTERN_REGISTRY, PROCESS_REGISTRY
from repro.topology.base import Topology
from repro.traffic.patterns import TrafficPattern


@PATTERN_REGISTRY.register("shift", description="node i sends to node i+offset (mod N)")
class NodeShift(TrafficPattern):
    """Node-level shift: node ``i`` sends to node ``i + offset (mod N)``."""

    name = "shift"
    deterministic = True

    def __init__(self, offset: int = 1) -> None:
        if offset == 0:
            raise ValueError("shift offset must be non-zero")
        self.offset = offset

    def dest(self, src: int, topo: Topology, rng) -> int:
        return (src + self.offset) % topo.num_nodes


@PATTERN_REGISTRY.register("bitcomp", description="node i sends to node N-1-i")
class BitComplement(TrafficPattern):
    """Node ``i`` sends to node ``N-1-i`` (the bit-complement analogue)."""

    name = "bitcomp"
    deterministic = True

    def dest(self, src: int, topo: Topology, rng) -> int:
        d = topo.num_nodes - 1 - src
        if d == src:  # odd-sized middle node: bounce to a neighbour
            d = (src + 1) % topo.num_nodes
        return d


@PATTERN_REGISTRY.register("tornado", description="group g floods the farthest group g+G//2")
class GroupTornado(TrafficPattern):
    """Group-level tornado: supernode ``g`` floods ``g + G//2``.

    The worst-offset variant of ADVG: the farthest group in the palm
    tree numbering.
    """

    name = "tornado"

    def dest(self, src: int, topo: Topology, rng) -> int:
        g = topo.group_of(topo.router_of_node(src))
        tg = (g + topo.num_groups // 2) % topo.num_groups
        if tg == g:
            tg = (g + 1) % topo.num_groups
        nodes_per_group = topo.a * topo.p
        return tg * nodes_per_group + rng.randrange(nodes_per_group)


@PATTERN_REGISTRY.register("hotspot", description="a fraction of traffic targets one hot node")
class Hotspot(TrafficPattern):
    """A fraction of traffic targets a single hot node, the rest is uniform."""

    name = "hotspot"

    def __init__(self, hot_node: int = 0, fraction: float = 0.2) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.hot_node = hot_node
        self.fraction = fraction

    def dest(self, src: int, topo: Topology, rng) -> int:
        if rng.random() < self.fraction and self.hot_node != src:
            return self.hot_node
        d = rng.randrange(topo.num_nodes - 1)
        return d if d < src else d + 1


@PATTERN_REGISTRY.register("permutation", description="a fixed random node permutation")
class RandomPermutation(TrafficPattern):
    """A fixed random permutation of the nodes (drawn once per instance).

    Models static job placements; every node has exactly one destination
    so per-pair contention is persistent, unlike uniform traffic.
    """

    name = "permutation"
    deterministic = True  # draws from its own seeded RNG, never the stream

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._perm: list[int] | None = None

    def _materialize(self, topo: Topology) -> list[int]:
        if self._perm is None or len(self._perm) != topo.num_nodes:
            rng = random.Random(self.seed)
            n = topo.num_nodes
            perm = list(range(n))
            rng.shuffle(perm)
            # derangement-ish fixups: no node maps to itself
            for i in range(n):
                if perm[i] == i:
                    j = (i + 1) % n
                    perm[i], perm[j] = perm[j], perm[i]
            self._perm = perm
        return self._perm

    def dest(self, src: int, topo: Topology, rng) -> int:
        return self._materialize(topo)[src]


@PROCESS_REGISTRY.register("trace", description="replay explicit (cycle, src, dst) records")
class TraceReplay:
    """Trace-driven injection: replay explicit ``(cycle, src, dst)`` records.

    Records must be sorted by cycle.  This is the hook for driving the
    simulator from application communication traces instead of the
    synthetic Bernoulli sources.
    """

    def __init__(self, records) -> None:
        self.records = sorted(records)
        self._cursor = 0

    @classmethod
    def from_file(cls, path) -> "TraceReplay":
        """Load a whitespace-separated ``cycle src dst`` text trace."""
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                cycle, src, dst = line.split()[:3]
                records.append((int(cycle), int(src), int(dst)))
        return cls(records)

    def inject(self, sim, now: int) -> None:
        recs = self.records
        i = self._cursor
        while i < len(recs) and recs[i][0] <= now:
            _, src, dst = recs[i]
            if src != dst:
                sim.inject_packet(src, dst, now)
            i += 1
        self._cursor = i

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.records)

    def next_injection_cycle(self, now: int) -> int | None:
        """Earliest cycle >= ``now`` at which this trace can inject.

        Part of the optional fast-forward protocol: the engine skips
        cycles it can prove are quiet, so a sparse trace no longer pays
        a full engine cycle per empty gap cycle.
        """
        if self._cursor >= len(self.records):
            return None
        return max(now, self.records[self._cursor][0])
