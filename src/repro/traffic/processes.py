"""Injection processes: Bernoulli open-loop sources and finite bursts."""

from __future__ import annotations

import random

from repro.registry import PROCESS_REGISTRY
from repro.traffic.mtstream import StreamRandom
from repro.traffic.patterns import TrafficPattern, UniformRandom

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    _np = None


@PROCESS_REGISTRY.register("bernoulli", description="open-loop Bernoulli sources at a fixed offered load")
class BernoulliTraffic:
    """Open-loop Bernoulli sources (the paper's steady-state experiments).

    ``load`` is the offered load in phits/(node·cycle); a node generates
    a packet each cycle with probability ``load / packet_phits``.
    """

    def __init__(self, pattern: TrafficPattern, load: float) -> None:
        if load < 0:
            raise ValueError("load must be non-negative")
        self.pattern = pattern
        self.load = load
        self._dest_map = None  # vectorised destination table (deterministic)
        self._dest_topo = None

    @property
    def exhausted(self) -> bool:
        """Open-loop sources never run dry (unless the load is zero)."""
        return self.load == 0

    def inject(self, sim, now: int) -> None:
        # Runs every cycle for every node: everything is hoisted out of
        # the loop, but the per-node draw order (one uniform per node,
        # destination draws interleaved on hits) is the seed engine's
        # RNG stream, byte for byte.
        p = self.load / sim.config.packet_phits
        if p <= 0:
            return
        rng = sim.rng_traffic
        rand = rng.random
        topo = sim.topo
        dest = self.pattern.dest
        inject_packet = sim.inject_packet
        for node in range(topo.num_nodes):
            if rand() < p:
                d = dest(node, topo, rng)
                if d != node:
                    inject_packet(node, d, now)

    def inject_batch(self, sim, now: int):
        """One cycle's injections as ``(srcs, dsts)`` index arrays.

        The batched-injection protocol: engines call this instead of
        :meth:`inject` when available, and consume the arrays without
        per-packet Python work.  Returns ``None`` to decline (no numpy,
        or an unrecognised RNG), in which case the engine falls back to
        the scalar loop.

        The draw stream is the scalar loop's, byte for byte: the first
        call replaces ``sim.rng_traffic`` with a :class:`StreamRandom`
        serving the same generator's word stream, the per-node gate
        uniforms are scanned in bulk, and destination draws interleave
        at the hits exactly as the scalar loop would make them.
        Deterministic patterns skip the hit loop entirely via a
        precomputed destination table.
        """
        if _np is None:
            return None
        p = self.load / sim.config.packet_phits
        if p <= 0:
            empty = _np.empty(0, dtype=_np.int64)
            return empty, empty
        rng = sim.rng_traffic
        if type(rng) is not StreamRandom:
            if type(rng) is not random.Random:
                return None  # user-supplied RNG subclass: keep it scalar
            rng = sim.rng_traffic = StreamRandom(rng)
        topo = sim.topo
        n = topo.num_nodes
        pattern = self.pattern
        if pattern.deterministic:
            dmap = self._dest_map
            if dmap is None or self._dest_topo is not topo:
                dmap = _np.array(
                    [pattern.dest(i, topo, None) for i in range(n)],
                    dtype=_np.int64)
                self._dest_map = dmap
                self._dest_topo = topo
            srcs = _np.flatnonzero(rng.uniform_block(n) < p)
            dsts = dmap[srcs]
            keep = dsts != srcs
            if not keep.all():
                srcs, dsts = srcs[keep], dsts[keep]
            return srcs, dsts
        if type(pattern) is UniformRandom and n > 1:
            # The UN destination is exactly one ``_randbelow(n - 1)`` per
            # hit and never equals the source, so the whole hit loop runs
            # fused inside the stream walker (word consumption unchanged)
            # and the ``d if d < src else d + 1`` mapping vectorises.
            hit_srcs, hit_draws = rng.walk_gates_uniform(n, p, n - 1)
            srcs_a = _np.array(hit_srcs, dtype=_np.int64)
            d = _np.array(hit_draws, dtype=_np.int64)
            return srcs_a, _np.where(d < srcs_a, d, d + 1)
        srcs: list = []
        dsts: list = []
        add_src = srcs.append
        add_dst = dsts.append
        dest = pattern.dest

        def on_hit(s: int) -> None:
            d = dest(s, topo, rng)
            if d != s:
                add_src(s)
                add_dst(d)

        rng.walk_gates(n, p, on_hit)
        return (_np.array(srcs, dtype=_np.int64),
                _np.array(dsts, dtype=_np.int64))


@PROCESS_REGISTRY.register("burst", description="each node queues a fixed burst at cycle 0")
class BurstTraffic:
    """Burst-consumption experiment: each node queues a burst at cycle 0.

    The paper's Figures 6b/9b inject 1000 (VCT) or 89 (WH) packets per
    node and report the cycles needed to drain the network completely.
    """

    def __init__(self, pattern: TrafficPattern, packets_per_node: int) -> None:
        if packets_per_node < 1:
            raise ValueError("packets_per_node must be positive")
        self.pattern = pattern
        self.packets_per_node = packets_per_node
        self._injected = False

    @property
    def exhausted(self) -> bool:
        return self._injected

    def next_injection_cycle(self, now: int) -> int | None:
        """Fast-forward protocol: the burst lands on the next inject call."""
        return None if self._injected else now

    def inject(self, sim, now: int) -> None:
        if self._injected:
            return
        self._injected = True
        topo = sim.topo
        dest = self.pattern.dest
        inject_packet = sim.inject_packet
        ppn = self.packets_per_node
        if self.pattern.deterministic:
            # one destination evaluation per node instead of per packet;
            # deterministic patterns draw nothing, so the RNG stream is
            # untouched either way
            for node in range(topo.num_nodes):
                d = dest(node, topo, None)
                if d != node:
                    for _ in range(ppn):
                        inject_packet(node, d, now)
            return
        rng = sim.rng_traffic
        for node in range(topo.num_nodes):
            for _ in range(ppn):
                d = dest(node, topo, rng)
                if d != node:
                    inject_packet(node, d, now)
