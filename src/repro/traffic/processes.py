"""Injection processes: Bernoulli open-loop sources and finite bursts."""

from __future__ import annotations

from repro.registry import PROCESS_REGISTRY
from repro.traffic.patterns import TrafficPattern


@PROCESS_REGISTRY.register("bernoulli", description="open-loop Bernoulli sources at a fixed offered load")
class BernoulliTraffic:
    """Open-loop Bernoulli sources (the paper's steady-state experiments).

    ``load`` is the offered load in phits/(node·cycle); a node generates
    a packet each cycle with probability ``load / packet_phits``.
    """

    def __init__(self, pattern: TrafficPattern, load: float) -> None:
        if load < 0:
            raise ValueError("load must be non-negative")
        self.pattern = pattern
        self.load = load

    @property
    def exhausted(self) -> bool:
        """Open-loop sources never run dry (unless the load is zero)."""
        return self.load == 0

    def inject(self, sim, now: int) -> None:
        # Runs every cycle for every node: everything is hoisted out of
        # the loop, but the per-node draw order (one uniform per node,
        # destination draws interleaved on hits) is the seed engine's
        # RNG stream, byte for byte.
        p = self.load / sim.config.packet_phits
        if p <= 0:
            return
        rng = sim.rng_traffic
        rand = rng.random
        topo = sim.topo
        dest = self.pattern.dest
        inject_packet = sim.inject_packet
        for node in range(topo.num_nodes):
            if rand() < p:
                d = dest(node, topo, rng)
                if d != node:
                    inject_packet(node, d, now)


@PROCESS_REGISTRY.register("burst", description="each node queues a fixed burst at cycle 0")
class BurstTraffic:
    """Burst-consumption experiment: each node queues a burst at cycle 0.

    The paper's Figures 6b/9b inject 1000 (VCT) or 89 (WH) packets per
    node and report the cycles needed to drain the network completely.
    """

    def __init__(self, pattern: TrafficPattern, packets_per_node: int) -> None:
        if packets_per_node < 1:
            raise ValueError("packets_per_node must be positive")
        self.pattern = pattern
        self.packets_per_node = packets_per_node
        self._injected = False

    @property
    def exhausted(self) -> bool:
        return self._injected

    def next_injection_cycle(self, now: int) -> int | None:
        """Fast-forward protocol: the burst lands on the next inject call."""
        return None if self._injected else now

    def inject(self, sim, now: int) -> None:
        if self._injected:
            return
        self._injected = True
        rng = sim.rng_traffic
        topo = sim.topo
        dest = self.pattern.dest
        for node in range(topo.num_nodes):
            for _ in range(self.packets_per_node):
                d = dest(node, topo, rng)
                if d != node:
                    sim.inject_packet(node, d, now)
