"""Destination patterns from §IV of the paper.

* **UN** — uniform random over all other nodes.
* **ADVG+N** — every node of supernode ``i`` sends to random nodes of
  supernode ``i + N (mod 2h^2+1)``; saturates the single global link
  between the two groups.  ``ADVG+h`` additionally saturates a local
  link in the *intermediate* group of Valiant paths (the pathological
  case studied in [12]).
* **ADVL+N** — every node of router ``i`` sends to a node of router
  ``i + N (mod 2h)`` of the same supernode; saturates a local link.
* **Mixed** — with probability ``p_global`` draw from ADVG+h, else from
  ADVL+1 (Figures 6 and 9).
"""

from __future__ import annotations

import abc

from repro.topology.dragonfly import Dragonfly


class TrafficPattern(abc.ABC):
    """Maps a source node to a destination node (possibly randomized)."""

    name: str = "abstract"

    @abc.abstractmethod
    def dest(self, src: int, topo: Dragonfly, rng) -> int:
        """A destination node for ``src``; never equal to ``src``."""


class UniformRandom(TrafficPattern):
    """UN: uniform over every node except the source."""

    name = "uniform"

    def dest(self, src: int, topo: Dragonfly, rng) -> int:
        d = rng.randrange(topo.num_nodes - 1)
        return d if d < src else d + 1


class AdversarialGlobal(TrafficPattern):
    """ADVG+N: random node of supernode ``group(src) + N``."""

    name = "advg"

    def __init__(self, offset: int = 1) -> None:
        if offset == 0:
            raise ValueError("ADVG offset must be non-zero")
        self.offset = offset

    def dest(self, src: int, topo: Dragonfly, rng) -> int:
        g = topo.group_of(topo.router_of_node(src))
        tg = (g + self.offset) % topo.num_groups
        nodes_per_group = topo.a * topo.p
        return tg * nodes_per_group + rng.randrange(nodes_per_group)


class AdversarialLocal(TrafficPattern):
    """ADVL+N: random node of router ``index(src_router) + N`` in the same group."""

    name = "advl"

    def __init__(self, offset: int = 1) -> None:
        if offset == 0:
            raise ValueError("ADVL offset must be non-zero")
        self.offset = offset

    def dest(self, src: int, topo: Dragonfly, rng) -> int:
        r = topo.router_of_node(src)
        g = topo.group_of(r)
        tgt_idx = (topo.index_in_group(r) + self.offset) % topo.a
        if tgt_idx == topo.index_in_group(r):
            raise ValueError("ADVL offset is a multiple of the group size")
        tr = topo.router_id(g, tgt_idx)
        return topo.node_id(tr, rng.randrange(topo.p))


class MixedGlobalLocal(TrafficPattern):
    """ADVG+h with probability ``p_global``, otherwise ADVL+1 (Figures 6/9)."""

    name = "mixed"

    def __init__(self, p_global: float, global_offset: int, local_offset: int = 1) -> None:
        if not 0.0 <= p_global <= 1.0:
            raise ValueError("p_global must be in [0, 1]")
        self.p_global = p_global
        self.advg = AdversarialGlobal(global_offset)
        self.advl = AdversarialLocal(local_offset)

    def dest(self, src: int, topo: Dragonfly, rng) -> int:
        if rng.random() < self.p_global:
            return self.advg.dest(src, topo, rng)
        return self.advl.dest(src, topo, rng)


def pattern_by_name(name: str, topo: Dragonfly, **kwargs) -> TrafficPattern:
    """Build a pattern from a spec name.

    Recognised: ``uniform``, ``advg+N``, ``advl+N``, ``advg`` (N=1),
    ``advg+h`` (N=h), ``mixed:P`` (P percent global).
    """
    if name == "uniform":
        return UniformRandom()
    if name.startswith("advg"):
        off = name[5:] if name.startswith("advg+") else "1"
        offset = topo.h if off == "h" else int(off or 1)
        return AdversarialGlobal(offset)
    if name.startswith("advl"):
        off = name[5:] if name.startswith("advl+") else "1"
        return AdversarialLocal(int(off or 1))
    if name.startswith("mixed"):
        pct = float(name.split(":", 1)[1]) if ":" in name else kwargs.get("p_global", 50.0)
        return MixedGlobalLocal(pct / 100.0, global_offset=topo.h)
    raise ValueError(f"unknown traffic pattern {name!r}")
