"""Destination patterns from §IV of the paper.

* **UN** — uniform random over all other nodes.
* **ADVG+N** — every node of supernode ``i`` sends to random nodes of
  supernode ``i + N (mod 2h^2+1)``; saturates the single global link
  between the two groups.  ``ADVG+h`` additionally saturates a local
  link in the *intermediate* group of Valiant paths (the pathological
  case studied in [12]).
* **ADVL+N** — every node of router ``i`` sends to a node of router
  ``i + N (mod 2h)`` of the same supernode; saturates a local link.
* **Mixed** — with probability ``p_global`` draw from ADVG+h, else from
  ADVL+1 (Figures 6 and 9).
"""

from __future__ import annotations

import abc
import re

from repro.registry import PATTERN_REGISTRY
from repro.topology.base import Topology


class TrafficPattern(abc.ABC):
    """Maps a source node to a destination node (possibly randomized)."""

    name: str = "abstract"

    #: True when :meth:`dest` never draws from ``rng`` — the destination
    #: is a pure function of ``(src, topo)``.  Batched injectors use this
    #: to vectorise the destination map instead of looping over hits.
    deterministic: bool = False

    @abc.abstractmethod
    def dest(self, src: int, topo: Topology, rng) -> int:
        """A destination node for ``src``; never equal to ``src``."""


@PATTERN_REGISTRY.register(
    "uniform", description="UN: uniform random over all other nodes")
class UniformRandom(TrafficPattern):
    """UN: uniform over every node except the source."""

    name = "uniform"

    def dest(self, src: int, topo: Topology, rng) -> int:
        d = rng.randrange(topo.num_nodes - 1)
        return d if d < src else d + 1


@PATTERN_REGISTRY.register(
    "advg", description="ADVG+N: group i floods group i+N over one global link")
class AdversarialGlobal(TrafficPattern):
    """ADVG+N: random node of supernode ``group(src) + N``."""

    name = "advg"

    def __init__(self, offset: int = 1) -> None:
        if offset == 0:
            raise ValueError("ADVG offset must be non-zero")
        self.offset = offset

    def dest(self, src: int, topo: Topology, rng) -> int:
        g = topo.group_of(topo.router_of_node(src))
        tg = (g + self.offset) % topo.num_groups
        nodes_per_group = topo.a * topo.p
        return tg * nodes_per_group + rng.randrange(nodes_per_group)


@PATTERN_REGISTRY.register(
    "advl", description="ADVL+N: router i floods router i+N of the same group")
class AdversarialLocal(TrafficPattern):
    """ADVL+N: random node of router ``index(src_router) + N`` in the same group."""

    name = "advl"

    def __init__(self, offset: int = 1) -> None:
        if offset == 0:
            raise ValueError("ADVL offset must be non-zero")
        self.offset = offset

    def dest(self, src: int, topo: Topology, rng) -> int:
        r = topo.router_of_node(src)
        g = topo.group_of(r)
        tgt_idx = (topo.index_in_group(r) + self.offset) % topo.a
        if tgt_idx == topo.index_in_group(r):
            raise ValueError("ADVL offset is a multiple of the group size")
        tr = topo.router_id(g, tgt_idx)
        return topo.node_id(tr, rng.randrange(topo.p))


@PATTERN_REGISTRY.register(
    "mixed", description="ADVG+h with probability p, else ADVL+1 (Figs 6/9)")
class MixedGlobalLocal(TrafficPattern):
    """ADVG+h with probability ``p_global``, otherwise ADVL+1 (Figures 6/9)."""

    name = "mixed"

    def __init__(self, p_global: float, global_offset: int, local_offset: int = 1) -> None:
        if not 0.0 <= p_global <= 1.0:
            raise ValueError("p_global must be in [0, 1]")
        self.p_global = p_global
        self.advg = AdversarialGlobal(global_offset)
        self.advl = AdversarialLocal(local_offset)

    def dest(self, src: int, topo: Topology, rng) -> int:
        if rng.random() < self.p_global:
            return self.advg.dest(src, topo, rng)
        return self.advl.dest(src, topo, rng)


#: exact spec grammars handled before the registry fallback
_ADVG_SPEC = re.compile(r"advg(?:\+(h|-?\d+))?$")
_ADVL_SPEC = re.compile(r"advl(?:\+(-?\d+))?$")
_MIXED_SPEC = re.compile(r"mixed(?::(\d+(?:\.\d+)?))?$")


def pattern_by_name(name: str, topo: Topology, **kwargs) -> TrafficPattern:
    """Build a pattern from a spec name.

    Recognised specs: ``uniform``, ``advg+N``, ``advl+N``, ``advg``
    (N=1), ``advg+h`` (N=h), ``mixed:P`` (P percent global).  Any other
    name — including registered names that merely share a spec prefix —
    is resolved through ``PATTERN_REGISTRY`` and constructed with
    ``**kwargs``, so registered third-party patterns work everywhere a
    spec string is accepted (sweeps, CLI, Session).
    """
    if name == "uniform":
        return UniformRandom()
    if m := _ADVG_SPEC.match(name):
        off = m.group(1)
        return AdversarialGlobal(topo.h if off == "h" else int(off or 1))
    if m := _ADVL_SPEC.match(name):
        return AdversarialLocal(int(m.group(1) or 1))
    if m := _MIXED_SPEC.match(name):
        pct = float(m.group(1)) if m.group(1) else kwargs.get("p_global", 50.0)
        return MixedGlobalLocal(pct / 100.0, global_offset=topo.h)
    cls = PATTERN_REGISTRY.get(name)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"traffic pattern {name!r} cannot be built from a bare name: {exc}; "
            "pass its constructor arguments as keyword arguments"
        ) from None
