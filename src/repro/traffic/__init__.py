"""Synthetic traffic: patterns (who talks to whom) and processes (when)."""

from repro.traffic.patterns import (
    TrafficPattern,
    UniformRandom,
    AdversarialGlobal,
    AdversarialLocal,
    MixedGlobalLocal,
    pattern_by_name,
)
from repro.traffic.extra import (
    BitComplement,
    GroupTornado,
    Hotspot,
    NodeShift,
    RandomPermutation,
    TraceReplay,
)
from repro.traffic.processes import BernoulliTraffic, BurstTraffic
from repro.registry import PATTERN_REGISTRY, PROCESS_REGISTRY

__all__ = [
    "PATTERN_REGISTRY",
    "PROCESS_REGISTRY",
    "TrafficPattern",
    "UniformRandom",
    "AdversarialGlobal",
    "AdversarialLocal",
    "MixedGlobalLocal",
    "pattern_by_name",
    "BernoulliTraffic",
    "BurstTraffic",
    "NodeShift",
    "BitComplement",
    "GroupTornado",
    "Hotspot",
    "RandomPermutation",
    "TraceReplay",
]
