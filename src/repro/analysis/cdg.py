"""Channel-dependency-graph (CDG) verification of deadlock freedom.

Dally & Seitz: a routing function is deadlock-free if its channel
dependency graph — nodes are (link, VC) buffers, edges are "a packet
can hold the first while waiting for the second" — is acyclic.  This
module *constructs* the CDG of each mechanism on a concrete Dragonfly
and checks the paper's §III arguments mechanically:

* Minimal / Valiant / Piggybacking / PAR-6/2: strictly ascending
  Günther VC chains ⇒ the CDG is a DAG.
* RLM: local hops inside a supernode reuse one VC, but only parity-sign
  pairs from Table I are allowed ⇒ still a DAG.  Dropping the
  restriction (what a naïve 3/2 local-misrouting scheme would do)
  produces cycles — :func:`build_cdg` exposes that counterfactual.
* OLM: the full dependency graph *contains cycles by design*; safety
  comes from the escape sub-CDG (minimal/Valiant continuations in
  ascending VC order), which must be acyclic and reachable from every
  channel.

Nodes: ``("L", u, v, vc)`` local link channel u→v, ``("G", u, v, vc)``
global link channel, ``("EJ", r)`` ejection sink at router ``r``.
"""

from __future__ import annotations

import networkx as nx

from repro.core.paritysign import link_type, pair_allowed
from repro.topology.dragonfly import Dragonfly

#: mechanisms with plain ascending chains (3 local / 2 global VCs)
_ASCENDING = ("minimal", "valiant", "pb")


def _local_pairs(topo: Dragonfly, group: int):
    base = group * topo.a
    for i in range(topo.a):
        for j in range(topo.a):
            if i != j:
                yield base + i, base + j, i, j


def _global_links(topo: Dragonfly):
    for r in range(topo.num_routers):
        for k in range(topo.global_ports):
            peer, _ = topo.global_neighbor(r, k)
            yield r, peer


def build_cdg(topo: Dragonfly, mechanism: str, *,
              rlm_restricted: bool = True,
              escape_only: bool = False) -> nx.DiGraph:
    """Construct the channel dependency graph of ``mechanism`` on ``topo``.

    ``rlm_restricted=False`` builds the counterfactual RLM without the
    parity-sign restriction.  ``escape_only=True`` keeps only the
    ascending escape continuations (meaningful for OLM).
    """
    if mechanism in _ASCENDING:
        return _cdg_ascending(topo)
    if mechanism == "rlm":
        return _cdg_rlm(topo, restricted=rlm_restricted)
    if mechanism == "par62":
        return _cdg_par62(topo)
    if mechanism == "olm":
        return _cdg_olm(topo, escape_only=escape_only)
    raise ValueError(f"unknown mechanism {mechanism!r}")


def _add_channels(g: nx.DiGraph, topo: Dragonfly, local_vcs: int, global_vcs: int = 2):
    for grp in range(topo.num_groups):
        for u, v, _, _ in _local_pairs(topo, grp):
            for vc in range(local_vcs):
                g.add_node(("L", u, v, vc))
    for u, v in _global_links(topo):
        for vc in range(global_vcs):
            g.add_node(("G", u, v, vc))
    for r in range(topo.num_routers):
        g.add_node(("EJ", r))


def _globals_from(topo: Dragonfly, v: int):
    for k in range(topo.global_ports):
        peer, _ = topo.global_neighbor(v, k)
        yield peer


def _locals_from(topo: Dragonfly, v: int):
    grp, vi = topo.group_of(v), topo.index_in_group(v)
    for w_idx in range(topo.a):
        if w_idx != vi:
            yield topo.router_id(grp, w_idx), vi, w_idx


def _cdg_ascending(topo: Dragonfly) -> nx.DiGraph:
    """MIN/VAL/PB: lVC_{g+1} per group, one local hop per group."""
    g = nx.DiGraph()
    _add_channels(g, topo, local_vcs=3)
    for grp in range(topo.num_groups):
        for u, v, _, _ in _local_pairs(topo, grp):
            for vc in range(3):
                g.add_edge(("L", u, v, vc), ("EJ", v))
                if vc <= 1:
                    for peer in _globals_from(topo, v):
                        g.add_edge(("L", u, v, vc), ("G", v, peer, vc))
    for u, v in _global_links(topo):
        for vc in range(2):
            g.add_edge(("G", u, v, vc), ("EJ", v))
            for w, _, _ in _locals_from(topo, v):
                g.add_edge(("G", u, v, vc), ("L", v, w, vc + 1))
            if vc == 0:
                for peer in _globals_from(topo, v):
                    g.add_edge(("G", u, v, 0), ("G", v, peer, 1))
    return g


def _cdg_rlm(topo: Dragonfly, *, restricted: bool) -> nx.DiGraph:
    """RLM: ascending chains + same-VC local pairs filtered by Table I."""
    g = _cdg_ascending(topo)
    for grp in range(topo.num_groups):
        for u, v, ui, vi in _local_pairs(topo, grp):
            for w, _, wi in _locals_from(topo, v):
                # note: u->v->u (a 180° turn) is included iff Table I allows it
                if restricted and not pair_allowed(link_type(ui, vi), link_type(vi, wi)):
                    continue
                for vc in range(3):
                    g.add_edge(("L", u, v, vc), ("L", v, w, vc))
    return g


def _cdg_par62(topo: Dragonfly) -> nx.DiGraph:
    """PAR-6/2: strictly ascending over the interleaved 6+2 VC ranks.

    rank: lVC1 lVC2 gVC1 lVC3 lVC4 gVC2 lVC5 lVC6  (paper §III-A).
    """
    lrank = [0, 1, 3, 4, 6, 7]
    grank = [2, 5]
    g = nx.DiGraph()
    _add_channels(g, topo, local_vcs=6)
    for grp in range(topo.num_groups):
        for u, v, _, _ in _local_pairs(topo, grp):
            for vc in range(6):
                g.add_edge(("L", u, v, vc), ("EJ", v))
                for w, _, _ in _locals_from(topo, v):
                    if vc + 1 < 6 and lrank[vc + 1] > lrank[vc]:
                        g.add_edge(("L", u, v, vc), ("L", v, w, vc + 1))
                for gvc in range(2):
                    if grank[gvc] > lrank[vc]:
                        for peer in _globals_from(topo, v):
                            g.add_edge(("L", u, v, vc), ("G", v, peer, gvc))
    for u, v in _global_links(topo):
        for gvc in range(2):
            g.add_edge(("G", u, v, gvc), ("EJ", v))
            for w, _, _ in _locals_from(topo, v):
                for vc in range(6):
                    if lrank[vc] > grank[gvc]:
                        g.add_edge(("G", u, v, gvc), ("L", v, w, vc))
            if gvc == 0:
                for peer in _globals_from(topo, v):
                    g.add_edge(("G", u, v, 0), ("G", v, peer, 1))
    return g


def _cdg_olm(topo: Dragonfly, *, escape_only: bool) -> nx.DiGraph:
    """OLM: escape chains (ascending) plus, unless ``escape_only``, the
    opportunistic misroute dependencies that may close cycles."""
    g = _cdg_ascending(topo)  # the escape skeleton is the MIN/VAL chain
    if escape_only:
        return g
    for grp in range(topo.num_groups):
        for u, v, _, _ in _local_pairs(topo, grp):
            for w, _, _ in _locals_from(topo, v):
                # source-group divert: second local hop on the same lVC1
                g.add_edge(("L", u, v, 0), ("L", v, w, 0))
                # intra-group misroute then ascending final hop
                g.add_edge(("L", u, v, 0), ("L", v, w, 1))
    for u, v in _global_links(topo):
        for w, _, _ in _locals_from(topo, v):
            # misroute on arrival: lVC_j with j <= g_hops-1
            g.add_edge(("G", u, v, 0), ("L", v, w, 0))
            g.add_edge(("G", u, v, 1), ("L", v, w, 0))
            g.add_edge(("G", u, v, 1), ("L", v, w, 1))
    return g


# ------------------------------------------------------------- verification
def is_deadlock_free(topo: Dragonfly, mechanism: str) -> bool:
    """Check the paper's deadlock-freedom claim for ``mechanism``.

    For OLM this means: the *escape* CDG is acyclic and every channel
    can step onto it; for the others, the full CDG is acyclic.
    """
    if mechanism == "olm":
        escape = build_cdg(topo, "olm", escape_only=True)
        if not nx.is_directed_acyclic_graph(escape):
            return False
        return escape_reachable(topo)
    g = build_cdg(topo, mechanism)
    return nx.is_directed_acyclic_graph(g)


def escape_reachable(topo: Dragonfly) -> bool:
    """Every OLM channel reaches an ejection sink through escape edges."""
    escape = build_cdg(topo, "olm", escape_only=True)
    sinks = {("EJ", r) for r in range(topo.num_routers)}
    rev = escape.reverse(copy=False)
    reach: set = set()
    for s in sinks:
        reach.add(s)
        reach.update(nx.descendants(rev, s))
    return all(n in reach for n in escape.nodes)


def cycle_witness(topo: Dragonfly, mechanism: str, **kwargs) -> list | None:
    """A concrete dependency cycle, or ``None`` if the CDG is acyclic."""
    g = build_cdg(topo, mechanism, **kwargs)
    try:
        return nx.find_cycle(g)
    except nx.NetworkXNoCycle:
        return None
