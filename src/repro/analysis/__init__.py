"""Analytical helpers: throughput bounds (§II) and CDG deadlock proofs (§III)."""

from repro.analysis.bounds import (
    advg_minimal_bound,
    advg_valiant_local_bound,
    advl_minimal_bound,
    uniform_capacity,
)
from repro.analysis.cdg import (
    build_cdg,
    cycle_witness,
    escape_reachable,
    is_deadlock_free,
)

__all__ = [
    "advg_minimal_bound",
    "advg_valiant_local_bound",
    "advl_minimal_bound",
    "uniform_capacity",
    "build_cdg",
    "cycle_witness",
    "escape_reachable",
    "is_deadlock_free",
]
