"""Analytical helpers: throughput bounds (§II), CDG deadlock proofs
(§III) and the physical-invariant verification layer."""

from repro.analysis.bounds import (
    advg_minimal_bound,
    advg_minimal_capacity,
    advg_valiant_local_bound,
    advl_minimal_bound,
    uniform_capacity,
)
from repro.analysis.cdg import (
    build_cdg,
    cycle_witness,
    escape_reachable,
    is_deadlock_free,
)
from repro.analysis.invariants import (
    Check,
    InvariantViolation,
    VerifyReport,
    check_record,
    live_checks,
    render_markdown,
    verify_result,
)

__all__ = [
    "advg_minimal_bound",
    "advg_minimal_capacity",
    "advg_valiant_local_bound",
    "advl_minimal_bound",
    "uniform_capacity",
    "build_cdg",
    "cycle_witness",
    "escape_reachable",
    "is_deadlock_free",
    "Check",
    "InvariantViolation",
    "VerifyReport",
    "check_record",
    "live_checks",
    "render_markdown",
    "verify_result",
]
