"""Theoretical throughput bounds quoted in the paper (§II).

All values are in phits/(node·cycle) for the canonical well-balanced
Dragonfly with ``p = h`` nodes per router.
"""

from __future__ import annotations


def advg_minimal_bound(h: int) -> float:
    """Minimal routing under ADVG: one global link carries a whole group.

    A group injects ``2h·h`` phits/cycle toward a single global link of
    capacity 1 phit/cycle → ``1 / (2h^2)``; the paper quotes the
    per-node normalisation ``1/(2h^2+1)`` (group count), the same order.
    """
    return 1.0 / (2 * h * h + 1)


def advg_minimal_capacity(h: int) -> float:
    """Hard capacity of minimal routing under ADVG (verification bound).

    The ``2h·h`` nodes of a group share the single global link (capacity
    1 phit/cycle) toward the adversarial target group, so accepted load
    can never exceed ``1/(2h^2)`` phits/(node·cycle).  This is the
    invariant-checker's ceiling; :func:`advg_minimal_bound` keeps the
    paper's slightly tighter per-group normalisation for the figures.
    """
    return 1.0 / (2 * h * h)


def advl_minimal_bound(h: int) -> float:
    """Minimal routing under ADVL: one local link carries a whole router.

    ``h`` injectors share the single local link to the target router →
    ``1/h``.
    """
    return 1.0 / h


def advg_valiant_local_bound(h: int) -> float:
    """Valiant under ADVG+h: pathological local saturation in the
    intermediate group also caps throughput at ``1/h`` ([12])."""
    return 1.0 / h


def uniform_capacity(h: int) -> float:
    """Ideal uniform-traffic capacity per node (global bisection limit).

    Each node's traffic crosses a global link with probability
    ``(g-1)/g ≈ 1``; a router has ``h`` injectors and ``h`` global
    links, so the global network supports ≈1 phit/(node·cycle); real
    routers saturate below that due to HOLB and finite buffering.
    """
    g = 2 * h * h + 1
    return (g - 1) / g
