"""Physical-invariant verification for simulation results.

The shape checks of :mod:`repro.experiments.verify` prove a result
*looks* like its figure; this module proves the numbers are *possible*.
Every checker enforces an identity or bound that no correct simulation
can violate — flow conservation at drain, Little's law between
occupancy, throughput and latency, capacity and bisection bounds from
:mod:`repro.analysis.bounds`, serialization/minimal-hop latency floors,
non-negative counters and sane confidence intervals — so silent drift
that preserves record shape (the failure mode three engine rewrites
make likely) still fails loudly.

Two entry layers share one :class:`Check` vocabulary:

* **record checks** (:func:`check_record`, :func:`verify_result`) work
  on bare result dicts — a ``results/*.json`` figure payload, a served
  job record, a sweep row — and skip silently where a field is absent
  (drain records are heavily reduced);
* **live checks** (:func:`live_checks`) read a
  :class:`~repro.metrics.hub.MetricsHub` mid-flight and add the checks
  only an instrumented window can do: flow conservation against the
  engine's in-flight count and the Little's-law identity between the
  bucket-sampled in-flight level and ``λ·W``.

Layering: this module imports only :mod:`repro.analysis.bounds`; the
hub, facade, run-plan and serve layers all reach *down* into it (the
hub lazily, from :meth:`~repro.metrics.hub.MetricsHub.verify`), never
the other way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.bounds import (
    advg_minimal_capacity,
    advg_valiant_local_bound,
    uniform_capacity,
)

#: default relative tolerance for bound checks (``--tolerance``)
DEFAULT_TOLERANCE = 0.05
#: default relative tolerance for the Little's-law identity — wider than
#: the bound tolerance because the in-flight level is sampled at bucket
#: opens (left-edge rectangles, not a continuous integral) and window
#: edges mis-attribute the residence of packets in flight at the cut
LITTLE_TOLERANCE = 0.15
#: Little's law needs a population: below this many delivered packets
#: (or fewer than 4 completed buckets) the identity check is skipped
LITTLE_MIN_DELIVERED = 50
#: relative slack when matching the implied node count to an integer
_NODES_TOLERANCE = 1e-6


def dragonfly_nodes(h: int) -> int:
    """Node count of the canonical well-balanced Dragonfly: ``p·a·g``."""
    return h * 2 * h * (2 * h * h + 1)


@dataclass(frozen=True)
class Check:
    """One verified invariant: name, verdict, and the compared terms.

    ``lhs``/``rhs`` are the two sides of the identity or bound (lhs is
    the measured quantity, rhs the model/bound), ``tolerance`` the
    relative slack applied, ``detail`` a human-readable account.  A
    check that does not apply to a record is simply not emitted.
    """

    check: str
    ok: bool
    lhs: float | int | None = None
    rhs: float | int | None = None
    tolerance: float | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        """Plain JSON-safe mapping (the serve error payload embeds it)."""
        return {
            "check": self.check,
            "ok": self.ok,
            "lhs": self.lhs,
            "rhs": self.rhs,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }


class VerifyReport(dict):
    """Structured verification report, mapping-compatible by design.

    The flow-conservation keys of the historical
    :meth:`~repro.metrics.hub.MetricsHub.verify` dict stay at the top
    level (``ok``, ``injected``, ``delivered``, ``in_flight``,
    ``expected_in_flight`` — the serve error message formats them and
    the contract tests mutate them), and the structured per-check list
    lives under ``"checks"``: one :meth:`Check.to_dict` mapping per
    invariant, ``ok`` aggregating them all.
    """

    @property
    def checks(self) -> list[dict]:
        return self.get("checks", [])

    @property
    def failures(self) -> list[dict]:
        return [c for c in self.checks if not c.get("ok", True)]

    def check(self, name: str) -> dict | None:
        """The named check's dict, or ``None`` when it was not emitted."""
        for c in self.checks:
            if c.get("check") == name:
                return c
        return None


class InvariantViolation(Exception):
    """A verified window or record broke a physical invariant.

    ``report`` is the failing :class:`VerifyReport` (or any mapping
    with a ``"checks"`` list); the message names every failed check so
    quarantine logs stay actionable.
    """

    def __init__(self, report: dict, message: str | None = None) -> None:
        self.report = report
        if message is None:
            failed = [c.get("check", "?") for c in report.get("checks", ())
                      if not c.get("ok", True)]
            message = ("invariant violation: " + ", ".join(failed)
                       if failed else "invariant violation")
        super().__init__(message)

    def __reduce__(self):
        # default Exception pickling would replay __init__ with the
        # message as the report; verified points cross process pools
        return (type(self), (self.report, self.args[0]))


def enforce(report: dict | None) -> None:
    """Raise :class:`InvariantViolation` when a verify report failed."""
    if report is not None and not report["ok"]:
        raise InvariantViolation(report)


# --------------------------------------------------------------- helpers

def _num(rec: dict, key: str) -> float | None:
    """A record field as a finite number, else None (absent/null/NaN)."""
    v = rec.get(key)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    if isinstance(v, float) and not math.isfinite(v):
        return None
    return v


def _is_dragonfly(rec: dict) -> bool:
    return rec.get("topology", "dragonfly") == "dragonfly"


def _window(rec: dict) -> float | None:
    start, end = _num(rec, "start_cycle"), _num(rec, "end_cycle")
    if start is None or end is None or end <= start:
        return None
    return end - start


# --------------------------------------------------------- record checks

def _check_counters(rec: dict, tol: float) -> Check | None:
    fields = [k for k in ("generated", "delivered", "delivered_phits",
                          "injected", "drain_cycles", "grants")
              if _num(rec, k) is not None]
    if not fields:
        return None
    bad = [k for k in fields if _num(rec, k) < 0]
    delivered, phits = _num(rec, "delivered"), _num(rec, "delivered_phits")
    if (delivered is not None and phits is not None and phits < delivered):
        bad.append("delivered_phits<delivered")
    return Check(
        "counters", not bad,
        detail=("counters are cumulative event counts: each must be a "
                "non-negative integer and every packet carries >= 1 phit"
                + (f"; offending: {', '.join(bad)}" if bad else "")))


def _check_throughput_bounds(rec: dict, tol: float) -> Check | None:
    thr = _num(rec, "throughput")
    if thr is None:
        return None
    problems = []
    if not 0.0 <= thr <= 1.0 + tol:
        problems.append(f"throughput={thr:.4f} outside [0, 1]")
    gmf = _num(rec, "global_misroute_fraction")
    if gmf is not None and not 0.0 <= gmf <= 1.0 + tol:
        problems.append(f"global_misroute_fraction={gmf:.4f} outside [0, 1]")
    lmr = _num(rec, "local_misroute_rate")
    if lmr is not None and lmr < 0.0:
        problems.append(f"local_misroute_rate={lmr:.4f} negative")
    return Check(
        "throughput_bounds", not problems, lhs=thr, rhs=1.0, tolerance=tol,
        detail=("each node sinks at most one phit per cycle, so accepted "
                "load and misroute fractions are rates in [0, 1]"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_capacity_bounds(rec: dict, tol: float) -> Check | None:
    """Paper §II bisection/capacity bounds (canonical Dragonfly only)."""
    thr = _num(rec, "throughput")
    h = _num(rec, "h")
    pattern = rec.get("pattern")
    routing = rec.get("routing")
    if (thr is None or h is None or not _is_dragonfly(rec)
            or not isinstance(pattern, str)):
        return None
    h = int(h)
    bound = None
    why = ""
    if pattern == "uniform":
        bound = uniform_capacity(h)
        why = f"uniform-traffic global bisection capacity (g-1)/g={bound:.3f}"
    elif pattern.startswith("advg"):
        if routing == "minimal":
            bound = advg_minimal_capacity(h)
            why = (f"ADVG+minimal: a group's 2h^2 nodes share one global "
                   f"link -> 1/(2h^2)={bound:.3f}")
        elif routing == "valiant":
            bound = advg_valiant_local_bound(h)
            why = (f"ADVG+valiant: intermediate-group local saturation "
                   f"caps at 1/h={bound:.3f} [12]")
    elif pattern.startswith("advl") and routing == "minimal":
        bound = advg_valiant_local_bound(h)  # same 1/h local-link cap
        why = f"ADVL+minimal: h injectors share one local link -> 1/h={bound:.3f}"
    if bound is None:
        return None
    return Check("capacity_bounds", thr <= bound * (1.0 + tol),
                 lhs=thr, rhs=bound, tolerance=tol, detail=why)


def _check_latency_ordering(rec: dict, tol: float) -> Check | None:
    delivered = _num(rec, "delivered")
    if not delivered:
        return None
    p50, p95 = _num(rec, "latency_p50"), _num(rec, "latency_p95")
    p99, mx = _num(rec, "latency_p99"), _num(rec, "max_latency")
    mean = _num(rec, "mean_latency")
    present = [v for v in (p50, p95, p99, mx, mean) if v is not None]
    if not present:
        return None
    problems = []
    quantiles = [("p50", p50), ("p95", p95), ("p99", p99), ("max", mx)]
    known = [(n, v) for n, v in quantiles if v is not None]
    for (na, va), (nb, vb) in zip(known, known[1:]):
        if va > vb:
            problems.append(f"{na}={va} > {nb}={vb}")
    if mean is not None and mx is not None and mean > mx:
        problems.append(f"mean={mean:.1f} > max={mx}")
    if any(v < 0 for v in present):
        problems.append("negative latency")
    return Check(
        "latency_ordering", not problems,
        detail=("order statistics of one sample set must be monotone: "
                "p50 <= p95 <= p99 <= max and mean <= max"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_latency_floor(rec: dict, tol: float) -> Check | None:
    delivered = _num(rec, "delivered")
    phits = _num(rec, "delivered_phits")
    if not delivered or phits is None:
        return None
    size = phits / delivered  # mean packet size in phits
    problems = []
    p50 = _num(rec, "latency_p50")
    if p50 is not None and p50 < size * (1.0 - tol):
        problems.append(f"p50={p50:.1f} < serialization {size:.0f}")
    mean, hops = _num(rec, "mean_latency"), _num(rec, "mean_hops")
    floor = size
    if mean is not None and hops is not None:
        floor = hops + size  # every hop costs >= 1 cycle (config floor)
        if mean < floor * (1.0 - tol):
            problems.append(f"mean={mean:.1f} < hop+serialization floor "
                            f"{floor:.1f}")
    return Check(
        "latency_floor", not problems, lhs=mean if mean is not None else p50,
        rhs=floor, tolerance=tol,
        detail=("a packet cannot beat physics: tail delivery takes >= its "
                "own serialization (phits) plus one cycle per hop taken"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_throughput_consistency(rec: dict, tol: float) -> Check | None:
    thr = _num(rec, "throughput")
    phits = _num(rec, "delivered_phits")
    window = _window(rec)
    if not thr or phits is None or window is None:
        return None
    implied = phits / (thr * window)
    nearest = round(implied)
    problems = []
    if nearest < 1 or abs(implied - nearest) > _NODES_TOLERANCE * max(1.0, implied):
        problems.append(f"implied node count {implied:.6f} is not a "
                        "positive integer")
    h = _num(rec, "h")
    if not problems and h is not None and _is_dragonfly(rec):
        expect = dragonfly_nodes(int(h))
        if nearest != expect:
            problems.append(f"implied nodes {nearest} != canonical "
                            f"Dragonfly p*a*g = {expect} for h={int(h)}")
    return Check(
        "throughput_consistency", not problems, lhs=implied,
        rhs=dragonfly_nodes(int(h)) if h is not None and _is_dragonfly(rec)
        else nearest, tolerance=_NODES_TOLERANCE,
        detail=("throughput = delivered_phits / (nodes * window) must "
                "invert to the integer node count the fabric was built with"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_drain_conservation(rec: dict, tol: float) -> Check | None:
    if rec.get("kind") != "drain":
        return None
    delivered = _num(rec, "delivered")
    if delivered is None:
        return None
    problems = []
    generated = _num(rec, "generated")
    if generated is not None and generated != delivered:
        problems.append(f"generated={generated:.0f} != delivered="
                        f"{delivered:.0f} after drain")
    ppn, h = _num(rec, "packets_per_node"), _num(rec, "h")
    expect = None
    if ppn is not None and h is not None and _is_dragonfly(rec):
        expect = ppn * dragonfly_nodes(int(h))
        if delivered != expect:
            problems.append(f"delivered={delivered:.0f} != burst total "
                            f"packets_per_node*nodes={expect:.0f}")
    cycles, window = _num(rec, "drain_cycles"), _window(rec)
    if cycles is not None and window is not None and cycles != window:
        problems.append(f"drain_cycles={cycles:.0f} != end-start={window:.0f}")
    return Check(
        "drain_conservation", not problems, lhs=delivered, rhs=expect,
        detail=("a drained fabric is empty: every burst packet injected "
                "must have been delivered, exactly once"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_drain_latency(rec: dict, tol: float) -> Check | None:
    if rec.get("kind") != "drain":
        return None
    cycles = _num(rec, "drain_cycles")
    if cycles is None:
        return None
    problems = []
    for k in ("mean_latency", "latency_p50", "latency_p95", "latency_p99",
              "max_latency"):
        v = _num(rec, k)
        if v is not None and v > cycles:
            problems.append(f"{k}={v:.1f} > drain_cycles={cycles:.0f}")
    return Check(
        "drain_latency", not problems, rhs=cycles,
        detail=("burst packets are born before the drain starts, so no "
                "delivery latency can exceed the total drain time"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_transient_window(rec: dict, tol: float) -> Check | None:
    if rec.get("kind") != "transient":
        return None
    problems = []
    bucket = _num(rec, "bucket")
    series = rec.get("throughput_series")
    window = _window(rec)
    span = None
    if bucket is None or bucket < 1:
        problems.append(f"bucket={bucket!r} not a positive cycle count")
    elif isinstance(series, list):
        span = bucket * len(series)
        if window is not None and span != window:
            problems.append(f"series spans {span:.0f} cycles != window "
                            f"{window:.0f}")
        bad = [v for v in series
               if isinstance(v, (int, float)) and not 0.0 <= v <= 1.0 + tol]
        if bad:
            problems.append(f"{len(bad)} series value(s) outside [0, 1]")
    recovery = _num(rec, "recovery_cycles")
    if recovery is not None:
        limit = span if span is not None else window
        if recovery < 0 or (limit is not None and recovery > limit):
            problems.append(f"recovery_cycles={recovery:.0f} outside the "
                            "measured window")
        if rec.get("recovered") is False and limit is not None \
                and recovery != limit:
            problems.append("recovered=false but recovery_cycles != window")
    baseline = _num(rec, "baseline_throughput")
    if baseline is not None and not 0.0 <= baseline <= 1.0 + tol:
        problems.append(f"baseline_throughput={baseline:.4f} outside [0, 1]")
    return Check(
        "transient_window", not problems,
        detail=("the transient series must tile the measurement window "
                "exactly and recovery cannot land outside it"
                + ("; " + "; ".join(problems) if problems else "")))


def _check_ci_sanity(rec: dict, tol: float) -> Check | None:
    replicas = _num(rec, "replicas")
    ci_keys = [k for k in rec if k.endswith("_ci")]
    if replicas is None and not ci_keys:
        return None
    problems = []
    if replicas is not None:
        if replicas < 1 or replicas != int(replicas):
            problems.append(f"replicas={replicas!r} not a positive integer")
        seeds = rec.get("seeds")
        if isinstance(seeds, list):
            if len(seeds) != replicas:
                problems.append(f"{len(seeds)} seeds for replicas={replicas:.0f}")
            if len(set(seeds)) != len(seeds):
                problems.append("duplicate seeds in one replica group")
    for k in ci_keys:
        v = _num(rec, k)
        if v is None:
            continue  # NaN-poisoned CI (empty window) maps to null
        if v < 0:
            problems.append(f"{k}={v} negative")
        elif replicas == 1 and v != 0.0:
            problems.append(f"{k}={v} nonzero for a single replica")
    return Check(
        "ci_sanity", not problems,
        detail=("confidence half-widths are non-negative, zero for a "
                "single replica, and seed lists match the replica count"
                + ("; " + "; ".join(problems) if problems else "")))


#: every record-level invariant, in report order — the Markdown report
#: lists each of these names per figure even when not applicable
RECORD_CHECKS: tuple[tuple[str, object], ...] = (
    ("counters", _check_counters),
    ("throughput_bounds", _check_throughput_bounds),
    ("capacity_bounds", _check_capacity_bounds),
    ("latency_ordering", _check_latency_ordering),
    ("latency_floor", _check_latency_floor),
    ("throughput_consistency", _check_throughput_consistency),
    ("drain_conservation", _check_drain_conservation),
    ("drain_latency", _check_drain_latency),
    ("transient_window", _check_transient_window),
    ("ci_sanity", _check_ci_sanity),
)

#: checks only a live instrumented window can perform
LIVE_CHECKS = ("flow_conservation", "little_law", "occupancy_nonnegative")


def check_record(rec: dict, *, tolerance: float = DEFAULT_TOLERANCE) -> list[Check]:
    """Every applicable invariant of one result record.

    Checkers skip silently where a field is absent (reduced drain
    records, table rows) — an emitted :class:`Check` means the record
    carried enough data to be judged.
    """
    out = []
    for _, fn in RECORD_CHECKS:
        c = fn(rec, tolerance)
        if c is not None:
            out.append(c)
    return out


# --------------------------------------------------------- figure reports

@dataclass(frozen=True)
class CheckSummary:
    """One invariant's tally over a figure's records."""

    name: str
    applied: int
    failed: int
    detail: str = ""  # first failure's detail, for the report table

    @property
    def ok(self) -> bool:
        return self.failed == 0


@dataclass(frozen=True)
class ResultReport:
    """Verification verdict for one figure/table result payload."""

    figure: str
    description: str
    records: int
    summaries: list[CheckSummary] = field(compare=False)
    failures: list[dict] = field(compare=False)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def checks_applied(self) -> int:
        return sum(s.applied for s in self.summaries)


def iter_records(result: dict):
    """Yield ``(label, record)`` for every point of a figure payload."""
    series = result.get("series")
    if not isinstance(series, dict):
        raise ValueError("result has no 'series' mapping")
    for name, points in series.items():
        if not isinstance(points, list):
            raise ValueError(f"series {name!r} is not a list of records")
        for i, rec in enumerate(points):
            if not isinstance(rec, dict):
                raise ValueError(f"series {name!r}[{i}] is not a record")
            yield f"{name}[{i}]", rec


def verify_result(result: dict, *,
                  tolerance: float = DEFAULT_TOLERANCE) -> ResultReport:
    """Run every record invariant over one figure/table payload.

    Beyond the per-record checks, the implied node count
    (``delivered_phits / (throughput * window)``) must agree across all
    records of one figure — every series of a figure runs on the same
    fabric size, so a disagreement means a record was transplanted or a
    normalisation drifted.
    """
    figure = result.get("id", "?")
    applied = {name: 0 for name, _ in RECORD_CHECKS}
    failed = {name: 0 for name, _ in RECORD_CHECKS}
    first_detail = {name: "" for name, _ in RECORD_CHECKS}
    failures: list[dict] = []
    records = 0
    implied_nodes: dict[int, str] = {}
    for label, rec in iter_records(result):
        records += 1
        for check in check_record(rec, tolerance=tolerance):
            applied[check.check] += 1
            if not check.ok:
                failed[check.check] += 1
                if not first_detail[check.check]:
                    first_detail[check.check] = check.detail
                failures.append({"record": label, **check.to_dict()})
        thr, phits = _num(rec, "throughput"), _num(rec, "delivered_phits")
        window = _window(rec)
        if thr and phits is not None and window is not None:
            implied_nodes.setdefault(round(phits / (thr * window)), label)
    if len(implied_nodes) > 1:
        sizes = ", ".join(f"{n} ({label})"
                          for n, label in sorted(implied_nodes.items()))
        check = Check(
            "throughput_consistency", False,
            detail=("records of one figure imply different fabric sizes: "
                    + sizes))
        failed["throughput_consistency"] += 1
        applied["throughput_consistency"] += 1
        if not first_detail["throughput_consistency"]:
            first_detail["throughput_consistency"] = check.detail
        failures.append({"record": "<cross-record>", **check.to_dict()})
    summaries = [CheckSummary(name, applied[name], failed[name],
                              first_detail[name])
                 for name, _ in RECORD_CHECKS]
    return ResultReport(figure=figure,
                        description=str(result.get("description", "")),
                        records=records, summaries=summaries,
                        failures=failures)


# ------------------------------------------------------------ live checks

def min_hop_floor(topo) -> int:
    """Smallest router-to-router hop count any packet can experience.

    The topology oracle's lower bound for delivery latency: when a
    router hosts more than one node (``p >= 2``) some source/target
    pairs need zero network hops; otherwise the closest distinct router
    pair sets the floor.
    """
    if topo.num_nodes > topo.num_routers or topo.num_routers <= 1:
        return 0
    return min(topo.minimal_hops(0, r) for r in range(1, topo.num_routers))


def min_latency_floor(topo, config) -> float:
    """Hard lower bound on any delivered packet's latency (cycles).

    Serialization of the packet's own phits through a unit-width
    channel, plus the oracle's minimal hop count at the cheapest link
    latency.  Conservative by construction: queueing, router pipeline
    and per-hop serialization only add to it.
    """
    link = min(config.local_latency, config.global_latency)
    return config.packet_phits + min_hop_floor(topo) * link


def live_checks(hub, *, tolerance: float = DEFAULT_TOLERANCE,
                little_tolerance: float = LITTLE_TOLERANCE) -> list[Check]:
    """The full invariant set over a live :class:`MetricsHub` window.

    Everything here reads hub/engine state the record checks cannot
    see: the engine's in-flight count, the bucket-sampled in-flight
    series, per-(kind, vc) occupancy and the per-packet latency
    extrema.  Returned checks complement the hub's own
    flow-conservation check (which :meth:`MetricsHub.verify` always
    emits first).
    """
    sim = hub.sim
    checks: list[Check] = []
    buckets = hub.completed_buckets()
    n = len(buckets)
    window = n * hub.bucket

    # counters: cumulative event tallies can only grow from zero
    bad = [k for k in ("injected", "delivered", "delivered_phits", "grants",
                       "credit_phits", "ring_hops")
           if getattr(hub, k) < 0]
    if hub.delivered_phits < hub.delivered:
        bad.append("delivered_phits<delivered")
    checks.append(Check(
        "counters", not bad,
        detail=("hub counters are monotone non-negative event counts"
                + (f"; offending: {', '.join(bad)}" if bad else ""))))

    # occupancy: credit accounting can never go below empty
    occ_min = min(hub._occ.values(), default=0)
    sample_min = min((b.inflight for b in buckets), default=0)
    ok = occ_min >= 0 and sample_min >= 0
    checks.append(Check(
        "occupancy_nonnegative", ok, lhs=min(occ_min, sample_min), rhs=0,
        detail="downstream buffer occupancy and sampled in-flight levels "
               "are physical quantities; a negative value means grant/"
               "credit events were lost or double-counted"))

    # throughput <= ejection capacity (one phit per node per cycle)
    if window > 0:
        thr = (sum(b.delivered_phits for b in buckets)
               / (sim.topo.num_nodes * window))
        checks.append(Check(
            "throughput_bounds", 0.0 <= thr <= 1.0 + tolerance,
            lhs=thr, rhs=1.0, tolerance=tolerance,
            detail="accepted load over the completed buckets cannot "
                   "exceed one phit per node per cycle"))

    # Little's law: mean in-flight level == arrival rate * mean latency
    delivered = sum(b.delivered for b in buckets)
    if n >= 4 and delivered >= LITTLE_MIN_DELIVERED:
        l_bar = sum(b.inflight for b in buckets) / n
        # deliveries are stamped at tail-ejection completion while the
        # engine removes the packet from the population at the current
        # cycle; the hub's measured eject lead is exactly the
        # packet-cycles the latency integral counts that the sampled
        # population never holds (scaled to the completed buckets)
        lead = (hub.eject_lead * delivered / hub.delivered
                if hub.delivered else 0.0)
        l_pred = (sum(b.latency_sum for b in buckets) - lead) / window
        # the level is sampled at bucket opens (left rectangles), so the
        # discretisation error is bounded by the series' total variation
        # per bucket: negligible at steady state, exactly as wide as
        # needed on drain/transient ramps
        variation = sum(abs(b2.inflight - b1.inflight)
                        for b1, b2 in zip(buckets, buckets[1:]))
        slack = little_tolerance * max(l_pred, 1.0) + variation / n
        ok = abs(l_bar - l_pred) <= slack
        checks.append(Check(
            "little_law", ok, lhs=l_bar, rhs=l_pred,
            tolerance=little_tolerance,
            detail=f"L = lambda*W over {n} completed buckets: mean sampled "
                   f"in-flight {l_bar:.2f} vs latency-integral "
                   f"{l_pred:.2f} packets (sampling slack "
                   f"{variation / n:.2f})"))

    # latency floor from the topology oracle + serialization
    if hub.latency_min is not None:
        floor = min_latency_floor(sim.topo, sim.config)
        checks.append(Check(
            "latency_floor", hub.latency_min >= floor,
            lhs=hub.latency_min, rhs=floor,
            detail="no delivered packet can beat its own serialization "
                   "plus the topology's minimal-hop link latency"))
    return checks


# ------------------------------------------------------ Markdown report

def _status(summary: CheckSummary) -> str:
    if summary.applied == 0:
        return "–"
    return "✅" if summary.ok else "❌"


def render_markdown(reports, *, tolerance: float = DEFAULT_TOLERANCE,
                    title: str = "Invariant verification report") -> str:
    """Per-figure ✅/❌ Markdown report over :class:`ResultReport` rows.

    Modeled on the BK_ASF verification guide (SNIPPETS.md §2): one
    section per figure listing **every** registered invariant with how
    many records it applied to, then the failures with both sides of
    each broken identity.
    """
    reports = list(reports)
    total_checks = sum(r.checks_applied for r in reports)
    total_failures = sum(len(r.failures) for r in reports)
    lines = [f"# {title}", ""]
    verdict = ("all ✅" if total_failures == 0
               else f"{total_failures} check(s) ❌")
    lines.append(f"**{len(reports)} result(s) · {total_checks} invariant "
                 f"checks applied · {verdict}** (relative tolerance "
                 f"{tolerance:g}; see docs/VERIFICATION.md)")
    for r in reports:
        lines += ["", f"## {'✅' if r.ok else '❌'} {r.figure} — "
                      f"{r.description or 'no description'}",
                  "",
                  f"{r.records} record(s), {r.checks_applied} check(s) "
                  f"applied.", "",
                  "| invariant | records checked | status |",
                  "|---|---|---|"]
        for s in r.summaries:
            checked = f"{s.applied - s.failed}/{s.applied}" if s.applied else "0"
            lines.append(f"| {s.name} | {checked} | {_status(s)} |")
        if r.failures:
            lines.append("")
            lines.append("Failures:")
            for f in r.failures:
                lhs = "" if f.get("lhs") is None else f" lhs={f['lhs']}"
                rhs = "" if f.get("rhs") is None else f" rhs={f['rhs']}"
                lines.append(f"- ❌ `{f['record']}` **{f['check']}**:"
                             f"{lhs}{rhs} — {f['detail']}")
    return "\n".join(lines) + "\n"


__all__ = [
    "Check", "CheckSummary", "DEFAULT_TOLERANCE", "InvariantViolation",
    "LITTLE_MIN_DELIVERED", "LITTLE_TOLERANCE", "LIVE_CHECKS",
    "RECORD_CHECKS", "ResultReport", "VerifyReport", "check_record",
    "dragonfly_nodes", "enforce", "iter_records", "live_checks",
    "min_hop_floor", "min_latency_floor", "render_markdown",
    "verify_result",
]
