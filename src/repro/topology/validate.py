"""Structural validation of topology instances.

These checks are cheap relative to a simulation and are run by the
test suite for several sizes; :func:`validate_topology` dispatches on
the fabric type — Dragonfly, flattened butterfly or torus — and can
also be called by users after constructing exotic parameter
combinations.  Third-party fabrics get the fabric-agnostic protocol
checks (:func:`validate_protocol`).
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.dragonfly import Dragonfly
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.topology.torus import Torus2D


def validate_topology(topo: Topology) -> None:
    """Raise ``AssertionError`` if ``topo`` is structurally inconsistent.

    Runs the fabric-specific checks for the shipped fabrics, plus the
    fabric-agnostic protocol checks for everything.
    """
    validate_protocol(topo)
    if isinstance(topo, Dragonfly):
        _check_counts(topo)
        _check_local_complete(topo)
        _check_global_matching(topo)
        _check_exit_tables(topo)
    elif isinstance(topo, FlattenedButterfly):
        validate_flattened_butterfly(topo)
    elif isinstance(topo, Torus2D):
        validate_torus(topo)


def validate_protocol(topo: Topology) -> None:
    """Fabric-agnostic sanity of the protocol surface (any topology)."""
    assert topo.num_routers == topo.num_groups * topo.a
    assert topo.num_nodes == topo.num_routers * topo.p
    assert topo.local_ports >= 0 and topo.global_ports >= 0
    assert topo.route_local_vcs >= 1 and topo.route_global_vcs >= 1
    for r in (0, topo.num_routers - 1):
        g, i = topo.group_of(r), topo.index_in_group(r)
        assert topo.router_id(g, i) == r, "group/index arithmetic broken"
        for k in range(topo.p):
            n = topo.node_id(r, k)
            assert topo.router_of_node(n) == r and topo.node_index(n) == k


def validate_flattened_butterfly(topo: FlattenedButterfly) -> None:
    """The single group must be a complete graph with inverse port maps."""
    assert topo.num_groups == 1
    assert topo.global_ports == 0 and topo.h == 0
    assert topo.local_ports == topo.a - 1
    _check_local_complete(topo)


def validate_torus(topo: Torus2D) -> None:
    """Both dimensions must be symmetric wrap-around rings."""
    assert topo.num_groups == topo.rows and topo.a == topo.cols
    assert topo.local_ports == 2 and topo.global_ports == 2
    for r in range(topo.num_routers):
        # X ring: the two local ports are inverse neighbours
        i = topo.index_in_group(r)
        fwd, back = topo.local_neighbor(r, 0), topo.local_neighbor(r, 1)
        assert topo.group_of(fwd) == topo.group_of(r) == topo.group_of(back)
        assert topo.local_neighbor(fwd, 1) == r and topo.local_neighbor(back, 0) == r
        assert topo.local_port_to(i, topo.index_in_group(fwd)) == 0
        assert topo.local_port_to(i, topo.index_in_group(back)) == 1
        # Y ring: global links are a symmetric matching of port pairs
        for gport in (0, 1):
            peer, pport = topo.global_neighbor(r, gport)
            assert topo.index_in_group(peer) == i, "Y links stay in a column"
            assert topo.global_neighbor(peer, pport) == (r, gport), \
                "global matching not symmetric"
            assert topo.target_group_of(r, gport) == topo.group_of(peer)
    # ring distances: opposite corner is rows//2 + cols//2 hops away
    far = topo.router_id(topo.rows // 2, topo.cols // 2)
    assert topo.minimal_hops(0, far) == topo.rows // 2 + topo.cols // 2


def _check_counts(topo: Dragonfly) -> None:
    assert topo.num_groups == topo.a * topo.h + 1
    assert topo.radix == topo.p + (topo.a - 1) + topo.h


def _check_local_complete(topo) -> None:
    """Local ports of a complete-graph group reach every other router."""
    for i in range(topo.a):
        seen = set()
        for q in range(topo.local_ports):
            j = topo.local_neighbor_index(i, q)
            assert j != i, "local link to self"
            assert topo.local_port_to(i, j) == q, "local port maps not inverse"
            seen.add(j)
        assert seen == set(range(topo.a)) - {i}, "local ports must reach all others"


def _check_global_matching(topo: Dragonfly) -> None:
    pair_seen: dict[tuple[int, int], int] = {}
    for r in range(topo.num_routers):
        for k in range(topo.global_ports):
            peer, pport = topo.global_neighbor(r, k)
            back, bport = topo.global_neighbor(peer, pport)
            assert (back, bport) == (r, k), "global matching not symmetric"
            ga, gb = topo.group_of(r), topo.group_of(peer)
            assert ga != gb, "global link inside a group"
            key = (min(ga, gb), max(ga, gb))
            pair_seen[key] = pair_seen.get(key, 0) + 1
    expected_pairs = topo.num_groups * (topo.num_groups - 1) // 2
    assert len(pair_seen) == expected_pairs, "some group pair not connected"
    # each unordered pair counted once per direction
    assert all(v == 2 for v in pair_seen.values()), "duplicate global links"


def _check_exit_tables(topo: Dragonfly) -> None:
    for g in range(topo.num_groups):
        for t in range(topo.num_groups):
            if t == g:
                continue
            i, k = topo.exit_port(g, t)
            r = topo.router_id(g, i)
            assert topo.target_group_of(r, k) == t, "exit table inconsistent"
