"""Structural validation of a Dragonfly instance.

These checks are cheap relative to a simulation and are run by the test
suite for several sizes; :func:`validate_topology` can also be called by
users after constructing exotic ``(p, a, h)`` combinations.
"""

from __future__ import annotations

from repro.topology.dragonfly import Dragonfly


def validate_topology(topo: Dragonfly) -> None:
    """Raise ``AssertionError`` if the topology is not a valid Dragonfly."""
    _check_counts(topo)
    _check_local_ports(topo)
    _check_global_matching(topo)
    _check_exit_tables(topo)


def _check_counts(topo: Dragonfly) -> None:
    assert topo.num_groups == topo.a * topo.h + 1
    assert topo.num_routers == topo.num_groups * topo.a
    assert topo.num_nodes == topo.num_routers * topo.p
    assert topo.radix == topo.p + (topo.a - 1) + topo.h


def _check_local_ports(topo: Dragonfly) -> None:
    for i in range(topo.a):
        seen = set()
        for q in range(topo.local_ports):
            j = topo.local_neighbor_index(i, q)
            assert j != i, "local link to self"
            assert topo.local_port_to(i, j) == q, "local port maps not inverse"
            seen.add(j)
        assert seen == set(range(topo.a)) - {i}, "local ports must reach all others"


def _check_global_matching(topo: Dragonfly) -> None:
    pair_seen: dict[tuple[int, int], int] = {}
    for r in range(topo.num_routers):
        for k in range(topo.global_ports):
            peer, pport = topo.global_neighbor(r, k)
            back, bport = topo.global_neighbor(peer, pport)
            assert (back, bport) == (r, k), "global matching not symmetric"
            ga, gb = topo.group_of(r), topo.group_of(peer)
            assert ga != gb, "global link inside a group"
            key = (min(ga, gb), max(ga, gb))
            pair_seen[key] = pair_seen.get(key, 0) + 1
    expected_pairs = topo.num_groups * (topo.num_groups - 1) // 2
    assert len(pair_seen) == expected_pairs, "some group pair not connected"
    # each unordered pair counted once per direction
    assert all(v == 2 for v in pair_seen.values()), "duplicate global links"


def _check_exit_tables(topo: Dragonfly) -> None:
    for g in range(topo.num_groups):
        for t in range(topo.num_groups):
            if t == g:
                continue
            i, k = topo.exit_port(g, t)
            r = topo.router_id(g, i)
            assert topo.target_group_of(r, k) == t, "exit table inconsistent"
