"""1-D flattened butterfly: one group, complete graph over all routers.

The flattened butterfly (Kim, Dally & Abts, ISCA'07) collapses each
column of a conventional butterfly into a single high-radix router;
its 1-D instance is simply a complete graph of ``R`` routers with
``p`` nodes each.  Presented against the hierarchical
:class:`~repro.topology.base.Topology` protocol it is a *single group*
of ``a = R`` routers: every inter-router link is an intra-dimension
LOCAL port (exactly like a Dragonfly group's local network) and there
are no GLOBAL ports at all (``h = 0``).

Minimal paths are one hop, Valiant paths two; the VC discipline
ascends per hop (``lVC1`` then ``lVC2``), which keeps the channel
dependency graph acyclic with two local VCs.  The Valiant intermediate
token is a *router* id — with one group, the Dragonfly's
group-granular Valiant would be a no-op.
"""

from __future__ import annotations

from repro.registry import TOPOLOGY_REGISTRY
from repro.topology.base import (
    CAP_LOCAL_COMPLETE,
    PortKind,
    UnsupportedTopologyError,
)


@TOPOLOGY_REGISTRY.register(
    "flattened_butterfly",
    description="1-D flattened butterfly: complete graph of routers, one group (Kim et al.)")
class FlattenedButterfly:
    """A 1-D flattened butterfly: ``routers`` fully-connected routers.

    Parameters
    ----------
    routers:
        Number of routers (>= 2); they form one complete graph.
    p:
        Nodes per router (concentration), default 2.
    """

    #: the local network is a complete graph, so local misrouting works;
    #: there are no group exits and paths are not Dragonfly-shaped
    caps = frozenset({CAP_LOCAL_COMPLETE})
    #: ascending per-hop discipline: lVC1 for the first hop, lVC2 for
    #: the (Valiant) second
    route_local_vcs = 2
    route_global_vcs = 1  # no global ports; one VC keeps sizing well-defined

    def __init__(self, routers: int, *, p: int = 2) -> None:
        if routers < 2:
            raise ValueError(
                f"a flattened butterfly needs at least 2 routers, got {routers}"
            )
        if p < 1:
            raise ValueError(f"need p >= 1 nodes per router, got {p}")
        self.a = routers
        self.p = p
        self.h = 0
        self.num_groups = 1
        self.num_routers = routers
        self.num_nodes = routers * p
        self.local_ports = routers - 1
        self.global_ports = 0
        self.radix = p + self.local_ports

    @classmethod
    def from_config(cls, config) -> "FlattenedButterfly":
        """Build the fabric from ``SimConfig.fb_routers`` / ``p``."""
        return cls(config.fb_routers, p=2 if config.p is None else config.p)

    # ------------------------------------------------------------------ ids
    def group_of(self, router: int) -> int:
        """Always group 0: the whole fabric is one group."""
        return 0

    def index_in_group(self, router: int) -> int:
        """Router id and index-in-group coincide (single group)."""
        return router

    def router_id(self, group: int, index: int) -> int:
        return index

    def router_of_node(self, node: int) -> int:
        return node // self.p

    def node_index(self, node: int) -> int:
        return node % self.p

    def node_id(self, router: int, k: int) -> int:
        return router * self.p + k

    # ----------------------------------------------------------- local ports
    def local_port_to(self, src_index: int, dst_index: int) -> int:
        """Local output port of ``src_index`` reaching ``dst_index``
        (complete graph: defined for every ordered pair)."""
        if src_index == dst_index:
            raise ValueError("no local link from a router to itself")
        return dst_index if dst_index < src_index else dst_index - 1

    def local_neighbor_index(self, src_index: int, port: int) -> int:
        if not 0 <= port < self.local_ports:
            raise ValueError(f"local port {port} out of range")
        return port if port < src_index else port + 1

    def local_neighbor(self, router: int, port: int) -> int:
        return self.local_neighbor_index(router, port)

    # ---------------------------------------------------------- global ports
    def global_neighbor(self, router: int, gport: int) -> tuple[int, int]:
        raise UnsupportedTopologyError(
            "the 1-D flattened butterfly has no global ports "
            "(every link is LOCAL inside its single group)"
        )

    # ------------------------------------------------------------- route maps
    def exit_port(self, group: int, target_group: int) -> tuple[int, int]:
        raise UnsupportedTopologyError(
            "the 1-D flattened butterfly is a single group; there are no "
            "group-to-group exit ports"
        )

    def target_group_of(self, router: int, gport: int) -> int:
        raise UnsupportedTopologyError(
            "the 1-D flattened butterfly has no global ports"
        )

    def minimal_hops(self, src_router: int, dst_router: int) -> int:
        """0 or 1: every router pair is directly connected."""
        return 0 if src_router == dst_router else 1

    # --------------------------------------------------------- routing oracle
    def min_hop(self, cur_router: int, packet) -> tuple[PortKind, int, int, int]:
        """(kind, port, target, vc): direct hop, or via the Valiant router.

        VC ascends per hop: the first hop (minimal, or toward the
        Valiant intermediate) rides ``lVC1`` (index 0), the hop leaving
        the intermediate rides ``lVC2`` (index 1) — an acyclic channel
        ordering, so 2 local VCs make the fabric deadlock-free.
        """
        via = packet.valiant_group
        if via is not None and not packet.via_done:
            if cur_router == via:
                packet.via_done = True
            else:
                return (PortKind.LOCAL, self.local_port_to(cur_router, via),
                        via, 0)
        if cur_router == packet.dst_router:
            k = self.node_index(packet.dst)
            return PortKind.EJECT, k, k, 0
        vc = 1 if via is not None and packet.via_done else 0
        return (PortKind.LOCAL, self.local_port_to(cur_router, packet.dst_router),
                packet.dst_router, vc)

    def pick_via(self, rng, packet) -> int:
        """Random Valiant intermediate *router*, excluding source and
        destination routers."""
        if self.a < 3:
            raise UnsupportedTopologyError(
                "Valiant routing on a flattened butterfly needs at least 3 "
                f"routers (got {self.a}): no intermediate router exists"
            )
        while True:
            cand = rng.randrange(self.a)
            if cand == packet.src_router or cand == packet.dst_router:
                continue
            return cand

    def escape_ring(self):
        """Trivial Hamiltonian ring ``0 -> 1 -> ... -> R-1 -> 0`` over
        local links (the local network is complete)."""
        return {
            r: (
                (r + 1) % self.a,
                PortKind.LOCAL,
                self.local_port_to(r, (r + 1) % self.a),
            )
            for r in range(self.a)
        }

    def as_networkx(self):
        """Router-level graph for offline analysis (needs networkx)."""
        import networkx as nx

        g = nx.complete_graph(self.num_routers)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlattenedButterfly(routers={self.a}, p={self.p}, "
            f"nodes={self.num_nodes}, radix={self.radix})"
        )
