"""2-D torus: a ring per dimension, mapped onto the LOCAL/GLOBAL split.

Routers sit on a ``rows x cols`` grid with wrap-around links in both
dimensions.  Against the hierarchical
:class:`~repro.topology.base.Topology` protocol, each *row* is a group:
the X-dimension ring inside a row rides the two LOCAL ports
(``0`` = +1, ``1`` = -1 around the row), and the Y-dimension ring
between rows rides the two GLOBAL ports (``0`` = +1 row, ``1`` = -1
row).  ``h = 2`` global ports per router, ``local_ports = 2``.

Routing is dimension-ordered (X, then Y) per Valiant phase, and the VC
discipline is the classic *date-line* scheme generalised to two
phases: within one ring traversal the VC index is ``phase + crossed``,
where ``crossed`` flips after the traversal passes the wrap-around
edge and ``phase`` is 0 before the Valiant intermediate and 1 after
it.  Channels are therefore consumed in strictly ascending VC order
along any path — local VCs {0,1} for minimal, {0..2} for Valiant X
traversals, global VCs {0..2} for Valiant Y traversals — which is why
``route_local_vcs = route_global_vcs = 3``.

The torus advertises *no* capability flags: its local network is a
ring, not a complete graph (no local misrouting), it has no per-group
exit ports (no source-group Valiant diverts), and its paths are not
``l-g-l`` shaped.  ``minimal``/``valiant`` run through the hop oracle;
OFAR runs with its escape ring but degrades to minimal-plus-ring (no
misrouting); the Dragonfly-specific mechanisms (PB, PAR-6/2, RLM, OLM)
raise :class:`~repro.topology.base.UnsupportedTopologyError`.
"""

from __future__ import annotations

from repro.registry import TOPOLOGY_REGISTRY
from repro.topology.base import PortKind, UnsupportedTopologyError


def _ring_step(cur: int, tgt: int, start: int, k: int) -> tuple[int, int]:
    """(direction port, crossed) of the next hop around a ``k``-ring.

    Direction is the shortest way from ``cur`` to ``tgt`` (ties go the
    +1 way, consistently along the whole traversal); ``crossed`` is 1
    when the traversal that began at ``start`` has already passed the
    direction's wrap-around edge — the date-line VC bump.
    """
    if (tgt - cur) % k <= (cur - tgt) % k:
        return 0, 1 if cur < start else 0
    return 1, 1 if cur > start else 0


@TOPOLOGY_REGISTRY.register(
    "torus",
    description="2-D torus: X rings on LOCAL ports per row-group, Y rings on GLOBAL ports")
class Torus2D:
    """A ``rows x cols`` 2-D torus with ``p`` nodes per router.

    Parameters
    ----------
    rows, cols:
        Ring sizes of the Y (GLOBAL) and X (LOCAL) dimensions.  Both
        must be >= 3 — a 2-ring would fold its two directed links onto
        one neighbour port pair, which the credit-per-port router model
        cannot represent.
    p:
        Nodes per router (concentration), default 2.
    """

    #: rings are neither complete local graphs nor group-exit networks,
    #: and paths are not Dragonfly-shaped: no capability flags
    caps = frozenset()
    #: date-line discipline over two Valiant phases: VC = phase + crossed
    route_local_vcs = 3
    route_global_vcs = 3

    def __init__(self, rows: int, cols: int, *, p: int = 2) -> None:
        for name, value in (("rows", rows), ("cols", cols)):
            if value < 3:
                raise ValueError(
                    f"torus {name} must be >= 3, got {value}: a "
                    f"{name[:-1]}-ring of fewer than 3 routers folds both "
                    "link directions onto one neighbour, which the "
                    "per-port credit model cannot represent"
                )
        if p < 1:
            raise ValueError(f"need p >= 1 nodes per router, got {p}")
        self.rows = rows
        self.cols = cols
        self.p = p
        self.a = cols
        self.h = 2
        self.num_groups = rows
        self.num_routers = rows * cols
        self.num_nodes = self.num_routers * p
        self.local_ports = 2
        self.global_ports = 2
        self.radix = p + 4

    @classmethod
    def from_config(cls, config) -> "Torus2D":
        """Build the fabric from ``SimConfig.torus_rows/torus_cols/p``."""
        return cls(config.torus_rows, config.torus_cols,
                   p=2 if config.p is None else config.p)

    # ------------------------------------------------------------------ ids
    def group_of(self, router: int) -> int:
        """Row of a router (groups are rows)."""
        return router // self.cols

    def index_in_group(self, router: int) -> int:
        """Column of a router inside its row, ``0 .. cols-1``."""
        return router % self.cols

    def router_id(self, group: int, index: int) -> int:
        return group * self.cols + index

    def router_of_node(self, node: int) -> int:
        return node // self.p

    def node_index(self, node: int) -> int:
        return node % self.p

    def node_id(self, router: int, k: int) -> int:
        return router * self.p + k

    # ----------------------------------------------------------- local ports
    def local_port_to(self, src_index: int, dst_index: int) -> int:
        """Local port of ``src_index`` reaching ``dst_index`` — defined
        only for X-ring neighbours (the local network is a ring)."""
        if dst_index == (src_index + 1) % self.cols:
            return 0
        if dst_index == (src_index - 1) % self.cols:
            return 1
        raise UnsupportedTopologyError(
            f"routers {src_index} and {dst_index} are not X-ring "
            "neighbours: the torus local network is a ring, not a "
            "complete graph (no 'local-complete' capability)"
        )

    def local_neighbor_index(self, src_index: int, port: int) -> int:
        if port == 0:
            return (src_index + 1) % self.cols
        if port == 1:
            return (src_index - 1) % self.cols
        raise ValueError(f"local port {port} out of range")

    def local_neighbor(self, router: int, port: int) -> int:
        return self.router_id(
            self.group_of(router),
            self.local_neighbor_index(self.index_in_group(router), port),
        )

    # ---------------------------------------------------------- global ports
    def global_neighbor(self, router: int, gport: int) -> tuple[int, int]:
        """(peer router id, peer global port) across Y-ring ``gport``.

        Port 0 reaches row+1 (arriving on the peer's port 1), port 1
        reaches row-1 (arriving on the peer's port 0).
        """
        g = self.group_of(router)
        i = self.index_in_group(router)
        if gport == 0:
            return self.router_id((g + 1) % self.rows, i), 1
        if gport == 1:
            return self.router_id((g - 1) % self.rows, i), 0
        raise ValueError(f"global port {gport} out of range")

    # ------------------------------------------------------------- route maps
    def exit_port(self, group: int, target_group: int) -> tuple[int, int]:
        raise UnsupportedTopologyError(
            "a torus row has no single exit link per target row (every "
            "router has its own Y links); route through the min_hop "
            "oracle instead (no 'group-exits' capability)"
        )

    def target_group_of(self, router: int, gport: int) -> int:
        g = self.group_of(router)
        if gport == 0:
            return (g + 1) % self.rows
        if gport == 1:
            return (g - 1) % self.rows
        raise ValueError(f"global port {gport} out of range")

    def minimal_hops(self, src_router: int, dst_router: int) -> int:
        """Sum of the two ring distances (dimension-order path length)."""
        sc, dc = self.index_in_group(src_router), self.index_in_group(dst_router)
        sr, dr = self.group_of(src_router), self.group_of(dst_router)
        dx = min((dc - sc) % self.cols, (sc - dc) % self.cols)
        dy = min((dr - sr) % self.rows, (sr - dr) % self.rows)
        return dx + dy

    # --------------------------------------------------------- routing oracle
    def min_hop(self, cur_router: int, packet) -> tuple[PortKind, int, int, int]:
        """(kind, port, target, vc): dimension-ordered X-then-Y hop.

        While ``packet.valiant_group`` (a *router* token here) is
        pending, the objective is the intermediate router (phase 0);
        afterwards the destination router (phase 1 when a Valiant
        detour was taken).  The VC is ``phase + crossed`` per the
        date-line scheme (see the module docstring).
        """
        via = packet.valiant_group
        if via is not None and not packet.via_done:
            if cur_router == via:
                packet.via_done = True
            else:
                return self._hop_toward(cur_router, via, packet, 0)
        if cur_router == packet.dst_router:
            k = self.node_index(packet.dst)
            return PortKind.EJECT, k, k, 0
        phase = 1 if via is not None else 0
        return self._hop_toward(cur_router, packet.dst_router, packet, phase)

    def _hop_toward(self, cur: int, tgt: int, packet, phase: int):
        """First dimension-order hop ``cur -> tgt`` with its date-line VC."""
        cols = self.cols
        # the current traversal started at the source router in phase 0
        # and at the Valiant intermediate in phase 1
        origin = packet.src_router if phase == 0 else packet.valiant_group
        ci, ti = cur % cols, tgt % cols
        if ci != ti:  # X first (LOCAL ring inside the row)
            port, crossed = _ring_step(ci, ti, origin % cols, cols)
            vc = min(phase + crossed, self.route_local_vcs - 1)
            nxt = (ci + 1) % cols if port == 0 else (ci - 1) % cols
            return PortKind.LOCAL, port, nxt, vc
        cg, tg = cur // cols, tgt // cols
        port, crossed = _ring_step(cg, tg, origin // cols, self.rows)
        vc = min(phase + crossed, self.route_global_vcs - 1)
        return PortKind.GLOBAL, port, port, vc

    def pick_via(self, rng, packet) -> int:
        """Random Valiant intermediate *router*, excluding source and
        destination routers."""
        n = self.num_routers
        while True:
            cand = rng.randrange(n)
            if cand == packet.src_router or cand == packet.dst_router:
                continue
            return cand

    # -------------------------------------------------------------- escape
    def escape_ring(self):
        """Hamiltonian ring over the grid: a serpentine over rows.

        With an even row count the serpentine closes through the Y
        wrap-around link directly; with an odd row count, row 0 is
        covered in full and column 0 serves as the return highway (the
        last row reaches it over the X wrap-around link).  Both
        constructions only use ring-neighbour links, so they exist for
        every ``rows, cols >= 3`` torus.
        """
        succ: dict[int, tuple[int, PortKind, int]] = {}
        rid = self.router_id

        def x_step(r: int, c: int, port: int) -> None:
            nxt = (c + 1) % self.cols if port == 0 else (c - 1) % self.cols
            succ[rid(r, c)] = (rid(r, nxt), PortKind.LOCAL, port)

        def y_step(r: int, c: int, port: int) -> None:
            nr = (r + 1) % self.rows if port == 0 else (r - 1) % self.rows
            succ[rid(r, c)] = (rid(nr, c), PortKind.GLOBAL, port)

        if self.rows % 2 == 0:
            # serpentine over all columns; close via the Y wrap at col 0
            for r in range(self.rows):
                rightward = r % 2 == 0
                cols = range(self.cols - 1) if rightward else range(self.cols - 1, 0, -1)
                for c in cols:
                    x_step(r, c, 0 if rightward else 1)
                y_step(r, self.cols - 1 if rightward else 0, 0)
            return succ
        # odd row count: full row 0, serpentine rows 1.. over cols 1..,
        # X-wrap into the column-0 highway, highway back up to (0, 0)
        for c in range(self.cols - 1):
            x_step(0, c, 0)
        y_step(0, self.cols - 1, 0)
        for r in range(1, self.rows):
            leftward = r % 2 == 1
            cols = range(self.cols - 1, 1, -1) if leftward else range(1, self.cols - 1)
            for c in cols:
                x_step(r, c, 1 if leftward else 0)
            if r < self.rows - 1:
                y_step(r, 1 if leftward else self.cols - 1, 0)
        x_step(self.rows - 1, self.cols - 1, 0)  # X wrap onto the highway
        for r in range(self.rows - 1, 0, -1):
            y_step(r, 0, 1)
        return succ

    def as_networkx(self):
        """Router-level graph for offline analysis (needs networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_routers))
        for r in range(self.num_routers):
            g.add_edge(r, self.local_neighbor(r, 0), kind="local")
            g.add_edge(r, self.global_neighbor(r, 0)[0], kind="global")
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Torus2D(rows={self.rows}, cols={self.cols}, p={self.p}, "
            f"routers={self.num_routers}, nodes={self.num_nodes})"
        )
