"""The topology protocol: what the engine and routing layers require.

A registered topology (see ``repro.registry.TOPOLOGY_REGISTRY``) is any
class exposing this surface.  The engine builds it from a
:class:`~repro.network.config.SimConfig` via ``from_config`` and only
ever talks to the protocol — ``Simulator`` and ``Router`` have no
knowledge of which fabric they are driving.  The shipped implementation
is the :class:`~repro.topology.dragonfly.Dragonfly`; third parties
register their own fabrics without touching the engine.

The protocol is hierarchical (nodes -> routers -> groups) because the
router port model (eject/local/global) and the paper's routing
mechanisms are expressed against that structure; a flat fabric can
present itself as a single group.

:class:`PortKind` and :class:`OutputPort` live here too: the router
port layout (``p`` ejection, ``a-1`` local, ``h`` global ports) is
part of the protocol contract, not of any one fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


class PortKind(enum.IntEnum):
    """Kind of a router output port."""

    EJECT = 0
    LOCAL = 1
    GLOBAL = 2


@dataclass(frozen=True)
class OutputPort:
    """An output port of a specific router.

    ``index`` is the port number within its kind: ejection port
    ``0..p-1`` (one per attached node), local port ``0..a-2``, global
    port ``0..h-1``.
    """

    kind: PortKind
    index: int


@runtime_checkable
class Topology(Protocol):
    """Structural interface every registered topology must provide."""

    # ---- sizes
    p: int            #: nodes per router
    a: int            #: routers per group
    h: int            #: global ports per router
    num_nodes: int
    num_routers: int
    num_groups: int
    local_ports: int
    global_ports: int

    @classmethod
    def from_config(cls, config) -> "Topology":
        """Build an instance from a :class:`SimConfig`."""
        ...

    # ---- id arithmetic
    def group_of(self, router: int) -> int: ...
    def index_in_group(self, router: int) -> int: ...
    def router_id(self, group: int, index: int) -> int: ...
    def router_of_node(self, node: int) -> int: ...
    def node_index(self, node: int) -> int: ...
    def node_id(self, router: int, k: int) -> int: ...

    # ---- port maps
    def local_port_to(self, src_index: int, dst_index: int) -> int: ...
    def local_neighbor_index(self, src_index: int, port: int) -> int: ...
    def local_neighbor(self, router: int, port: int) -> int: ...
    def global_neighbor(self, router: int, gport: int) -> tuple[int, int]: ...

    # ---- route maps
    def exit_port(self, group: int, target_group: int) -> tuple[int, int]: ...
    def target_group_of(self, router: int, gport: int) -> int: ...
    def minimal_hops(self, src_router: int, dst_router: int) -> int: ...


__all__ = ["Topology", "PortKind", "OutputPort"]
