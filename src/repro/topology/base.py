"""The topology protocol: what the engine and routing layers require.

A registered topology (see ``repro.registry.TOPOLOGY_REGISTRY``) is any
class exposing this surface.  The engine builds it from a
:class:`~repro.network.config.SimConfig` via ``from_config`` and only
ever talks to the protocol — ``Simulator`` and ``Router`` have no
knowledge of which fabric they are driving.  Three fabrics ship with
the package: the :class:`~repro.topology.dragonfly.Dragonfly` of the
reproduced paper, the 1-D
:class:`~repro.topology.flattened_butterfly.FlattenedButterfly` and
the 2-D :class:`~repro.topology.torus.Torus2D`; third parties register
their own fabrics without touching the engine (see
``docs/ADDING_A_TOPOLOGY.md`` for a worked guide).

The protocol is hierarchical (nodes -> routers -> groups) because the
router port model (eject/local/global) and the paper's routing
mechanisms are expressed against that structure; a flat fabric can
present itself as a single group (the flattened butterfly does), and a
multi-dimensional fabric can map one dimension onto LOCAL ports and
the rest onto GLOBAL ports (the torus does).

:class:`PortKind` and :class:`OutputPort` live here too: the router
port layout (``p`` ejection, ``local_ports`` local, ``global_ports``
global ports) is part of the protocol contract, not of any one fabric.

Routing oracle
--------------

Baseline routing (``minimal``/``valiant``) never assumes a path shape;
it asks the fabric for the next hop: :meth:`Topology.min_hop` returns
``(kind, port, target, vc)`` — the first hop of the (Valiant-
constrained) minimal route from the packet's current router, together
with the virtual channel that keeps the fabric's own deadlock-freedom
discipline intact (ascending-per-global-hop on the Dragonfly,
date-line VCs on the torus rings, ascending-per-hop on the flattened
butterfly).  :meth:`Topology.pick_via` draws the Valiant intermediate
token — a *group* on the Dragonfly (the paper's semantics), a *router*
on the flat fabrics — which the engine stores opaquely on
``packet.valiant_group``.

Capability flags
----------------

Adaptive mechanisms need structure beyond the oracle (complete local
graphs for local misrouting, one global link per group pair for
Valiant diverts, bounded ``l-g-l`` path shapes for the paper's VC
disciplines).  A fabric advertises what it has in ``caps``; mechanisms
declare ``required_caps`` and raise
:class:`UnsupportedTopologyError` at construction when the fabric
lacks them (see :class:`~repro.core.base.RoutingAlgorithm`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


class UnsupportedTopologyError(ValueError):
    """A routing mechanism (or helper) needs structure the fabric lacks.

    Raised with an actionable message naming the mechanism, the fabric
    and the missing capability, e.g. *"routing 'rlm' requires the
    'dragonfly-paths' capability, which topology 'torus' does not
    provide"*.
    """


#: ``local_port_to`` works for *any* ordered router pair inside a group
#: (the local network is a complete graph) — required for the adaptive
#: mechanisms' local misrouting.
CAP_LOCAL_COMPLETE = "local-complete"
#: ``exit_port(group, target_group)`` is defined for every group pair
#: (the global network is a complete graph of groups) — required for
#: Valiant diverts / global misrouting inside the source group.
CAP_GROUP_EXITS = "group-exits"
#: minimal paths are Dragonfly-shaped (``l-g-l``, at most two global
#: hops on a Valiant path) — required by the paper's VC disciplines and
#: the parity-sign machinery (PB, PAR-6/2, RLM, OLM).
CAP_DRAGONFLY_PATHS = "dragonfly-paths"

#: what a pre-protocol (PR-1 era) third-party fabric implicitly claimed;
#: used as the default when a topology does not define ``caps``.
DRAGONFLY_CAPS = frozenset(
    {CAP_LOCAL_COMPLETE, CAP_GROUP_EXITS, CAP_DRAGONFLY_PATHS}
)


class PortKind(enum.IntEnum):
    """Kind of a router output port."""

    EJECT = 0
    LOCAL = 1
    GLOBAL = 2


@dataclass(frozen=True)
class OutputPort:
    """An output port of a specific router.

    ``index`` is the port number within its kind: ejection port
    ``0..p-1`` (one per attached node), local port
    ``0..local_ports-1``, global port ``0..global_ports-1``.
    """

    kind: PortKind
    index: int


@runtime_checkable
class Topology(Protocol):
    """Structural interface every registered topology must provide."""

    # ---- sizes
    p: int            #: nodes per router
    a: int            #: routers per group
    h: int            #: global ports per router
    num_nodes: int
    num_routers: int
    num_groups: int
    local_ports: int
    global_ports: int

    # ---- routing-oracle contract
    #: virtual channels the fabric's ``min_hop`` VC discipline may
    #: address on local / global ports (the engine allocates at least
    #: this many per port)
    route_local_vcs: int
    route_global_vcs: int
    #: capability flags (``CAP_*``) the fabric provides
    caps: frozenset

    @classmethod
    def from_config(cls, config) -> "Topology":
        """Build an instance from a :class:`SimConfig`."""
        ...

    # ---- id arithmetic
    def group_of(self, router: int) -> int: ...
    def index_in_group(self, router: int) -> int: ...
    def router_id(self, group: int, index: int) -> int: ...
    def router_of_node(self, node: int) -> int: ...
    def node_index(self, node: int) -> int: ...
    def node_id(self, router: int, k: int) -> int: ...

    # ---- port maps
    def local_port_to(self, src_index: int, dst_index: int) -> int: ...
    def local_neighbor_index(self, src_index: int, port: int) -> int: ...
    def local_neighbor(self, router: int, port: int) -> int: ...
    def global_neighbor(self, router: int, gport: int) -> tuple[int, int]: ...

    # ---- route maps
    def exit_port(self, group: int, target_group: int) -> tuple[int, int]: ...
    def target_group_of(self, router: int, gport: int) -> int: ...
    def minimal_hops(self, src_router: int, dst_router: int) -> int: ...

    # ---- routing oracle
    def min_hop(self, cur_router: int, packet) -> tuple[PortKind, int, int, int]:
        """First hop of the minimal route for ``packet`` at ``cur_router``.

        Returns ``(kind, port, target, vc)``: the port kind, the port
        index within its kind, the hop target (index-in-group of the
        next router for LOCAL hops, the global port for GLOBAL hops,
        the destination's node index for EJECT) and the virtual channel
        of the fabric's deadlock-free minimal-route discipline.  When
        ``packet.valiant_group`` is set the route is constrained
        through the Valiant intermediate first (``packet.via_done``
        flips once it is reached).
        """
        ...

    def pick_via(self, rng, packet) -> int:
        """Draw a Valiant intermediate token for ``packet`` from ``rng``.

        The token is fabric-defined (a group id on the Dragonfly, a
        router id on the flat fabrics) and stored opaquely on
        ``packet.valiant_group``; only :meth:`min_hop` interprets it.
        """
        ...

    def escape_ring(self):
        """Successor map ``router -> (next_router, port_kind, port_index)``
        of a Hamiltonian ring over all routers (OFAR's escape
        subnetwork), or raise :class:`UnsupportedTopologyError` when no
        ring embedding exists for this instance.
        """
        ...


__all__ = [
    "Topology",
    "PortKind",
    "OutputPort",
    "UnsupportedTopologyError",
    "CAP_LOCAL_COMPLETE",
    "CAP_GROUP_EXITS",
    "CAP_DRAGONFLY_PATHS",
    "DRAGONFLY_CAPS",
]
